//! Offline in-tree stand-in for `serde`.
//!
//! The workspace build must be hermetic (no crates-io access), and the
//! simulation never serializes through serde itself — concrete encoders
//! (the campaign engine's JSON writer, the CSV exporters) do their own
//! formatting. Config types still derive `Serialize`/`Deserialize` so
//! the public API keeps serde's shape; here those are marker traits,
//! blanket-implemented for every type, and the derive macros are no-ops.
//!
//! If real serialization is ever needed, drop in the real `serde` via a
//! path or registry dependency — the consuming code is already
//! attribute-compatible.

#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Deserialization marker traits (`serde::de`).
pub mod de {
    /// Marker stand-in for `serde::de::DeserializeOwned`.
    pub trait DeserializeOwned {}
    impl<T> DeserializeOwned for T where T: for<'de> crate::Deserialize<'de> {}
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

#[cfg(test)]
mod tests {
    #[test]
    fn blanket_impls_cover_arbitrary_types() {
        fn assert_serde<T: crate::Serialize + crate::de::DeserializeOwned>() {}
        struct Local {
            _x: u8,
        }
        assert_serde::<Local>();
        assert_serde::<Vec<String>>();
    }
}
