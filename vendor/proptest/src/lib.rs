//! Offline in-tree mini property-testing framework exposing the subset
//! of the `proptest` API this workspace uses.
//!
//! Differences from the real crate, deliberate for hermeticity and
//! speed: no shrinking (a failing case reports its case number and the
//! deterministic per-test seed instead of a minimized input), rejection
//! via `prop_assume!` skips the case rather than retrying, and the
//! default case count is 64. Each test's RNG is seeded from a stable
//! hash of its module path and name, so failures reproduce exactly.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

// The `proptest!` macro expansion needs the vendored `rand`; re-export
// it so consuming crates don't need their own dev-dependency on it.
#[doc(hidden)]
pub use rand;

/// The `use proptest::prelude::*;` surface.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Stable FNV-1a hash used to derive per-test seeds.
pub fn fnv1a(label: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Defines property tests. Mirrors `proptest::proptest!`: an optional
/// `#![proptest_config(..)]` inner attribute followed by `#[test]`
/// functions whose arguments are `pattern in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let __config: $crate::test_runner::Config = $cfg;
            let __seed = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            let mut __rng =
                <$crate::rand::rngs::StdRng as $crate::rand::SeedableRng>::seed_from_u64(__seed);
            for __case in 0..__config.cases {
                let __outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $(let $arg = ($strat).generate(&mut __rng);)+
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(__msg) = __outcome {
                    panic!(
                        "property failed at case {}/{} (seed {:#x}): {}",
                        __case + 1,
                        __config.cases,
                        __seed,
                        __msg
                    );
                }
            }
        }
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
}

/// Asserts a condition inside a property test body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                ::std::format!($($fmt)+)
            ));
        }
    };
}

/// Asserts equality inside a property test body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {:?} == {:?}", l, r),
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {:?} == {:?}: {}",
                l,
                r,
                ::std::format!($($fmt)+)
            ));
        }
    }};
}

/// Asserts inequality inside a property test body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {:?} != {:?}",
                l,
                r
            ));
        }
    }};
}

/// Skips the current case when the assumption does not hold. (The real
/// crate resamples; this implementation just moves to the next case.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Picks uniformly between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u32..10, y in -4i64..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-4..=4).contains(&y));
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![
            (0u8..4).prop_map(|x| x as u16),
            (10u8..14).prop_map(|x| x as u16),
        ]) {
            prop_assert!(v < 4 || (10..14).contains(&v));
        }

        #[test]
        fn assume_skips(x in 0u8..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn options_and_tuples(o in crate::option::of((0u8..2, any::<bool>()))) {
            if let Some((b, _)) = o {
                prop_assert!(b < 2);
            }
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic_with_case_info() {
        // No inner `#[test]` attribute: rustc cannot register tests on
        // inner items, and the function is invoked directly below.
        proptest! {
            fn always_fails(x in 0u8..4) {
                prop_assert!(x > 200, "x was {}", x);
            }
        }
        always_fails();
    }
}
