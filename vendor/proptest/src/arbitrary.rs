//! `any::<T>()` and the [`Arbitrary`] trait.

use crate::strategy::Strategy;
use rand::distributions::{Distribution, Standard};
use rand::rngs::StdRng;
use std::marker::PhantomData;

/// Types with a canonical full-range generation strategy.
pub trait Arbitrary {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_via_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                Standard.sample(rng)
            }
        }
    )*};
}
arbitrary_via_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

impl<A: Arbitrary, const N: usize> Arbitrary for [A; N] {
    fn arbitrary(rng: &mut StdRng) -> Self {
        std::array::from_fn(|_| A::arbitrary(rng))
    }
}

/// Strategy returned by [`any`].
pub struct Any<A>(PhantomData<A>);

impl<A> Clone for Any<A> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn generate(&self, rng: &mut StdRng) -> A {
        A::arbitrary(rng)
    }
}

/// The canonical strategy for `A`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}
