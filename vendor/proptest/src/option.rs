//! Option strategies.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Strategy yielding `None` or `Some(inner)` (50/50).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// Strategy returned by [`of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
        if rng.gen_bool(0.5) {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}
