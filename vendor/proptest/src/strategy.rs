//! The [`Strategy`] trait and combinators.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike the real crate there is no value tree / shrinking: a strategy
/// is just a deterministic function of the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { source: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Boxes a strategy behind `dyn Strategy` (used by `prop_oneof!`).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        (self.f)(self.source.generate(rng))
    }
}

/// Uniform choice between strategies of one value type (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Creates a union over the given arms.
    ///
    /// # Panics
    ///
    /// Panics when `arms` is empty.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        let idx = rng.gen_range(0..self.arms.len());
        self.arms[idx].generate(rng)
    }
}

macro_rules! strategy_for_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
strategy_for_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! strategy_for_tuple {
    ($($name:ident/$idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
strategy_for_tuple!(A / 0);
strategy_for_tuple!(A / 0, B / 1);
strategy_for_tuple!(A / 0, B / 1, C / 2);
strategy_for_tuple!(A / 0, B / 1, C / 2, D / 3);
strategy_for_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4);
strategy_for_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
strategy_for_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
strategy_for_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);
strategy_for_tuple!(
    A / 0,
    B / 1,
    C / 2,
    D / 3,
    E / 4,
    F / 5,
    G / 6,
    H / 7,
    I / 8
);
strategy_for_tuple!(
    A / 0,
    B / 1,
    C / 2,
    D / 3,
    E / 4,
    F / 5,
    G / 6,
    H / 7,
    I / 8,
    J / 9
);
strategy_for_tuple!(
    A / 0,
    B / 1,
    C / 2,
    D / 3,
    E / 4,
    F / 5,
    G / 6,
    H / 7,
    I / 8,
    J / 9,
    K / 10
);
strategy_for_tuple!(
    A / 0,
    B / 1,
    C / 2,
    D / 3,
    E / 4,
    F / 5,
    G / 6,
    H / 7,
    I / 8,
    J / 9,
    K / 10,
    L / 11
);
