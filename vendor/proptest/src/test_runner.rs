//! Test-runner configuration.

/// Configuration for a `proptest!` block (API subset of
/// `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Config {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 64 }
    }
}
