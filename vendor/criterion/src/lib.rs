//! Offline in-tree stand-in for `criterion`.
//!
//! Keeps the workspace's benches compiling and runnable without
//! crates-io access. It is a *timer*, not a statistics engine: each
//! benchmark runs one warm-up plus a few timed iterations and prints
//! the mean wall-clock time. Benchmarks execute only when the binary is
//! invoked with `--bench` (which `cargo bench` passes), so `cargo test`
//! never pays for them.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

/// Opaque value barrier; forwards to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one parameterized benchmark.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A benchmark id `function_name/parameter`.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A benchmark id from the parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Runs one benchmark routine.
pub struct Bencher {
    iters: u32,
    last_mean_ns: f64,
}

impl Bencher {
    /// Times `routine`, keeping its output alive via [`black_box`].
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.last_mean_ns = start.elapsed().as_nanos() as f64 / f64::from(self.iters);
    }
}

/// The benchmark driver (API subset of `criterion::Criterion`).
pub struct Criterion {
    enabled: bool,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` invokes bench binaries with `--bench`; anything
        // else (notably `cargo test` building/running bench targets) gets
        // a no-op driver so the test suite stays fast.
        let enabled = std::env::args().any(|a| a == "--bench");
        Criterion {
            enabled,
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Benchmarks a single function.
    pub fn bench_function<N: Display, F: FnMut(&mut Bencher)>(&mut self, id: N, f: F) {
        let name = id.to_string();
        self.run_one(&name, f);
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        if !self.enabled {
            return;
        }
        // A handful of timed iterations; enough for a smoke signal
        // without criterion's statistical machinery.
        let iters = self.sample_size.clamp(1, 10) as u32;
        let mut b = Bencher {
            iters,
            last_mean_ns: 0.0,
        };
        f(&mut b);
        println!("bench {name:<48} {:>14.0} ns/iter", b.last_mean_ns);
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    /// Benchmarks a function within the group.
    pub fn bench_function<N: Display, F: FnMut(&mut Bencher)>(&mut self, id: N, f: F) {
        let name = format!("{}/{}", self.name, id);
        self.criterion.run_one(&name, f);
    }

    /// Benchmarks a function against one input value.
    pub fn bench_with_input<I: ?Sized, N: Display, F>(&mut self, id: N, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id);
        self.criterion.run_one(&name, |b| f(b, input));
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_without_bench_flag() {
        // Under `cargo test` there is no --bench argument, so routines
        // must not execute.
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| {});
            ran = true;
        });
        assert!(!ran);
    }

    #[test]
    fn ids_format_as_name_slash_param() {
        assert_eq!(BenchmarkId::new("agg", 4).to_string(), "agg/4");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
