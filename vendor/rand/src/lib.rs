//! Offline in-tree reimplementation of the subset of the `rand` 0.8 API
//! this workspace uses.
//!
//! The build must be hermetic (no crates-io access), so the workspace
//! vendors a small API-compatible stand-in instead of the real crate:
//! `rngs::StdRng` (xoshiro256++ seeded by SplitMix64), the `Rng` /
//! `RngCore` / `SeedableRng` traits, and `distributions::Standard`.
//! Streams are deterministic across platforms and independent of the
//! real `rand`'s internals — which is all the simulation relies on.

#![forbid(unsafe_code)]

pub mod distributions;
pub mod rngs;

pub use distributions::{Distribution, Standard};

/// Core random-number generation: a source of raw random words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` (expanded via SplitMix64).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut state).to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// High-level convenience methods over an [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Samples a value from the given distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }

    /// Iterator of samples from `distr`, consuming the generator.
    fn sample_iter<T, D>(self, distr: D) -> distributions::DistIter<D, Self, T>
    where
        D: Distribution<T>,
        Self: Sized,
    {
        distributions::DistIter::new(distr, self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-5i64..7);
            assert!((-5..7).contains(&v));
            let w: u32 = rng.gen_range(3u32..=9);
            assert!((3..=9).contains(&w));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_floats() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
