//! Standard generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: xoshiro256++.
///
/// Not the upstream `StdRng` algorithm (ChaCha12), but the workspace only
/// relies on determinism and stream quality, not on matching upstream
/// output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// The raw xoshiro256++ state, for checkpointing. Restoring via
    /// [`StdRng::from_state`] resumes the stream exactly.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a state captured with [`StdRng::state`].
    ///
    /// # Panics
    ///
    /// Panics on the all-zero state, which xoshiro cannot occupy and
    /// which therefore indicates a corrupt checkpoint.
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s != [0; 4], "all-zero xoshiro state");
        StdRng { s }
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // xoshiro must not start from the all-zero state.
        if s == [0; 4] {
            let mut sm = 0x9e3779b97f4a7c15u64;
            for w in &mut s {
                *w = crate::splitmix64(&mut sm);
            }
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_fixed_up() {
        let mut rng = StdRng::from_seed([0; 32]);
        assert_ne!(rng.next_u64(), 0);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
