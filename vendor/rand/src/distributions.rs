//! Distributions: `Standard` plus uniform range sampling.

use crate::RngCore;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A distribution of values of type `T`.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution of a type: uniform over all values for
/// integers, uniform in `[0, 1)` for floats.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Distribution<i128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i128 {
        let v: u128 = Standard.sample(rng);
        v as i128
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range usable with [`crate::Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let v = u128::from(rng.next_u64()) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128).wrapping_sub(start as i128) as u128 + 1;
                let v = u128::from(rng.next_u64()) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let f: f64 = Standard.sample(rng);
                self.start + (f as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let f: f64 = Standard.sample(rng);
                start + (f as $t) * (end - start)
            }
        }
    )*};
}
sample_range_float!(f32, f64);

/// Iterator of samples; returned by [`crate::Rng::sample_iter`].
#[derive(Debug)]
pub struct DistIter<D, R, T> {
    distr: D,
    rng: R,
    _marker: PhantomData<T>,
}

impl<D, R, T> DistIter<D, R, T> {
    pub(crate) fn new(distr: D, rng: R) -> Self {
        DistIter {
            distr,
            rng,
            _marker: PhantomData,
        }
    }
}

impl<D, R, T> Iterator for DistIter<D, R, T>
where
    D: Distribution<T>,
    R: RngCore,
{
    type Item = T;

    fn next(&mut self) -> Option<T> {
        Some(self.distr.sample(&mut self.rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn sample_iter_is_infinite_and_deterministic() {
        let a: Vec<u32> = StdRng::seed_from_u64(5)
            .sample_iter(Standard)
            .take(8)
            .collect();
        let b: Vec<u32> = StdRng::seed_from_u64(5)
            .sample_iter(Standard)
            .take(8)
            .collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
    }

    #[test]
    fn inclusive_range_hits_endpoints() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 3];
        for _ in 0..200 {
            let v: usize = rng.gen_range(0usize..=2);
            seen[v] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn negative_signed_ranges() {
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..500 {
            let v = rng.gen_range(-1_000_000i64..=1_000_000);
            assert!((-1_000_000..=1_000_000).contains(&v));
        }
    }
}
