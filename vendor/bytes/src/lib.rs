//! Offline in-tree stand-in for the `bytes` crate.
//!
//! Implements the subset the workspace uses: cheaply-cloneable immutable
//! [`Bytes`] (Arc-backed instead of the real crate's vtable scheme), a
//! growable [`BytesMut`], and the big-endian `put_*` writers of
//! [`BufMut`]. Semantics match the real crate for this subset; only the
//! zero-copy `from_static` optimization is approximated by a copy.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Cheaply cloneable, immutable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Buffer over static data (copied; the real crate borrows).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
        }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self[..] == **other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self[..].hash(state)
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            write!(f, "{}", std::ascii::escape_default(b))?;
        }
        write!(f, "\"")
    }
}

/// Growable byte buffer.
#[derive(Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            write!(f, "{}", std::ascii::escape_default(b))?;
        }
        write!(f, "\"")
    }
}

/// Big-endian append-style writer (API subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, n: u8) {
        self.put_slice(&[n]);
    }
    /// Appends one signed byte.
    fn put_i8(&mut self, n: i8) {
        self.put_slice(&[n as u8]);
    }
    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, n: u16) {
        self.put_slice(&n.to_be_bytes());
    }
    /// Appends a big-endian `i16`.
    fn put_i16(&mut self, n: i16) {
        self.put_slice(&n.to_be_bytes());
    }
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, n: u32) {
        self.put_slice(&n.to_be_bytes());
    }
    /// Appends a big-endian `i32`.
    fn put_i32(&mut self, n: i32) {
        self.put_slice(&n.to_be_bytes());
    }
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, n: u64) {
        self.put_slice(&n.to_be_bytes());
    }
    /// Appends a big-endian `i64`.
    fn put_i64(&mut self, n: i64) {
        self.put_slice(&n.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_is_big_endian() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u16(0x88f7);
        b.put_i64(-2);
        let frozen = b.freeze();
        assert_eq!(&frozen[..2], &[0x88, 0xf7]);
        assert_eq!(&frozen[2..], &(-2i64).to_be_bytes());
    }

    #[test]
    fn bytes_equality_and_clone() {
        let a = Bytes::copy_from_slice(b"abc");
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a, b"abc".to_vec());
        assert_eq!(a.len(), 3);
    }
}
