//! Offline in-tree stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Provides the poison-free `lock()` API shape the workspace relies on;
//! a poisoned std lock (a panic while held) is treated as recovered,
//! matching parking_lot's no-poisoning semantics.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Mutual exclusion primitive (API subset of `parking_lot::Mutex`).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => MutexGuard(g),
            Err(poisoned) => MutexGuard(poisoned.into_inner()),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Reader–writer lock (API subset of `parking_lot::RwLock`).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader–writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => RwLockReadGuard(g),
            Err(poisoned) => RwLockReadGuard(poisoned.into_inner()),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => RwLockWriteGuard(g),
            Err(poisoned) => RwLockWriteGuard(poisoned.into_inner()),
        }
    }
}

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(3);
        *m.lock() += 4;
        assert_eq!(*m.lock(), 7);
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(&*l.read(), &[1, 2]);
    }
}
