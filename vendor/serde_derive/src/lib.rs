//! No-op `Serialize`/`Deserialize` derives for the in-tree serde
//! stand-in. The traits are blanket-implemented in the `serde` facade,
//! so the derives only need to accept (and discard) the input — they
//! still validate that `#[serde(...)]` attributes parse as attributes.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
