//! Structured invariant-violation records.
//!
//! The runtime oracle (`tsn-oracle`) checks conformance invariants while
//! the simulation steps — FTA containment (paper §II), bound algebra
//! (§III-A3), `CLOCK_SYNCTIME` continuity (§III-B) — and reports
//! violations as structured records: simulation time, the invariant that
//! failed, the component it failed on, and the witness values that prove
//! it. The record type lives here so campaign tooling can surface
//! violations without depending on the oracle itself.

use serde::{Deserialize, Serialize};
use tsn_time::SimTime;

/// One invariant violation: where, what, and the witness that proves it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ViolationRecord {
    /// Simulation time at which the violation was detected.
    pub at: SimTime,
    /// Name of the violated invariant (e.g. `fta-containment`).
    pub invariant: String,
    /// The component the invariant failed on (e.g. `node2.aggregator`).
    pub component: String,
    /// Human-readable witness values (offsets, ranges, counts).
    pub witness: String,
}

impl std::fmt::Display for ViolationRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[t={}ns] {} violated at {}: {}",
            self.at.as_nanos(),
            self.invariant,
            self.component,
            self.witness
        )
    }
}

/// An append-only log of invariant violations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ViolationLog {
    records: Vec<ViolationRecord>,
}

impl ViolationLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a violation.
    pub fn record(
        &mut self,
        at: SimTime,
        invariant: impl Into<String>,
        component: impl Into<String>,
        witness: impl Into<String>,
    ) {
        self.records.push(ViolationRecord {
            at,
            invariant: invariant.into(),
            component: component.into(),
            witness: witness.into(),
        });
    }

    /// The recorded violations, in detection order.
    pub fn records(&self) -> &[ViolationRecord] {
        &self.records
    }

    /// Number of violations recorded.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when no violation was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Consumes the log, yielding the records.
    pub fn into_records(self) -> Vec<ViolationRecord> {
        self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_records_in_order() {
        let mut log = ViolationLog::new();
        assert!(log.is_empty());
        log.record(SimTime::from_secs(1), "a", "x", "w1");
        log.record(SimTime::from_secs(2), "b", "y", "w2");
        assert_eq!(log.len(), 2);
        assert_eq!(log.records()[0].invariant, "a");
        assert_eq!(log.records()[1].component, "y");
        let recs = log.into_records();
        assert_eq!(recs[1].witness, "w2");
    }

    #[test]
    fn display_includes_witness() {
        let rec = ViolationRecord {
            at: SimTime::from_nanos(42),
            invariant: "fta-containment".into(),
            component: "node0.aggregator".into(),
            witness: "offset=9 outside [1, 3]".into(),
        };
        let s = rec.to_string();
        assert!(s.contains("t=42ns"));
        assert!(s.contains("fta-containment"));
        assert!(s.contains("node0.aggregator"));
        assert!(s.contains("offset=9"));
    }
}
