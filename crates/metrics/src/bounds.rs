//! The upper bound on clock-synchronization precision (paper §III-A3).
//!
//! The paper instantiates the Kopetz–Ochsenreiter convergence function
//! for the fault-tolerant average:
//!
//! ```text
//! Π(N, f, E, Γ) = u(N, f) · (E + Γ),   u(N, f) = (N − 2f) / (N − 3f)
//! ```
//!
//! with reading error `E = d_max − d_min` (the spread of network path
//! delays between any two nodes) and drift offset `Γ = 2 · r_max · S`.
//! For N = 4 domains and f = 1 the factor is 2, giving the paper's
//! `Π = 2(E + Γ)`. The measurement error γ (Eq. 3.2) is the delay spread
//! over the *measurement* paths only.

use serde::{Deserialize, Serialize};
use tsn_time::{Nanos, Ppb};

/// Drift offset `Γ = 2 · r_max · S`.
///
/// With the literature's r_max = 5 ppm and the paper's S = 125 ms this is
/// 1.25 µs.
pub fn drift_offset(r_max_ppb: Ppb, sync_interval: Nanos) -> Nanos {
    let gamma = 2.0 * r_max_ppb * 1e-9 * sync_interval.as_nanos() as f64;
    Nanos::from_nanos(gamma.round() as i64)
}

/// The FTA convergence factor `u(N, f) = (N − 2f)/(N − 3f)`.
///
/// # Panics
///
/// Panics unless `N > 3f` (the FTA's Byzantine-tolerance requirement).
pub fn u_factor(n: usize, f: usize) -> f64 {
    assert!(n > 3 * f, "FTA requires N > 3f (got N={n}, f={f})");
    (n - 2 * f) as f64 / (n - 3 * f) as f64
}

/// The precision bound `Π(N, f, E, Γ)`.
pub fn precision_bound(n: usize, f: usize, reading_error: Nanos, drift_offset: Nanos) -> Nanos {
    let u = u_factor(n, f);
    Nanos::from_nanos(
        (u * (reading_error.as_nanos() + drift_offset.as_nanos()) as f64).round() as i64,
    )
}

/// The derived bounds of one experiment, as the paper reports them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundsReport {
    /// Minimum path delay between any two nodes (`d_min`).
    pub d_min: Nanos,
    /// Maximum path delay between any two nodes (`d_max`).
    pub d_max: Nanos,
    /// Reading error `E = d_max − d_min`.
    pub reading_error: Nanos,
    /// Drift offset `Γ`.
    pub drift_offset: Nanos,
    /// The precision bound `Π`.
    pub pi: Nanos,
    /// Measurement error `γ` (Eq. 3.2) over the measurement paths.
    pub gamma: Nanos,
}

impl BoundsReport {
    /// Derives the report from per-path delay bounds.
    ///
    /// `all_paths` are `(d_min, d_max)` bounds for every ordered node
    /// pair considered by `ptp4l`'s delay data; `measurement_paths` are
    /// the bounds for the probe paths from the measurement VM (Eq. 3.2).
    ///
    /// # Panics
    ///
    /// Panics if either path set is empty or `n ≤ 3f`.
    pub fn derive(
        n: usize,
        f: usize,
        r_max_ppb: Ppb,
        sync_interval: Nanos,
        all_paths: &[(Nanos, Nanos)],
        measurement_paths: &[(Nanos, Nanos)],
    ) -> BoundsReport {
        assert!(!all_paths.is_empty(), "need at least one path");
        assert!(
            !measurement_paths.is_empty(),
            "need at least one measurement path"
        );
        let d_min = all_paths.iter().map(|p| p.0).min().expect("nonempty");
        let d_max = all_paths.iter().map(|p| p.1).max().expect("nonempty");
        let reading_error = d_max - d_min;
        let gamma_max = measurement_paths
            .iter()
            .map(|p| p.1)
            .max()
            .expect("nonempty");
        let gamma_min = measurement_paths
            .iter()
            .map(|p| p.0)
            .min()
            .expect("nonempty");
        let gamma = gamma_max - gamma_min;
        let gam = drift_offset(r_max_ppb, sync_interval);
        BoundsReport {
            d_min,
            d_max,
            reading_error,
            drift_offset: gam,
            pi: precision_bound(n, f, reading_error, gam),
            gamma,
        }
    }

    /// The plotted threshold `Π + γ` (measured precision must stay
    /// below it; paper Eq. 3.3 rearranged).
    pub fn pi_plus_gamma(&self) -> Nanos {
        self.pi + self.gamma
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_drift_offset() {
        // Γ = 2 · 5 ppm · 125 ms = 1.25 µs.
        assert_eq!(
            drift_offset(5_000.0, Nanos::from_millis(125)),
            Nanos::from_nanos(1_250)
        );
    }

    #[test]
    fn paper_u_factor() {
        assert_eq!(u_factor(4, 1), 2.0);
        assert_eq!(u_factor(4, 0), 1.0);
        assert_eq!(u_factor(7, 2), 3.0);
    }

    #[test]
    #[should_panic(expected = "N > 3f")]
    fn u_factor_requires_byzantine_quorum() {
        u_factor(3, 1);
    }

    #[test]
    fn paper_experiment_one_bound() {
        // d_min = 4120 ns, d_max = 9188 ns → E = 5068 ns;
        // Π = 2(E + Γ) = 2(5068 + 1250) = 12636 ns = 12.636 µs.
        let e = Nanos::from_nanos(9_188) - Nanos::from_nanos(4_120);
        let gamma = drift_offset(5_000.0, Nanos::from_millis(125));
        let pi = precision_bound(4, 1, e, gamma);
        assert_eq!(pi, Nanos::from_nanos(12_636));
    }

    #[test]
    fn derive_report_from_paths() {
        let all = vec![
            (Nanos::from_nanos(4_120), Nanos::from_nanos(5_000)),
            (Nanos::from_nanos(6_000), Nanos::from_nanos(9_188)),
        ];
        let meas = vec![
            (Nanos::from_nanos(7_000), Nanos::from_nanos(7_800)),
            (Nanos::from_nanos(7_100), Nanos::from_nanos(8_313)),
        ];
        let r = BoundsReport::derive(4, 1, 5_000.0, Nanos::from_millis(125), &all, &meas);
        assert_eq!(r.d_min, Nanos::from_nanos(4_120));
        assert_eq!(r.d_max, Nanos::from_nanos(9_188));
        assert_eq!(r.reading_error, Nanos::from_nanos(5_068));
        assert_eq!(r.pi, Nanos::from_nanos(12_636));
        assert_eq!(r.gamma, Nanos::from_nanos(1_313));
        assert_eq!(r.pi_plus_gamma(), Nanos::from_nanos(13_949));
    }

    #[test]
    #[should_panic(expected = "at least one path")]
    fn empty_paths_rejected() {
        BoundsReport::derive(4, 1, 5_000.0, Nanos::from_millis(125), &[], &[]);
    }
}
