//! # tsn-metrics
//!
//! Precision measurement, analytical bounds, and figure rendering for the
//! `clocksync` reproduction of *IEEE 802.1AS Multi-Domain Aggregation for
//! Virtualized Distributed Real-Time Systems* (DSN-S 2023).
//!
//! * [`precision_of`] / [`PrecisionSeries`] — the measured precision
//!   Π*_s (Eq. 3.1) with the paper's 120 s window aggregation;
//! * [`BoundsReport`] — the Kopetz–Ochsenreiter bound Π(N,f,E,Γ) and the
//!   measurement error γ (Eq. 3.2);
//! * [`Histogram`] — the Fig. 4b distribution;
//! * [`EventLog`] — the Fig. 5 event annotations;
//! * [`render_series`] / [`render_histogram`] / CSV exports — figure
//!   regeneration output;
//! * [`SampleSummary`] — cross-run (per-seed) aggregate statistics for
//!   experiment campaigns.

//! # Example
//!
//! ```
//! use tsn_metrics::{drift_offset, precision_bound, u_factor};
//! use tsn_time::Nanos;
//!
//! // The paper's experiment-1 numbers.
//! let gamma = drift_offset(5_000.0, Nanos::from_millis(125));
//! let e = Nanos::from_nanos(5_068);
//! assert_eq!(u_factor(4, 1), 2.0);
//! assert_eq!(precision_bound(4, 1, e, gamma), Nanos::from_nanos(12_636));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bounds;
mod events;
mod histogram;
mod precision;
mod render;
mod sketch;
mod stability;
mod summary;
mod violations;

pub use bounds::{drift_offset, precision_bound, u_factor, BoundsReport};
pub use events::{EventLog, ExperimentEvent, TransientKind};
pub use histogram::Histogram;
pub use precision::{precision_of, PrecisionSample, PrecisionSeries, SeriesStats, WindowStat};
pub use render::{histogram_csv, render_histogram, render_series, series_csv};
pub use sketch::StreamingSummary;
pub use stability::TimeErrorSeries;
pub use summary::{nearest_rank, SampleSummary};
pub use violations::{ViolationLog, ViolationRecord};
