//! Text rendering of the paper's figures: log-scale ASCII time-series
//! plots, histogram bars, and CSV export for external plotting.

use crate::histogram::Histogram;
use crate::precision::WindowStat;
use std::fmt::Write as _;
use tsn_time::{Nanos, SimTime};

/// Renders an aggregated precision series as a log-scale ASCII plot with
/// horizontal bound lines, in the style of the paper's Fig. 3/4a.
///
/// `bounds` are `(label, value)` horizontal lines (e.g. `Π` and `Π + γ`).
pub fn render_series(
    windows: &[WindowStat],
    bounds: &[(&str, Nanos)],
    height: usize,
    width: usize,
) -> String {
    if windows.is_empty() {
        return String::from("(no data)\n");
    }
    let height = height.max(4);
    let width = width.max(20);
    // Log-scale y axis from 10^1 ns up to the data/bounds maximum.
    let data_max = windows
        .iter()
        .map(|w| w.max.as_nanos())
        .chain(bounds.iter().map(|(_, b)| b.as_nanos()))
        .max()
        .unwrap_or(1)
        .max(100) as f64;
    let log_min = 1.0f64; // 10 ns
    let log_max = data_max.log10() + 0.2;
    let row_of = |v: i64| -> usize {
        let lv = (v.max(1) as f64).log10().clamp(log_min, log_max);
        let frac = (lv - log_min) / (log_max - log_min);
        ((1.0 - frac) * (height - 1) as f64).round() as usize
    };
    let mut grid = vec![vec![' '; width]; height];
    // Bound lines first so data overwrites them.
    for (_, b) in bounds {
        let r = row_of(b.as_nanos());
        for cell in &mut grid[r] {
            *cell = '-';
        }
    }
    let t0 = windows[0].start.as_nanos() as f64;
    let t1 = windows[windows.len() - 1].start.as_nanos() as f64 + 1.0;
    for w in windows {
        let col =
            (((w.start.as_nanos() as f64 - t0) / (t1 - t0)) * (width - 1) as f64).round() as usize;
        let rmin = row_of(w.min.as_nanos());
        let rmax = row_of(w.max.as_nanos());
        for cell in grid.iter_mut().take(rmin + 1).skip(rmax) {
            if cell[col] == ' ' || cell[col] == '-' {
                cell[col] = ':';
            }
        }
        let ravg = row_of(w.avg.as_nanos());
        grid[ravg][col] = '#';
    }
    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        // y-axis tick: value at this row.
        let frac = 1.0 - r as f64 / (height - 1) as f64;
        let lv = log_min + frac * (log_max - log_min);
        let _ = write!(out, "{:>9} |", format_ns(10f64.powf(lv) as i64));
        out.extend(row.iter());
        out.push('\n');
    }
    let _ = writeln!(out, "{:>9} +{}", "", "-".repeat(width));
    let _ = writeln!(
        out,
        "{:>10} {}  →  {}   (# avg, : min..max)",
        "",
        SimTime::from_nanos(t0 as u64),
        SimTime::from_nanos((t1 - 1.0) as u64)
    );
    for (label, b) in bounds {
        let _ = writeln!(out, "{:>10} {} = {}", "", label, b);
    }
    out
}

/// Renders a histogram as horizontal ASCII bars (Fig. 4b style).
pub fn render_histogram(hist: &Histogram, max_bar: usize) -> String {
    let mut out = String::new();
    let peak = hist.counts().iter().copied().max().unwrap_or(1).max(1);
    for (i, &c) in hist.counts().iter().enumerate() {
        let bar = (c as usize * max_bar).div_ceil(peak as usize);
        let _ = writeln!(
            out,
            "{:>6}-{:<6} | {:<7} {}",
            hist.bin_start(i),
            hist.bin_start(i + 1),
            c,
            "#".repeat(bar)
        );
    }
    if hist.overflow > 0 {
        let _ = writeln!(out, "{:>13} | {:<7} (overflow)", ">", hist.overflow);
    }
    out
}

/// CSV export of an aggregated series: `start_s,avg_ns,min_ns,max_ns,count`.
pub fn series_csv(windows: &[WindowStat]) -> String {
    let mut out = String::from("start_s,avg_ns,min_ns,max_ns,count\n");
    for w in windows {
        let _ = writeln!(
            out,
            "{},{},{},{},{}",
            w.start.as_secs_f64(),
            w.avg.as_nanos(),
            w.min.as_nanos(),
            w.max.as_nanos(),
            w.count
        );
    }
    out
}

/// CSV export of a histogram: `bin_start_ns,count`.
pub fn histogram_csv(hist: &Histogram) -> String {
    let mut out = String::from("bin_start_ns,count\n");
    for (i, &c) in hist.counts().iter().enumerate() {
        let _ = writeln!(out, "{},{}", hist.bin_start(i), c);
    }
    let _ = writeln!(out, "overflow,{}", hist.overflow);
    out
}

fn format_ns(v: i64) -> String {
    if v >= 1_000_000_000 {
        format!("{:.0}s", v as f64 / 1e9)
    } else if v >= 1_000_000 {
        format!("{:.0}ms", v as f64 / 1e6)
    } else if v >= 1_000 {
        format!("{:.0}us", v as f64 / 1e3)
    } else {
        format!("{v}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn windows() -> Vec<WindowStat> {
        (0..10)
            .map(|i| WindowStat {
                start: SimTime::from_secs(i * 120),
                avg: Nanos::from_nanos(300 + i as i64 * 10),
                min: Nanos::from_nanos(50),
                max: Nanos::from_nanos(2_000),
                count: 120,
            })
            .collect()
    }

    #[test]
    fn series_plot_contains_data_and_bounds() {
        let plot = render_series(
            &windows(),
            &[
                ("Pi", Nanos::from_micros(11)),
                ("Pi+gamma", Nanos::from_nanos(12_280)),
            ],
            12,
            60,
        );
        assert!(plot.contains('#'), "average markers missing");
        assert!(plot.contains('-'), "bound lines missing");
        assert!(plot.contains("Pi = 11.000us"));
    }

    #[test]
    fn empty_series_handled() {
        assert_eq!(render_series(&[], &[], 10, 40), "(no data)\n");
    }

    #[test]
    fn csv_roundtrip_shape() {
        let csv = series_csv(&windows());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 11);
        assert_eq!(lines[0], "start_s,avg_ns,min_ns,max_ns,count");
        assert!(lines[1].starts_with("0,300,50,2000,120"));
    }

    #[test]
    fn histogram_rendering() {
        let mut h = Histogram::new(100, 5);
        for v in [10, 20, 150, 10_080] {
            h.record(Nanos::from_nanos(v));
        }
        let txt = render_histogram(&h, 30);
        assert!(txt.contains("overflow"));
        assert!(txt.lines().count() >= 5);
        let csv = histogram_csv(&h);
        assert!(csv.contains("0,2"));
        assert!(csv.contains("overflow,1"));
    }
}
