//! Histograms of measured precision (paper Fig. 4b).

use serde::{Deserialize, Serialize};
use tsn_time::Nanos;

/// A fixed-bin-width histogram over non-negative nanosecond values.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    bin_width: u64,
    counts: Vec<u64>,
    /// Values above the last bin (the paper's Fig. 4b x-axis stops at
    /// 1000 ns while the maximum was 10 080 ns).
    pub overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` bins of `bin_width` nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width` is zero or `bins` is zero.
    pub fn new(bin_width: u64, bins: usize) -> Self {
        assert!(bin_width > 0, "bin width must be positive");
        assert!(bins > 0, "need at least one bin");
        Histogram {
            bin_width,
            counts: vec![0; bins],
            overflow: 0,
            total: 0,
        }
    }

    /// Records a value (negative values clamp to bin 0).
    pub fn record(&mut self, value: Nanos) {
        let v = value.as_nanos().max(0) as u64;
        let idx = (v / self.bin_width) as usize;
        if idx < self.counts.len() {
            self.counts[idx] += 1;
        } else {
            self.overflow += 1;
        }
        self.total += 1;
    }

    /// The bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The bin width in nanoseconds.
    pub fn bin_width(&self) -> u64 {
        self.bin_width
    }

    /// Total recorded values (including overflow).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The inclusive lower edge of bin `i`.
    pub fn bin_start(&self, i: usize) -> u64 {
        i as u64 * self.bin_width
    }

    /// Index of the fullest bin.
    pub fn mode_bin(&self) -> usize {
        self.counts
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| **c)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_bins() {
        let mut h = Histogram::new(100, 10);
        h.record(Nanos::from_nanos(0));
        h.record(Nanos::from_nanos(99));
        h.record(Nanos::from_nanos(100));
        h.record(Nanos::from_nanos(950));
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.counts()[1], 1);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn overflow_counted() {
        let mut h = Histogram::new(100, 10);
        h.record(Nanos::from_nanos(10_080));
        assert_eq!(h.overflow, 1);
        assert_eq!(h.total(), 1);
        assert_eq!(h.counts().iter().sum::<u64>(), 0);
    }

    #[test]
    fn negative_values_clamp_to_first_bin() {
        let mut h = Histogram::new(100, 10);
        h.record(Nanos::from_nanos(-5));
        assert_eq!(h.counts()[0], 1);
    }

    #[test]
    fn mode_bin_found() {
        let mut h = Histogram::new(50, 20);
        for v in [322, 310, 330, 900] {
            h.record(Nanos::from_nanos(v));
        }
        assert_eq!(h.mode_bin(), 6); // 300..350
        assert_eq!(h.bin_start(6), 300);
    }

    #[test]
    #[should_panic(expected = "bin width must be positive")]
    fn zero_bin_width_rejected() {
        Histogram::new(0, 10);
    }
}
