//! Clock-stability analysis: Allan deviation and MTIE.
//!
//! The paper evaluates *precision* (the instantaneous spread, Eq. 3.1);
//! the clock-synchronization literature it builds on (Ridoux & Veitch's
//! RADclock work cited in §III-C) additionally characterizes clocks by
//! their *stability*:
//!
//! * **Allan deviation** σ_y(τ) — the canonical measure of frequency
//!   stability over an averaging interval τ;
//! * **MTIE** — the maximum time interval error: the worst peak-to-peak
//!   wander of the time error within any observation window of a given
//!   length, the metric telecom standards (G.8260 et al.) bound.
//!
//! Both operate on a uniformly-sampled time-error series `x(t)` (e.g. a
//! clock's offset from true time, or from another clock).

/// A uniformly sampled time-error series: `tau0` seconds between
/// consecutive samples of `x` (time error in nanoseconds).
#[derive(Debug, Clone)]
pub struct TimeErrorSeries {
    /// Sampling interval in seconds.
    pub tau0: f64,
    /// Time-error samples in nanoseconds.
    pub x: Vec<f64>,
}

impl TimeErrorSeries {
    /// Creates a series from nanosecond samples at `tau0` second spacing.
    ///
    /// # Panics
    ///
    /// Panics if `tau0` is not positive.
    pub fn new(tau0: f64, x: Vec<f64>) -> Self {
        assert!(tau0 > 0.0, "sampling interval must be positive");
        TimeErrorSeries { tau0, x }
    }

    /// Overlapping Allan deviation at `m · tau0` averaging time.
    ///
    /// Returns `None` when the series is too short (needs `2m + 1`
    /// samples).
    pub fn allan_deviation(&self, m: usize) -> Option<f64> {
        let n = self.x.len();
        if m == 0 || n < 2 * m + 1 {
            return None;
        }
        let tau = self.tau0 * m as f64;
        let mut acc = 0.0;
        let terms = n - 2 * m;
        for i in 0..terms {
            let d = self.x[i + 2 * m] - 2.0 * self.x[i + m] + self.x[i];
            acc += d * d;
        }
        // x is in ns, tau in s: convert to dimensionless fractional
        // frequency (ns → s).
        let avar = acc / (2.0 * terms as f64 * tau * tau) * 1e-18;
        Some(avar.sqrt())
    }

    /// MTIE for an observation window of `m` sampling intervals: the
    /// largest peak-to-peak excursion of `x` within any window of that
    /// length.
    ///
    /// Returns `None` when the series is shorter than the window.
    pub fn mtie(&self, m: usize) -> Option<f64> {
        let n = self.x.len();
        if m == 0 || n < m + 1 {
            return None;
        }
        let mut worst = 0.0f64;
        // O(n·m) sliding min/max is fine at the sizes we analyze.
        for start in 0..=(n - m - 1) {
            let w = &self.x[start..=start + m];
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &v in w {
                lo = lo.min(v);
                hi = hi.max(v);
            }
            worst = worst.max(hi - lo);
        }
        Some(worst)
    }

    /// Convenience: ADEV over a log-spaced set of averaging times,
    /// returned as `(tau_seconds, adev)` pairs.
    pub fn adev_curve(&self, points: usize) -> Vec<(f64, f64)> {
        let max_m = self.x.len().saturating_sub(1) / 2;
        if max_m == 0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut last_m = 0usize;
        for k in 0..points {
            let frac = k as f64 / (points.max(2) - 1) as f64;
            let m = ((max_m as f64).powf(frac)).round().max(1.0) as usize;
            if m == last_m {
                continue;
            }
            last_m = m;
            if let Some(adev) = self.allan_deviation(m) {
                out.push((self.tau0 * m as f64, adev));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A clock with pure frequency offset y0 has x(t) = y0·t and
    /// σ_y(τ) → 0 (the second difference of a linear ramp vanishes).
    #[test]
    fn adev_of_pure_frequency_offset_is_zero() {
        let y0_ppm = 5.0;
        let x: Vec<f64> = (0..1000).map(|i| y0_ppm * 1e3 * i as f64).collect(); // ns at 1 s
        let s = TimeErrorSeries::new(1.0, x);
        for m in [1usize, 5, 50] {
            let adev = s.allan_deviation(m).unwrap();
            assert!(adev < 1e-12, "adev {adev} at m = {m}");
        }
    }

    /// White phase noise of std σ_x gives σ_y(τ) = √3 · σ_x / τ.
    #[test]
    fn adev_of_white_phase_noise_matches_theory() {
        // Deterministic pseudo-noise.
        let mut state = 0x12345678u64;
        let mut rand = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 30) as f64) - 1.0
        };
        let sigma_ns = 10.0;
        let x: Vec<f64> = (0..20000).map(|_| rand() * sigma_ns * 1.732).collect();
        let s = TimeErrorSeries::new(1.0, x);
        let adev = s.allan_deviation(1).unwrap();
        let expected = (3.0f64).sqrt() * sigma_ns * 1e-9; // τ = 1 s
        assert!(
            (adev / expected - 1.0).abs() < 0.1,
            "adev {adev:e} vs expected {expected:e}"
        );
    }

    /// ADEV decreases with τ for white phase noise (slope −1).
    #[test]
    fn adev_slope_for_white_phase_noise() {
        let mut state = 7u64;
        let mut rand = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 30) as f64) - 1.0
        };
        let x: Vec<f64> = (0..50000).map(|_| rand() * 10.0).collect();
        let s = TimeErrorSeries::new(1.0, x);
        let a1 = s.allan_deviation(1).unwrap();
        let a10 = s.allan_deviation(10).unwrap();
        let ratio = a1 / a10;
        assert!((5.0..20.0).contains(&ratio), "slope ratio {ratio}");
    }

    #[test]
    fn mtie_of_ramp_is_window_span() {
        // 100 ns/s ramp: any m-interval window spans exactly 100·m ns.
        let x: Vec<f64> = (0..100).map(|i| 100.0 * i as f64).collect();
        let s = TimeErrorSeries::new(1.0, x);
        assert_eq!(s.mtie(10), Some(1000.0));
        assert_eq!(s.mtie(1), Some(100.0));
    }

    #[test]
    fn mtie_catches_a_single_spike() {
        let mut x = vec![0.0; 200];
        x[77] = 5_000.0;
        let s = TimeErrorSeries::new(1.0, x);
        assert_eq!(s.mtie(10), Some(5_000.0));
    }

    #[test]
    fn short_series_yield_none() {
        let s = TimeErrorSeries::new(1.0, vec![1.0, 2.0]);
        assert_eq!(s.allan_deviation(1), None);
        assert_eq!(s.mtie(5), None);
        assert_eq!(s.allan_deviation(0), None);
        assert_eq!(s.mtie(0), None);
    }

    #[test]
    fn adev_curve_is_log_spaced_and_finite() {
        let x: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.37).sin() * 20.0).collect();
        let s = TimeErrorSeries::new(1.0, x);
        let curve = s.adev_curve(10);
        assert!(curve.len() >= 5);
        for w in curve.windows(2) {
            assert!(w[1].0 > w[0].0, "taus increase");
        }
        assert!(curve.iter().all(|(_, a)| a.is_finite()));
    }

    #[test]
    #[should_panic(expected = "sampling interval must be positive")]
    fn zero_tau_rejected() {
        TimeErrorSeries::new(0.0, vec![]);
    }
}
