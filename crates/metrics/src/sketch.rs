//! Bounded-memory streaming summarization.
//!
//! [`SampleSummary::from_values`] needs the whole sample in memory to
//! sort it for the nearest-rank quantiles — fine for cross-seed
//! aggregates (a handful of runs per group), hostile to fleet-scale
//! campaigns where one group can hold 10⁵⁺ records. [`StreamingSummary`]
//! accepts values one at a time and holds memory bounded by a fixed
//! cap:
//!
//! * **Exact mode** — up to [`StreamingSummary::EXACT_CAP`] values are
//!   buffered verbatim and finalized through
//!   [`SampleSummary::from_values`], so every campaign small enough to
//!   have fit the old in-memory path produces *byte-identical*
//!   summaries (same moments, same nearest-rank quantiles, same
//!   accumulation order — committed golden fixtures keep their hashes).
//! * **Sketch mode** — past the cap the buffered values are folded into
//!   a logarithmic-bucket histogram (HDR-style: ~0.8 % relative error
//!   per bucket, split by sign, exact zero bucket) plus exact running
//!   moments (count/sum/sum-of-squares/min/max). Quantiles come from
//!   the bucket midpoints; min/max/mean/std stay exact. The fold is
//!   order-independent, so 1-thread and N-thread campaign enumerations
//!   summarize identically.
//!
//! Non-finite values are filtered at `push`, mirroring `from_values`.

use crate::summary::SampleSummary;
use std::collections::BTreeMap;

/// Buckets per power of two in sketch mode (2⁷ sub-buckets ≈ 0.8 %
/// worst-case relative error on reconstructed quantiles).
const SUBBUCKET_BITS: u32 = 7;

/// An online [`SampleSummary`] builder with bounded memory.
#[derive(Debug, Clone, Default)]
pub struct StreamingSummary {
    /// Exact-mode buffer (first [`StreamingSummary::EXACT_CAP`] values).
    exact: Vec<f64>,
    /// Sketch-mode buckets: key → count. Empty while exact.
    buckets: BTreeMap<i64, u64>,
    /// Running count of finite values (both modes).
    count: usize,
    /// Running sum (same left-to-right accumulation order as
    /// `from_values`' `iter().sum()` for the exact prefix).
    sum: f64,
    /// Running sum of squares (sketch-mode std via E[x²] − E[x]²).
    sum_sq: f64,
    /// Exact minimum.
    min: f64,
    /// Exact maximum.
    max: f64,
}

impl StreamingSummary {
    /// Values buffered exactly before degrading to the sketch. Sized so
    /// every pre-fleet campaign (≤ thousands of runs per group) stays
    /// on the byte-identical exact path.
    pub const EXACT_CAP: usize = 4096;

    /// An empty summarizer.
    pub fn new() -> StreamingSummary {
        StreamingSummary::default()
    }

    /// Number of finite values pushed so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Whether the summarizer degraded to the logarithmic sketch.
    pub fn is_sketching(&self) -> bool {
        !self.buckets.is_empty()
    }

    /// Pushes one value. Non-finite values are dropped (the same
    /// filtering [`SampleSummary::from_values`] applies).
    pub fn push(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        self.sum_sq += v * v;
        if self.is_sketching() {
            *self.buckets.entry(bucket_key(v)).or_insert(0) += 1;
        } else {
            self.exact.push(v);
            if self.exact.len() > Self::EXACT_CAP {
                // Degrade: fold the buffer into buckets and drop it.
                for &x in &self.exact {
                    *self.buckets.entry(bucket_key(x)).or_insert(0) += 1;
                }
                self.exact = Vec::new();
            }
        }
    }

    /// Finalizes into a [`SampleSummary`]; `None` when no finite value
    /// was pushed. Exact mode returns precisely what
    /// [`SampleSummary::from_values`] would for the same sequence.
    pub fn finalize(&self) -> Option<SampleSummary> {
        if self.count == 0 {
            return None;
        }
        if !self.is_sketching() {
            return SampleSummary::from_values(&self.exact);
        }
        let n = self.count as f64;
        let mean = self.sum / n;
        let var = (self.sum_sq / n - mean * mean).max(0.0);
        Some(SampleSummary {
            count: self.count,
            mean,
            std: var.sqrt(),
            min: self.min,
            max: self.max,
            p50: self.sketch_quantile(0.50),
            p95: self.sketch_quantile(0.95),
            p99: self.sketch_quantile(0.99),
        })
    }

    /// Nearest-rank quantile from the bucket histogram: walk buckets in
    /// ascending value order until the rank is covered, then report the
    /// bucket's representative midpoint clamped into `[min, max]`.
    fn sketch_quantile(&self, q: f64) -> f64 {
        let rank = ((q * self.count as f64).ceil() as u64)
            .max(1)
            .min(self.count as u64);
        let mut seen = 0u64;
        for (&key, &cnt) in &self.buckets {
            seen += cnt;
            if seen >= rank {
                return bucket_midpoint(key).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// Maps a finite value to its logarithmic bucket key. Keys order the
/// same way the values do (negative < zero < positive), so a `BTreeMap`
/// walk visits buckets in ascending value order.
fn bucket_key(v: f64) -> i64 {
    if v == 0.0 {
        return 0;
    }
    let magnitude = v.abs();
    // Exponent-scaled index: floor(log2 · 2^SUBBUCKET_BITS) over the
    // f64 bit pattern — monotone in |v|, no transcendental calls.
    let bits = magnitude.to_bits();
    let idx = (bits >> (52 - SUBBUCKET_BITS)) as i64; // sign bit is 0
    if v > 0.0 {
        idx + 1
    } else {
        -(idx + 1)
    }
}

/// The representative value of a bucket: the geometric center of the
/// bucket's value range (midpoint of the truncated mantissa interval).
fn bucket_midpoint(key: i64) -> f64 {
    if key == 0 {
        return 0.0;
    }
    let idx = (key.abs() - 1) as u64;
    let low_bits = idx << (52 - SUBBUCKET_BITS);
    let half_step = 1u64 << (52 - SUBBUCKET_BITS - 1);
    let mid = f64::from_bits(low_bits + half_step);
    if key > 0 {
        mid
    } else {
        -mid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_mode_matches_from_values_bit_for_bit() {
        let values: Vec<f64> = (0..1000)
            .map(|i| ((i * 37) % 991) as f64 * 1.5 - 200.0)
            .collect();
        let mut s = StreamingSummary::new();
        for &v in &values {
            s.push(v);
        }
        assert!(!s.is_sketching());
        let a = s.finalize().unwrap();
        let b = SampleSummary::from_values(&values).unwrap();
        assert_eq!(a, b, "exact mode must be indistinguishable");
    }

    #[test]
    fn non_finite_values_are_filtered_like_from_values() {
        let mut s = StreamingSummary::new();
        for v in [1.0, f64::NAN, 3.0, f64::INFINITY, f64::NEG_INFINITY] {
            s.push(v);
        }
        let a = s.finalize().unwrap();
        assert_eq!(a.count, 2);
        assert_eq!(a.mean, 2.0);
        let mut empty = StreamingSummary::new();
        empty.push(f64::NAN);
        assert!(empty.finalize().is_none());
        assert!(StreamingSummary::new().finalize().is_none());
    }

    #[test]
    fn sketch_mode_bounds_memory_and_stays_close() {
        let n = 200_000usize;
        let mut s = StreamingSummary::new();
        for i in 0..n {
            // A deterministic spread over ~3 decades with both signs.
            let v = (((i * 2654435761) % 100_000) as f64) - 20_000.0;
            s.push(v);
        }
        assert!(s.is_sketching());
        assert!(
            s.buckets.len() < 8192,
            "bucket count must stay bounded, got {}",
            s.buckets.len()
        );
        let got = s.finalize().unwrap();
        assert_eq!(got.count, n);
        // Moments and extremes are exact.
        assert_eq!(got.min, -20_000.0);
        assert_eq!(got.max, 79_999.0);
        assert!((got.mean - 29_999.5).abs() < 1.0);
        // Quantiles are sketched: within the ~0.8 % bucket error.
        let p50_exact = 30_000.0;
        assert!(
            (got.p50 - p50_exact).abs() / p50_exact < 0.01,
            "p50 {} vs exact {p50_exact}",
            got.p50
        );
        let p95_exact = 75_000.0;
        assert!((got.p95 - p95_exact).abs() / p95_exact < 0.01);
    }

    #[test]
    fn sketch_fold_is_order_independent() {
        let values: Vec<f64> = (0..(StreamingSummary::EXACT_CAP * 2))
            .map(|i| ((i * 48271) % 65_536) as f64 / 7.0)
            .collect();
        let mut fwd = StreamingSummary::new();
        for &v in &values {
            fwd.push(v);
        }
        let mut rev = StreamingSummary::new();
        for &v in values.iter().rev() {
            rev.push(v);
        }
        let a = fwd.finalize().unwrap();
        let b = rev.finalize().unwrap();
        assert_eq!(a.count, b.count);
        assert_eq!(a.min, b.min);
        assert_eq!(a.max, b.max);
        assert_eq!(a.p50, b.p50);
        assert_eq!(a.p95, b.p95);
        assert_eq!(a.p99, b.p99);
        assert!((a.mean - b.mean).abs() < 1e-9 * a.mean.abs().max(1.0));
    }

    #[test]
    fn bucket_key_orders_like_values() {
        let samples = [
            -1e9, -5.0, -1.0, -1e-6, 0.0, 1e-6, 0.5, 1.0, 1.004, 2.0, 1e9,
        ];
        for w in samples.windows(2) {
            assert!(
                bucket_key(w[0]) <= bucket_key(w[1]),
                "keys must be monotone: {} vs {}",
                w[0],
                w[1]
            );
        }
        // The midpoint lands inside the bucket's value range.
        for v in [0.37, 1.0, 123.456, 9.9e7] {
            let mid = bucket_midpoint(bucket_key(v));
            assert!((mid - v).abs() / v < 0.01, "midpoint {mid} far from {v}");
        }
    }
}
