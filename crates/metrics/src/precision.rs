//! Clock-synchronization precision measurement (paper §III-A2).
//!
//! A dedicated measurement VM multicasts a probe every second; each
//! receiving clock-synchronization VM timestamps the reception with its
//! node's `CLOCK_SYNCTIME` and returns the timestamp. The measured
//! precision of interval `s` is the largest pairwise difference
//!
//! ```text
//! Π*_s = max_{c,c'} |tn_c(rx_ps) − tn_c'(rx_ps)|          (Eq. 3.1)
//! ```
//!
//! Receivers reached over asymmetric paths are excluded (the paper omits
//! the VM co-located with the measurement VM) so the measurement error γ
//! stays small.

use serde::{Deserialize, Serialize};
use tsn_time::{ClockTime, Nanos, SimTime};

/// Computes Eq. 3.1 over one probe's receiver timestamps.
///
/// Returns `None` when fewer than two receivers replied.
pub fn precision_of(readings: &[ClockTime]) -> Option<Nanos> {
    if readings.len() < 2 {
        return None;
    }
    let min = readings.iter().min()?;
    let max = readings.iter().max()?;
    Some(*max - *min)
}

/// One precision measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrecisionSample {
    /// True time of the probe (series x-axis).
    pub at: SimTime,
    /// Measured precision Π*_s.
    pub value: Nanos,
    /// Number of receivers that replied.
    pub receivers: usize,
}

/// The measured precision time series of one experiment.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PrecisionSeries {
    samples: Vec<PrecisionSample>,
}

/// Aggregate of one fixed-length window (the paper plots 120 s windows).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowStat {
    /// Window start time.
    pub start: SimTime,
    /// Average of the window's samples.
    pub avg: Nanos,
    /// Minimum sample.
    pub min: Nanos,
    /// Maximum sample.
    pub max: Nanos,
    /// Number of samples in the window.
    pub count: usize,
}

/// Moments of a series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeriesStats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Standard deviation (population).
    pub std: f64,
    /// Minimum.
    pub min: Nanos,
    /// Maximum.
    pub max: Nanos,
    /// Sample count.
    pub count: usize,
}

impl PrecisionSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if samples are pushed out of time order.
    pub fn push(&mut self, sample: PrecisionSample) {
        if let Some(last) = self.samples.last() {
            assert!(sample.at >= last.at, "samples must be time-ordered");
        }
        self.samples.push(sample);
    }

    /// The raw samples.
    pub fn samples(&self) -> &[PrecisionSample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The largest sample, if any.
    pub fn max(&self) -> Option<PrecisionSample> {
        self.samples.iter().max_by_key(|s| s.value).copied()
    }

    /// Fraction of samples with `value ≤ bound`.
    pub fn fraction_within(&self, bound: Nanos) -> f64 {
        if self.samples.is_empty() {
            return 1.0;
        }
        let ok = self.samples.iter().filter(|s| s.value <= bound).count();
        ok as f64 / self.samples.len() as f64
    }

    /// Sub-series restricted to `[from, to)`.
    pub fn window(&self, from: SimTime, to: SimTime) -> PrecisionSeries {
        PrecisionSeries {
            samples: self
                .samples
                .iter()
                .filter(|s| s.at >= from && s.at < to)
                .copied()
                .collect(),
        }
    }

    /// Aggregates the series into fixed-length windows (the paper's
    /// Fig. 4a uses 120 s windows with avg/min/max).
    ///
    /// # Panics
    ///
    /// Panics if `window` is not positive.
    pub fn aggregate(&self, window: Nanos) -> Vec<WindowStat> {
        assert!(window.as_nanos() > 0, "window must be positive");
        let w = window.as_nanos() as u64;
        let mut out: Vec<WindowStat> = Vec::new();
        for s in &self.samples {
            let start = SimTime::from_nanos(s.at.as_nanos() / w * w);
            match out.last_mut() {
                Some(stat) if stat.start == start => {
                    let n = stat.count as i64;
                    // Running average without overflow.
                    let avg = (stat.avg * n + s.value) / (n + 1);
                    stat.avg = avg;
                    stat.min = stat.min.min(s.value);
                    stat.max = stat.max.max(s.value);
                    stat.count += 1;
                }
                _ => out.push(WindowStat {
                    start,
                    avg: s.value,
                    min: s.value,
                    max: s.value,
                    count: 1,
                }),
            }
        }
        out
    }

    /// The `q`-quantile of the series (0 ≤ q ≤ 1, nearest-rank).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<Nanos> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.samples.is_empty() {
            return None;
        }
        let mut values: Vec<Nanos> = self.samples.iter().map(|s| s.value).collect();
        values.sort_unstable();
        let idx = ((q * values.len() as f64).ceil() as usize)
            .saturating_sub(1)
            .min(values.len() - 1);
        Some(values[idx])
    }

    /// Moments of the series.
    pub fn stats(&self) -> Option<SeriesStats> {
        if self.samples.is_empty() {
            return None;
        }
        let n = self.samples.len() as f64;
        let mean = self
            .samples
            .iter()
            .map(|s| s.value.as_nanos() as f64)
            .sum::<f64>()
            / n;
        let var = self
            .samples
            .iter()
            .map(|s| (s.value.as_nanos() as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        Some(SeriesStats {
            mean,
            std: var.sqrt(),
            min: self
                .samples
                .iter()
                .map(|s| s.value)
                .min()
                .expect("nonempty"),
            max: self
                .samples
                .iter()
                .map(|s| s.value)
                .max()
                .expect("nonempty"),
            count: self.samples.len(),
        })
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_series() -> impl Strategy<Value = PrecisionSeries> {
        proptest::collection::vec((0u64..100_000, 0i64..1_000_000), 0..200).prop_map(|mut v| {
            v.sort_by_key(|(t, _)| *t);
            let mut s = PrecisionSeries::new();
            for (t, val) in v {
                s.push(PrecisionSample {
                    at: SimTime::from_nanos(t * 1_000_000_000),
                    value: Nanos::from_nanos(val),
                    receivers: 6,
                });
            }
            s
        })
    }

    proptest! {
        /// Window aggregation conserves the sample count and brackets
        /// every window's average between its min and max.
        #[test]
        fn aggregation_conserves_and_brackets(series in arb_series(), window_s in 1i64..600) {
            let windows = series.aggregate(Nanos::from_secs(window_s));
            let total: usize = windows.iter().map(|w| w.count).sum();
            prop_assert_eq!(total, series.len());
            for w in &windows {
                prop_assert!(w.min <= w.avg && w.avg <= w.max);
            }
            // Windows are strictly increasing in start time.
            for pair in windows.windows(2) {
                prop_assert!(pair[0].start < pair[1].start);
            }
        }

        /// Stats bracket: min ≤ mean ≤ max, and fraction_within is
        /// monotone in the bound.
        #[test]
        fn stats_consistent(series in arb_series(), bound in 0i64..1_000_000) {
            if let Some(stats) = series.stats() {
                prop_assert!(stats.min.as_nanos() as f64 <= stats.mean + 1e-9);
                prop_assert!(stats.mean <= stats.max.as_nanos() as f64 + 1e-9);
                let f1 = series.fraction_within(Nanos::from_nanos(bound));
                let f2 = series.fraction_within(Nanos::from_nanos(bound * 2));
                prop_assert!(f2 >= f1);
            }
        }

        /// `precision_of` equals max minus min and is permutation
        /// invariant.
        #[test]
        fn precision_of_properties(mut readings in proptest::collection::vec(-1_000_000i64..1_000_000, 2..20)) {
            let ct: Vec<ClockTime> = readings.iter().map(|&r| ClockTime::from_nanos(r)).collect();
            let p = precision_of(&ct).unwrap();
            readings.sort_unstable();
            prop_assert_eq!(p.as_nanos(), readings[readings.len() - 1] - readings[0]);
            prop_assert!(p >= Nanos::ZERO);
        }
    }
}

use tsn_snapshot::{Reader, Snap, SnapError, SnapState, Writer};

impl Snap for PrecisionSample {
    fn put(&self, w: &mut Writer) {
        self.at.put(w);
        self.value.put(w);
        self.receivers.put(w);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(PrecisionSample {
            at: Snap::get(r)?,
            value: Snap::get(r)?,
            receivers: Snap::get(r)?,
        })
    }
}

impl SnapState for PrecisionSeries {
    fn save_state(&self, w: &mut Writer) {
        self.samples.put(w);
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        let samples: Vec<PrecisionSample> = Snap::get(r)?;
        if samples.windows(2).any(|p| p[0].at > p[1].at) {
            return Err(SnapError::Malformed("precision series out of time order"));
        }
        self.samples = samples;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(at_s: u64, ns: i64) -> PrecisionSample {
        PrecisionSample {
            at: SimTime::from_secs(at_s),
            value: Nanos::from_nanos(ns),
            receivers: 6,
        }
    }

    #[test]
    fn precision_is_max_pairwise_spread() {
        let readings = vec![
            ClockTime::from_nanos(1_000),
            ClockTime::from_nanos(1_322),
            ClockTime::from_nanos(980),
        ];
        assert_eq!(precision_of(&readings), Some(Nanos::from_nanos(342)));
    }

    #[test]
    fn single_reading_has_no_precision() {
        assert_eq!(precision_of(&[ClockTime::ZERO]), None);
        assert_eq!(precision_of(&[]), None);
    }

    #[test]
    fn aggregate_windows_avg_min_max() {
        let mut series = PrecisionSeries::new();
        for (t, v) in [(0, 100), (60, 300), (120, 50), (180, 150)] {
            series.push(sample(t, v));
        }
        let windows = series.aggregate(Nanos::from_secs(120));
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].avg, Nanos::from_nanos(200));
        assert_eq!(windows[0].min, Nanos::from_nanos(100));
        assert_eq!(windows[0].max, Nanos::from_nanos(300));
        assert_eq!(windows[0].count, 2);
        assert_eq!(windows[1].start, SimTime::from_secs(120));
    }

    #[test]
    fn stats_match_hand_computation() {
        let mut series = PrecisionSeries::new();
        for (t, v) in [(0, 100), (1, 200), (2, 300)] {
            series.push(sample(t, v));
        }
        let stats = series.stats().unwrap();
        assert_eq!(stats.mean, 200.0);
        assert!((stats.std - (20000.0f64 / 3.0).sqrt()).abs() < 1e-9);
        assert_eq!(stats.min, Nanos::from_nanos(100));
        assert_eq!(stats.max, Nanos::from_nanos(300));
    }

    #[test]
    fn fraction_within_bound() {
        let mut series = PrecisionSeries::new();
        for (t, v) in [(0, 100), (1, 200), (2, 30_000)] {
            series.push(sample(t, v));
        }
        let f = series.fraction_within(Nanos::from_micros(12));
        assert!((f - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn window_filters_by_time() {
        let mut series = PrecisionSeries::new();
        for t in 0..10 {
            series.push(sample(t, 1));
        }
        let w = series.window(SimTime::from_secs(3), SimTime::from_secs(6));
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let mut series = PrecisionSeries::new();
        for (t, v) in (0..100u64).map(|i| (i, (i as i64 + 1) * 10)) {
            series.push(sample(t, v));
        }
        assert_eq!(series.quantile(0.5), Some(Nanos::from_nanos(500)));
        assert_eq!(series.quantile(0.99), Some(Nanos::from_nanos(990)));
        assert_eq!(series.quantile(1.0), Some(Nanos::from_nanos(1000)));
        assert_eq!(series.quantile(0.0), Some(Nanos::from_nanos(10)));
        assert_eq!(PrecisionSeries::new().quantile(0.5), None);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn quantile_range_checked() {
        let mut series = PrecisionSeries::new();
        series.push(sample(0, 1));
        series.quantile(1.5);
    }

    #[test]
    fn max_sample_located() {
        let mut series = PrecisionSeries::new();
        series.push(sample(0, 10));
        series.push(sample(1, 10_080));
        series.push(sample(2, 12));
        let m = series.max().unwrap();
        assert_eq!(m.at, SimTime::from_secs(1));
        assert_eq!(m.value, Nanos::from_nanos(10_080));
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_rejected() {
        let mut series = PrecisionSeries::new();
        series.push(sample(5, 1));
        series.push(sample(4, 1));
    }
}
