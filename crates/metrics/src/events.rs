//! Experiment event log (the annotations of the paper's Fig. 5).
//!
//! Fig. 5 plots, for a 1 h window, clock-sync VM failures (triangles),
//! redundant VMs taking over `CLOCK_SYNCTIME` (stars), and transient
//! `ptp4l` application faults (crosses), color-coded by gPTP domain. The
//! experiment world records these as [`ExperimentEvent`]s; the figure
//! regenerator filters and renders them.

use serde::{Deserialize, Serialize};
use std::fmt;
use tsn_time::{SimTime, SyncState};

/// Kinds of transient `ptp4l` application faults (paper §III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransientKind {
    /// `tx_timeout` retrieving the hardware transmit timestamp.
    TxTimestampTimeout,
    /// Sync transmission launch-deadline miss.
    DeadlineMiss,
}

/// One annotated experiment event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExperimentEvent {
    /// A clock-synchronization VM failed silently.
    VmFailure {
        /// Node (ECD index, also the gPTP domain of its GM).
        node: usize,
        /// `true` if the failed VM was the node's grandmaster VM.
        grandmaster: bool,
    },
    /// A VM finished rebooting and rejoined.
    VmReboot {
        /// Node index.
        node: usize,
        /// `true` if the rebooted VM is the node's grandmaster VM.
        grandmaster: bool,
    },
    /// The redundant clock-sync VM took over maintaining
    /// `CLOCK_SYNCTIME`.
    Takeover {
        /// Node index.
        node: usize,
    },
    /// A transient `ptp4l` fault.
    Transient {
        /// Node index.
        node: usize,
        /// Fault kind.
        kind: TransientKind,
    },
    /// The attacker ran an exploit.
    Strike {
        /// Targeted node.
        node: usize,
        /// `true` if root was obtained (the GM turned Byzantine).
        succeeded: bool,
    },
    /// A rebooted grandmaster resumed serving its domain.
    GmResumed {
        /// Node index.
        node: usize,
    },
    /// A clock-sync VM's aggregator changed degradation state
    /// (Synchronized / Holdover / Freerun).
    SyncStateChange {
        /// Node index.
        node: usize,
        /// VM slot on the node (0 = GM VM, 1 = redundant VM).
        slot: usize,
        /// State left.
        from: SyncState,
        /// State entered.
        to: SyncState,
    },
}

impl ExperimentEvent {
    /// The node the event concerns.
    pub fn node(&self) -> usize {
        match *self {
            ExperimentEvent::VmFailure { node, .. }
            | ExperimentEvent::VmReboot { node, .. }
            | ExperimentEvent::Takeover { node }
            | ExperimentEvent::Transient { node, .. }
            | ExperimentEvent::Strike { node, .. }
            | ExperimentEvent::GmResumed { node }
            | ExperimentEvent::SyncStateChange { node, .. } => node,
        }
    }

    /// Marker used in the Fig. 5 style rendering.
    pub fn marker(&self) -> char {
        match self {
            ExperimentEvent::VmFailure { .. } => 'v', // triangle
            ExperimentEvent::Takeover { .. } => '*',  // star
            ExperimentEvent::Transient { .. } => 'x', // cross
            ExperimentEvent::VmReboot { .. } => '^',
            ExperimentEvent::Strike { .. } => '!',
            ExperimentEvent::GmResumed { .. } => '+',
            ExperimentEvent::SyncStateChange { .. } => '~',
        }
    }
}

impl fmt::Display for ExperimentEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentEvent::VmFailure { node, grandmaster } => {
                let what = if *grandmaster { "GM" } else { "redundant" };
                write!(f, "{what} clock-sync VM failure on dev{}", node + 1)
            }
            ExperimentEvent::VmReboot { node, grandmaster } => {
                let what = if *grandmaster { "GM" } else { "redundant" };
                write!(f, "{what} clock-sync VM rebooted on dev{}", node + 1)
            }
            ExperimentEvent::Takeover { node } => {
                write!(f, "takeover of CLOCK_SYNCTIME on dev{}", node + 1)
            }
            ExperimentEvent::Transient { node, kind } => match kind {
                TransientKind::TxTimestampTimeout => {
                    write!(f, "tx timestamp timeout on dev{}", node + 1)
                }
                TransientKind::DeadlineMiss => {
                    write!(f, "Sync deadline miss on dev{}", node + 1)
                }
            },
            ExperimentEvent::Strike { node, succeeded } => {
                let o = if *succeeded { "rooted" } else { "failed" };
                write!(f, "exploit against dev{} GM: {o}", node + 1)
            }
            ExperimentEvent::GmResumed { node } => {
                write!(f, "GM of dom{} resumed", node + 1)
            }
            ExperimentEvent::SyncStateChange {
                node,
                slot,
                from,
                to,
            } => {
                write!(f, "dev{} vm{slot} sync state: {from} -> {to}", node + 1)
            }
        }
    }
}

/// Time-ordered event log.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EventLog {
    entries: Vec<(SimTime, ExperimentEvent)>,
}

impl EventLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event (must be time-ordered).
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the last recorded event.
    pub fn record(&mut self, at: SimTime, event: ExperimentEvent) {
        if let Some((last, _)) = self.entries.last() {
            assert!(at >= *last, "events must be time-ordered");
        }
        self.entries.push((at, event));
    }

    /// All entries.
    pub fn entries(&self) -> &[(SimTime, ExperimentEvent)] {
        &self.entries
    }

    /// Entries within `[from, to)`.
    pub fn window(&self, from: SimTime, to: SimTime) -> Vec<(SimTime, ExperimentEvent)> {
        self.entries
            .iter()
            .filter(|(t, _)| *t >= from && *t < to)
            .copied()
            .collect()
    }

    /// Counts entries matching a predicate.
    pub fn count(&self, mut pred: impl FnMut(&ExperimentEvent) -> bool) -> usize {
        self.entries.iter().filter(|(_, e)| pred(e)).count()
    }

    /// Total time spent in each degraded state, summed over all
    /// `(node, slot)` aggregators, as `(holdover_ns, freerun_ns)`.
    ///
    /// Derived from the [`ExperimentEvent::SyncStateChange`] entries;
    /// states still open when the run ends are closed at `end`.
    pub fn degradation_dwell(&self, end: SimTime) -> (u64, u64) {
        let mut open: std::collections::BTreeMap<(usize, usize), (SyncState, SimTime)> =
            std::collections::BTreeMap::new();
        let mut holdover = 0u64;
        let mut freerun = 0u64;
        let mut close = |state: SyncState, since: SimTime, until: SimTime| {
            let dt = (until - since).as_nanos().max(0) as u64;
            match state {
                SyncState::Holdover => holdover += dt,
                SyncState::Freerun => freerun += dt,
                SyncState::Synchronized => {}
            }
        };
        for (at, ev) in &self.entries {
            if let ExperimentEvent::SyncStateChange { node, slot, to, .. } = ev {
                if let Some((prev, since)) = open.insert((*node, *slot), (*to, *at)) {
                    close(prev, since, *at);
                }
            }
        }
        for ((_, _), (state, since)) in open {
            close(state, since, end.max(since));
        }
        (holdover, freerun)
    }
}

use tsn_snapshot::{Reader, Snap, SnapError, SnapState, Writer};

impl Snap for TransientKind {
    fn put(&self, w: &mut Writer) {
        let tag: u8 = match self {
            TransientKind::TxTimestampTimeout => 0,
            TransientKind::DeadlineMiss => 1,
        };
        tag.put(w);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        match u8::get(r)? {
            0 => Ok(TransientKind::TxTimestampTimeout),
            1 => Ok(TransientKind::DeadlineMiss),
            _ => Err(SnapError::Malformed("transient kind discriminant")),
        }
    }
}

impl Snap for ExperimentEvent {
    fn put(&self, w: &mut Writer) {
        match *self {
            ExperimentEvent::VmFailure { node, grandmaster } => {
                0u8.put(w);
                node.put(w);
                grandmaster.put(w);
            }
            ExperimentEvent::VmReboot { node, grandmaster } => {
                1u8.put(w);
                node.put(w);
                grandmaster.put(w);
            }
            ExperimentEvent::Takeover { node } => {
                2u8.put(w);
                node.put(w);
            }
            ExperimentEvent::Transient { node, kind } => {
                3u8.put(w);
                node.put(w);
                kind.put(w);
            }
            ExperimentEvent::Strike { node, succeeded } => {
                4u8.put(w);
                node.put(w);
                succeeded.put(w);
            }
            ExperimentEvent::GmResumed { node } => {
                5u8.put(w);
                node.put(w);
            }
            ExperimentEvent::SyncStateChange {
                node,
                slot,
                from,
                to,
            } => {
                6u8.put(w);
                node.put(w);
                slot.put(w);
                from.put(w);
                to.put(w);
            }
        }
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(match u8::get(r)? {
            0 => ExperimentEvent::VmFailure {
                node: Snap::get(r)?,
                grandmaster: Snap::get(r)?,
            },
            1 => ExperimentEvent::VmReboot {
                node: Snap::get(r)?,
                grandmaster: Snap::get(r)?,
            },
            2 => ExperimentEvent::Takeover {
                node: Snap::get(r)?,
            },
            3 => ExperimentEvent::Transient {
                node: Snap::get(r)?,
                kind: Snap::get(r)?,
            },
            4 => ExperimentEvent::Strike {
                node: Snap::get(r)?,
                succeeded: Snap::get(r)?,
            },
            5 => ExperimentEvent::GmResumed {
                node: Snap::get(r)?,
            },
            6 => ExperimentEvent::SyncStateChange {
                node: Snap::get(r)?,
                slot: Snap::get(r)?,
                from: Snap::get(r)?,
                to: Snap::get(r)?,
            },
            _ => return Err(SnapError::Malformed("experiment event discriminant")),
        })
    }
}

impl SnapState for EventLog {
    fn save_state(&self, w: &mut Writer) {
        self.entries.put(w);
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        let entries: Vec<(SimTime, ExperimentEvent)> = Snap::get(r)?;
        if entries.windows(2).any(|p| p[0].0 > p[1].0) {
            return Err(SnapError::Malformed("event log out of time order"));
        }
        self.entries = entries;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_orders_and_windows() {
        let mut log = EventLog::new();
        log.record(
            SimTime::from_secs(10),
            ExperimentEvent::VmFailure {
                node: 0,
                grandmaster: true,
            },
        );
        log.record(
            SimTime::from_secs(11),
            ExperimentEvent::Takeover { node: 0 },
        );
        log.record(
            SimTime::from_secs(30),
            ExperimentEvent::Transient {
                node: 2,
                kind: TransientKind::DeadlineMiss,
            },
        );
        assert_eq!(log.entries().len(), 3);
        let w = log.window(SimTime::from_secs(10), SimTime::from_secs(12));
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn counting_by_kind() {
        let mut log = EventLog::new();
        for node in 0..4 {
            log.record(
                SimTime::from_secs(node as u64),
                ExperimentEvent::VmFailure {
                    node,
                    grandmaster: node % 2 == 0,
                },
            );
        }
        let gm = log.count(|e| {
            matches!(
                e,
                ExperimentEvent::VmFailure {
                    grandmaster: true,
                    ..
                }
            )
        });
        assert_eq!(gm, 2);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_rejected() {
        let mut log = EventLog::new();
        log.record(SimTime::from_secs(5), ExperimentEvent::Takeover { node: 0 });
        log.record(SimTime::from_secs(4), ExperimentEvent::Takeover { node: 0 });
    }

    #[test]
    fn degradation_dwell_sums_open_and_closed_spans() {
        let mut log = EventLog::new();
        let change = |node, from, to| ExperimentEvent::SyncStateChange {
            node,
            slot: 0,
            from,
            to,
        };
        // Node 0: holdover 10 s..13 s, freerun 13 s..15 s, resync at 15 s.
        log.record(
            SimTime::from_secs(10),
            change(0, SyncState::Synchronized, SyncState::Holdover),
        );
        log.record(
            SimTime::from_secs(13),
            change(0, SyncState::Holdover, SyncState::Freerun),
        );
        log.record(
            SimTime::from_secs(15),
            change(0, SyncState::Freerun, SyncState::Synchronized),
        );
        // Node 1: holdover from 18 s, still open at the 20 s run end.
        log.record(
            SimTime::from_secs(18),
            change(1, SyncState::Synchronized, SyncState::Holdover),
        );
        let (holdover, freerun) = log.degradation_dwell(SimTime::from_secs(20));
        assert_eq!(holdover, 5_000_000_000); // 3 s (node 0) + 2 s (node 1)
        assert_eq!(freerun, 2_000_000_000);
        assert_eq!(
            log.entries()[0].1.to_string(),
            "dev1 vm0 sync state: synchronized -> holdover"
        );
        assert_eq!(log.entries()[0].1.marker(), '~');
    }

    #[test]
    fn sync_state_change_snap_roundtrip() {
        use tsn_snapshot::{Reader, Writer};
        let e = ExperimentEvent::SyncStateChange {
            node: 2,
            slot: 1,
            from: SyncState::Holdover,
            to: SyncState::Freerun,
        };
        let mut w = Writer::new();
        e.put(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(ExperimentEvent::get(&mut r).unwrap(), e);
        r.finish().unwrap();
    }

    #[test]
    fn markers_and_display() {
        let e = ExperimentEvent::Takeover { node: 1 };
        assert_eq!(e.marker(), '*');
        assert_eq!(e.to_string(), "takeover of CLOCK_SYNCTIME on dev2");
        assert_eq!(e.node(), 1);
        let s = ExperimentEvent::Strike {
            node: 3,
            succeeded: true,
        };
        assert_eq!(s.to_string(), "exploit against dev4 GM: rooted");
    }
}
