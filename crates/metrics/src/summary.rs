//! Cross-run aggregate statistics.
//!
//! The campaign engine replicates every grid point across seeds; this
//! module turns the per-run scalars (mean Π*_s, per-run quantiles,
//! bound-violation rates, fault counts, …) into cross-seed aggregates:
//! mean/std/min/max plus nearest-rank p50/p95/p99.

use serde::{Deserialize, Serialize};

/// Aggregate statistics of a sample of scalars.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SampleSummary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Standard deviation (population).
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (nearest-rank).
    pub p50: f64,
    /// 95th percentile (nearest-rank).
    pub p95: f64,
    /// 99th percentile (nearest-rank).
    pub p99: f64,
}

impl SampleSummary {
    /// Summarizes the finite values of a sample. Non-finite inputs (NaN,
    /// ±∞) are filtered out rather than poisoning the moments — a single
    /// infinity would turn `mean` and `std` into NaN, and NaN breaks the
    /// ordering entirely. Returns `None` when no finite value remains;
    /// `count` reports the finite values actually summarized, so a
    /// caller can detect filtering by comparing it to `values.len()`.
    pub fn from_values(values: &[f64]) -> Option<SampleSummary> {
        let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        if sorted.is_empty() {
            return None;
        }
        let n = sorted.len() as f64;
        let mean = sorted.iter().sum::<f64>() / n;
        let var = sorted.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        sorted.sort_by(f64::total_cmp);
        Some(SampleSummary {
            count: sorted.len(),
            mean,
            std: var.sqrt(),
            min: sorted[0],
            max: sorted[sorted.len() - 1],
            p50: nearest_rank(&sorted, 0.50),
            p95: nearest_rank(&sorted, 0.95),
            p99: nearest_rank(&sorted, 0.99),
        })
    }
}

/// The nearest-rank `q`-quantile of an ascending-sorted sample.
///
/// # Panics
///
/// Panics if `sorted` is empty or `q` is outside `[0, 1]`.
pub fn nearest_rank(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile out of range");
    let idx = ((q * sorted.len() as f64).ceil() as usize)
        .saturating_sub(1)
        .min(sorted.len() - 1);
    sorted[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_matches_hand_computation() {
        let s = SampleSummary::from_values(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.count, 4);
        assert_eq!(s.mean, 2.5);
        assert!((s.std - (1.25f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.p50, 2.0);
        assert_eq!(s.p95, 4.0);
        assert_eq!(s.p99, 4.0);
    }

    #[test]
    fn quantiles_match_series_convention() {
        // Same nearest-rank convention as PrecisionSeries::quantile.
        let sorted: Vec<f64> = (1..=100).map(|i| (i * 10) as f64).collect();
        assert_eq!(nearest_rank(&sorted, 0.5), 500.0);
        assert_eq!(nearest_rank(&sorted, 0.99), 990.0);
        assert_eq!(nearest_rank(&sorted, 0.0), 10.0);
        assert_eq!(nearest_rank(&sorted, 1.0), 1000.0);
    }

    #[test]
    fn degenerate_samples() {
        assert!(SampleSummary::from_values(&[]).is_none());
        let s = SampleSummary::from_values(&[7.0]).unwrap();
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.p99, 7.0);
    }

    /// Regression: non-finite inputs used to slip past the NaN check
    /// (±∞ did) or reject the whole sample (NaN did); either way no
    /// summary of the finite values was produced. They are filtered
    /// now, visible through `count`.
    #[test]
    fn non_finite_values_are_filtered_not_fatal() {
        // Pre-fix: `[1.0, NaN]` returned None (whole sample rejected).
        let s = SampleSummary::from_values(&[1.0, f64::NAN]).expect("finite value summarized");
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 1.0);
        // Pre-fix: ±∞ passed the NaN check and made mean/std NaN.
        let s = SampleSummary::from_values(&[1.0, 3.0, f64::INFINITY, f64::NEG_INFINITY])
            .expect("finite values summarized");
        assert_eq!(s.count, 2);
        assert_eq!(s.mean, 2.0);
        assert!(s.std.is_finite());
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        // Nothing finite at all: still None, never a NaN-filled summary.
        assert!(SampleSummary::from_values(&[f64::NAN, f64::INFINITY]).is_none());
    }

    #[test]
    fn unsorted_input_is_sorted_internally() {
        let s = SampleSummary::from_values(&[9.0, 1.0, 5.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.p50, 5.0);
    }
}
