//! Cross-run aggregate statistics.
//!
//! The campaign engine replicates every grid point across seeds; this
//! module turns the per-run scalars (mean Π*_s, per-run quantiles,
//! bound-violation rates, fault counts, …) into cross-seed aggregates:
//! mean/std/min/max plus nearest-rank p50/p95/p99.

use serde::{Deserialize, Serialize};

/// Aggregate statistics of a sample of scalars.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SampleSummary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Standard deviation (population).
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (nearest-rank).
    pub p50: f64,
    /// 95th percentile (nearest-rank).
    pub p95: f64,
    /// 99th percentile (nearest-rank).
    pub p99: f64,
}

impl SampleSummary {
    /// Summarizes a sample. Returns `None` for an empty sample; NaN
    /// values are rejected the same way (they would poison the order
    /// statistics silently otherwise).
    pub fn from_values(values: &[f64]) -> Option<SampleSummary> {
        if values.is_empty() || values.iter().any(|v| v.is_nan()) {
            return None;
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        Some(SampleSummary {
            count: values.len(),
            mean,
            std: var.sqrt(),
            min: sorted[0],
            max: sorted[sorted.len() - 1],
            p50: nearest_rank(&sorted, 0.50),
            p95: nearest_rank(&sorted, 0.95),
            p99: nearest_rank(&sorted, 0.99),
        })
    }
}

/// The nearest-rank `q`-quantile of an ascending-sorted sample.
///
/// # Panics
///
/// Panics if `sorted` is empty or `q` is outside `[0, 1]`.
pub fn nearest_rank(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile out of range");
    let idx = ((q * sorted.len() as f64).ceil() as usize)
        .saturating_sub(1)
        .min(sorted.len() - 1);
    sorted[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_matches_hand_computation() {
        let s = SampleSummary::from_values(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.count, 4);
        assert_eq!(s.mean, 2.5);
        assert!((s.std - (1.25f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.p50, 2.0);
        assert_eq!(s.p95, 4.0);
        assert_eq!(s.p99, 4.0);
    }

    #[test]
    fn quantiles_match_series_convention() {
        // Same nearest-rank convention as PrecisionSeries::quantile.
        let sorted: Vec<f64> = (1..=100).map(|i| (i * 10) as f64).collect();
        assert_eq!(nearest_rank(&sorted, 0.5), 500.0);
        assert_eq!(nearest_rank(&sorted, 0.99), 990.0);
        assert_eq!(nearest_rank(&sorted, 0.0), 10.0);
        assert_eq!(nearest_rank(&sorted, 1.0), 1000.0);
    }

    #[test]
    fn degenerate_samples() {
        assert!(SampleSummary::from_values(&[]).is_none());
        assert!(SampleSummary::from_values(&[1.0, f64::NAN]).is_none());
        let s = SampleSummary::from_values(&[7.0]).unwrap();
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.p99, 7.0);
    }

    #[test]
    fn unsorted_input_is_sorted_internally() {
        let s = SampleSummary::from_values(&[9.0, 1.0, 5.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.p50, 5.0);
    }
}
