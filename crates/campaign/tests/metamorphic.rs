//! Metamorphic properties of the campaign engine and the Π* statistics.
//!
//! Metamorphic testing checks *relations between runs* instead of
//! absolute values. Two relations are exact here by construction, so
//! they get byte-for-byte assertions rather than tolerances:
//!
//! * **Axis-permutation invariance** — a run's seed and artifact are
//!   pure functions of its grid *coordinate* ([`tsn_campaign::matrix`]),
//!   never of its enumeration position. Reordering a spec's axis lists
//!   therefore produces the exact same artifact set.
//! * **Time-translation invariance** — the Π* statistics (mean, std,
//!   quantiles, bound-compliance fraction) depend only on sample
//!   values, not on their timestamps. Shifting a whole series in time
//!   leaves every statistic bit-identical.

use clocksync::scenario::ScenarioKind;
use std::path::{Path, PathBuf};
use tsn_campaign::{runner, BaseSpec, CampaignSpec, Grid, RunnerOptions};
use tsn_metrics::{PrecisionSample, PrecisionSeries};
use tsn_time::Nanos;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tsn-campaign-metamorphic-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn opts(dir: &Path) -> RunnerOptions {
    RunnerOptions {
        dir: dir.to_path_buf(),
        threads: 2,
        quiet: true,
        fork: false,
        check: false,
        trace: None,
        trace_max_events: None,
        panic_label: None,
    }
}

/// The campaign's `runs/` directory as sorted (name, bytes) pairs.
fn artifact_bytes(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir.join("runs"))
        .expect("runs dir exists")
        .map(|e| {
            let e = e.unwrap();
            (
                e.file_name().to_string_lossy().into_owned(),
                std::fs::read(e.path()).unwrap(),
            )
        })
        .collect();
    files.sort();
    files
}

fn spec_with_axes(domains: Vec<usize>, seeds: Vec<u64>) -> CampaignSpec {
    CampaignSpec {
        name: "metamorphic".to_string(),
        base: BaseSpec {
            warmup_s: Some(3),
            ..BaseSpec::quick(6)
        },
        scenarios: vec![ScenarioKind::Baseline],
        grid: Grid {
            seeds,
            domains,
            ..Grid::default()
        },
    }
}

#[test]
fn axis_permutation_produces_identical_artifacts() {
    let forward = spec_with_axes(vec![4, 5], vec![1, 2]);
    let permuted = spec_with_axes(vec![5, 4], vec![2, 1]);

    let dir_a = scratch("fwd");
    let dir_b = scratch("perm");
    runner::execute(&forward, &opts(&dir_a)).expect("forward campaign");
    runner::execute(&permuted, &opts(&dir_b)).expect("permuted campaign");

    let a = artifact_bytes(&dir_a);
    let b = artifact_bytes(&dir_b);
    assert_eq!(a.len(), 4, "expected 2 domains × 2 seeds");
    assert_eq!(
        a.iter().map(|(n, _)| n.clone()).collect::<Vec<_>>(),
        b.iter().map(|(n, _)| n.clone()).collect::<Vec<_>>(),
        "artifact sets differ"
    );
    for ((name_a, bytes_a), (_, bytes_b)) in a.iter().zip(&b) {
        assert_eq!(bytes_a, bytes_b, "artifact {name_a} differs");
    }

    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

#[test]
fn pi_statistics_are_time_translation_invariant() {
    let mut cfg = clocksync::TestbedConfig::quick(17);
    cfg.duration = Nanos::from_secs(10);
    cfg.warmup = Nanos::from_secs(3);
    cfg.probe_interval = Nanos::from_millis(200);
    let series = clocksync::scenario::run(cfg).result.series;
    assert!(series.len() > 10, "run produced too few Π* samples");

    // Translate every sample by a constant Δ (one extra warm-up's worth)
    // and compare each statistic bit-for-bit.
    let delta = Nanos::from_secs(3);
    let mut shifted = PrecisionSeries::default();
    for s in series.samples() {
        shifted.push(PrecisionSample {
            at: s.at + delta,
            value: s.value,
            receivers: s.receivers,
        });
    }

    assert_eq!(series.stats(), shifted.stats());
    for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
        assert_eq!(series.quantile(q), shifted.quantile(q), "quantile {q}");
    }
    for bound_ns in [1_000, 5_000, 12_636, 50_000] {
        let bound = Nanos::from_nanos(bound_ns);
        assert_eq!(
            series.fraction_within(bound),
            shifted.fraction_within(bound),
            "fraction_within {bound_ns}ns"
        );
    }
    assert_eq!(
        series.max().map(|s| (s.value, s.receivers)),
        shifted.max().map(|s| (s.value, s.receivers)),
    );
}
