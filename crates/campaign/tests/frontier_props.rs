//! Property tests for the frontier bisection engine.
//!
//! The bisection is the load-bearing search primitive of `campaign
//! frontier`: its bracket must only ever shrink, it must never exceed
//! its probe budget, and — because the frontier artifact is
//! byte-reproducible — identical verdict sequences must yield identical
//! probe sequences. The properties drive it with arbitrary intervals,
//! budgets, and both arbitrary and threshold-shaped verdicts.

use proptest::prelude::*;
use proptest::rand::rngs::StdRng;
use proptest::rand::Rng;
use tsn_campaign::{BisectOutcome, Bisection};

/// An arbitrary valid search problem: interval, resolution, budget, and
/// a verdict stream (one pre-drawn bool per potential probe).
#[derive(Debug, Clone)]
struct Problem {
    min: u64,
    max: u64,
    resolution: u64,
    budget: usize,
    verdicts: Vec<bool>,
}

struct ArbProblem;

impl proptest::strategy::Strategy for ArbProblem {
    type Value = Problem;
    fn generate(&self, rng: &mut StdRng) -> Problem {
        let min = rng.gen_range(0..1_000_000u64);
        let max = min + rng.gen_range(1..2_000_000u64);
        let resolution = rng.gen_range(1..=(max - min));
        let budget = rng.gen_range(2..40usize);
        let verdicts = (0..budget).map(|_| rng.gen()).collect();
        Problem {
            min,
            max,
            resolution,
            budget,
            verdicts,
        }
    }
}

/// Drives a bisection to completion with the problem's verdict stream;
/// returns the probe values in order.
fn drive(p: &Problem) -> (Bisection, Vec<u64>) {
    let mut b = Bisection::new(p.min, p.max, p.resolution, p.budget);
    let mut probes = Vec::new();
    while let Some(probe) = b.next_probe() {
        let broken = p.verdicts[probes.len()];
        probes.push(probe);
        b.report(probe, broken);
    }
    (b, probes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The bracket never widens, every probe lies inside the current
    /// bracket, and the search never exceeds its budget.
    #[test]
    fn brackets_shrink_monotonically_within_budget(p in ArbProblem) {
        let mut b = Bisection::new(p.min, p.max, p.resolution, p.budget);
        let mut probed = 0usize;
        let (mut lo, mut hi) = b.bracket();
        prop_assert_eq!((lo, hi), (p.min, p.max));
        while let Some(probe) = b.next_probe() {
            prop_assert!(probe >= lo && probe <= hi, "probe {probe} outside [{lo}, {hi}]");
            b.report(probe, p.verdicts[probed]);
            probed += 1;
            let (nlo, nhi) = b.bracket();
            prop_assert!(nlo >= lo && nhi <= hi, "bracket widened: [{lo}, {hi}] -> [{nlo}, {nhi}]");
            prop_assert!(nlo < nhi, "bracket collapsed");
            (lo, hi) = (nlo, nhi);
            prop_assert!(probed <= p.budget, "budget exceeded");
        }
        prop_assert_eq!(b.probes(), probed);
        // A settled search has an outcome; endpoint shortcuts aside, a
        // bracket outcome is at most `resolution` wide unless the
        // budget ran out first.
        match b.outcome() {
            Some(BisectOutcome::Bracket { contained_at, broken_at }) => {
                prop_assert!(contained_at < broken_at);
                prop_assert!(
                    broken_at - contained_at <= p.resolution || probed == p.budget,
                    "unconverged bracket with budget to spare"
                );
            }
            Some(_) => {}
            None => prop_assert!(false, "driven search has no outcome"),
        }
    }

    /// Identical verdict sequences produce identical probe sequences
    /// and outcomes — the determinism the byte-reproducible artifact
    /// rests on.
    #[test]
    fn identical_verdicts_give_identical_searches(p in ArbProblem) {
        let (a, probes_a) = drive(&p);
        let (b, probes_b) = drive(&p);
        prop_assert_eq!(probes_a, probes_b);
        prop_assert_eq!(a.outcome(), b.outcome());
        prop_assert_eq!(a.bracket(), b.bracket());
    }

    /// Against a monotone threshold adversary (broken ⇔ probe ≥ t with
    /// t inside the interval), the search brackets t whenever the
    /// budget suffices — and the bracket genuinely contains t.
    #[test]
    fn threshold_adversary_is_bracketed(p in ArbProblem, frac in 0.0f64..1.0) {
        // Place the threshold strictly inside (min, max].
        let span = p.max - p.min;
        let t = p.min + 1 + ((span - 1) as f64 * frac) as u64;
        let mut b = Bisection::new(p.min, p.max, p.resolution, 64);
        while let Some(probe) = b.next_probe() {
            b.report(probe, probe >= t);
        }
        match b.outcome() {
            Some(BisectOutcome::Bracket { contained_at, broken_at }) => {
                prop_assert!(
                    contained_at < t && t <= broken_at,
                    "threshold {t} outside bracket ({contained_at}, {broken_at}]"
                );
                prop_assert!(broken_at - contained_at <= p.resolution);
            }
            other => prop_assert!(false, "threshold inside the interval, got {other:?}"),
        }
    }
}
