//! Bounded-memory regression test for the streaming summarizer.
//!
//! The pre-streaming pipeline collected every `RunRecord` into a `Vec`
//! before grouping (O(records) memory — tens of megabytes for a
//! fleet-scale campaign). The streaming path must summarize an
//! arbitrarily large campaign with memory proportional to the number of
//! *groups*, not records. This test pins that with a counting global
//! allocator: 100 000 synthetic records pushed one at a time must keep
//! the peak live-byte delta under a budget far below what the old
//! collect-first path needed.
//!
//! The file holds exactly one test so no concurrent test pollutes the
//! allocator counters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicIsize, Ordering};
use tsn_campaign::artifact::{BoundsRecord, PrecisionRecord, RunRecord};
use tsn_campaign::{Coord, StreamSummarizer};

struct CountingAlloc;

static LIVE: AtomicIsize = AtomicIsize::new(0);
static PEAK: AtomicIsize = AtomicIsize::new(0);

fn on_alloc(size: usize) {
    let live = LIVE.fetch_add(size as isize, Ordering::Relaxed) + size as isize;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE.fetch_sub(layout.size() as isize, Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            LIVE.fetch_sub(layout.size() as isize, Ordering::Relaxed);
            on_alloc(new_size);
        }
        p
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// One synthetic run record: the axes every campaign has (scenario +
/// seed) plus per-seed metric variation so the accumulators do real
/// work.
fn synthetic(seed: u64) -> RunRecord {
    let p95 = 3_000 + (seed % 977) as i64;
    RunRecord {
        campaign: "alloc-budget".to_string(),
        hash: format!("{seed:016x}"),
        coord: Coord {
            scenario: clocksync::scenario::ScenarioKind::Baseline,
            seed,
            domains: None,
            sync_interval_ms: None,
            kernel: None,
            fault_rate_per_hour: None,
            discipline: None,
            strategy: None,
            compromised: None,
            loss_permille: None,
            partition_s: None,
            election: None,
            announce_interval_ms: None,
            gm_failure_at_s: None,
            rogue_master: None,
            hops: None,
            cross_traffic_pct: None,
            asymmetry_ns: None,
            tc_mode: None,
            topology: None,
            adv_offset_ns: None,
            fta_f: None,
            fleet_nodes: Some(1024),
            fleet_topology: Some("fat-tree"),
        },
        seed: seed.wrapping_mul(0x9e3779b97f4a7c15),
        counters: clocksync::RunCounters::default(),
        bounds: BoundsRecord {
            d_min_ns: 0,
            d_max_ns: 0,
            reading_error_ns: 0,
            drift_offset_ns: 0,
            pi_ns: 12_000,
            gamma_ns: 1_000,
            pi_plus_gamma_ns: 13_000,
        },
        precision: Some(PrecisionRecord {
            count: 100,
            mean_ns: p95 as f64 / 2.0,
            std_ns: 25.0,
            min_ns: 90,
            max_ns: p95 + 800,
            p50_ns: p95 / 2,
            p90_ns: p95 - 120,
            p95_ns: p95,
            p99_ns: p95 + 400,
        }),
        fraction_within_bound: 1.0 - (seed % 10) as f64 / 1000.0,
        transitions: Vec::new(),
    }
}

#[test]
fn summarizing_100k_records_stays_under_the_allocation_budget() {
    const RECORDS: u64 = 100_000;
    // Far below the ≥ 40 MB the old collect-everything path needed for
    // 100k records, yet roomy against the summarizer's real footprint
    // (19 exact-mode buffers × 4096 f64 ≈ 0.6 MB, then bounded
    // sketches).
    const BUDGET_BYTES: isize = 8 * 1024 * 1024;

    let baseline = LIVE.load(Ordering::Relaxed);
    PEAK.store(baseline, Ordering::Relaxed);

    let mut summarizer = StreamSummarizer::new();
    for seed in 0..RECORDS {
        // Records are synthesized, pushed, and dropped one at a time —
        // the shape a `RunRecordReader` loop has on a real campaign
        // directory.
        summarizer.push(&synthetic(seed));
    }
    let groups = summarizer.finish();

    let peak_delta = PEAK.load(Ordering::Relaxed) - baseline;
    assert_eq!(groups.len(), 1, "one grid point, one group");
    assert_eq!(groups[0].runs, RECORDS as usize);
    let p95 = groups[0].pi_star_p95.as_ref().expect("precision present");
    assert_eq!(p95.count, RECORDS as usize);
    assert!(
        (3_000.0..=3_977.0).contains(&p95.mean),
        "sketched mean {} escaped the synthetic value range",
        p95.mean
    );
    assert!(
        peak_delta < BUDGET_BYTES,
        "peak allocation {peak_delta} B exceeds the {BUDGET_BYTES} B budget — \
         the summarize path is buffering per-record state again"
    );
}
