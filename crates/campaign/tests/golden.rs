//! Golden-file test pinning the `campaign summarize --json` schema.
//!
//! The fixture under `tests/fixtures/golden-campaign/` is a tiny
//! completed campaign (quick preset, 6 s / 3 s warm-up, baseline +
//! cyber scenario, seeds 1–2) committed artifact-for-artifact, and
//! `tests/fixtures/golden_summary.json` is the exact `summarize --json`
//! output it produced when recorded. Summarize only *reads* artifacts —
//! it never re-simulates — so this test fails precisely when the JSON
//! summary schema or rendering changes, which is the event that must be
//! deliberate (downstream tooling parses this output).
//!
//! To regenerate after an intentional schema change:
//!
//! ```text
//! cargo run --release -p tsn-campaign --bin campaign -- summarize --json \
//!   --dir crates/campaign/tests/fixtures/golden-campaign \
//!   > crates/campaign/tests/fixtures/golden_summary.json
//! ```

use std::path::Path;
use std::process::Command;

#[test]
fn summarize_json_matches_golden_file() {
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let out = Command::new(env!("CARGO_BIN_EXE_campaign"))
        .args([
            "summarize",
            "--json",
            "--dir",
            fixtures.join("golden-campaign").to_str().unwrap(),
        ])
        .output()
        .expect("campaign binary runs");
    assert!(
        out.status.success(),
        "summarize failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let golden = std::fs::read_to_string(fixtures.join("golden_summary.json"))
        .expect("golden_summary.json is committed");
    let actual = String::from_utf8(out.stdout).expect("summary is UTF-8");
    assert_eq!(
        actual, golden,
        "summarize --json output diverged from the golden file; if the \
         schema change is intentional, regenerate it (see module docs)"
    );
}

#[test]
fn golden_summary_parses_and_has_the_pinned_fields() {
    // Belt and braces: the golden file itself must stay parseable and
    // keep the field names downstream tooling relies on.
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let text = std::fs::read_to_string(fixtures.join("golden_summary.json")).unwrap();
    let v = tsn_campaign::json::Json::parse(&text).expect("golden file is valid JSON");
    let groups = v.as_array().expect("top level is an array");
    assert_eq!(groups.len(), 2, "baseline + cyber group");
    for g in groups {
        for key in [
            "group",
            "runs",
            "bound_ns_mean",
            "pi_star_mean_ns",
            "pi_star_p95_ns",
            "pi_star_max_ns",
            "violation_rate",
        ] {
            assert!(g.get(key).is_some(), "group lacks pinned field {key:?}");
        }
        let stats = g.get("pi_star_p95_ns").unwrap();
        for key in ["count", "mean", "std", "min", "max", "p50", "p95", "p99"] {
            assert!(stats.get(key).is_some(), "stats lack pinned field {key:?}");
        }
    }
}
