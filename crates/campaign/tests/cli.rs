//! CLI contract tests: error paths must print a clear message and exit
//! 2 instead of panicking, and the `snapshot` binary's save / info /
//! restore / verify loop must close.

use std::path::PathBuf;
use std::process::{Command, Output};

fn campaign(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_campaign"))
        .args(args)
        .output()
        .expect("campaign binary runs")
}

fn snapshot(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_snapshot"))
        .args(args)
        .output()
        .expect("snapshot binary runs")
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tsn-campaign-cli-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn summarize_of_missing_campaign_exits_two_with_message() {
    let dir = scratch("missing");
    let out = campaign(&["summarize", "--dir", dir.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error:"), "no error message: {stderr}");
}

#[test]
fn summarize_of_empty_campaign_exits_two_with_message() {
    // A campaign directory that exists but holds no completed runs: the
    // manifest is present, the runs directory is empty.
    let dir = scratch("empty");
    std::fs::create_dir_all(dir.join("runs")).unwrap();
    let manifest = r#"{"schema":2,"spec":{"name":"empty","base":{"preset":"quick"},"scenarios":["baseline"],"grid":{"seeds":[1]}},"total_runs":1,"runs":[]}"#;
    std::fs::write(dir.join("manifest.json"), manifest).unwrap();

    let out = campaign(&["summarize", "--dir", dir.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("missing or unreadable artifact") || stderr.contains("no completed runs"),
        "unhelpful message: {stderr}"
    );

    let diff = campaign(&[
        "diff",
        "--baseline",
        dir.to_str().unwrap(),
        "--candidate",
        dir.to_str().unwrap(),
    ]);
    assert_eq!(diff.status.code(), Some(2));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn summarize_of_zero_run_manifest_exits_two_instead_of_panicking() {
    // A hand-edited (or truncated) manifest whose spec expands to zero
    // runs used to panic inside `expand`; it must now be a plain error.
    let dir = scratch("zero");
    std::fs::create_dir_all(dir.join("runs")).unwrap();
    let manifest = r#"{"schema":2,"spec":{"name":"zero","base":{"preset":"quick"},"scenarios":["baseline"],"grid":{"seeds":[]}},"total_runs":0,"runs":[]}"#;
    std::fs::write(dir.join("manifest.json"), manifest).unwrap();

    let out = campaign(&["summarize", "--dir", dir.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stderr.contains("panicked"), "summarize panicked: {stderr}");
    assert!(stderr.contains("error:"), "no error message: {stderr}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn run_with_malformed_spec_exits_two_with_message() {
    // A spec that parses as JSON but fails validation (domain count
    // outside 4..=16 breaks the FTA's N > 3f requirement) must be a
    // plain exit-2 error at the CLI, never a panic inside `expand`.
    let dir = scratch("malformed");
    std::fs::create_dir_all(&dir).unwrap();
    let spec_path = dir.join("bad.json");
    std::fs::write(
        &spec_path,
        r#"{"schema":1,"name":"bad","base":{"preset":"quick"},"scenarios":["baseline"],"grid":{"seeds":[1],"domains":[2]}}"#,
    )
    .unwrap();

    let out = campaign(&[
        "run",
        "--spec",
        spec_path.to_str().unwrap(),
        "--dir",
        dir.join("campaign").to_str().unwrap(),
        "--quiet",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stderr.contains("panicked"), "run panicked: {stderr}");
    assert!(stderr.contains("error:"), "no error message: {stderr}");
    assert!(
        stderr.contains("domains") || stderr.contains("4..=16"),
        "error does not name the offending field: {stderr}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// Regression: a `partition_s` axis without an explicit `duration_s`
/// used to pass validation by silently assuming 60 s; it is a spec
/// error now, surfaced as a plain exit-2 message at the CLI.
#[test]
fn run_with_partition_axis_and_no_duration_exits_two() {
    let dir = scratch("partition");
    std::fs::create_dir_all(&dir).unwrap();
    let spec_path = dir.join("bad.json");
    std::fs::write(
        &spec_path,
        r#"{"schema":1,"name":"bad","base":{"preset":"quick"},"scenarios":["baseline"],"grid":{"seeds":[1],"partition_s":[5]}}"#,
    )
    .unwrap();

    let out = campaign(&[
        "run",
        "--spec",
        spec_path.to_str().unwrap(),
        "--dir",
        dir.join("campaign").to_str().unwrap(),
        "--quiet",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stderr.contains("panicked"), "run panicked: {stderr}");
    assert!(
        stderr.contains("duration_s"),
        "error does not name the missing field: {stderr}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// `--trace` writes one Chrome trace-event file per executed run plus a
/// profile stream, while the run artifacts stay byte-identical to an
/// untraced campaign — the tracer observes, it never steers.
#[test]
fn run_with_trace_emits_valid_traces_and_identical_artifacts() {
    use tsn_campaign::json::Json;
    use tsn_campaign::profile::{ProfileEntry, PROFILE_FILE};

    let dir = scratch("trace");
    std::fs::create_dir_all(&dir).unwrap();
    let spec_path = dir.join("tiny.json");
    std::fs::write(
        &spec_path,
        r#"{"schema":1,"name":"tiny","base":{"preset":"quick","duration_s":6,"warmup_s":3},"scenarios":["baseline"],"grid":{"seeds":[1,2]}}"#,
    )
    .unwrap();
    let spec = spec_path.to_str().unwrap().to_string();

    let traced_dir = dir.join("traced");
    let plain_dir = dir.join("plain");
    let trace_dir = dir.join("traces");
    let traced = campaign(&[
        "run",
        "--spec",
        &spec,
        "--dir",
        traced_dir.to_str().unwrap(),
        "--quiet",
        "--trace",
        trace_dir.to_str().unwrap(),
    ]);
    assert_eq!(traced.status.code(), Some(0), "{traced:?}");

    let plain = campaign(&[
        "run",
        "--spec",
        &spec,
        "--dir",
        plain_dir.to_str().unwrap(),
        "--quiet",
    ]);
    assert_eq!(plain.status.code(), Some(0), "{plain:?}");

    // Artifact bytes are unchanged by tracing.
    let read = |d: &std::path::Path| {
        let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(d.join("runs"))
            .expect("runs dir")
            .map(|e| {
                let e = e.unwrap();
                (
                    e.file_name().to_string_lossy().into_owned(),
                    std::fs::read(e.path()).unwrap(),
                )
            })
            .collect();
        files.sort();
        files
    };
    let artifacts = read(&traced_dir);
    assert_eq!(
        artifacts,
        read(&plain_dir),
        "--trace changed artifact bytes"
    );

    // One schema-valid Chrome trace per run, named by the run's hash.
    for (name, _) in &artifacts {
        let hash = name
            .strip_prefix("run-")
            .and_then(|n| n.strip_suffix(".jsonl"))
            .expect("artifact name shape");
        let trace_path = trace_dir.join(format!("trace-{hash}.json"));
        let text = std::fs::read_to_string(&trace_path)
            .unwrap_or_else(|e| panic!("missing trace {}: {e}", trace_path.display()));
        let v = Json::parse(&text).expect("trace file is valid JSON");
        assert!(v.get("displayTimeUnit").is_some());
        let events = v
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array");
        assert!(!events.is_empty(), "empty trace for {hash}");
        for ev in events {
            for field in ["ph", "name", "pid", "tid"] {
                assert!(ev.get(field).is_some(), "event missing {field}: {ev:?}");
            }
        }
        assert!(
            events
                .iter()
                .any(|e| e.get("name").and_then(Json::as_str) == Some("fta_round")),
            "trace for {hash} has no FTA rounds"
        );
    }

    // The profile stream carries one decodable entry per run.
    let stream = std::fs::read_to_string(trace_dir.join(PROFILE_FILE)).expect("profile stream");
    let entries: Vec<ProfileEntry> = stream
        .lines()
        .map(|l| ProfileEntry::decode(l).expect("profile line decodes"))
        .collect();
    assert_eq!(entries.len(), artifacts.len());
    for e in &entries {
        assert_eq!(e.scenario, "baseline");
        assert!(e.sim_events > 0);
        assert!(e.wall_s >= 0.0);
    }

    // And `campaign profile` renders the per-scenario report.
    let profile = campaign(&["profile", "--trace", trace_dir.to_str().unwrap()]);
    assert_eq!(profile.status.code(), Some(0), "{profile:?}");
    let stdout = String::from_utf8_lossy(&profile.stdout);
    assert!(stdout.contains("events/s"), "no throughput: {stdout}");
    assert!(stdout.contains("baseline"), "no scenario row: {stdout}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn run_with_check_is_clean_and_leaves_artifacts_untouched() {
    // `--check` arms the invariant oracle: a healthy campaign passes
    // (exit 0, explicit confirmation) and the artifacts it writes are
    // byte-identical to an unchecked campaign — the oracle observes, it
    // never steers.
    let dir = scratch("check");
    std::fs::create_dir_all(&dir).unwrap();
    let spec_path = dir.join("tiny.json");
    std::fs::write(
        &spec_path,
        r#"{"schema":1,"name":"tiny","base":{"preset":"quick","duration_s":6,"warmup_s":3},"scenarios":["baseline"],"grid":{"seeds":[1]}}"#,
    )
    .unwrap();
    let spec = spec_path.to_str().unwrap().to_string();

    let checked_dir = dir.join("checked");
    let plain_dir = dir.join("plain");
    let checked = campaign(&[
        "run",
        "--spec",
        &spec,
        "--dir",
        checked_dir.to_str().unwrap(),
        "--quiet",
        "--check",
    ]);
    assert_eq!(checked.status.code(), Some(0), "{checked:?}");
    let stdout = String::from_utf8_lossy(&checked.stdout);
    assert!(
        stdout.contains("check: no invariant violations"),
        "no clean-check confirmation: {stdout}"
    );

    let plain = campaign(&[
        "run",
        "--spec",
        &spec,
        "--dir",
        plain_dir.to_str().unwrap(),
        "--quiet",
    ]);
    assert_eq!(plain.status.code(), Some(0), "{plain:?}");

    let read = |d: &std::path::Path| {
        let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(d.join("runs"))
            .expect("runs dir")
            .map(|e| {
                let e = e.unwrap();
                (
                    e.file_name().to_string_lossy().into_owned(),
                    std::fs::read(e.path()).unwrap(),
                )
            })
            .collect();
        files.sort();
        files
    };
    assert_eq!(
        read(&checked_dir),
        read(&plain_dir),
        "--check changed artifact bytes"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn run_with_tiny_trace_cap_reports_truncation_and_fails_check() {
    // A cap far below a real run's event count forces the bounded sink
    // to drop events. Truncation must be loud: a stderr warning on a
    // plain run, a per-run drop count in the profile stream and
    // `campaign profile` output, and a nonzero exit under `--check`.
    let dir = scratch("trace-cap");
    std::fs::create_dir_all(&dir).unwrap();
    let spec_path = dir.join("tiny.json");
    std::fs::write(
        &spec_path,
        r#"{"schema":1,"name":"tiny","base":{"preset":"quick","duration_s":6,"warmup_s":3},"scenarios":["baseline"],"grid":{"seeds":[1]}}"#,
    )
    .unwrap();
    let spec = spec_path.to_str().unwrap().to_string();

    // --trace-cap without --trace is a usage error.
    let orphan = campaign(&[
        "run",
        "--spec",
        &spec,
        "--dir",
        dir.join("orphan").to_str().unwrap(),
        "--quiet",
        "--trace-cap",
        "10",
    ]);
    assert_eq!(orphan.status.code(), Some(2), "{orphan:?}");

    let trace_dir = dir.join("traces");
    let run_dir = dir.join("capped");
    let capped = campaign(&[
        "run",
        "--spec",
        &spec,
        "--dir",
        run_dir.to_str().unwrap(),
        "--quiet",
        "--trace",
        trace_dir.to_str().unwrap(),
        "--trace-cap",
        "10",
    ]);
    // Without --check the campaign still succeeds, but warns.
    assert_eq!(capped.status.code(), Some(0), "{capped:?}");
    let stderr = String::from_utf8_lossy(&capped.stderr);
    assert!(
        stderr.contains("dropped") && stderr.contains("truncated"),
        "no truncation warning: {stderr}"
    );

    // The profile surfaces the drop count, in text and JSON.
    let profile = campaign(&["profile", "--trace", trace_dir.to_str().unwrap()]);
    assert_eq!(profile.status.code(), Some(0), "{profile:?}");
    let text = String::from_utf8_lossy(&profile.stdout);
    assert!(text.contains("dropped"), "profile hides the drops: {text}");
    let profile_json = campaign(&["profile", "--trace", trace_dir.to_str().unwrap(), "--json"]);
    let json = String::from_utf8_lossy(&profile_json.stdout);
    assert!(json.contains("\"dropped\""), "no dropped field: {json}");
    assert!(!json.contains("\"dropped\":0"), "drop count lost: {json}");

    // Under --check a truncated trace is a failure (fresh dir: the
    // capped runs above would otherwise just resume).
    let checked = campaign(&[
        "run",
        "--spec",
        &spec,
        "--dir",
        dir.join("checked").to_str().unwrap(),
        "--quiet",
        "--check",
        "--trace",
        dir.join("traces-checked").to_str().unwrap(),
        "--trace-cap",
        "10",
    ]);
    assert_eq!(
        checked.status.code(),
        Some(1),
        "truncated trace must fail --check: {checked:?}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_save_info_restore_verify_round_trip() {
    let dir = scratch("snap");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("w.snap");
    let cfg = [
        "--preset",
        "quick",
        "--seed",
        "7",
        "--duration-s",
        "4",
        "--warmup-s",
        "2",
    ];

    let mut save_args = vec!["save"];
    save_args.extend(cfg);
    save_args.extend(["--at", "2", "--out", file.to_str().unwrap()]);
    let save = snapshot(&save_args);
    assert!(save.status.success(), "{:?}", save);

    let info = snapshot(&["info", "--file", file.to_str().unwrap()]);
    assert!(info.status.success());
    let text = String::from_utf8_lossy(&info.stdout);
    assert!(text.contains("state_hash"), "no state hash: {text}");

    let mut restore_args = vec!["restore", "--file", file.to_str().unwrap()];
    restore_args.extend(cfg);
    let restore = snapshot(&restore_args);
    assert!(restore.status.success(), "{:?}", restore);

    // Restoring under a different configuration is refused (exit 2).
    let wrong = snapshot(&["restore", "--file", file.to_str().unwrap(), "--seed", "8"]);
    assert_eq!(wrong.status.code(), Some(2));

    let mut verify_args = vec!["verify"];
    verify_args.extend(cfg);
    verify_args.extend(["--epoch-s", "1"]);
    let verify = snapshot(&verify_args);
    assert!(verify.status.success(), "{:?}", verify);
    let text = String::from_utf8_lossy(&verify.stdout);
    assert!(text.contains("no divergence"), "unexpected: {text}");

    let _ = std::fs::remove_dir_all(&dir);
}
