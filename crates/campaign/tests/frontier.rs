//! Acceptance of the resilience-frontier explorer (ROADMAP item 5 /
//! PR 9 tentpole):
//!
//! * the adaptive search localizes the containment boundary at least
//!   4× tighter than the fixed 48-run reference grid while simulating
//!   **fewer** total runs;
//! * every cell's empirical boundary is consistent with the analytical
//!   Kopetz–Ochsenreiter bound — no break below `contained_below`, and
//!   analytically unbreakable cells stay contained through the axis
//!   maximum;
//! * `frontier.json` is byte-identical across fresh directories, across
//!   forked and cold execution, and across a resume into a completed
//!   directory.

use std::path::{Path, PathBuf};
use tsn_campaign::{
    frontier::{self, FrontierAxis, FrontierCell},
    BaseSpec, BisectOutcome, FrontierSpec, RunnerOptions,
};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tsn-campaign-frontier-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One breakable cell (colluding c = f + 1) and one analytically
/// unbreakable cell (colluding c = f), one seed, short horizon: the
/// boundary bracket converges in 10 probes and the unbreakable cell
/// settles after its two endpoint probes.
fn accept_spec() -> FrontierSpec {
    FrontierSpec {
        name: "frontier-accept".to_string(),
        base: BaseSpec {
            preset: tsn_campaign::Preset::Quick,
            duration_s: Some(12),
            warmup_s: Some(4),
        },
        seeds: vec![21],
        cells: vec![
            FrontierCell {
                strategy: "colluding".to_string(),
                compromised: 2,
                f: None,
            },
            FrontierCell {
                strategy: "colluding".to_string(),
                compromised: 1,
                f: None,
            },
        ],
        axis: FrontierAxis {
            name: "adv_offset_ns".to_string(),
            min: 1_000,
            max: 64_000,
            resolution: 300,
        },
        budget_per_cell: 12,
    }
}

fn opts(dir: &Path, fork: bool) -> RunnerOptions {
    RunnerOptions {
        dir: dir.to_path_buf(),
        threads: 2,
        quiet: true,
        fork,
        check: false,
        trace: None,
        trace_max_events: None,
        panic_label: None,
    }
}

#[test]
fn frontier_localizes_tighter_than_the_grid_with_fewer_runs() {
    let spec = accept_spec();
    let dir = scratch("accept");
    let report = frontier::execute(&spec, &opts(&dir, true)).expect("frontier runs");
    assert!(
        report.failed.is_empty(),
        "probes failed: {:?}",
        report.failed
    );
    assert!(report.violations.is_empty());

    let doc = &report.doc;
    assert!(doc.consistent(), "empirical boundary violates the bound");
    assert!(
        doc.total_runs < doc.grid_runs,
        "adaptive search used {} runs, the fixed grid only {}",
        doc.total_runs,
        doc.grid_runs
    );

    // The breakable cell produced a bracket no wider than the requested
    // resolution, and ≥4× tighter than the grid could localize.
    let breakable = &doc.cells[0];
    let Some(BisectOutcome::Bracket {
        contained_at,
        broken_at,
    }) = breakable.empirical.outcome
    else {
        panic!(
            "colluding c=2 produced no bracket: {:?}",
            breakable.empirical.outcome
        );
    };
    let width = broken_at - contained_at;
    assert!(
        width <= spec.axis.resolution,
        "bracket wider than resolution"
    );
    assert!(
        width * 4 <= doc.grid_spacing,
        "bracket {width} ns is not 4x tighter than the grid's {} ns spacing",
        doc.grid_spacing
    );
    assert!(breakable.empirical.probes <= spec.budget_per_cell);

    // Both bracket ends are witnessed by real on-disk artifacts.
    for hash in [&breakable.witness_contained, &breakable.witness_broken] {
        let hash = hash.as_ref().expect("bracket ends are witnessed");
        assert!(
            dir.join("runs").join(format!("run-{hash}.jsonl")).is_file(),
            "witness artifact run-{hash}.jsonl missing"
        );
    }

    // The break sits at or above the analytical containment guarantee.
    let analytical = breakable.analytical.as_ref().expect("magnitude axis");
    let contained_below = analytical
        .contained_below_ns
        .expect("c > f cells are breakable");
    assert!(
        broken_at as i64 >= contained_below,
        "containment broke at {broken_at} ns, below the {contained_below} ns guarantee"
    );

    // c = f keeps the adversary below quorum: analytically unbreakable,
    // and the search settles it with just the two endpoint probes.
    let unbreakable = &doc.cells[1];
    let a = unbreakable.analytical.as_ref().expect("magnitude axis");
    assert_eq!(a.steered, 0);
    assert_eq!(a.contained_below_ns, None);
    assert_eq!(
        unbreakable.empirical.outcome,
        Some(BisectOutcome::ContainedThroughout)
    );
    assert_eq!(unbreakable.empirical.probes, 2);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn frontier_artifact_is_byte_identical_across_dirs_fork_and_resume() {
    let spec = accept_spec();
    let dir_a = scratch("det-a");
    let dir_b = scratch("det-b");
    let dir_cold = scratch("det-cold");

    let first = frontier::execute(&spec, &opts(&dir_a, true)).expect("first run");
    assert!(first.executed > 0);
    frontier::execute(&spec, &opts(&dir_b, true)).expect("second run");
    let cold = frontier::execute(&spec, &opts(&dir_cold, false)).expect("cold run");
    assert_eq!(cold.forked_groups, 0);

    let artifact = |dir: &Path| std::fs::read(dir.join("frontier.json")).expect("frontier.json");
    assert_eq!(
        artifact(&dir_a),
        artifact(&dir_b),
        "fresh directories disagree"
    );
    assert_eq!(
        artifact(&dir_a),
        artifact(&dir_cold),
        "forked and cold execution disagree"
    );

    // Every probe artifact is also byte-identical between fork and cold.
    let runs = |dir: &Path| -> Vec<(String, Vec<u8>)> {
        let mut files: Vec<_> = std::fs::read_dir(dir.join("runs"))
            .expect("runs dir")
            .filter_map(|e| {
                let e = e.unwrap();
                e.path().is_file().then(|| {
                    (
                        e.file_name().to_string_lossy().into_owned(),
                        std::fs::read(e.path()).unwrap(),
                    )
                })
            })
            .collect();
        files.sort();
        files
    };
    assert_eq!(runs(&dir_a), runs(&dir_cold), "probe artifacts differ");

    // Resuming a completed directory re-executes nothing and leaves the
    // document bytes untouched (total_runs is spec-derived, not
    // invocation-derived).
    let before = artifact(&dir_a);
    let resumed = frontier::execute(&spec, &opts(&dir_a, true)).expect("resume");
    assert_eq!(resumed.executed, 0, "resume re-executed probes");
    assert_eq!(resumed.skipped, first.executed + first.skipped);
    assert_eq!(resumed.doc, first.doc);
    assert_eq!(artifact(&dir_a), before, "resume rewrote frontier.json");

    // The parsed document round-trips to the exact same bytes.
    let parsed = tsn_campaign::FrontierDoc::parse(&String::from_utf8(before.clone()).unwrap())
        .expect("frontier.json parses");
    assert_eq!(parsed.render().into_bytes(), before);

    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
    let _ = std::fs::remove_dir_all(&dir_cold);
}

#[test]
fn frontier_spec_file_matches_builtin() {
    // `specs/frontier_sweep.json` is the file form of the builtin; the
    // two must never drift apart.
    let builtin = FrontierSpec::builtin("frontier-sweep").expect("builtin exists");
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../specs/frontier_sweep.json");
    let text = std::fs::read_to_string(&path).expect("specs/frontier_sweep.json exists");
    let from_file = FrontierSpec::parse(&text).expect("spec file parses");
    assert_eq!(from_file, builtin, "specs/frontier_sweep.json drifted");
    assert_eq!(text, builtin.render(), "spec file bytes drifted");
}
