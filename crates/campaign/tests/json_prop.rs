//! Property tests for the hand-rolled campaign JSON codec.
//!
//! The codec's contract is load-bearing for resume: rendering is
//! canonical (byte-identical across threads and invocations) and
//! parsing must accept exactly what rendering produces — for *any*
//! value, not just the hand-picked unit-test cases. Beyond the
//! round-trip, the parser faces machine-written-but-truncatable files
//! (a crashed run, a partial copy), so truncated and arbitrary input
//! must fail as an error, never as a panic or a stack overflow.
//!
//! Generation notes: `Int` is kept strictly negative because the
//! canonical renderer writes non-negative integers the same way for
//! `Int` and `UInt`, so a non-negative `Int` re-parses as `UInt` by
//! design. Floats are kept finite because JSON has no NaN/Inf (the
//! renderer degrades them to `null`).

use proptest::prelude::*;
use proptest::rand::rngs::StdRng;
use proptest::rand::Rng;
use tsn_campaign::json::Json;

/// Generates an arbitrary `Json` tree of at most `depth` nested levels.
struct ArbJson {
    depth: usize,
}

impl proptest::strategy::Strategy for ArbJson {
    type Value = Json;
    fn generate(&self, rng: &mut StdRng) -> Json {
        gen_json(rng, self.depth)
    }
}

fn gen_json(rng: &mut StdRng, depth: usize) -> Json {
    let arms = if depth == 0 { 6 } else { 8 };
    match rng.gen_range(0..arms) {
        0 => Json::Null,
        1 => Json::Bool(rng.gen()),
        2 => {
            // Strictly negative (see module docs); negating a positive
            // never overflows, and i64::MIN survives as itself.
            let v: i64 = rng.gen();
            Json::Int(match v.cmp(&0) {
                std::cmp::Ordering::Greater => -v,
                std::cmp::Ordering::Equal => -1,
                std::cmp::Ordering::Less => v,
            })
        }
        3 => Json::UInt(rng.gen()),
        4 => Json::Float(gen_float(rng)),
        5 => Json::Str(gen_string(rng)),
        6 => Json::Array(
            (0..rng.gen_range(0..4))
                .map(|_| gen_json(rng, depth - 1))
                .collect(),
        ),
        _ => Json::Object(
            (0..rng.gen_range(0..4))
                .map(|_| (gen_string(rng), gen_json(rng, depth - 1)))
                .collect(),
        ),
    }
}

/// A finite float across ~400 orders of magnitude, so the renderer's
/// shortest form exercises both plain decimals and exponent notation.
fn gen_float(rng: &mut StdRng) -> f64 {
    let mantissa: f64 = rng.gen_range(-1.0e3..1.0e3);
    let exponent: i32 = rng.gen_range(-200..200);
    mantissa * 10f64.powi(exponent)
}

fn gen_string(rng: &mut StdRng) -> String {
    let n = rng.gen_range(0..12);
    (0..n).map(|_| gen_char(rng)).collect()
}

/// Characters across every escaping regime of the writer: the quoted
/// pair, named escapes, raw controls (`\u00xx`), plain ASCII, BMP
/// unicode, and a non-BMP scalar (passed through as raw UTF-8).
fn gen_char(rng: &mut StdRng) -> char {
    match rng.gen_range(0..7) {
        0 => '"',
        1 => '\\',
        2 => char::from_u32(rng.gen_range(0..0x20)).expect("control char"),
        3 => char::from_u32(rng.gen_range(0x20..0x7f)).expect("ascii"),
        4 => char::from_u32(rng.gen_range(0xA0..0xD800)).expect("bmp scalar"),
        5 => char::from_u32(rng.gen_range(0x1F300..0x1F600)).expect("non-bmp scalar"),
        _ => 'a',
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// render → parse is the identity for arbitrary values.
    #[test]
    fn rendered_json_reparses_identically(v in ArbJson { depth: 3 }) {
        let text = v.render();
        match Json::parse(&text) {
            Ok(back) => prop_assert_eq!(back, v),
            Err(e) => prop_assert!(false, "rendering did not reparse: {e} in {text}"),
        }
    }

    /// Every proper prefix of a rendered document is an error — never a
    /// panic, and never a silent partial decode. Wrapping in an object
    /// makes every prefix incomplete (a bare number could truncate to a
    /// shorter valid number).
    #[test]
    fn truncated_documents_error_instead_of_panicking(v in ArbJson { depth: 2 }) {
        let text = Json::object(vec![("k", v)]).render();
        for cut in (0..text.len()).filter(|&i| text.is_char_boundary(i)) {
            prop_assert!(
                Json::parse(&text[..cut]).is_err(),
                "prefix of length {cut} of {text} parsed"
            );
        }
    }

    /// The parser survives arbitrary byte soup (lossily decoded — the
    /// API takes `&str`) without panicking.
    #[test]
    fn parser_never_panics_on_arbitrary_input(
        bytes in proptest::collection::vec(any::<u8>(), 0..64)
    ) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = Json::parse(&text);
    }

    /// Exponent-form numbers hit the float path, whole-number spellings
    /// stay lossless integers.
    #[test]
    fn exponent_numbers_parse_as_floats(m in -1_000_000i64..1_000_000, e in -250i32..250) {
        let text = format!("{m}.5e{e}");
        prop_assert!(
            matches!(Json::parse(&text), Ok(Json::Float(_))),
            "{text} did not parse as a float"
        );
        let whole = format!("{m}");
        let back = Json::parse(&whole).expect("integer parses");
        prop_assert_eq!(back.as_i64(), Some(m));
    }

    /// Nesting past the recursion cap is an error, not a stack
    /// overflow — whether or not the document would otherwise be
    /// complete and well-formed.
    #[test]
    fn overdeep_nesting_errors_instead_of_overflowing(
        depth in 600usize..1500,
        complete in any::<bool>()
    ) {
        let text = if complete {
            format!("{}1{}", "[".repeat(depth), "]".repeat(depth))
        } else {
            "[".repeat(depth)
        };
        let err = Json::parse(&text).expect_err("overdeep document must error");
        prop_assert!(
            err.to_string().contains("nesting too deep"),
            "wrong error: {err}"
        );
    }
}
