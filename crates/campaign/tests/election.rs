//! Campaign-level acceptance of the dynamic BMCA election: the failover
//! and rogue-master behaviour must be readable from the **on-disk
//! artifacts** (records, traces), the election oracles must stay silent
//! under `--check`, and election runs must be byte-identical between
//! cold and forked execution.

use std::path::{Path, PathBuf};
use tsn_campaign::{runner, BaseSpec, CampaignSpec, Grid, RunnerOptions};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tsn-campaign-election-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One seed, election on, GM 0 killed 8 s after warm-up, with and
/// without a rogue master: two runs sharing a warm prefix.
fn election_spec(name: &str) -> CampaignSpec {
    CampaignSpec {
        name: name.to_string(),
        base: BaseSpec {
            preset: tsn_campaign::Preset::Quick,
            duration_s: Some(22),
            warmup_s: Some(6),
        },
        scenarios: vec![clocksync::scenario::ScenarioKind::Baseline],
        grid: Grid {
            seeds: vec![5],
            election: vec![true],
            announce_interval_ms: vec![250],
            gm_failure_at_s: vec![8],
            rogue_master: vec![0, 1],
            ..Grid::default()
        },
    }
}

/// Scans a Chrome-trace JSON text for an instant event `name` whose
/// args object contains every `needles` fragment.
fn trace_has_event(trace: &str, name: &str, needles: &[&str]) -> bool {
    let pat = format!("\"name\":\"{name}\"");
    let mut from = 0;
    while let Some(i) = trace[from..].find(&pat) {
        let at = from + i;
        from = at + pat.len();
        if needles.is_empty() {
            return true;
        }
        let Some(args_at) = trace[at..].find("\"args\":{") else {
            continue;
        };
        let args_start = at + args_at;
        let Some(args_end) = trace[args_start..].find('}') else {
            continue;
        };
        let args = &trace[args_start..args_start + args_end];
        if needles.iter().all(|n| args.contains(n)) {
            return true;
        }
    }
    false
}

#[test]
fn election_failover_is_in_artifacts_and_oracles_stay_silent() {
    let spec = election_spec("election-accept");
    let dir = scratch("accept");
    let trace_dir = scratch("accept-trace");
    let opts = RunnerOptions {
        dir: dir.clone(),
        threads: 2,
        quiet: true,
        fork: false,
        check: true,
        trace: Some(trace_dir.clone()),
        trace_max_events: None,
        panic_label: None,
    };
    let report = runner::execute(&spec, &opts).expect("campaign runs");
    assert_eq!(report.executed, 2);
    // The at-most-one-master and convergence oracles observed the whole
    // kill + rogue campaign and found nothing to report.
    assert!(
        report.violations.is_empty(),
        "election oracles fired: {:?}",
        report.violations
    );

    // Everything below reads from disk only.
    let records = runner::load(&spec, &dir).expect("artifacts load");
    assert_eq!(records.len(), 2);
    let el = clocksync::election::ElectionConfig::default();
    let bound_ns = el.convergence_bound().as_nanos() as u64;
    for r in &records {
        assert_eq!(r.coord.election, Some(true));
        assert!(r.counters.announce_tx > 0, "no Announce traffic recorded");
        assert!(
            r.counters.elected_gm_changes >= 1,
            "GM kill caused no recorded election churn"
        );
        assert!(
            r.counters.reconvergence_ns > 0 && r.counters.reconvergence_ns <= bound_ns,
            "re-election latency {} ns outside (0, {bound_ns}] bound",
            r.counters.reconvergence_ns
        );
    }
    // The rogue run additionally recorded the capture succeeding.
    let rogue = records
        .iter()
        .find(|r| r.coord.rogue_master == Some(1))
        .expect("rogue run present");
    assert_eq!(rogue.counters.strikes_succeeded, 1);
    assert!(
        rogue.counters.elected_gm_changes
            >= records
                .iter()
                .find(|r| r.coord.rogue_master == Some(0))
                .expect("clean run present")
                .counters
                .elected_gm_changes,
        "rogue capture did not add election churn"
    );

    // The trace names the second-best node (node 1, per the deterministic
    // priority ladder) as the re-elected master of the killed domain 0.
    let trace = std::fs::read_to_string(trace_dir.join(format!("trace-{}.json", rogue.hash)))
        .expect("trace artifact exists");
    assert!(
        trace_has_event(&trace, "elected", &["\"domain\":0", "\"winner\":1"]),
        "trace lacks the domain-0 re-election of node 1"
    );
    assert!(
        trace_has_event(&trace, "vm_failure", &[]),
        "trace lacks the scheduled GM kill"
    );
    assert!(
        trace_has_event(&trace, "promoted", &["\"domain\":0"]),
        "trace lacks the domain-0 promotion"
    );

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&trace_dir);
}

#[test]
fn election_runs_fork_byte_identically() {
    let spec = election_spec("election-fork");
    let cold_dir = scratch("cold");
    let fork_dir = scratch("fork");
    let opts = |dir: &Path, fork: bool| RunnerOptions {
        dir: dir.to_path_buf(),
        threads: 2,
        quiet: true,
        fork,
        check: false,
        trace: None,
        trace_max_events: None,
        panic_label: None,
    };

    let cold = runner::execute(&spec, &opts(&cold_dir, false)).expect("cold campaign");
    assert_eq!(cold.executed, 2);
    let forked = runner::execute(&spec, &opts(&fork_dir, true)).expect("forked campaign");
    // The kill and the rogue strike are post-warmup interventions, so
    // both runs share one Announce-traffic warm prefix.
    assert_eq!(forked.forked_groups, 1);
    assert!(forked.prefix_events_skipped > 0);

    let bytes = |dir: &Path| -> Vec<(String, Vec<u8>)> {
        let mut files: Vec<_> = std::fs::read_dir(dir.join("runs"))
            .expect("runs dir exists")
            .map(|e| {
                let e = e.unwrap();
                (
                    e.file_name().to_string_lossy().into_owned(),
                    std::fs::read(e.path()).unwrap(),
                )
            })
            .collect();
        files.sort();
        files
    };
    assert_eq!(
        bytes(&cold_dir),
        bytes(&fork_dir),
        "forked election artifacts differ from cold artifacts"
    );

    let _ = std::fs::remove_dir_all(&cold_dir);
    let _ = std::fs::remove_dir_all(&fork_dir);
}
