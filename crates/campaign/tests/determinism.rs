//! Determinism-under-parallelism guarantees of the campaign engine:
//!
//! * the same spec produces **byte-identical** artifacts at 1 thread
//!   and at N threads;
//! * re-invoking a completed campaign resumes with zero re-execution;
//! * each artifact equals what a direct `scenario::run` with the same
//!   derived seed produces (the pool adds nothing and loses nothing);
//! * two independent executions of the same spec diff as parity.

use clocksync::scenario::{self, ScenarioKind};
use std::path::{Path, PathBuf};
use tsn_campaign::{
    artifact::RunRecord, runner, summary, BaseSpec, CampaignSpec, DiffTolerance, DiffVerdict, Grid,
    RunnerOptions,
};
use tsn_hyp::SyncClockDiscipline;

fn tiny_spec() -> CampaignSpec {
    CampaignSpec {
        name: "determinism".to_string(),
        base: BaseSpec {
            preset: tsn_campaign::Preset::Quick,
            duration_s: Some(6),
            warmup_s: Some(3),
        },
        scenarios: vec![ScenarioKind::Baseline],
        grid: Grid {
            seeds: vec![1, 2, 3, 4],
            disciplines: vec![
                SyncClockDiscipline::Feedback,
                SyncClockDiscipline::FeedForward,
            ],
            ..Grid::default()
        },
    }
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tsn-campaign-determinism-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn opts(dir: &Path, threads: usize) -> RunnerOptions {
    RunnerOptions {
        dir: dir.to_path_buf(),
        threads,
        quiet: true,
        fork: false,
        check: false,
        trace: None,
        trace_max_events: None,
        panic_label: None,
    }
}

fn artifact_bytes(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir.join("runs"))
        .expect("runs dir exists")
        .filter_map(|e| {
            let e = e.unwrap();
            // Skip `runs/corrupt/`, where damaged artifacts are quarantined.
            e.path().is_file().then(|| {
                (
                    e.file_name().to_string_lossy().into_owned(),
                    std::fs::read(e.path()).unwrap(),
                )
            })
        })
        .collect();
    files.sort();
    files
}

#[test]
fn byte_identical_artifacts_across_thread_counts() {
    let spec = tiny_spec();
    let serial_dir = scratch("serial");
    let parallel_dir = scratch("parallel");

    let serial = runner::execute(&spec, &opts(&serial_dir, 1)).expect("serial campaign");
    let parallel = runner::execute(&spec, &opts(&parallel_dir, 4)).expect("parallel campaign");
    assert_eq!(serial.threads, 1);
    assert_eq!(parallel.threads, 4);
    assert_eq!(serial.executed, 8);
    assert_eq!(parallel.executed, 8);

    let a = artifact_bytes(&serial_dir);
    let b = artifact_bytes(&parallel_dir);
    assert_eq!(a.len(), 8);
    assert_eq!(a, b, "artifacts differ between 1 and 4 threads");
    assert_eq!(
        std::fs::read(serial_dir.join("manifest.json")).unwrap(),
        std::fs::read(parallel_dir.join("manifest.json")).unwrap(),
        "manifests differ"
    );

    // Records come back in canonical matrix order either way.
    for (x, y) in serial.records.iter().zip(&parallel.records) {
        assert_eq!(x, y);
    }

    // The two directories summarize and diff as parity (exit code 0).
    let d = summary::diff(
        &summary::summarize(&serial.records),
        &summary::summarize(&parallel.records),
        DiffTolerance::default(),
    );
    assert_eq!(d.verdict, DiffVerdict::Parity);
    assert_eq!(d.verdict.exit_code(), 0);

    let _ = std::fs::remove_dir_all(&serial_dir);
    let _ = std::fs::remove_dir_all(&parallel_dir);
}

#[test]
fn resume_skips_all_completed_runs() {
    let spec = tiny_spec();
    let dir = scratch("resume");

    let first = runner::execute(&spec, &opts(&dir, 2)).expect("first invocation");
    assert_eq!(first.executed, 8);
    assert_eq!(first.skipped, 0);
    let before = artifact_bytes(&dir);

    let second = runner::execute(&spec, &opts(&dir, 2)).expect("second invocation");
    assert_eq!(second.executed, 0, "resume must not re-execute");
    assert_eq!(second.skipped, 8);
    assert_eq!(second.records, first.records);
    assert_eq!(
        artifact_bytes(&dir),
        before,
        "resume must not rewrite artifacts"
    );

    // A corrupted artifact is re-executed (and only that one).
    let victim = dir.join("runs").join(&before[0].0);
    std::fs::write(&victim, "garbage\n").unwrap();
    let third = runner::execute(&spec, &opts(&dir, 2)).expect("third invocation");
    assert_eq!(third.executed, 1);
    assert_eq!(third.skipped, 7);
    assert_eq!(artifact_bytes(&dir), before, "repaired artifact must match");

    // `load` returns the same records without executing anything.
    let loaded = runner::load(&spec, &dir).expect("load completed campaign");
    assert_eq!(loaded, first.records);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pool_runs_equal_direct_scenario_runs() {
    let spec = tiny_spec();
    let dir = scratch("direct");
    let report = runner::execute(&spec, &opts(&dir, 4)).expect("campaign");

    for plan in tsn_campaign::expand(&spec)
        .expect("valid spec")
        .iter()
        .take(3)
    {
        // The derived seed is baked into the materialized config.
        assert_eq!(plan.config.seed, plan.seed);
        let outcome = scenario::run(plan.config.clone());
        let direct = RunRecord::new(&spec.name, plan, &outcome.result);
        let from_pool = &report.records[plan.index];
        assert_eq!(&direct, from_pool, "pool result differs from direct run");
        let on_disk =
            std::fs::read_to_string(dir.join("runs").join(format!("run-{}.jsonl", plan.hash)))
                .expect("artifact exists");
        assert_eq!(
            on_disk,
            direct.encode(),
            "artifact differs from direct encode"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}
