//! Fork-based campaign execution: runs that share a warm prefix (same
//! prefix-relevant coordinates, interventions stripped) must produce
//! artifacts **byte-identical** to cold execution while simulating the
//! shared prefix exactly once per group.

use clocksync::scenario::ScenarioKind;
use std::path::{Path, PathBuf};
use tsn_campaign::{runner, BaseSpec, CampaignSpec, Grid, RunnerOptions};
use tsn_time::SyncState;

/// Baseline plus an intervention scenario: with prefix-relative seed
/// derivation, each seed yields one warm-prefix group of two runs.
fn fork_spec() -> CampaignSpec {
    CampaignSpec {
        name: "fork".to_string(),
        base: BaseSpec {
            preset: tsn_campaign::Preset::Quick,
            duration_s: Some(6),
            warmup_s: Some(3),
        },
        scenarios: vec![ScenarioKind::Baseline, ScenarioKind::CyberIdenticalKernels],
        grid: Grid {
            seeds: vec![1, 2],
            ..Grid::default()
        },
    }
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tsn-campaign-fork-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn opts(dir: &Path, fork: bool) -> RunnerOptions {
    RunnerOptions {
        dir: dir.to_path_buf(),
        threads: 2,
        quiet: true,
        fork,
        check: false,
        trace: None,
        trace_max_events: None,
        panic_label: None,
    }
}

fn artifact_bytes(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir.join("runs"))
        .expect("runs dir exists")
        .map(|e| {
            let e = e.unwrap();
            (
                e.file_name().to_string_lossy().into_owned(),
                std::fs::read(e.path()).unwrap(),
            )
        })
        .collect();
    files.sort();
    files
}

#[test]
fn forked_campaign_matches_cold_campaign_byte_for_byte() {
    let spec = fork_spec();
    let cold_dir = scratch("cold");
    let fork_dir = scratch("fork");

    let cold = runner::execute(&spec, &opts(&cold_dir, false)).expect("cold campaign");
    assert_eq!(cold.executed, 4);
    assert_eq!(cold.forked_groups, 0);
    assert_eq!(cold.prefix_events_skipped, 0);

    let forked = runner::execute(&spec, &opts(&fork_dir, true)).expect("forked campaign");
    assert_eq!(forked.executed, 4);
    // One group per seed, each sharing Baseline + CyberIdenticalKernels.
    assert_eq!(forked.forked_groups, 2);
    assert_eq!(forked.prefix_runs, 2);
    assert!(
        forked.prefix_events_skipped > 0,
        "shared prefixes must skip re-simulated events"
    );

    let a = artifact_bytes(&cold_dir);
    let b = artifact_bytes(&fork_dir);
    assert_eq!(a.len(), 4);
    assert_eq!(a, b, "forked artifacts differ from cold artifacts");
    for (x, y) in cold.records.iter().zip(&forked.records) {
        assert_eq!(x, y);
    }

    let _ = std::fs::remove_dir_all(&cold_dir);
    let _ = std::fs::remove_dir_all(&fork_dir);
}

/// The acceptance scenario of the adversary/degradation layer: a
/// trim-edge adversary plus a partition that starves node 0 below the
/// FTA quorum. The Synchronized → Holdover → Freerun → Synchronized
/// walk must be readable from the *campaign artifacts* (not just the
/// in-memory run result) and byte-identical between cold and forked
/// execution.
#[test]
fn degradation_walk_is_in_artifacts_and_fork_stable() {
    let spec = CampaignSpec {
        name: "fork-degradation".to_string(),
        base: BaseSpec {
            preset: tsn_campaign::Preset::Quick,
            duration_s: Some(22),
            warmup_s: Some(6),
        },
        scenarios: vec![ScenarioKind::Baseline],
        grid: Grid {
            seeds: vec![41],
            strategies: vec!["trim-edge".to_string()],
            compromised: vec![1],
            partition_s: vec![0, 12],
            ..Grid::default()
        },
    };
    let cold_dir = scratch("deg-cold");
    let fork_dir = scratch("deg-fork");

    let cold = runner::execute(&spec, &opts(&cold_dir, false)).expect("cold campaign");
    assert_eq!(cold.executed, 2);
    let forked = runner::execute(&spec, &opts(&fork_dir, true)).expect("forked campaign");
    // Both variants (partitioned and not) share the seed's warm prefix.
    assert_eq!(forked.forked_groups, 1);
    assert_eq!(
        artifact_bytes(&cold_dir),
        artifact_bytes(&fork_dir),
        "forked artifacts differ from cold artifacts"
    );

    // Re-read the partitioned run purely from disk and walk its
    // recorded transitions.
    let records = runner::load(&spec, &cold_dir).expect("artifacts load");
    let partitioned = records
        .iter()
        .find(|r| r.coord.partition_s == Some(12))
        .expect("partitioned run present");
    let warmup_ns = 6_000_000_000;
    let walk: Vec<(SyncState, SyncState)> = partitioned
        .transitions
        .iter()
        .filter(|t| t.at_ns >= warmup_ns && t.node == 0 && t.slot == 0)
        .map(|t| (t.from, t.to))
        .collect();
    assert_eq!(
        walk.first(),
        Some(&(SyncState::Synchronized, SyncState::Holdover)),
        "artifact walk did not enter holdover first: {walk:?}"
    );
    assert!(
        walk.contains(&(SyncState::Holdover, SyncState::Freerun)),
        "artifact walk never reached freerun: {walk:?}"
    );
    assert_eq!(
        walk.last(),
        Some(&(SyncState::Freerun, SyncState::Synchronized)),
        "artifact walk did not re-acquire: {walk:?}"
    );
    // The unpartitioned sibling records no post-warmup degradation.
    let baseline = records
        .iter()
        .find(|r| r.coord.partition_s == Some(0))
        .expect("unpartitioned run present");
    assert!(
        baseline
            .transitions
            .iter()
            .all(|t| t.at_ns < warmup_ns || t.node != 0),
        "unpartitioned run degraded node 0 post-warmup"
    );

    let _ = std::fs::remove_dir_all(&cold_dir);
    let _ = std::fs::remove_dir_all(&fork_dir);
}

#[test]
fn fork_resume_skips_completed_runs() {
    let spec = fork_spec();
    let dir = scratch("resume");

    let first = runner::execute(&spec, &opts(&dir, true)).expect("first invocation");
    assert_eq!(first.executed, 4);

    // Everything resumed: no runs pending, so no prefixes simulated.
    let second = runner::execute(&spec, &opts(&dir, true)).expect("second invocation");
    assert_eq!(second.executed, 0);
    assert_eq!(second.skipped, 4);
    assert_eq!(second.forked_groups, 0);
    assert_eq!(second.records, first.records);

    let _ = std::fs::remove_dir_all(&dir);
}
