//! Fault tolerance of the campaign runner itself:
//!
//! * a run that panics is isolated — the campaign finishes, sibling
//!   artifacts are byte-identical to a clean campaign, the failed run
//!   leaves no artifact, and a later resume retries it;
//! * a bytewise-truncated artifact is quarantined to `runs/corrupt/`
//!   and its run re-executed instead of aborting the resume;
//! * the ring and tree fabric topologies run clean under `--check` and
//!   fork byte-identically to cold execution.

use clocksync::scenario::ScenarioKind;
use std::path::{Path, PathBuf};
use tsn_campaign::{runner, BaseSpec, CampaignSpec, Grid, RunnerOptions};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tsn-campaign-robustness-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tiny_spec(name: &str) -> CampaignSpec {
    CampaignSpec {
        name: name.to_string(),
        base: BaseSpec {
            preset: tsn_campaign::Preset::Quick,
            duration_s: Some(6),
            warmup_s: Some(3),
        },
        scenarios: vec![ScenarioKind::Baseline, ScenarioKind::CyberIdenticalKernels],
        grid: Grid {
            seeds: vec![1, 2],
            ..Grid::default()
        },
    }
}

fn opts(dir: &Path) -> RunnerOptions {
    RunnerOptions {
        dir: dir.to_path_buf(),
        threads: 2,
        quiet: true,
        fork: false,
        check: false,
        trace: None,
        trace_max_events: None,
        panic_label: None,
    }
}

fn artifact_bytes(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir.join("runs"))
        .expect("runs dir exists")
        .filter_map(|e| {
            let e = e.unwrap();
            e.path().is_file().then(|| {
                (
                    e.file_name().to_string_lossy().into_owned(),
                    std::fs::read(e.path()).unwrap(),
                )
            })
        })
        .collect();
    files.sort();
    files
}

#[test]
fn panicking_run_is_isolated_and_perturbs_nothing() {
    let spec = tiny_spec("panic-isolation");
    let clean_dir = scratch("panic-clean");
    let clean = runner::execute(&spec, &opts(&clean_dir)).expect("clean campaign");
    assert_eq!(clean.executed, 4);

    // Same campaign, with the worker for one victim run instructed to
    // panic mid-execution.
    let victim = tsn_campaign::expand(&spec).expect("valid spec")[1].clone();
    let dir = scratch("panic");
    let report = runner::execute(
        &spec,
        &RunnerOptions {
            panic_label: Some(victim.coord.label()),
            ..opts(&dir)
        },
    )
    .expect("campaign must finish despite the panic");

    // Exactly the victim failed; everything else ran to completion.
    assert_eq!(report.failed.len(), 1);
    let failed = &report.failed[0];
    assert_eq!(failed.label, victim.coord.label());
    assert_eq!(failed.hash, victim.hash);
    assert_eq!(failed.index, victim.index);
    assert!(
        failed.to_string().contains("panicked"),
        "failure does not say it panicked: {failed}"
    );
    assert_eq!(report.executed, 3);

    // The failed run left no artifact — not even a partial one.
    let victim_file = format!("run-{}.jsonl", victim.hash);
    assert!(
        !dir.join("runs").join(&victim_file).exists(),
        "failed run left an artifact"
    );

    // Sibling artifacts are byte-identical to the clean campaign's.
    let clean_bytes = artifact_bytes(&clean_dir);
    let with_panic = artifact_bytes(&dir);
    assert_eq!(with_panic.len(), 3);
    for pair in &with_panic {
        assert!(
            clean_bytes.contains(pair),
            "sibling artifact {} perturbed by the panic",
            pair.0
        );
    }

    // A plain resume retries exactly the failed run and completes the
    // campaign to the clean campaign's bytes.
    let resumed = runner::execute(&spec, &opts(&dir)).expect("resume");
    assert_eq!(resumed.executed, 1);
    assert_eq!(resumed.skipped, 3);
    assert!(resumed.failed.is_empty());
    assert_eq!(artifact_bytes(&dir), clean_bytes);

    let _ = std::fs::remove_dir_all(&clean_dir);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_artifact_is_quarantined_and_rerun() {
    let spec = tiny_spec("quarantine");
    let dir = scratch("quarantine");
    let first = runner::execute(&spec, &opts(&dir)).expect("first invocation");
    assert_eq!(first.executed, 4);
    assert_eq!(first.quarantined, 0);
    let before = artifact_bytes(&dir);

    // Bytewise-truncate one artifact — the torn-write failure mode.
    let (victim_name, victim_bytes) = &before[0];
    let victim = dir.join("runs").join(victim_name);
    std::fs::write(&victim, &victim_bytes[..victim_bytes.len() / 2]).unwrap();

    let second = runner::execute(&spec, &opts(&dir)).expect("resume over corruption");
    assert_eq!(second.quarantined, 1, "truncated artifact not quarantined");
    assert_eq!(second.executed, 1);
    assert_eq!(second.skipped, 3);
    assert_eq!(second.records, first.records);

    // The damaged bytes were preserved for forensics, not destroyed...
    let quarantined = dir.join("runs").join("corrupt").join(victim_name);
    assert_eq!(
        std::fs::read(&quarantined).expect("quarantined copy exists"),
        &victim_bytes[..victim_bytes.len() / 2]
    );
    // ...and the re-executed artifact matches the original bytes.
    assert_eq!(artifact_bytes(&dir), before);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ring_and_tree_fabrics_run_clean_and_fork_identically() {
    // Two topologies × two scenarios on one seed: the cyber scenario is
    // intervention-only, so each topology forms one warm-prefix group
    // of {baseline, cyber} (topology itself is prefix-relevant and
    // never forks across).
    let spec = CampaignSpec {
        name: "fabric-topo".to_string(),
        base: BaseSpec {
            preset: tsn_campaign::Preset::Quick,
            duration_s: Some(6),
            warmup_s: Some(3),
        },
        scenarios: vec![ScenarioKind::Baseline, ScenarioKind::CyberIdenticalKernels],
        grid: Grid {
            seeds: vec![7],
            topology: vec!["ring".to_string(), "tree".to_string()],
            hops: vec![2],
            ..Grid::default()
        },
    };

    // Checked cold execution: the invariant oracle watches every run.
    let check_dir = scratch("topo-check");
    let checked = runner::execute(
        &spec,
        &RunnerOptions {
            check: true,
            ..opts(&check_dir)
        },
    )
    .expect("checked campaign");
    assert_eq!(checked.executed, 4);
    assert!(
        checked.violations.is_empty(),
        "ring/tree fabrics violated invariants: {:?}",
        checked.violations
    );
    assert!(checked.failed.is_empty());

    // Forked execution produces byte-identical artifacts.
    let fork_dir = scratch("topo-fork");
    let forked = runner::execute(
        &spec,
        &RunnerOptions {
            fork: true,
            ..opts(&fork_dir)
        },
    )
    .expect("forked campaign");
    assert!(forked.forked_groups > 0, "no warm-prefix group formed");
    assert!(forked.prefix_events_skipped > 0);
    assert_eq!(
        artifact_bytes(&check_dir),
        artifact_bytes(&fork_dir),
        "forked ring/tree artifacts differ from cold artifacts"
    );

    // Both topologies are actually present in the artifacts.
    let records = runner::load(&spec, &check_dir).expect("artifacts load");
    for topo in ["ring", "tree"] {
        assert!(
            records.iter().any(|r| r.coord.topology == Some(topo)),
            "no {topo} run in artifacts"
        );
    }

    let _ = std::fs::remove_dir_all(&check_dir);
    let _ = std::fs::remove_dir_all(&fork_dir);
}
