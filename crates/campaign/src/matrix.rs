//! Deterministic expansion of a [`CampaignSpec`] into concrete runs.
//!
//! The matrix is the cross product of the spec's axes, in a fixed
//! nesting order. Each run's seed is derived with the workspace's
//! splittable hashing ([`SeedSplitter`]): the grid seed is the master
//! and the remaining coordinates form the label, so a run's seed — and
//! therefore its result — is a pure function of its coordinate,
//! independent of enumeration order and of how many worker threads
//! execute the campaign. Each run also gets a content hash over the
//! base configuration and coordinate, which names its artifact and
//! keys resume.

use crate::spec::{strategy_static, BaseSpec, CampaignSpec, KernelChoice, SpecError};
use clocksync::scenario::ScenarioKind;
use clocksync::TestbedConfig;
use tsn_faults::{
    AttackPlan, ByzantineStrategy, CveId, InjectorConfig, KernelAssignment, Strike,
    PAPER_POT_OFFSET,
};
use tsn_hyp::SyncClockDiscipline;
use tsn_netsim::{LinkFaultPlan, SeedSplitter};
use tsn_time::{Nanos, SimTime};

/// One point of the campaign grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Coord {
    /// The scenario.
    pub scenario: ScenarioKind,
    /// The grid seed (replication axis).
    pub seed: u64,
    /// Domain count M, if the axis is active.
    pub domains: Option<usize>,
    /// Sync interval S in ms, if the axis is active.
    pub sync_interval_ms: Option<u64>,
    /// Kernel assignment override, if the axis is active.
    pub kernel: Option<KernelChoice>,
    /// Injector rate (random shutdowns per node per hour), if active.
    pub fault_rate_per_hour: Option<u32>,
    /// Clock discipline override, if the axis is active.
    pub discipline: Option<SyncClockDiscipline>,
    /// Adversary strategy preset name ([`ByzantineStrategy::NAMES`]
    /// spelling, interned via [`strategy_static`]), if the axis is
    /// active.
    pub strategy: Option<&'static str>,
    /// Number of compromised GM domains, if the axis is active.
    pub compromised: Option<usize>,
    /// Per-link i.i.d. loss in permille, if the axis is active.
    pub loss_permille: Option<u32>,
    /// Partition duration in seconds (node 0, from +2 s), if active.
    pub partition_s: Option<u64>,
    /// Dynamic BMCA election override, if the axis is active (`None`
    /// defers to the family rule — see [`Coord::election_active`]).
    pub election: Option<bool>,
    /// Announce interval in ms, if the axis is active.
    pub announce_interval_ms: Option<u64>,
    /// Scheduled GM kill time (seconds after warm-up), if active.
    pub gm_failure_at_s: Option<u64>,
    /// Rogue-master count, if the axis is active.
    pub rogue_master: Option<usize>,
    /// Fabric depth (hops through the line of TSN switches), if the
    /// axis is active (activates the fabric — see
    /// [`Coord::fabric_active`]).
    pub hops: Option<u32>,
    /// Best-effort cross-traffic load on each fabric egress port, in
    /// percent of the gate-open window, if the axis is active
    /// (activates the fabric).
    pub cross_traffic_pct: Option<u32>,
    /// Directional link-delay asymmetry per fabric hop in nanoseconds,
    /// if the axis is active (activates the fabric).
    pub asymmetry_ns: Option<u64>,
    /// Transparent-clock mode: `true` accumulates per-hop residence
    /// into the gPTP correction field, `false` exposes the raw
    /// end-to-end queuing error. Activates the fabric.
    pub tc_mode: Option<bool>,
    /// Fabric topology name ([`crate::spec::TOPOLOGY_NAMES`] spelling,
    /// interned via [`crate::spec::topology_static`]), if the axis is
    /// active (activates the fabric).
    pub topology: Option<&'static str>,
    /// Adversary shift magnitude in nanoseconds, if the axis is active:
    /// replaces the strategy preset's dominant waveform parameter
    /// ([`ByzantineStrategy::with_magnitude`]; activates the attack).
    pub adv_offset_ns: Option<u64>,
    /// Aggregation trim degree `f` override, if the axis is active.
    pub fta_f: Option<usize>,
    /// Fleet size (ECDs attached to the generated switch fleet), if the
    /// axis is active (activates the fleet — see
    /// [`Coord::fleet_active`] — and thereby the fabric).
    pub fleet_nodes: Option<u32>,
    /// Fleet topology name ([`crate::spec::FLEET_TOPOLOGY_NAMES`]
    /// spelling, interned via [`crate::spec::fleet_topology_static`]),
    /// if the axis is active (activates the fleet).
    pub fleet_topology: Option<&'static str>,
}

impl Coord {
    /// The canonical label of this coordinate (stable across releases;
    /// seeds and hashes are derived from it).
    pub fn label(&self) -> String {
        fn opt<T: std::fmt::Display>(v: Option<T>) -> String {
            v.map_or_else(|| "-".to_string(), |v| v.to_string())
        }
        let mut label = format!(
            "scenario={}/seed={}/domains={}/sync_ms={}/kernel={}/rate={}/discipline={}/strategy={}/byz={}/loss_pm={}/partition_s={}",
            self.scenario.name(),
            self.seed,
            opt(self.domains),
            opt(self.sync_interval_ms),
            opt(self.kernel.map(KernelChoice::name)),
            opt(self.fault_rate_per_hour),
            opt(self.discipline.map(crate::spec::discipline_name)),
            opt(self.strategy),
            opt(self.compromised),
            opt(self.loss_permille),
            opt(self.partition_s),
        );
        // Election segments appear only when their axis is active, so
        // labels — and the hashes and seeds derived from them — of
        // campaigns that never touch the election axes are unchanged.
        if let Some(e) = self.election {
            label.push_str(&format!("/election={e}"));
        }
        if let Some(ms) = self.announce_interval_ms {
            label.push_str(&format!("/announce_ms={ms}"));
        }
        if let Some(s) = self.gm_failure_at_s {
            label.push_str(&format!("/gm_kill_s={s}"));
        }
        if let Some(r) = self.rogue_master {
            label.push_str(&format!("/rogue={r}"));
        }
        // Fabric segments follow the same rule: absent axes render the
        // pre-fabric label, so existing campaign hashes are unchanged.
        if let Some(h) = self.hops {
            label.push_str(&format!("/hops={h}"));
        }
        if let Some(p) = self.cross_traffic_pct {
            label.push_str(&format!("/xload_pct={p}"));
        }
        if let Some(a) = self.asymmetry_ns {
            label.push_str(&format!("/asym_ns={a}"));
        }
        if let Some(t) = self.tc_mode {
            label.push_str(&format!("/tc={t}"));
        }
        if let Some(t) = self.topology {
            label.push_str(&format!("/topo={t}"));
        }
        // Frontier segments (PR 9), same label-conditional rule.
        if let Some(a) = self.adv_offset_ns {
            label.push_str(&format!("/adv_ns={a}"));
        }
        if let Some(f) = self.fta_f {
            label.push_str(&format!("/fta_f={f}"));
        }
        // Fleet segments (PR 10), same label-conditional rule.
        if let Some(n) = self.fleet_nodes {
            label.push_str(&format!("/fleet_n={n}"));
        }
        if let Some(t) = self.fleet_topology {
            label.push_str(&format!("/fleet_topo={t}"));
        }
        label
    }

    /// Whether this coordinate runs behind the multi-hop switch fabric:
    /// any active fabric axis (`hops`, `cross_traffic_pct`,
    /// `asymmetry_ns`, `tc_mode`, `topology`) activates it, with the
    /// others defaulted ([`tsn_fabric::FabricConfig::line`] of 1 hop,
    /// no cross-traffic, symmetric links, end-to-end mode, line
    /// topology). An active fleet ([`Coord::fleet_active`]) also
    /// activates the fabric: the generated switch fleet condenses into
    /// the fabric configuration.
    pub fn fabric_active(&self) -> bool {
        self.hops.is_some()
            || self.cross_traffic_pct.is_some()
            || self.asymmetry_ns.is_some()
            || self.tc_mode.is_some()
            || self.topology.is_some()
            || self.fleet_active()
    }

    /// Whether this coordinate runs behind a *generated* switch fleet:
    /// either fleet axis (`fleet_nodes`, `fleet_topology`) activates it
    /// with the other defaulted (256 nodes, line shape). The fleet's
    /// structural axes (`hops`, `topology`) are mutually exclusive with
    /// the fleet axes — the generator owns depth and shape.
    pub fn fleet_active(&self) -> bool {
        self.fleet_nodes.is_some() || self.fleet_topology.is_some()
    }

    /// Whether this coordinate runs with the dynamic election: an
    /// explicit `election` value wins; otherwise any active election
    /// axis (`announce_interval_ms`, `gm_failure_at_s`, `rogue_master`)
    /// activates it implicitly.
    pub fn election_active(&self) -> bool {
        self.election.unwrap_or(
            self.announce_interval_ms.is_some()
                || self.gm_failure_at_s.is_some()
                || self.rogue_master.is_some(),
        )
    }

    /// The coordinates that shape a run's warm prefix: the grid seed and
    /// the axes that alter the world before any intervention can act
    /// (topology size, sync interval, clock discipline, trim degree).
    /// Scenario, kernel assignment, injector rate, adversary strategy,
    /// compromised count, adversary magnitude, link loss, and partitions
    /// only influence post-warmup behavior and are deliberately
    /// excluded — the frontier's magnitude probes in particular all
    /// share one warm prefix per cell.
    pub fn prefix_label(&self) -> String {
        fn opt<T: std::fmt::Display>(v: Option<T>) -> String {
            v.map_or_else(|| "-".to_string(), |v| v.to_string())
        }
        let mut label = format!(
            "seed={}/domains={}/sync_ms={}/discipline={}",
            self.seed,
            opt(self.domains),
            opt(self.sync_interval_ms),
            opt(self.discipline.map(crate::spec::discipline_name)),
        );
        // The trim degree reshapes every aggregation from t = 0, so it is
        // prefix-relevant — but only when the axis is active, keeping
        // derived seeds of pre-existing campaigns unchanged.
        if let Some(f) = self.fta_f {
            label.push_str(&format!("/fta_f={f}"));
        }
        // The election's Announce traffic runs during the warm-up, so
        // its *effective* activation and interval shape the prefix; the
        // GM kill and rogue strikes fire strictly after it and stay
        // excluded (their variants remain paired comparisons).
        if self.election_active() {
            label.push_str(&format!(
                "/election=on/announce_ms={}",
                self.announce_interval_ms.unwrap_or(250)
            ));
        }
        // The fabric carries every inter-node gPTP frame from t = 0, so
        // all four of its effective knobs shape the warm prefix.
        if self.fabric_active() {
            label.push_str(&format!(
                "/fabric=on/hops={}/xload_pct={}/asym_ns={}/tc={}",
                self.hops.unwrap_or(1),
                self.cross_traffic_pct.unwrap_or(0),
                self.asymmetry_ns.unwrap_or(0),
                self.tc_mode.unwrap_or(false),
            ));
            // Label-conditional, NOT defaulted: rendering `/topo=line`
            // for every fabric run would silently change the derived
            // seeds (and artifact bytes) of pre-topology campaigns.
            if let Some(t) = self.topology {
                label.push_str(&format!("/topo={t}"));
            }
        }
        // A generated fleet replaces the fabric's structural knobs from
        // t = 0, so its effective size and shape are prefix-relevant.
        // (No pre-fleet campaign carries these axes, so rendering the
        // defaults here cannot move an existing derived seed.)
        if self.fleet_active() {
            label.push_str(&format!(
                "/fleet=on/n={}/topo={}",
                self.fleet_nodes.unwrap_or(crate::spec::DEFAULT_FLEET_NODES),
                self.fleet_topology.unwrap_or("line"),
            ));
        }
        label
    }

    /// The seed of the fleet-topology generator: split from the *grid*
    /// seed and the effective fleet axes only, so generation is a pure
    /// function of `(spec, seed)` — independent of enumeration order,
    /// thread count, and every non-fleet axis.
    pub fn fleet_seed(&self) -> u64 {
        SeedSplitter::new(self.seed).seed(&format!(
            "fleet/n={}/topo={}",
            self.fleet_nodes.unwrap_or(crate::spec::DEFAULT_FLEET_NODES),
            self.fleet_topology.unwrap_or("line"),
        ))
    }

    /// The run's derived seed: splittable hash of the grid seed and the
    /// prefix-relevant coordinates ([`Coord::prefix_label`]), so
    /// neighboring grid points get independent randomness even for
    /// consecutive grid seeds.
    ///
    /// Intervention-only axes (scenario, kernel, fault rate) are *not*
    /// folded in: variants along them share one seed and therefore one
    /// warm prefix. That makes them paired comparisons — the same world,
    /// the same noise, differing only in the intervention — and lets
    /// fork-based execution simulate the shared prefix once.
    pub fn derived_seed(&self) -> u64 {
        SeedSplitter::new(self.seed).seed(&format!("campaign/{}", self.prefix_label()))
    }
}

/// One fully materialized run of a campaign.
#[derive(Debug, Clone)]
pub struct RunPlan {
    /// Position in the canonical enumeration order (progress display).
    pub index: usize,
    /// The grid coordinate.
    pub coord: Coord,
    /// The derived seed (equals `config.seed`).
    pub seed: u64,
    /// Content hash over base + coordinate (hex, names the artifact).
    pub hash: String,
    /// The ready-to-run configuration.
    pub config: TestbedConfig,
}

/// Expands a spec into its run matrix, in canonical order.
///
/// # Errors
///
/// Returns the [`SpecError`] of [`CampaignSpec::validate`] when the spec
/// is invalid (untrusted input never panics; the CLI maps this to
/// exit 2).
pub fn expand(spec: &CampaignSpec) -> Result<Vec<RunPlan>, SpecError> {
    spec.validate()?;
    let base_fingerprint = spec.base.to_fingerprint();
    let mut plans = Vec::with_capacity(spec.total_runs());
    // Fixed nesting: scenario, then the sweep axes, seeds innermost so
    // progress interleaves replications of the same grid point last.
    let strategies: Vec<&'static str> = spec
        .grid
        .strategies
        .iter()
        .map(|s| {
            strategy_static(s)
                .ok_or_else(|| SpecError::Value("grid.strategies[]".to_string(), s.clone()))
        })
        .collect::<Result<_, _>>()?;
    let topologies: Vec<&'static str> = spec
        .grid
        .topology
        .iter()
        .map(|t| {
            crate::spec::topology_static(t)
                .ok_or_else(|| SpecError::Value("grid.topology[]".to_string(), t.clone()))
        })
        .collect::<Result<_, _>>()?;
    let fleet_topologies: Vec<&'static str> = spec
        .grid
        .fleet_topology
        .iter()
        .map(|t| {
            crate::spec::fleet_topology_static(t)
                .ok_or_else(|| SpecError::Value("grid.fleet_topology[]".to_string(), t.clone()))
        })
        .collect::<Result<_, _>>()?;
    for &scenario in &spec.scenarios {
        for &domains in &axis(&spec.grid.domains) {
            for &sync_ms in &axis(&spec.grid.sync_interval_ms) {
                for &kernel in &axis(&spec.grid.kernels) {
                    for &rate in &axis(&spec.grid.fault_rate_per_hour) {
                        for &discipline in &axis(&spec.grid.disciplines) {
                            for &strategy in &axis(&strategies) {
                                for &compromised in &axis(&spec.grid.compromised) {
                                    for &loss_permille in &axis(&spec.grid.loss_permille) {
                                        for &partition_s in &axis(&spec.grid.partition_s) {
                                            for &election in &axis(&spec.grid.election) {
                                                for &announce in
                                                    &axis(&spec.grid.announce_interval_ms)
                                                {
                                                    for &gm_kill in
                                                        &axis(&spec.grid.gm_failure_at_s)
                                                    {
                                                        for &rogue in &axis(&spec.grid.rogue_master)
                                                        {
                                                            expand_fabric(
                                                                spec,
                                                                &base_fingerprint,
                                                                Coord {
                                                                    scenario,
                                                                    seed: 0,
                                                                    domains,
                                                                    sync_interval_ms: sync_ms,
                                                                    kernel,
                                                                    fault_rate_per_hour: rate,
                                                                    discipline,
                                                                    strategy,
                                                                    compromised,
                                                                    loss_permille,
                                                                    partition_s,
                                                                    election,
                                                                    announce_interval_ms: announce,
                                                                    gm_failure_at_s: gm_kill,
                                                                    rogue_master: rogue,
                                                                    hops: None,
                                                                    cross_traffic_pct: None,
                                                                    asymmetry_ns: None,
                                                                    tc_mode: None,
                                                                    topology: None,
                                                                    adv_offset_ns: None,
                                                                    fta_f: None,
                                                                    fleet_nodes: None,
                                                                    fleet_topology: None,
                                                                },
                                                                &topologies,
                                                                &fleet_topologies,
                                                                &mut plans,
                                                            )?;
                                                        }
                                                    }
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(plans)
}

/// The innermost loops of [`expand`]: the fabric axes and the seeds
/// (still innermost), split out so the nesting stays readable. The
/// partial coordinate carries every outer axis; its placeholder seed is
/// overwritten here.
fn expand_fabric(
    spec: &CampaignSpec,
    base_fingerprint: &str,
    partial: Coord,
    topologies: &[&'static str],
    fleet_topologies: &[&'static str],
    plans: &mut Vec<RunPlan>,
) -> Result<(), SpecError> {
    for &hops in &axis(&spec.grid.hops) {
        for &cross_traffic_pct in &axis(&spec.grid.cross_traffic_pct) {
            for &asymmetry_ns in &axis(&spec.grid.asymmetry_ns) {
                for &tc_mode in &axis(&spec.grid.tc_mode) {
                    for &topology in &axis(topologies) {
                        for &adv_offset_ns in &axis(&spec.grid.adv_offset_ns) {
                            for &fta_f in &axis(&spec.grid.fta_f) {
                                for &fleet_nodes in &axis(&spec.grid.fleet_nodes) {
                                    for &fleet_topology in &axis(fleet_topologies) {
                                        for &seed in &spec.grid.seeds {
                                            let coord = Coord {
                                                seed,
                                                hops,
                                                cross_traffic_pct,
                                                asymmetry_ns,
                                                tc_mode,
                                                topology,
                                                adv_offset_ns,
                                                fta_f,
                                                fleet_nodes,
                                                fleet_topology,
                                                ..partial
                                            };
                                            plans.push(plan(
                                                &spec.base,
                                                base_fingerprint,
                                                coord,
                                                plans.len(),
                                            )?);
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// An axis as its `Some`-wrapped values, or a single `None` when the
/// axis is inactive (empty). Axes are tiny, so the allocation is noise.
fn axis<T: Copy>(values: &[T]) -> Vec<Option<T>> {
    if values.is_empty() {
        vec![None]
    } else {
        values.iter().map(|&v| Some(v)).collect()
    }
}

fn plan(
    base: &BaseSpec,
    base_fingerprint: &str,
    coord: Coord,
    index: usize,
) -> Result<RunPlan, SpecError> {
    let seed = coord.derived_seed();
    let config = materialize(base, coord, seed)?;
    let hash = content_hash(base_fingerprint, &coord);
    Ok(RunPlan {
        index,
        coord,
        seed,
        hash,
        config,
    })
}

/// Materializes the testbed configuration of one grid point.
///
/// # Errors
///
/// Returns [`SpecError::Value`] for a strategy name outside
/// [`ByzantineStrategy::NAMES`]. [`expand`] pre-validates the spec so
/// this never fires there, but `materialize` is public and a caller can
/// hand it a [`Coord`] that skipped [`CampaignSpec::validate`] — bad
/// input must be an error, never a panic.
pub fn materialize(
    base: &BaseSpec,
    coord: Coord,
    derived_seed: u64,
) -> Result<TestbedConfig, SpecError> {
    let mut cfg = base.materialize(derived_seed);
    if let Some(m) = coord.domains {
        cfg.nodes = m;
        cfg.aggregation.domains = m;
    }
    // Keep the kernels/nodes invariant before the scenario applies; the
    // scenario or the kernel axis may still override the assignment.
    cfg.kernels = KernelAssignment::identical(cfg.nodes);
    if let Some(s) = coord.sync_interval_ms {
        let s = Nanos::from_millis(s as i64);
        cfg.sync_interval = s;
        cfg.aggregation.sync_interval = s;
        cfg.aggregation.staleness = s * 4;
    }
    if let Some(d) = coord.discipline {
        cfg.sync_clock_discipline = d;
    }
    coord.scenario.apply(&mut cfg);
    // Trim-degree axis: keep the configured method family, swap its f.
    // Mean/median baselines have no trim step, so the axis restores the
    // paper's FTA (the axis exists to move f, not to pick the baseline).
    if let Some(f) = coord.fta_f {
        cfg.aggregation.method = match cfg.aggregation.method {
            tsn_fta::AggregationMethod::FaultTolerantMidpoint { .. } => {
                tsn_fta::AggregationMethod::FaultTolerantMidpoint { f }
            }
            _ => tsn_fta::AggregationMethod::FaultTolerantAverage { f },
        };
    }
    if let Some(k) = coord.kernel {
        cfg.kernels = match k {
            KernelChoice::Identical => KernelAssignment::identical(cfg.nodes),
            KernelChoice::Diverse => KernelAssignment::diverse(cfg.nodes, 3.min(cfg.nodes - 1)),
        };
    }
    if let Some(rate) = coord.fault_rate_per_hour {
        let mut fi = cfg.fault_injection.unwrap_or_else(|| InjectorConfig {
            duration: cfg.duration,
            nodes: cfg.nodes,
            ..InjectorConfig::paper_default()
        });
        fi.duration = cfg.duration;
        fi.nodes = cfg.nodes;
        fi.random_per_hour_max = rate;
        fi.random_per_hour_min = fi.random_per_hour_min.min(rate);
        cfg.fault_injection = Some(fi);
    }
    // Adversary axes: `compromised` GMs (highest node indices, like the
    // paper's node-3 strike) all run the same strategy from +2 s. Any
    // of the three axes alone activates the attack with the others
    // defaulted; an active magnitude axis rescales the preset's
    // dominant waveform parameter (the frontier's probe axis).
    if coord.strategy.is_some() || coord.compromised.is_some() || coord.adv_offset_ns.is_some() {
        let name = coord.strategy.unwrap_or("constant");
        let strategy = match coord.adv_offset_ns {
            Some(m) => ByzantineStrategy::with_magnitude(name, Nanos::from_nanos(m as i64)),
            None => ByzantineStrategy::named(name),
        }
        .ok_or_else(|| SpecError::Value("grid.strategies[]".to_string(), name.to_string()))?;
        let byz = coord.compromised.unwrap_or(1).min(cfg.nodes - 1);
        let strikes = (0..byz)
            .map(|k| Strike {
                at: SimTime::from_secs(2),
                target_node: cfg.nodes - 1 - k,
                cve: CveId::Cve2018_18955,
                pot_offset: PAPER_POT_OFFSET,
                strategy: Some(strategy),
            })
            .collect();
        cfg.attack = AttackPlan::new(strikes);
    }
    if let Some(permille) = coord.loss_permille {
        if permille > 0 {
            cfg.link_faults = Some(LinkFaultPlan::with_loss(f64::from(permille) / 1000.0));
        }
    }
    if let Some(seconds) = coord.partition_s {
        if seconds > 0 {
            cfg.partition = Some(crate::spec::partition_window(seconds));
        }
    }
    // Election axes: any of them activates dynamic BMCA election unless
    // an explicit `election=false` cell keeps the static control.
    if coord.election_active() {
        let mut el = clocksync::election::ElectionConfig::default();
        if let Some(ms) = coord.announce_interval_ms {
            el.announce_interval = Nanos::from_millis(ms as i64);
        }
        if let Some(s) = coord.gm_failure_at_s {
            el.gm_failure_at = Some(Nanos::from_secs(s as i64));
            el.gm_failure_node = 0;
        }
        cfg.election = Some(el);
        if let Some(rogues) = coord.rogue_master {
            let rogues = rogues.min(cfg.nodes - 1);
            let strikes = (0..rogues)
                .map(|k| Strike {
                    at: SimTime::from_secs(2),
                    target_node: cfg.nodes - 1 - k,
                    cve: CveId::Cve2018_18955,
                    pot_offset: PAPER_POT_OFFSET,
                    strategy: Some(ByzantineStrategy::RogueMaster {
                        offset: PAPER_POT_OFFSET,
                    }),
                })
                .collect();
            cfg.attack = AttackPlan::new(strikes);
        }
    }
    // Fabric axes: any of them routes inter-node gPTP traffic through a
    // fabric of TSN switches, with unset axes at their neutral defaults
    // (line topology, 1 hop, no cross-traffic, symmetric links,
    // end-to-end mode). An active fleet generates the switch fleet
    // instead and condenses it into the fabric configuration — its
    // structural knobs (depth, shape, residence spread) come from the
    // generated topology, so the explicit `hops`/`topology` axes are
    // rejected alongside it ([`CampaignSpec::validate`] enforces this
    // for specs; a hand-built coordinate gets the same error here).
    if coord.fabric_active() {
        let mut fabric = if coord.fleet_active() {
            if coord.hops.is_some() || coord.topology.is_some() {
                return Err(SpecError::Value(
                    "grid.fleet_nodes/fleet_topology".to_string(),
                    "mutually exclusive with grid.hops and grid.topology".to_string(),
                ));
            }
            let shape_name = coord.fleet_topology.unwrap_or("line");
            let shape = clocksync::fabric::FleetShape::parse(shape_name).ok_or_else(|| {
                SpecError::Value("grid.fleet_topology[]".to_string(), shape_name.to_string())
            })?;
            let nodes = coord.fleet_nodes.unwrap_or(crate::spec::DEFAULT_FLEET_NODES);
            let fleet = clocksync::fabric::FleetTopology::generate(nodes, shape, coord.fleet_seed());
            fleet.condense(&clocksync::fabric::FabricConfig::default())
        } else {
            let mut fabric = clocksync::fabric::FabricConfig::line(coord.hops.unwrap_or(1));
            if let Some(t) = coord.topology {
                fabric.topology = crate::spec::parse_topology(t).ok_or_else(|| {
                    SpecError::Value("grid.topology[]".to_string(), t.to_string())
                })?;
            }
            fabric
        };
        if let Some(pct) = coord.cross_traffic_pct {
            fabric.cross_traffic_load = f64::from(pct) / 100.0;
        }
        if let Some(ns) = coord.asymmetry_ns {
            fabric.asymmetry_ns = Nanos::from_nanos(ns as i64);
        }
        fabric.transparent_clock = coord.tc_mode.unwrap_or(false);
        cfg.fabric = Some(fabric);
    }
    cfg.validate();
    Ok(cfg)
}

impl BaseSpec {
    /// A canonical fingerprint of the base configuration, folded into
    /// every run's content hash so artifacts are invalidated when the
    /// base changes (e.g. a different duration).
    pub fn to_fingerprint(&self) -> String {
        format!(
            "preset={}/duration_s={}/warmup_s={}",
            self.preset.name(),
            self.duration_s
                .map_or_else(|| "-".to_string(), |d| d.to_string()),
            self.warmup_s
                .map_or_else(|| "-".to_string(), |w| w.to_string()),
        )
    }
}

/// The content hash naming a run's artifact: FNV-1a (via the seed
/// splitter's stable hash) over the base fingerprint and the coordinate
/// label, rendered as 16 hex digits.
pub fn content_hash(base_fingerprint: &str, coord: &Coord) -> String {
    let h = SeedSplitter::new(0xC0FFEE).seed(&format!("{base_fingerprint}|{}", coord.label()));
    format!("{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Grid;

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec {
            name: "tiny".to_string(),
            base: BaseSpec::quick(10),
            scenarios: vec![ScenarioKind::Baseline, ScenarioKind::PriorWorkBaseline],
            grid: Grid {
                seeds: vec![1, 2],
                domains: vec![4, 5],
                ..Grid::default()
            },
        }
    }

    #[test]
    fn expansion_is_complete_and_ordered() {
        let spec = tiny_spec();
        let plans = expand(&spec).expect("valid spec");
        assert_eq!(plans.len(), spec.total_runs());
        assert_eq!(plans.len(), 8);
        for (i, p) in plans.iter().enumerate() {
            assert_eq!(p.index, i);
        }
        // All hashes distinct.
        let mut hashes: Vec<_> = plans.iter().map(|p| p.hash.clone()).collect();
        hashes.sort();
        hashes.dedup();
        assert_eq!(hashes.len(), plans.len());
    }

    #[test]
    fn derived_seeds_are_coordinate_pure() {
        let spec = tiny_spec();
        let a = expand(&spec).expect("valid spec");
        let b = expand(&spec).expect("valid spec");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.hash, y.hash);
        }
        // Different grid points with the same grid seed still get
        // different derived seeds.
        assert_ne!(a[0].seed, a[2].seed);
    }

    #[test]
    fn intervention_axes_share_derived_seeds() {
        // tiny_spec order: scenario outermost, domains, seeds innermost.
        // (Baseline, dom=4, seed=1) is index 0; (PriorWorkBaseline,
        // dom=4, seed=1) is index 4: same prefix coordinates, so the
        // scenario variants are paired (same derived seed) while their
        // artifacts stay distinct (different content hashes).
        let plans = expand(&tiny_spec()).expect("valid spec");
        assert_eq!(plans[0].seed, plans[4].seed);
        assert_ne!(plans[0].hash, plans[4].hash);
        assert_eq!(plans[0].coord.prefix_label(), plans[4].coord.prefix_label());
    }

    #[test]
    fn base_change_invalidates_hashes() {
        let spec = tiny_spec();
        let mut longer = spec.clone();
        longer.base.duration_s = Some(20);
        let a = expand(&spec).expect("valid spec");
        let b = expand(&longer).expect("valid spec");
        assert_ne!(a[0].hash, b[0].hash);
        // Coordinate (and thus derived seed) is unchanged.
        assert_eq!(a[0].seed, b[0].seed);
    }

    /// Regression: `materialize` used to `expect()` that validate() had
    /// interned the strategy name — true inside `expand`, but
    /// `materialize` is public and a hand-built [`Coord`] could reach
    /// the panic. Bad names are a [`SpecError`] now.
    #[test]
    fn materialize_rejects_unknown_strategy_without_panicking() {
        let base = BaseSpec::quick(10);
        let mut coord = Coord {
            scenario: ScenarioKind::Baseline,
            seed: 1,
            domains: None,
            sync_interval_ms: None,
            kernel: None,
            fault_rate_per_hour: None,
            discipline: None,
            strategy: Some("no-such-strategy"),
            compromised: None,
            loss_permille: None,
            partition_s: None,
            election: None,
            announce_interval_ms: None,
            gm_failure_at_s: None,
            rogue_master: None,
            hops: None,
            cross_traffic_pct: None,
            asymmetry_ns: None,
            tc_mode: None,
            topology: None,
            adv_offset_ns: None,
            fta_f: None,
            fleet_nodes: None,
            fleet_topology: None,
        };
        let err = materialize(&base, coord, 7).expect_err("unknown strategy is an error");
        assert!(matches!(err, SpecError::Value(ref f, ref v)
            if f == "grid.strategies[]" && v == "no-such-strategy"));
        coord.strategy = Some("constant");
        materialize(&base, coord, 7).expect("known strategy materializes");
    }

    #[test]
    fn election_axes_materialize_with_the_family_rule() {
        let base = BaseSpec::quick(30);
        let mut coord = Coord {
            scenario: ScenarioKind::Baseline,
            seed: 1,
            domains: None,
            sync_interval_ms: None,
            kernel: None,
            fault_rate_per_hour: None,
            discipline: None,
            strategy: None,
            compromised: None,
            loss_permille: None,
            partition_s: None,
            election: None,
            announce_interval_ms: None,
            gm_failure_at_s: Some(10),
            rogue_master: Some(1),
            hops: None,
            cross_traffic_pct: None,
            asymmetry_ns: None,
            tc_mode: None,
            topology: None,
            adv_offset_ns: None,
            fta_f: None,
            fleet_nodes: None,
            fleet_topology: None,
        };
        // Any election axis activates the election implicitly.
        assert!(coord.election_active());
        let cfg = materialize(&base, coord, 7).expect("valid coord");
        let el = cfg.election.expect("election on");
        assert_eq!(el.gm_failure_at, Some(Nanos::from_secs(10)));
        assert_eq!(el.gm_failure_node, 0);
        let strikes = cfg.attack.strikes();
        assert_eq!(strikes.len(), 1);
        assert_eq!(strikes[0].target_node, cfg.nodes - 1);
        assert!(matches!(
            strikes[0].strategy,
            Some(ByzantineStrategy::RogueMaster { .. })
        ));
        // An explicit `false` wins over the family rule: static
        // assignment, no rogue strikes (the honest control cell).
        coord.election = Some(false);
        assert!(!coord.election_active());
        let cfg = materialize(&base, coord, 7).expect("valid coord");
        assert!(cfg.election.is_none());
        assert!(cfg.attack.strikes().is_empty());
        // The election segments are label-conditional: a coordinate
        // without election axes renders the pre-election label, so
        // hashes of existing campaigns are unchanged.
        coord.election = None;
        coord.gm_failure_at_s = None;
        coord.rogue_master = None;
        assert!(!coord.label().contains("election"));
        assert!(!coord.prefix_label().contains("election"));
        coord.gm_failure_at_s = Some(10);
        assert!(coord.label().ends_with("/gm_kill_s=10"));
        assert!(coord
            .prefix_label()
            .ends_with("/election=on/announce_ms=250"));
    }

    #[test]
    fn fabric_axes_materialize_with_the_family_rule() {
        let base = BaseSpec::quick(20);
        let mut coord = Coord {
            scenario: ScenarioKind::Baseline,
            seed: 1,
            domains: None,
            sync_interval_ms: None,
            kernel: None,
            fault_rate_per_hour: None,
            discipline: None,
            strategy: None,
            compromised: None,
            loss_permille: None,
            partition_s: None,
            election: None,
            announce_interval_ms: None,
            gm_failure_at_s: None,
            rogue_master: None,
            hops: Some(3),
            cross_traffic_pct: Some(30),
            asymmetry_ns: None,
            tc_mode: Some(true),
            topology: None,
            adv_offset_ns: None,
            fta_f: None,
            fleet_nodes: None,
            fleet_topology: None,
        };
        assert!(coord.fabric_active());
        let cfg = materialize(&base, coord, 7).expect("valid coord");
        let fabric = cfg.fabric.expect("fabric on");
        assert_eq!(fabric.hops, 3);
        assert!((fabric.cross_traffic_load - 0.30).abs() < 1e-12);
        assert!(fabric.transparent_clock);
        // Any single fabric axis activates it with the rest defaulted.
        coord.hops = None;
        coord.cross_traffic_pct = None;
        coord.tc_mode = None;
        coord.asymmetry_ns = Some(200);
        let cfg = materialize(&base, coord, 7).expect("valid coord");
        let fabric = cfg.fabric.expect("fabric on");
        assert_eq!(fabric.hops, 1);
        assert_eq!(fabric.asymmetry_ns, Nanos::from_nanos(200));
        assert!(!fabric.transparent_clock);
        // The fabric segments are label-conditional: a coordinate
        // without fabric axes renders the pre-fabric label (and no
        // fabric config), so hashes of existing campaigns are unchanged.
        coord.asymmetry_ns = None;
        assert!(!coord.fabric_active());
        assert!(materialize(&base, coord, 7)
            .expect("valid coord")
            .fabric
            .is_none());
        assert!(!coord.label().contains("hops"));
        assert!(!coord.prefix_label().contains("fabric"));
        coord.hops = Some(6);
        assert!(coord.label().ends_with("/hops=6"));
        assert!(coord
            .prefix_label()
            .ends_with("/fabric=on/hops=6/xload_pct=0/asym_ns=0/tc=false"));
    }

    #[test]
    fn fleet_axes_materialize_and_stay_label_conditional() {
        let base = BaseSpec::quick(20);
        let mut coord = Coord {
            scenario: ScenarioKind::Baseline,
            seed: 1,
            domains: None,
            sync_interval_ms: None,
            kernel: None,
            fault_rate_per_hour: None,
            discipline: None,
            strategy: None,
            compromised: None,
            loss_permille: None,
            partition_s: None,
            election: None,
            announce_interval_ms: None,
            gm_failure_at_s: None,
            rogue_master: None,
            hops: None,
            cross_traffic_pct: None,
            asymmetry_ns: None,
            tc_mode: None,
            topology: None,
            adv_offset_ns: None,
            fta_f: None,
            fleet_nodes: Some(256),
            fleet_topology: Some("fat-tree"),
        };
        // Fleet axes activate the fabric with a condensed generated
        // topology: shape maps into the fabric's coarse topology enum,
        // depth is the fleet diameter, residences come from the drawn
        // per-switch values.
        assert!(coord.fleet_active() && coord.fabric_active());
        let cfg = materialize(&base, coord, 7).expect("valid coord");
        let fabric = cfg.fabric.expect("fabric on");
        assert_eq!(fabric.topology, clocksync::fabric::FabricTopology::Tree);
        assert!((1..=64).contains(&fabric.hops));
        // Other fabric axes still compose with the condensed config.
        coord.cross_traffic_pct = Some(40);
        coord.tc_mode = Some(true);
        let cfg = materialize(&base, coord, 7).expect("valid coord");
        let fabric = cfg.fabric.expect("fabric on");
        assert!((fabric.cross_traffic_load - 0.40).abs() < 1e-12);
        assert!(fabric.transparent_clock);
        // Explicit depth/shape axes conflict with the generator.
        coord.hops = Some(3);
        let err = materialize(&base, coord, 7).expect_err("fleet+hops conflict");
        assert!(matches!(err, SpecError::Value(ref f, _)
            if f == "grid.fleet_nodes/fleet_topology"));
        coord.hops = None;
        coord.cross_traffic_pct = None;
        coord.tc_mode = None;
        // The fleet topology is a pure function of the coordinate: the
        // same coordinate always derives the same fleet seed, and the
        // seed moves with the fleet axes.
        let a = coord.fleet_seed();
        assert_eq!(a, coord.fleet_seed());
        let mut bigger = coord;
        bigger.fleet_nodes = Some(1024);
        assert_ne!(a, bigger.fleet_seed());
        // Labels are conditional: without fleet axes nothing renders
        // (hashes of pre-fleet campaigns are unchanged); with them both
        // label and prefix carry the effective values.
        assert!(coord.label().ends_with("/fleet_n=256/fleet_topo=fat-tree"));
        assert!(coord
            .prefix_label()
            .ends_with("/fleet=on/n=256/topo=fat-tree"));
        coord.fleet_nodes = None;
        coord.fleet_topology = None;
        assert!(!coord.fleet_active());
        assert!(!coord.label().contains("fleet"));
        assert!(!coord.prefix_label().contains("fleet"));
        assert!(materialize(&base, coord, 7)
            .expect("valid coord")
            .fabric
            .is_none());
    }

    #[test]
    fn frontier_axes_materialize_and_stay_label_conditional() {
        let base = BaseSpec::quick(20);
        let mut coord = Coord {
            scenario: ScenarioKind::Baseline,
            seed: 1,
            domains: None,
            sync_interval_ms: None,
            kernel: None,
            fault_rate_per_hour: None,
            discipline: None,
            strategy: None,
            compromised: None,
            loss_permille: None,
            partition_s: None,
            election: None,
            announce_interval_ms: None,
            gm_failure_at_s: None,
            rogue_master: None,
            hops: None,
            cross_traffic_pct: None,
            asymmetry_ns: None,
            tc_mode: None,
            topology: None,
            adv_offset_ns: Some(20_000),
            fta_f: None,
            fleet_nodes: None,
            fleet_topology: None,
        };
        // The magnitude axis alone activates the attack (constant preset
        // rescaled to the probe value).
        let cfg = materialize(&base, coord, 7).expect("valid coord");
        let strikes = cfg.attack.strikes();
        assert_eq!(strikes.len(), 1);
        assert!(matches!(
            strikes[0].strategy,
            Some(ByzantineStrategy::ConstantOffset { offset })
                if offset == Nanos::from_nanos(-20_000)
        ));
        // With a strategy name it rescales that preset instead.
        coord.strategy = Some("colluding");
        coord.compromised = Some(2);
        let cfg = materialize(&base, coord, 7).expect("valid coord");
        for strike in cfg.attack.strikes() {
            assert!(matches!(
                strike.strategy,
                Some(ByzantineStrategy::Colluding { target })
                    if target == Nanos::from_nanos(20_000)
            ));
        }
        // The trim-degree axis swaps f inside the configured family.
        coord.fta_f = Some(0);
        let cfg = materialize(&base, coord, 7).expect("valid coord");
        assert!(matches!(
            cfg.aggregation.method,
            tsn_fta::AggregationMethod::FaultTolerantAverage { f: 0 }
        ));
        // The topology axis activates the fabric with the named shape.
        coord.topology = Some("ring");
        let cfg = materialize(&base, coord, 7).expect("valid coord");
        let fabric = cfg.fabric.expect("fabric on");
        assert_eq!(fabric.topology, clocksync::fabric::FabricTopology::Ring);
        assert_eq!(fabric.hops, 1);
        // Labels: all three segments render; the magnitude is
        // intervention-only (shared warm prefix per cell) while the trim
        // degree and topology are prefix-relevant.
        assert!(coord.label().ends_with("/topo=ring/adv_ns=20000/fta_f=0"));
        let prefix = coord.prefix_label();
        assert!(prefix.contains("/fta_f=0"));
        assert!(prefix.ends_with("/topo=ring"));
        assert!(!prefix.contains("adv_ns"));
        // Label-conditional: clearing the axes restores the pre-frontier
        // label and prefix, so existing campaign hashes and derived
        // seeds are unchanged.
        coord.strategy = None;
        coord.compromised = None;
        coord.topology = None;
        coord.adv_offset_ns = None;
        coord.fta_f = None;
        assert!(!coord.label().contains("adv_ns"));
        assert!(!coord.label().contains("fta_f"));
        assert!(!coord.label().contains("topo"));
        assert!(!coord.prefix_label().contains("fta_f"));
        assert!(!coord.prefix_label().contains("topo"));
    }

    #[test]
    fn partition_axis_uses_shared_window_schedule() {
        let base = BaseSpec::quick(10);
        let coord = Coord {
            scenario: ScenarioKind::Baseline,
            seed: 1,
            domains: None,
            sync_interval_ms: None,
            kernel: None,
            fault_rate_per_hour: None,
            discipline: None,
            strategy: None,
            compromised: None,
            loss_permille: None,
            partition_s: Some(3),
            election: None,
            announce_interval_ms: None,
            gm_failure_at_s: None,
            rogue_master: None,
            hops: None,
            cross_traffic_pct: None,
            asymmetry_ns: None,
            tc_mode: None,
            topology: None,
            adv_offset_ns: None,
            fta_f: None,
            fleet_nodes: None,
            fleet_topology: None,
        };
        let cfg = materialize(&base, coord, 7).expect("valid coord");
        assert_eq!(cfg.partition, Some(crate::spec::partition_window(3)));
    }

    #[test]
    fn materialized_configs_validate() {
        let spec = CampaignSpec {
            name: "axes".to_string(),
            base: BaseSpec::quick(10),
            scenarios: vec![
                ScenarioKind::CyberDiverseKernels,
                ScenarioKind::FaultInjection,
            ],
            grid: Grid {
                seeds: vec![3],
                domains: vec![4, 6],
                sync_interval_ms: vec![62, 250],
                kernels: vec![KernelChoice::Identical, KernelChoice::Diverse],
                fault_rate_per_hour: vec![0, 4],
                disciplines: vec![
                    SyncClockDiscipline::Feedback,
                    SyncClockDiscipline::FeedForward,
                ],
                strategies: vec!["trim-edge".to_string()],
                compromised: vec![1, 2],
                loss_permille: vec![20],
                partition_s: vec![],
                ..Grid::default()
            },
        };
        let plans = expand(&spec).expect("valid spec");
        assert_eq!(plans.len(), 2 * 2 * 2 * 2 * 2 * 2 * 2);
        for p in &plans {
            // `materialize` already ran validate(); check axis effects.
            if let Some(m) = p.coord.domains {
                assert_eq!(p.config.nodes, m);
                assert_eq!(p.config.kernels.len(), m);
            }
            if let Some(s) = p.coord.sync_interval_ms {
                assert_eq!(p.config.sync_interval, Nanos::from_millis(s as i64));
                assert_eq!(p.config.aggregation.staleness, p.config.sync_interval * 4);
            }
            if let Some(rate) = p.coord.fault_rate_per_hour {
                let fi = p.config.fault_injection.expect("injector active");
                assert_eq!(fi.random_per_hour_max, rate);
                assert!(fi.random_per_hour_min <= rate);
            }
            if let Some(byz) = p.coord.compromised {
                let expected = byz.min(p.config.nodes - 1);
                assert_eq!(p.config.attack.strikes().len(), expected);
                for strike in p.config.attack.strikes() {
                    assert!(strike.strategy.is_some(), "axis strike carries a strategy");
                }
            }
            if let Some(pm) = p.coord.loss_permille {
                let lf = p.config.link_faults.as_ref().expect("loss axis wired");
                assert!((lf.loss - f64::from(pm) / 1000.0).abs() < 1e-12);
            }
            assert_eq!(p.config.seed, p.seed);
        }
    }
}
