//! Parallel, resumable campaign execution.
//!
//! The unit of parallelism is one single-threaded simulation
//! ([`clocksync::scenario::run`]); the runner fans the run matrix out
//! over a `std::thread::scope` worker pool fed by a shared atomic
//! index. Determinism does not depend on scheduling: each run's seed
//! and artifact content are pure functions of its grid coordinate (see
//! [`crate::matrix`]), so any thread count produces byte-identical
//! artifacts.
//!
//! Resume is content-addressed: a run whose artifact
//! `runs/run-<hash>.jsonl` already exists and decodes with a matching
//! hash is skipped without re-execution. Changing the spec's base
//! configuration changes every hash, so stale artifacts are never
//! silently reused.

use crate::artifact::RunRecord;
use crate::matrix::{expand, RunPlan};
use crate::profile::ProfileEntry;
use crate::spec::CampaignSpec;
use clocksync::snapshot::{checkpoint_time, warm_prefix_config, warm_prefix_fingerprint};
use clocksync::{World, WorldSnapshot};
use std::collections::HashMap;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Runner options.
#[derive(Debug, Clone)]
pub struct RunnerOptions {
    /// Campaign directory (created if missing).
    pub dir: PathBuf,
    /// Worker threads; 0 means one per available core.
    pub threads: usize,
    /// Suppress the progress line (tests, scripting).
    pub quiet: bool,
    /// Fork-based execution: runs sharing a warm prefix (same
    /// prefix-relevant coordinates, interventions stripped) simulate the
    /// prefix once to a checkpoint and fork their divergent
    /// continuations from it. Artifacts are byte-identical to cold
    /// execution; only the work is shared.
    pub fork: bool,
    /// Enable the runtime invariant oracle ([`World::enable_oracle`])
    /// for every executed run and collect violations into
    /// [`CampaignReport::violations`]. Artifacts stay byte-identical to
    /// an unchecked campaign. Implies cold execution: forked runs skip
    /// the warm prefix, which would blind the oracle's frame-conservation
    /// ledger, so `check` overrides [`RunnerOptions::fork`].
    pub check: bool,
    /// Enable structured tracing ([`World::enable_trace`]) for every
    /// executed run and write, into this directory, one Chrome
    /// trace-event file `trace-<hash>.json` per run plus a
    /// [`crate::profile::PROFILE_FILE`] stream with per-run wall time
    /// and event accounting. Artifacts stay byte-identical to an
    /// untraced campaign. Implies cold execution (a forked run's trace
    /// would miss the shared warm prefix), so tracing overrides
    /// [`RunnerOptions::fork`]. Resumed runs are not re-executed and
    /// leave no trace.
    pub trace: Option<PathBuf>,
    /// Override the tracer's bounded-sink event cap (default 2^20).
    /// Events past the cap are dropped and counted; the per-run drop
    /// count flows into the profile stream and
    /// [`CampaignReport::trace_dropped_events`], and a truncated trace
    /// fails a `--check` campaign.
    pub trace_max_events: Option<usize>,
    /// Test-injection hook: the run whose coordinate label equals this
    /// string panics instead of simulating, exercising the per-run panic
    /// isolation path (the campaign must finish, siblings unperturbed).
    pub panic_label: Option<String>,
}

impl RunnerOptions {
    /// Options for a campaign directory, with auto thread count and cold
    /// (non-forking) execution.
    pub fn new(dir: impl Into<PathBuf>) -> RunnerOptions {
        RunnerOptions {
            dir: dir.into(),
            threads: 0,
            quiet: false,
            fork: false,
            check: false,
            trace: None,
            trace_max_events: None,
            panic_label: None,
        }
    }

    fn effective_threads(&self, pending: usize) -> usize {
        let auto = std::thread::available_parallelism().map_or(1, |n| n.get());
        let n = if self.threads == 0 {
            auto
        } else {
            self.threads
        };
        n.clamp(1, pending.max(1))
    }
}

/// What the runner did for one campaign invocation.
#[derive(Debug)]
pub struct CampaignReport {
    /// All run records, in canonical matrix order (freshly executed and
    /// resumed ones alike).
    pub records: Vec<RunRecord>,
    /// Runs executed by this invocation.
    pub executed: usize,
    /// Runs skipped because a valid artifact already existed.
    pub skipped: usize,
    /// Worker threads used (1 when everything was resumed).
    pub threads: usize,
    /// Warm-prefix groups of two or more runs that forked a shared
    /// checkpoint (0 unless [`RunnerOptions::fork`] was set).
    pub forked_groups: usize,
    /// Prefix simulations executed for those groups (one per group).
    pub prefix_runs: usize,
    /// Events that were *not* re-simulated thanks to forking: for each
    /// group, (members − 1) × events in the shared prefix.
    pub prefix_events_skipped: u64,
    /// Invariant violations reported by the oracle, in canonical matrix
    /// order (empty unless [`RunnerOptions::check`] was set). Only runs
    /// executed by this invocation are checked — resumed artifacts carry
    /// no oracle state.
    pub violations: Vec<RunViolation>,
    /// Runs that panicked, in canonical matrix order. A panicking run is
    /// isolated — the campaign finishes, sibling artifacts are written
    /// normally — and leaves no artifact, so a later resume retries it.
    pub failed: Vec<FailedRun>,
    /// Pre-existing artifacts that were unreadable (truncated or
    /// corrupt) and were moved to `runs/corrupt/` before re-running.
    pub quarantined: usize,
    /// Trace events dropped at the bounded sink's cap, summed over the
    /// runs this invocation executed with tracing armed (0 without
    /// [`RunnerOptions::trace`]). Non-zero means at least one trace
    /// file is incomplete; `campaign run --check --trace` treats that
    /// as a failure.
    pub trace_dropped_events: u64,
}

/// One isolated per-run failure (the worker caught a panic).
#[derive(Debug, Clone)]
pub struct FailedRun {
    /// Position in the canonical enumeration order.
    pub index: usize,
    /// Canonical coordinate label of the failed run.
    pub label: String,
    /// Content hash the run would have written.
    pub hash: String,
    /// The panic payload, when it was a string (the common case).
    pub message: String,
}

impl std::fmt::Display for FailedRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: panicked: {}", self.label, self.message)
    }
}

/// Warm-prefix snapshots keyed by [`warm_prefix_fingerprint`], reusable
/// across [`execute_with`] invocations. The frontier explorer threads
/// one cache through its refinement rounds so a round probing a single
/// new magnitude per cell still forks the prefix simulated in round 1.
#[derive(Debug, Default)]
pub struct SnapshotCache {
    snapshots: HashMap<u64, WorldSnapshot>,
}

impl SnapshotCache {
    /// An empty cache.
    pub fn new() -> SnapshotCache {
        SnapshotCache::default()
    }

    /// Cached warm prefixes.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// `true` when no prefix has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }
}

/// One oracle violation attributed to the run that produced it.
#[derive(Debug, Clone)]
pub struct RunViolation {
    /// Canonical coordinate label ([`crate::matrix::Coord::label`]) of
    /// the offending run.
    pub run: String,
    /// The structured violation record.
    pub record: tsn_metrics::ViolationRecord,
}

impl std::fmt::Display for RunViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.run, self.record)
    }
}

/// Executes (or resumes) a campaign spec into `opts.dir`.
///
/// Writes `manifest.json` and one `runs/run-<hash>.jsonl` per run, then
/// returns every record in canonical order.
pub fn execute(spec: &CampaignSpec, opts: &RunnerOptions) -> io::Result<CampaignReport> {
    execute_with(spec, opts, &mut SnapshotCache::new(), true)
}

/// [`execute`] with an external warm-prefix snapshot cache and control
/// over the manifest write.
///
/// The cache outlives the invocation: prefixes simulated here are
/// inserted, and pending runs whose fingerprint is already cached fork
/// from it even when they are the only member of their group. The
/// frontier explorer calls this once per refinement round with
/// `write_manifest = false` (it writes its own `frontier.json` instead)
/// so every round shares the prefixes of the first.
pub fn execute_with(
    spec: &CampaignSpec,
    opts: &RunnerOptions,
    cache: &mut SnapshotCache,
    write_manifest: bool,
) -> io::Result<CampaignReport> {
    let plans = expand(spec)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, format!("invalid spec: {e}")))?;
    let runs_dir = opts.dir.join("runs");
    std::fs::create_dir_all(&runs_dir)?;
    if let Some(trace_dir) = &opts.trace {
        std::fs::create_dir_all(trace_dir)?;
    }
    if write_manifest {
        write_atomic(
            &opts.dir.join("manifest.json"),
            &manifest(spec, &plans).render(),
        )?;
    }

    // Partition into resumable and pending runs. An artifact that exists
    // but does not decode (truncated write, bit rot, stale schema) is
    // quarantined to `runs/corrupt/` and its run re-executed — a damaged
    // file must never abort or poison a resume.
    let mut records: Vec<Option<RunRecord>> = Vec::with_capacity(plans.len());
    let mut pending: Vec<&RunPlan> = Vec::new();
    let mut quarantined = 0usize;
    for plan in &plans {
        match resume_record(&runs_dir, plan) {
            Some(record) => records.push(Some(record)),
            None => {
                if artifact_path(&runs_dir, plan).exists() {
                    quarantine(&runs_dir, plan)?;
                    quarantined += 1;
                }
                records.push(None);
                pending.push(plan);
            }
        }
    }
    if quarantined > 0 && !opts.quiet {
        eprintln!(
            "resume: quarantined {quarantined} corrupt artifact(s) to {}, re-running",
            runs_dir.join("corrupt").display()
        );
    }
    let skipped = plans.len() - pending.len();
    let threads = opts.effective_threads(pending.len());

    // Fork mode: group pending runs whose configurations project to the
    // same warm prefix. A group forks when it has two or more members
    // (the prefix is simulated once, phase 1) or when the cache already
    // holds its prefix from an earlier invocation; other singleton
    // groups gain nothing and run cold.
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut group_fp: Vec<u64> = Vec::new();
    let mut group_of: Vec<Option<usize>> = vec![None; pending.len()];
    let cold = opts.check || opts.trace.is_some();
    if opts.fork && cold && !opts.quiet && !pending.is_empty() {
        if opts.check {
            eprintln!("check: oracle enabled, running cold (fork disabled)");
        } else {
            eprintln!("trace: tracing enabled, running cold (fork disabled)");
        }
    }
    if opts.fork && !cold {
        for (i, plan) in pending.iter().enumerate() {
            if checkpoint_time(&plan.config).is_none() {
                continue; // no warm-up, nothing to share
            }
            let fp = warm_prefix_fingerprint(&plan.config);
            let g = match group_fp.iter().position(|&f| f == fp) {
                Some(g) => g,
                None => {
                    group_fp.push(fp);
                    groups.push(Vec::new());
                    groups.len() - 1
                }
            };
            groups[g].push(i);
            group_of[i] = Some(g);
        }
        for (g, group) in groups.iter_mut().enumerate() {
            if group.len() < 2 && !cache.snapshots.contains_key(&group_fp[g]) {
                for &i in group.iter() {
                    group_of[i] = None;
                }
                group.clear();
            }
        }
    }
    // Fresh prefixes to simulate vs. groups served from the cache.
    let to_simulate: Vec<usize> = (0..groups.len())
        .filter(|&g| !groups[g].is_empty() && !cache.snapshots.contains_key(&group_fp[g]))
        .collect();
    let forked_groups = (0..groups.len()).filter(|&g| !groups[g].is_empty()).count();
    let prefix_runs = to_simulate.len();
    let mut prefix_events_skipped = 0u64;

    // Phase 1: one shared-prefix simulation per uncached forkable group.
    if !to_simulate.is_empty() {
        if !opts.quiet {
            let members: usize = to_simulate.iter().map(|&g| groups[g].len()).sum();
            eprintln!("fork: simulating {prefix_runs} shared warm prefix(es) for {members} run(s)");
        }
        let next = AtomicUsize::new(0);
        let made: Mutex<Vec<(usize, WorldSnapshot)>> =
            Mutex::new(Vec::with_capacity(to_simulate.len()));
        std::thread::scope(|scope| {
            for _ in 0..threads.min(to_simulate.len()) {
                scope.spawn(|| loop {
                    let j = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&g) = to_simulate.get(j) else { break };
                    let cfg = &pending[groups[g][0]].config;
                    let at = checkpoint_time(cfg).expect("forkable groups have a warm-up");
                    let mut world = World::new(warm_prefix_config(cfg));
                    world.run_until(at);
                    made.lock()
                        .expect("prefix lock")
                        .push((g, world.snapshot()));
                });
            }
        });
        for (g, snap) in made.into_inner().expect("prefix lock") {
            prefix_events_skipped += (groups[g].len() as u64 - 1) * snap.events_processed;
            cache.snapshots.insert(group_fp[g], snap);
        }
    }
    // Groups served entirely from the cache skip the prefix for every
    // member (the simulation happened in an earlier invocation).
    for &g in (0..groups.len())
        .filter(|&g| !groups[g].is_empty() && !to_simulate.contains(&g))
        .collect::<Vec<_>>()
        .iter()
    {
        if let Some(snap) = cache.snapshots.get(&group_fp[g]) {
            prefix_events_skipped += groups[g].len() as u64 * snap.events_processed;
        }
    }

    // Phase 2: every pending run — forked members restore the group's
    // checkpoint and continue; the rest run cold from t = 0. Either way
    // the artifact bytes are identical (checked by tests/fork.rs). A
    // panicking run is caught, recorded as failed, and its worker moves
    // on — one diverging simulation must not poison the pool.
    let cache = &*cache; // immutable from here: workers only read snapshots
    let mut violations: Vec<RunViolation> = Vec::new();
    let mut failed: Vec<FailedRun> = Vec::new();
    let trace_dropped = AtomicU64::new(0);
    if !pending.is_empty() {
        let next = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        let fresh: Mutex<Vec<(usize, RunRecord)>> = Mutex::new(Vec::with_capacity(pending.len()));
        let found: Mutex<Vec<(usize, RunViolation)>> = Mutex::new(Vec::new());
        let panicked: Mutex<Vec<FailedRun>> = Mutex::new(Vec::new());
        let profiles: Mutex<Vec<(usize, ProfileEntry)>> = Mutex::new(Vec::new());
        let io_error: Mutex<Option<io::Error>> = Mutex::new(None);
        let progress = Progress::new(pending.len(), skipped, opts.quiet);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(plan) = pending.get(i) else { break };
                    let snap = group_of[i].and_then(|g| cache.snapshots.get(&group_fp[g]));
                    let started = Instant::now();
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        if opts.panic_label.as_deref() == Some(plan.coord.label().as_str()) {
                            panic!("injected test panic");
                        }
                        run_one(
                            spec,
                            plan,
                            snap,
                            opts.check,
                            opts.trace.is_some(),
                            opts.trace_max_events,
                        )
                    }));
                    let (record, run_violations, trace_report) = match outcome {
                        Ok(Ok(out)) => out,
                        Ok(Err(e)) => {
                            let mut slot = io_error.lock().expect("io_error lock");
                            slot.get_or_insert(e);
                            break;
                        }
                        Err(payload) => {
                            let message = payload
                                .downcast_ref::<&str>()
                                .map(|s| (*s).to_string())
                                .or_else(|| payload.downcast_ref::<String>().cloned())
                                .unwrap_or_else(|| "non-string panic payload".to_string());
                            panicked.lock().expect("failed lock").push(FailedRun {
                                index: plan.index,
                                label: plan.coord.label(),
                                hash: plan.hash.clone(),
                                message,
                            });
                            let completed = done.fetch_add(1, Ordering::Relaxed) + 1;
                            progress.report(completed);
                            continue;
                        }
                    };
                    let wall_s = started.elapsed().as_secs_f64();
                    if let Err(e) = write_record_atomic(&artifact_path(&runs_dir, plan), &record) {
                        let mut slot = io_error.lock().expect("io_error lock");
                        slot.get_or_insert(e);
                        break;
                    }
                    if let (Some(trace_dir), Some(report)) = (&opts.trace, trace_report) {
                        if report.dropped > 0 {
                            trace_dropped.fetch_add(report.dropped, Ordering::Relaxed);
                        }
                        let path = trace_dir.join(format!("trace-{}.json", plan.hash));
                        if let Err(e) = write_atomic(&path, &report.to_chrome_json()) {
                            let mut slot = io_error.lock().expect("io_error lock");
                            slot.get_or_insert(e);
                            break;
                        }
                        let entry = ProfileEntry::new(
                            plan.index,
                            &plan.coord.label(),
                            plan.coord.scenario.name(),
                            &plan.hash,
                            wall_s,
                            &report,
                        );
                        profiles
                            .lock()
                            .expect("profiles lock")
                            .push((plan.index, entry));
                    }
                    if !run_violations.is_empty() {
                        let label = plan.coord.label();
                        let mut sink = found.lock().expect("violations lock");
                        sink.extend(run_violations.into_iter().map(|record| {
                            (
                                plan.index,
                                RunViolation {
                                    run: label.clone(),
                                    record,
                                },
                            )
                        }));
                    }
                    fresh
                        .lock()
                        .expect("records lock")
                        .push((plan.index, record));
                    let completed = done.fetch_add(1, Ordering::Relaxed) + 1;
                    progress.report(completed);
                });
            }
        });
        progress.finish();
        if let Some(e) = io_error.into_inner().expect("io_error lock") {
            return Err(e);
        }
        for (index, record) in fresh.into_inner().expect("records lock") {
            records[index] = Some(record);
        }
        let mut found = found.into_inner().expect("violations lock");
        found.sort_by_key(|(index, _)| *index); // stable: keeps per-run order
        violations = found.into_iter().map(|(_, v)| v).collect();
        failed = panicked.into_inner().expect("failed lock");
        failed.sort_by_key(|f| f.index);
        if let Some(trace_dir) = &opts.trace {
            let mut profiles = profiles.into_inner().expect("profiles lock");
            profiles.sort_by_key(|(index, _)| *index);
            let mut stream = String::new();
            for (_, entry) in &profiles {
                stream.push_str(&entry.encode());
                stream.push('\n');
            }
            write_atomic(&trace_dir.join(crate::profile::PROFILE_FILE), &stream)?;
        }
    }

    let executed = pending.len() - failed.len();
    // Failed runs have no record (and no artifact, so resume retries
    // them); any other hole is an internal error.
    let records = plans
        .iter()
        .zip(records)
        .filter(|(plan, record)| record.is_some() || !failed.iter().any(|f| f.index == plan.index))
        .map(|(plan, record)| {
            record.ok_or_else(|| {
                io::Error::other(format!(
                    "run {} produced no artifact (expected {})",
                    plan.coord.label(),
                    artifact_path(&runs_dir, plan).display()
                ))
            })
        })
        .collect::<io::Result<Vec<RunRecord>>>()?;
    Ok(CampaignReport {
        records,
        executed,
        skipped,
        threads,
        forked_groups,
        prefix_runs,
        prefix_events_skipped,
        violations,
        failed,
        quarantined,
        trace_dropped_events: trace_dropped.into_inner(),
    })
}

/// Executes one run, either cold from `t = 0` or forked from a shared
/// warm-prefix checkpoint. Both paths end in the same [`RunRecord`];
/// the cold path additionally arms the invariant oracle (`check`) and
/// the structured tracer (`trace`) on request and returns whatever they
/// reported (both observers are passive, so the record is unaffected).
fn run_one(
    spec: &CampaignSpec,
    plan: &RunPlan,
    snap: Option<&WorldSnapshot>,
    check: bool,
    trace: bool,
    trace_max_events: Option<usize>,
) -> io::Result<(
    RunRecord,
    Vec<tsn_metrics::ViolationRecord>,
    Option<tsn_trace::TraceReport>,
)> {
    let result = match snap {
        Some(snap) => {
            let mut world = World::restore(plan.config.clone(), snap).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("fork restore for {}: {e}", plan.coord.label()),
                )
            })?;
            let end = world.end_time();
            world.run_until(end);
            world.into_result()
        }
        None => {
            let mut world = World::new(plan.config.clone());
            if check {
                world.enable_oracle();
            }
            if trace {
                match trace_max_events {
                    Some(cap) => world.enable_trace_capped(cap),
                    None => world.enable_trace(),
                }
            }
            world.run()
        }
    };
    let record = RunRecord::new(&spec.name, plan, &result);
    Ok((record, result.violations, result.trace))
}

/// Streaming reader over a previously executed campaign's artifacts, in
/// canonical matrix order. Decodes one record per `next()` call, so
/// consumers that fold records as they arrive (summaries, diffs, the
/// frontier) hold a single record in memory regardless of campaign
/// size. Yields an error for a missing or unreadable artifact (the
/// campaign must be `run` to completion first).
pub struct RunRecordReader {
    plans: std::vec::IntoIter<RunPlan>,
    runs_dir: PathBuf,
}

impl RunRecordReader {
    /// Opens a campaign directory for streaming reads. Fails only on an
    /// invalid spec; per-record problems surface from the iterator.
    pub fn open(spec: &CampaignSpec, dir: &Path) -> io::Result<RunRecordReader> {
        let plans = expand(spec).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidInput, format!("invalid spec: {e}"))
        })?;
        Ok(RunRecordReader {
            plans: plans.into_iter(),
            runs_dir: dir.join("runs"),
        })
    }

    /// Records remaining to be yielded.
    pub fn len(&self) -> usize {
        self.plans.as_slice().len()
    }

    /// `true` when the reader is exhausted (or the campaign is empty).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Iterator for RunRecordReader {
    type Item = io::Result<RunRecord>;

    fn next(&mut self) -> Option<io::Result<RunRecord>> {
        let plan = self.plans.next()?;
        Some(resume_record(&self.runs_dir, &plan).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!(
                    "missing or unreadable artifact for {} (expected {})",
                    plan.coord.label(),
                    artifact_path(&self.runs_dir, &plan).display()
                ),
            )
        }))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.len();
        (n, Some(n))
    }
}

/// Loads every artifact of a previously executed campaign directory, in
/// canonical order, into memory. Prefer iterating [`RunRecordReader`]
/// for anything that can fold records incrementally.
pub fn load(spec: &CampaignSpec, dir: &Path) -> io::Result<Vec<RunRecord>> {
    RunRecordReader::open(spec, dir)?.collect()
}

fn artifact_path(runs_dir: &Path, plan: &RunPlan) -> PathBuf {
    runs_dir.join(format!("run-{}.jsonl", plan.hash))
}

fn resume_record(runs_dir: &Path, plan: &RunPlan) -> Option<RunRecord> {
    let text = std::fs::read_to_string(artifact_path(runs_dir, plan)).ok()?;
    let record = RunRecord::decode(&text)?;
    (record.hash == plan.hash).then_some(record)
}

/// Moves an unreadable artifact to `runs/corrupt/` (same filename) so
/// the evidence survives while resume re-executes the run.
fn quarantine(runs_dir: &Path, plan: &RunPlan) -> io::Result<()> {
    let corrupt_dir = runs_dir.join("corrupt");
    std::fs::create_dir_all(&corrupt_dir)?;
    let name = format!("run-{}.jsonl", plan.hash);
    std::fs::rename(runs_dir.join(&name), corrupt_dir.join(&name))
}

/// Writes a file atomically (temp file + rename) so a crashed run never
/// leaves a half-written artifact that resume would trust.
pub(crate) fn write_atomic(path: &Path, content: &str) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, content)?;
    std::fs::rename(&tmp, path)
}

/// [`write_atomic`] for a run record, streamed through a [`io::BufWriter`]
/// via [`RunRecord::encode_to`] — the encoded JSONL line (which can be
/// large for fleet runs) is never materialized as one in-memory string.
fn write_record_atomic(path: &Path, record: &RunRecord) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut w = io::BufWriter::new(std::fs::File::create(&tmp)?);
        record.encode_to(&mut w)?;
        w.flush()?;
    }
    std::fs::rename(&tmp, path)
}

fn manifest(spec: &CampaignSpec, plans: &[RunPlan]) -> crate::json::Json {
    use crate::json::Json;
    Json::object(vec![
        ("schema", Json::UInt(crate::artifact::ARTIFACT_SCHEMA)),
        ("spec", spec.to_json()),
        ("total_runs", Json::UInt(plans.len() as u64)),
        (
            "runs",
            Json::Array(
                plans
                    .iter()
                    .map(|p| {
                        Json::object(vec![
                            ("hash", Json::Str(p.hash.clone())),
                            ("label", Json::Str(p.coord.label())),
                            ("run_seed", Json::UInt(p.seed)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Serialized progress reporting on stderr: completed/total and an ETA
/// extrapolated from the mean run time so far. Wall-clock time feeds
/// only this display, never the artifacts.
struct Progress {
    total: usize,
    skipped: usize,
    started: Instant,
    quiet: bool,
    line: Mutex<()>,
}

impl Progress {
    fn new(total: usize, skipped: usize, quiet: bool) -> Progress {
        let p = Progress {
            total,
            skipped,
            started: Instant::now(),
            quiet,
            line: Mutex::new(()),
        };
        if !p.quiet && p.skipped > 0 {
            eprintln!("resume: {} run(s) already complete, skipping", p.skipped);
        }
        p
    }

    fn report(&self, completed: usize) {
        if self.quiet {
            return;
        }
        let elapsed = self.started.elapsed().as_secs_f64();
        let per_run = elapsed / completed as f64;
        let eta = per_run * (self.total - completed) as f64;
        let _guard = self.line.lock().expect("progress lock");
        eprint!(
            "\r[{completed}/{}] runs complete, elapsed {}, ETA {}   ",
            self.total,
            fmt_secs(elapsed),
            fmt_secs(eta),
        );
        let _ = io::stderr().flush();
    }

    fn finish(&self) {
        if !self.quiet && self.total > 0 {
            eprintln!();
        }
    }
}

fn fmt_secs(s: f64) -> String {
    let s = s.round() as u64;
    if s >= 3600 {
        format!("{}h{:02}m", s / 3600, (s % 3600) / 60)
    } else if s >= 60 {
        format!("{}m{:02}s", s / 60, s % 60)
    } else {
        format!("{s}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eta_formatting() {
        assert_eq!(fmt_secs(12.2), "12s");
        assert_eq!(fmt_secs(75.0), "1m15s");
        assert_eq!(fmt_secs(3. * 3600. + 125.), "3h02m");
    }

    #[test]
    fn atomic_write_replaces_content() {
        let dir = std::env::temp_dir().join(format!("tsn-campaign-aw-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("x.jsonl");
        write_atomic(&path, "one\n").unwrap();
        write_atomic(&path, "two\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "two\n");
        assert!(!path.with_extension("tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
