//! Parallel, resumable campaign execution.
//!
//! The unit of parallelism is one single-threaded simulation
//! ([`clocksync::scenario::run`]); the runner fans the run matrix out
//! over a `std::thread::scope` worker pool fed by a shared atomic
//! index. Determinism does not depend on scheduling: each run's seed
//! and artifact content are pure functions of its grid coordinate (see
//! [`crate::matrix`]), so any thread count produces byte-identical
//! artifacts.
//!
//! Resume is content-addressed: a run whose artifact
//! `runs/run-<hash>.jsonl` already exists and decodes with a matching
//! hash is skipped without re-execution. Changing the spec's base
//! configuration changes every hash, so stale artifacts are never
//! silently reused.

use crate::artifact::RunRecord;
use crate::matrix::{expand, RunPlan};
use crate::spec::CampaignSpec;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Runner options.
#[derive(Debug, Clone)]
pub struct RunnerOptions {
    /// Campaign directory (created if missing).
    pub dir: PathBuf,
    /// Worker threads; 0 means one per available core.
    pub threads: usize,
    /// Suppress the progress line (tests, scripting).
    pub quiet: bool,
}

impl RunnerOptions {
    /// Options for a campaign directory, with auto thread count.
    pub fn new(dir: impl Into<PathBuf>) -> RunnerOptions {
        RunnerOptions {
            dir: dir.into(),
            threads: 0,
            quiet: false,
        }
    }

    fn effective_threads(&self, pending: usize) -> usize {
        let auto = std::thread::available_parallelism().map_or(1, |n| n.get());
        let n = if self.threads == 0 {
            auto
        } else {
            self.threads
        };
        n.clamp(1, pending.max(1))
    }
}

/// What the runner did for one campaign invocation.
#[derive(Debug)]
pub struct CampaignReport {
    /// All run records, in canonical matrix order (freshly executed and
    /// resumed ones alike).
    pub records: Vec<RunRecord>,
    /// Runs executed by this invocation.
    pub executed: usize,
    /// Runs skipped because a valid artifact already existed.
    pub skipped: usize,
    /// Worker threads used (1 when everything was resumed).
    pub threads: usize,
}

/// Executes (or resumes) a campaign spec into `opts.dir`.
///
/// Writes `manifest.json` and one `runs/run-<hash>.jsonl` per run, then
/// returns every record in canonical order.
pub fn execute(spec: &CampaignSpec, opts: &RunnerOptions) -> io::Result<CampaignReport> {
    spec.validate()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
    let runs_dir = opts.dir.join("runs");
    std::fs::create_dir_all(&runs_dir)?;
    let plans = expand(spec);
    write_atomic(
        &opts.dir.join("manifest.json"),
        &manifest(spec, &plans).render(),
    )?;

    // Partition into resumable and pending runs.
    let mut records: Vec<Option<RunRecord>> = Vec::with_capacity(plans.len());
    let mut pending: Vec<&RunPlan> = Vec::new();
    for plan in &plans {
        match resume_record(&runs_dir, plan) {
            Some(record) => records.push(Some(record)),
            None => {
                records.push(None);
                pending.push(plan);
            }
        }
    }
    let skipped = plans.len() - pending.len();
    let threads = opts.effective_threads(pending.len());

    if !pending.is_empty() {
        let next = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        let fresh: Mutex<Vec<(usize, RunRecord)>> = Mutex::new(Vec::with_capacity(pending.len()));
        let io_error: Mutex<Option<io::Error>> = Mutex::new(None);
        let progress = Progress::new(pending.len(), skipped, opts.quiet);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(plan) = pending.get(i) else { break };
                    let outcome = clocksync::scenario::run(plan.config.clone());
                    let record = RunRecord::new(&spec.name, plan, &outcome.result);
                    if let Err(e) = write_atomic(&artifact_path(&runs_dir, plan), &record.encode())
                    {
                        let mut slot = io_error.lock().expect("io_error lock");
                        slot.get_or_insert(e);
                        break;
                    }
                    fresh
                        .lock()
                        .expect("records lock")
                        .push((plan.index, record));
                    let completed = done.fetch_add(1, Ordering::Relaxed) + 1;
                    progress.report(completed);
                });
            }
        });
        progress.finish();
        if let Some(e) = io_error.into_inner().expect("io_error lock") {
            return Err(e);
        }
        for (index, record) in fresh.into_inner().expect("records lock") {
            records[index] = Some(record);
        }
    }

    let executed = pending.len();
    let records = records
        .into_iter()
        .map(|r| r.expect("every run resolved"))
        .collect();
    Ok(CampaignReport {
        records,
        executed,
        skipped,
        threads,
    })
}

/// Loads every artifact of a previously executed campaign directory, in
/// canonical order. Fails if any run is missing (the campaign must be
/// `run` to completion first).
pub fn load(spec: &CampaignSpec, dir: &Path) -> io::Result<Vec<RunRecord>> {
    let runs_dir = dir.join("runs");
    expand(spec)
        .iter()
        .map(|plan| {
            resume_record(&runs_dir, plan).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::NotFound,
                    format!(
                        "missing or unreadable artifact for {} (expected {})",
                        plan.coord.label(),
                        artifact_path(&runs_dir, plan).display()
                    ),
                )
            })
        })
        .collect()
}

fn artifact_path(runs_dir: &Path, plan: &RunPlan) -> PathBuf {
    runs_dir.join(format!("run-{}.jsonl", plan.hash))
}

fn resume_record(runs_dir: &Path, plan: &RunPlan) -> Option<RunRecord> {
    let text = std::fs::read_to_string(artifact_path(runs_dir, plan)).ok()?;
    let record = RunRecord::decode(&text)?;
    (record.hash == plan.hash).then_some(record)
}

/// Writes a file atomically (temp file + rename) so a crashed run never
/// leaves a half-written artifact that resume would trust.
fn write_atomic(path: &Path, content: &str) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, content)?;
    std::fs::rename(&tmp, path)
}

fn manifest(spec: &CampaignSpec, plans: &[RunPlan]) -> crate::json::Json {
    use crate::json::Json;
    Json::object(vec![
        ("schema", Json::UInt(crate::artifact::ARTIFACT_SCHEMA)),
        ("spec", spec.to_json()),
        ("total_runs", Json::UInt(plans.len() as u64)),
        (
            "runs",
            Json::Array(
                plans
                    .iter()
                    .map(|p| {
                        Json::object(vec![
                            ("hash", Json::Str(p.hash.clone())),
                            ("label", Json::Str(p.coord.label())),
                            ("run_seed", Json::UInt(p.seed)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Serialized progress reporting on stderr: completed/total and an ETA
/// extrapolated from the mean run time so far. Wall-clock time feeds
/// only this display, never the artifacts.
struct Progress {
    total: usize,
    skipped: usize,
    started: Instant,
    quiet: bool,
    line: Mutex<()>,
}

impl Progress {
    fn new(total: usize, skipped: usize, quiet: bool) -> Progress {
        let p = Progress {
            total,
            skipped,
            started: Instant::now(),
            quiet,
            line: Mutex::new(()),
        };
        if !p.quiet && p.skipped > 0 {
            eprintln!("resume: {} run(s) already complete, skipping", p.skipped);
        }
        p
    }

    fn report(&self, completed: usize) {
        if self.quiet {
            return;
        }
        let elapsed = self.started.elapsed().as_secs_f64();
        let per_run = elapsed / completed as f64;
        let eta = per_run * (self.total - completed) as f64;
        let _guard = self.line.lock().expect("progress lock");
        eprint!(
            "\r[{completed}/{}] runs complete, elapsed {}, ETA {}   ",
            self.total,
            fmt_secs(elapsed),
            fmt_secs(eta),
        );
        let _ = io::stderr().flush();
    }

    fn finish(&self) {
        if !self.quiet && self.total > 0 {
            eprintln!();
        }
    }
}

fn fmt_secs(s: f64) -> String {
    let s = s.round() as u64;
    if s >= 3600 {
        format!("{}h{:02}m", s / 3600, (s % 3600) / 60)
    } else if s >= 60 {
        format!("{}m{:02}s", s / 60, s % 60)
    } else {
        format!("{s}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eta_formatting() {
        assert_eq!(fmt_secs(12.2), "12s");
        assert_eq!(fmt_secs(75.0), "1m15s");
        assert_eq!(fmt_secs(3. * 3600. + 125.), "3h02m");
    }

    #[test]
    fn atomic_write_replaces_content() {
        let dir = std::env::temp_dir().join(format!("tsn-campaign-aw-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("x.jsonl");
        write_atomic(&path, "one\n").unwrap();
        write_atomic(&path, "two\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "two\n");
        assert!(!path.with_extension("tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
