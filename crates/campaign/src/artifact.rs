//! Run artifacts: the per-run JSONL record and its (de)serialization.
//!
//! Every run writes one self-describing record to
//! `runs/run-<hash>.jsonl` under the campaign directory. The record
//! deliberately contains **no wall-clock data** — it is a pure function
//! of the run plan and the simulation result, so re-running the same
//! spec with any thread count reproduces the file byte for byte (which
//! the determinism test asserts, and which makes artifacts diffable
//! across machines).

use crate::json::Json;
use crate::matrix::{Coord, RunPlan};
use crate::spec::{discipline_name, parse_discipline, strategy_static, KernelChoice};
use clocksync::scenario::ScenarioKind;
use clocksync::{RunCounters, RunResult};
use tsn_metrics::{ExperimentEvent, SampleSummary};
use tsn_time::SyncState;

/// Artifact schema version, bumped on incompatible format changes.
///
/// 2: run seeds are derived from the prefix-relevant coordinates only
/// (see [`Coord::derived_seed`]), so records produced under schema 1
/// carry different seeds and must not be resumed.
///
/// 3: coordinates gained the adversary axes (strategy, compromised,
/// loss, partition), counters gained the degradation/diagnostic fields
/// (`sync_transitions`, `holdover_ns`, `freerun_ns`,
/// `uncovered_failures`), and records carry the run's sync-state
/// transition sequence.
///
/// 4: coordinates gained the election axes (election,
/// announce_interval_ms, gm_failure_at_s, rogue_master) and counters
/// gained the election/diagnostic fields (`unhandled_frames`,
/// `announce_tx`, `elected_gm_changes`, `reconvergence_ns`).
///
/// 5: coordinates gained the fabric axes (hops, cross_traffic_pct,
/// asymmetry_ns, tc_mode) and counters gained the fabric fields
/// (`fabric_frames_forwarded`, `fabric_frames_dropped`,
/// `max_residence_ns`, `path_asymmetry_ns`).
///
/// 6: coordinates gained the fabric topology axis (`topology`) and the
/// frontier axes (`adv_offset_ns`, `fta_f`).
///
/// 7: coordinates gained the fleet axes (`fleet_nodes`,
/// `fleet_topology`). Unlike earlier bumps this one is
/// *decode-compatible*: schema-6 records (which cannot carry fleet
/// axes) still decode, with both fleet fields `None`, so committed
/// fixtures and long-lived campaign directories keep resuming without
/// re-execution. New records are always written as schema 7.
pub const ARTIFACT_SCHEMA: u64 = 7;

/// Oldest schema [`RunRecord::decode`] still accepts (see the version
/// history above).
pub const ARTIFACT_SCHEMA_COMPAT: u64 = 6;

/// One sync-state transition of one aggregator, as recorded in the run's
/// event log (times are absolute simulation nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransitionRecord {
    /// Simulation time of the transition.
    pub at_ns: u64,
    /// Node index.
    pub node: usize,
    /// Clock-sync VM slot (0 = GM VM, 1 = redundant VM).
    pub slot: usize,
    /// State left.
    pub from: SyncState,
    /// State entered.
    pub to: SyncState,
}

/// Per-run precision statistics (all times in nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionRecord {
    /// Number of probe samples.
    pub count: u64,
    /// Mean measured precision Π*_s.
    pub mean_ns: f64,
    /// Standard deviation of Π*_s.
    pub std_ns: f64,
    /// Minimum sample.
    pub min_ns: i64,
    /// Maximum sample.
    pub max_ns: i64,
    /// Median sample.
    pub p50_ns: i64,
    /// 90th percentile.
    pub p90_ns: i64,
    /// 95th percentile.
    pub p95_ns: i64,
    /// 99th percentile.
    pub p99_ns: i64,
}

/// Derived bounds (all times in nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundsRecord {
    /// Minimum path delay `d_min`.
    pub d_min_ns: i64,
    /// Maximum path delay `d_max`.
    pub d_max_ns: i64,
    /// Reading error `E`.
    pub reading_error_ns: i64,
    /// Drift offset `Γ`.
    pub drift_offset_ns: i64,
    /// Precision bound `Π`.
    pub pi_ns: i64,
    /// Measurement error `γ`.
    pub gamma_ns: i64,
    /// `Π + γ`, the bound the measured series is checked against.
    pub pi_plus_gamma_ns: i64,
}

/// One run's complete artifact record.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Campaign name the run belongs to.
    pub campaign: String,
    /// Content hash (matches the artifact filename).
    pub hash: String,
    /// The grid coordinate.
    pub coord: Coord,
    /// The derived per-run seed.
    pub seed: u64,
    /// Simulation counters.
    pub counters: RunCounters,
    /// Derived bounds.
    pub bounds: BoundsRecord,
    /// Precision statistics (`None` when no probe completed).
    pub precision: Option<PrecisionRecord>,
    /// Fraction of samples within `Π + γ`.
    pub fraction_within_bound: f64,
    /// The run's degradation-state transitions, in event-log order.
    pub transitions: Vec<TransitionRecord>,
}

impl RunRecord {
    /// Builds the record for a finished run.
    pub fn new(campaign: &str, plan: &RunPlan, result: &RunResult) -> RunRecord {
        let b = &result.bounds;
        let precision = result.series.stats().map(|s| PrecisionRecord {
            count: s.count as u64,
            mean_ns: s.mean,
            std_ns: s.std,
            min_ns: s.min.as_nanos(),
            max_ns: s.max.as_nanos(),
            p50_ns: quantile_ns(result, 0.50),
            p90_ns: quantile_ns(result, 0.90),
            p95_ns: quantile_ns(result, 0.95),
            p99_ns: quantile_ns(result, 0.99),
        });
        RunRecord {
            campaign: campaign.to_string(),
            hash: plan.hash.clone(),
            coord: plan.coord,
            seed: plan.seed,
            counters: result.counters.clone(),
            bounds: BoundsRecord {
                d_min_ns: b.d_min.as_nanos(),
                d_max_ns: b.d_max.as_nanos(),
                reading_error_ns: b.reading_error.as_nanos(),
                drift_offset_ns: b.drift_offset.as_nanos(),
                pi_ns: b.pi.as_nanos(),
                gamma_ns: b.gamma.as_nanos(),
                pi_plus_gamma_ns: b.pi_plus_gamma().as_nanos(),
            },
            precision,
            fraction_within_bound: result.series.fraction_within(b.pi_plus_gamma()),
            transitions: result
                .events
                .entries()
                .iter()
                .filter_map(|(t, e)| match e {
                    ExperimentEvent::SyncStateChange {
                        node,
                        slot,
                        from,
                        to,
                    } => Some(TransitionRecord {
                        at_ns: t.as_nanos(),
                        node: *node,
                        slot: *slot,
                        from: *from,
                        to: *to,
                    }),
                    _ => None,
                })
                .collect(),
        }
    }

    /// Encodes the record as one JSONL line (with trailing newline).
    pub fn encode(&self) -> String {
        let mut line = self.to_json().render();
        line.push('\n');
        line
    }

    /// Streams the JSONL line (with trailing newline) into `out`,
    /// byte-identical to [`RunRecord::encode`]. The runner writes
    /// artifacts through this via a bounded `BufWriter`.
    pub fn encode_to<W: std::io::Write>(&self, out: &mut W) -> std::io::Result<()> {
        self.to_json().render_to(out)?;
        out.write_all(b"\n")
    }

    /// The record as a JSON document (the single source of truth for
    /// both encoders).
    fn to_json(&self) -> Json {
        let coord = Json::object(vec![
            (
                "scenario",
                Json::Str(self.coord.scenario.name().to_string()),
            ),
            ("seed", Json::UInt(self.coord.seed)),
            ("domains", opt_uint(self.coord.domains.map(|m| m as u64))),
            ("sync_interval_ms", opt_uint(self.coord.sync_interval_ms)),
            (
                "kernel",
                self.coord
                    .kernel
                    .map_or(Json::Null, |k| Json::Str(k.name().to_string())),
            ),
            (
                "fault_rate_per_hour",
                opt_uint(self.coord.fault_rate_per_hour.map(u64::from)),
            ),
            (
                "discipline",
                self.coord
                    .discipline
                    .map_or(Json::Null, |d| Json::Str(discipline_name(d).to_string())),
            ),
            (
                "strategy",
                self.coord
                    .strategy
                    .map_or(Json::Null, |s| Json::Str(s.to_string())),
            ),
            (
                "compromised",
                opt_uint(self.coord.compromised.map(|n| n as u64)),
            ),
            (
                "loss_permille",
                opt_uint(self.coord.loss_permille.map(u64::from)),
            ),
            ("partition_s", opt_uint(self.coord.partition_s)),
            (
                "election",
                self.coord.election.map_or(Json::Null, Json::Bool),
            ),
            (
                "announce_interval_ms",
                opt_uint(self.coord.announce_interval_ms),
            ),
            ("gm_failure_at_s", opt_uint(self.coord.gm_failure_at_s)),
            (
                "rogue_master",
                opt_uint(self.coord.rogue_master.map(|n| n as u64)),
            ),
            ("hops", opt_uint(self.coord.hops.map(u64::from))),
            (
                "cross_traffic_pct",
                opt_uint(self.coord.cross_traffic_pct.map(u64::from)),
            ),
            ("asymmetry_ns", opt_uint(self.coord.asymmetry_ns)),
            ("tc_mode", self.coord.tc_mode.map_or(Json::Null, Json::Bool)),
            (
                "topology",
                self.coord
                    .topology
                    .map_or(Json::Null, |t| Json::Str(t.to_string())),
            ),
            ("adv_offset_ns", opt_uint(self.coord.adv_offset_ns)),
            ("fta_f", opt_uint(self.coord.fta_f.map(|f| f as u64))),
            ("fleet_nodes", opt_uint(self.coord.fleet_nodes.map(u64::from))),
            (
                "fleet_topology",
                self.coord
                    .fleet_topology
                    .map_or(Json::Null, |t| Json::Str(t.to_string())),
            ),
        ]);
        let c = &self.counters;
        let counters = Json::object(vec![
            ("tx_timestamp_timeouts", Json::UInt(c.tx_timestamp_timeouts)),
            ("deadline_misses", Json::UInt(c.deadline_misses)),
            ("vm_failures", Json::UInt(c.vm_failures)),
            ("gm_failures", Json::UInt(c.gm_failures)),
            ("takeovers", Json::UInt(c.takeovers)),
            ("aggregations", Json::UInt(c.aggregations)),
            ("no_quorum", Json::UInt(c.no_quorum)),
            ("strikes_succeeded", Json::UInt(c.strikes_succeeded)),
            ("strikes_failed", Json::UInt(c.strikes_failed)),
            ("frames_queued", Json::UInt(c.frames_queued)),
            ("sync_transitions", Json::UInt(c.sync_transitions)),
            ("holdover_ns", Json::UInt(c.holdover_ns)),
            ("freerun_ns", Json::UInt(c.freerun_ns)),
            ("uncovered_failures", Json::UInt(c.uncovered_failures)),
            ("unhandled_frames", Json::UInt(c.unhandled_frames)),
            ("announce_tx", Json::UInt(c.announce_tx)),
            ("elected_gm_changes", Json::UInt(c.elected_gm_changes)),
            ("reconvergence_ns", Json::UInt(c.reconvergence_ns)),
            (
                "fabric_frames_forwarded",
                Json::UInt(c.fabric_frames_forwarded),
            ),
            ("fabric_frames_dropped", Json::UInt(c.fabric_frames_dropped)),
            ("max_residence_ns", Json::UInt(c.max_residence_ns)),
            ("path_asymmetry_ns", Json::UInt(c.path_asymmetry_ns)),
        ]);
        let b = &self.bounds;
        let bounds = Json::object(vec![
            ("d_min_ns", Json::Int(b.d_min_ns)),
            ("d_max_ns", Json::Int(b.d_max_ns)),
            ("reading_error_ns", Json::Int(b.reading_error_ns)),
            ("drift_offset_ns", Json::Int(b.drift_offset_ns)),
            ("pi_ns", Json::Int(b.pi_ns)),
            ("gamma_ns", Json::Int(b.gamma_ns)),
            ("pi_plus_gamma_ns", Json::Int(b.pi_plus_gamma_ns)),
        ]);
        let precision = match &self.precision {
            None => Json::Null,
            Some(p) => Json::object(vec![
                ("count", Json::UInt(p.count)),
                ("mean_ns", Json::Float(p.mean_ns)),
                ("std_ns", Json::Float(p.std_ns)),
                ("min_ns", Json::Int(p.min_ns)),
                ("max_ns", Json::Int(p.max_ns)),
                ("p50_ns", Json::Int(p.p50_ns)),
                ("p90_ns", Json::Int(p.p90_ns)),
                ("p95_ns", Json::Int(p.p95_ns)),
                ("p99_ns", Json::Int(p.p99_ns)),
            ]),
        };
        let transitions = Json::Array(
            self.transitions
                .iter()
                .map(|t| {
                    Json::object(vec![
                        ("at_ns", Json::UInt(t.at_ns)),
                        ("node", Json::UInt(t.node as u64)),
                        ("slot", Json::UInt(t.slot as u64)),
                        ("from", Json::Str(t.from.name().to_string())),
                        ("to", Json::Str(t.to.name().to_string())),
                    ])
                })
                .collect(),
        );
        Json::object(vec![
            ("schema", Json::UInt(ARTIFACT_SCHEMA)),
            ("campaign", Json::Str(self.campaign.clone())),
            ("hash", Json::Str(self.hash.clone())),
            ("coord", coord),
            ("run_seed", Json::UInt(self.seed)),
            ("counters", counters),
            ("bounds", bounds),
            ("precision", precision),
            (
                "fraction_within_bound",
                Json::Float(self.fraction_within_bound),
            ),
            ("transitions", transitions),
        ])
    }

    /// Decodes a record from its JSONL line. Returns `None` on any
    /// schema mismatch or malformed field (the caller treats the run as
    /// not-yet-completed and re-executes it).
    pub fn decode(line: &str) -> Option<RunRecord> {
        let v = Json::parse(line.trim_end()).ok()?;
        let schema = v.get("schema")?.as_u64()?;
        if !(ARTIFACT_SCHEMA_COMPAT..=ARTIFACT_SCHEMA).contains(&schema) {
            return None;
        }
        let coord_v = v.get("coord")?;
        let coord = Coord {
            scenario: ScenarioKind::parse(coord_v.get("scenario")?.as_str()?)?,
            seed: coord_v.get("seed")?.as_u64()?,
            domains: opt_field(coord_v, "domains", |x| x.as_u64().map(|m| m as usize))?,
            sync_interval_ms: opt_field(coord_v, "sync_interval_ms", Json::as_u64)?,
            kernel: opt_field(coord_v, "kernel", |x| {
                x.as_str().and_then(KernelChoice::parse)
            })?,
            fault_rate_per_hour: opt_field(coord_v, "fault_rate_per_hour", |x| {
                x.as_u64().and_then(|r| u32::try_from(r).ok())
            })?,
            discipline: opt_field(coord_v, "discipline", |x| {
                x.as_str().and_then(parse_discipline)
            })?,
            strategy: opt_field(coord_v, "strategy", |x| {
                x.as_str().and_then(strategy_static)
            })?,
            compromised: opt_field(coord_v, "compromised", |x| x.as_u64().map(|n| n as usize))?,
            loss_permille: opt_field(coord_v, "loss_permille", |x| {
                x.as_u64().and_then(|p| u32::try_from(p).ok())
            })?,
            partition_s: opt_field(coord_v, "partition_s", Json::as_u64)?,
            election: opt_field(coord_v, "election", Json::as_bool)?,
            announce_interval_ms: opt_field(coord_v, "announce_interval_ms", Json::as_u64)?,
            gm_failure_at_s: opt_field(coord_v, "gm_failure_at_s", Json::as_u64)?,
            rogue_master: opt_field(coord_v, "rogue_master", |x| x.as_u64().map(|n| n as usize))?,
            hops: opt_field(coord_v, "hops", |x| {
                x.as_u64().and_then(|h| u32::try_from(h).ok())
            })?,
            cross_traffic_pct: opt_field(coord_v, "cross_traffic_pct", |x| {
                x.as_u64().and_then(|p| u32::try_from(p).ok())
            })?,
            asymmetry_ns: opt_field(coord_v, "asymmetry_ns", Json::as_u64)?,
            tc_mode: opt_field(coord_v, "tc_mode", Json::as_bool)?,
            topology: opt_field(coord_v, "topology", |x| {
                x.as_str().and_then(crate::spec::topology_static)
            })?,
            adv_offset_ns: opt_field(coord_v, "adv_offset_ns", Json::as_u64)?,
            fta_f: opt_field(coord_v, "fta_f", |x| x.as_u64().map(|f| f as usize))?,
            fleet_nodes: compat_field(coord_v, "fleet_nodes", |x| {
                x.as_u64().and_then(|n| u32::try_from(n).ok())
            })?,
            fleet_topology: compat_field(coord_v, "fleet_topology", |x| {
                x.as_str().and_then(crate::spec::fleet_topology_static)
            })?,
        };
        let c = v.get("counters")?;
        let counters = RunCounters {
            tx_timestamp_timeouts: c.get("tx_timestamp_timeouts")?.as_u64()?,
            deadline_misses: c.get("deadline_misses")?.as_u64()?,
            vm_failures: c.get("vm_failures")?.as_u64()?,
            gm_failures: c.get("gm_failures")?.as_u64()?,
            takeovers: c.get("takeovers")?.as_u64()?,
            aggregations: c.get("aggregations")?.as_u64()?,
            no_quorum: c.get("no_quorum")?.as_u64()?,
            strikes_succeeded: c.get("strikes_succeeded")?.as_u64()?,
            strikes_failed: c.get("strikes_failed")?.as_u64()?,
            frames_queued: c.get("frames_queued")?.as_u64()?,
            sync_transitions: c.get("sync_transitions")?.as_u64()?,
            holdover_ns: c.get("holdover_ns")?.as_u64()?,
            freerun_ns: c.get("freerun_ns")?.as_u64()?,
            uncovered_failures: c.get("uncovered_failures")?.as_u64()?,
            unhandled_frames: c.get("unhandled_frames")?.as_u64()?,
            announce_tx: c.get("announce_tx")?.as_u64()?,
            elected_gm_changes: c.get("elected_gm_changes")?.as_u64()?,
            reconvergence_ns: c.get("reconvergence_ns")?.as_u64()?,
            fabric_frames_forwarded: c.get("fabric_frames_forwarded")?.as_u64()?,
            fabric_frames_dropped: c.get("fabric_frames_dropped")?.as_u64()?,
            max_residence_ns: c.get("max_residence_ns")?.as_u64()?,
            path_asymmetry_ns: c.get("path_asymmetry_ns")?.as_u64()?,
        };
        let b = v.get("bounds")?;
        let bounds = BoundsRecord {
            d_min_ns: b.get("d_min_ns")?.as_i64()?,
            d_max_ns: b.get("d_max_ns")?.as_i64()?,
            reading_error_ns: b.get("reading_error_ns")?.as_i64()?,
            drift_offset_ns: b.get("drift_offset_ns")?.as_i64()?,
            pi_ns: b.get("pi_ns")?.as_i64()?,
            gamma_ns: b.get("gamma_ns")?.as_i64()?,
            pi_plus_gamma_ns: b.get("pi_plus_gamma_ns")?.as_i64()?,
        };
        let precision = match v.get("precision")? {
            Json::Null => None,
            p => Some(PrecisionRecord {
                count: p.get("count")?.as_u64()?,
                mean_ns: p.get("mean_ns")?.as_f64()?,
                std_ns: p.get("std_ns")?.as_f64()?,
                min_ns: p.get("min_ns")?.as_i64()?,
                max_ns: p.get("max_ns")?.as_i64()?,
                p50_ns: p.get("p50_ns")?.as_i64()?,
                p90_ns: p.get("p90_ns")?.as_i64()?,
                p95_ns: p.get("p95_ns")?.as_i64()?,
                p99_ns: p.get("p99_ns")?.as_i64()?,
            }),
        };
        let transitions = v
            .get("transitions")?
            .as_array()?
            .iter()
            .map(|t| {
                Some(TransitionRecord {
                    at_ns: t.get("at_ns")?.as_u64()?,
                    node: t.get("node")?.as_u64()? as usize,
                    slot: t.get("slot")?.as_u64()? as usize,
                    from: SyncState::parse(t.get("from")?.as_str()?)?,
                    to: SyncState::parse(t.get("to")?.as_str()?)?,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        Some(RunRecord {
            campaign: v.get("campaign")?.as_str()?.to_string(),
            hash: v.get("hash")?.as_str()?.to_string(),
            coord,
            seed: v.get("run_seed")?.as_u64()?,
            counters,
            bounds,
            precision,
            fraction_within_bound: v.get("fraction_within_bound")?.as_f64()?,
            transitions,
        })
    }

    /// Per-run scalar used for cross-seed aggregation of a precision
    /// field; `None` when the run recorded no samples.
    pub fn precision_scalar(&self, pick: impl Fn(&PrecisionRecord) -> f64) -> Option<f64> {
        self.precision.as_ref().map(pick)
    }

    /// The run's bound-violation rate (fraction of samples *outside*
    /// `Π + γ`).
    pub fn violation_rate(&self) -> f64 {
        1.0 - self.fraction_within_bound
    }

    /// Cross-seed summary of one scalar over a set of runs.
    pub fn summarize(
        records: &[&RunRecord],
        f: impl Fn(&RunRecord) -> Option<f64>,
    ) -> Option<SampleSummary> {
        let values: Vec<f64> = records.iter().filter_map(|r| f(r)).collect();
        SampleSummary::from_values(&values)
    }
}

fn opt_uint(v: Option<u64>) -> Json {
    v.map_or(Json::Null, Json::UInt)
}

/// Reads an optional coordinate field: `null` → `Some(None)`, a valid
/// value → `Some(Some(v))`, anything else → `None` (decode failure).
fn opt_field<T>(obj: &Json, key: &str, f: impl Fn(&Json) -> Option<T>) -> Option<Option<T>> {
    match obj.get(key)? {
        Json::Null => Some(None),
        v => f(v).map(Some),
    }
}

/// Like [`opt_field`], but tolerates an *absent* key: coordinate axes
/// added after [`ARTIFACT_SCHEMA_COMPAT`] are missing from older
/// records, and decode as `None` rather than failing the record.
fn compat_field<T>(obj: &Json, key: &str, f: impl Fn(&Json) -> Option<T>) -> Option<Option<T>> {
    match obj.get(key) {
        None | Some(Json::Null) => Some(None),
        Some(v) => f(v).map(Some),
    }
}

fn quantile_ns(result: &RunResult, q: f64) -> i64 {
    result.series.quantile(q).map(|n| n.as_nanos()).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsn_hyp::SyncClockDiscipline;

    fn record() -> RunRecord {
        RunRecord {
            campaign: "t".to_string(),
            hash: "00ff".to_string(),
            coord: Coord {
                scenario: ScenarioKind::Baseline,
                seed: 42,
                domains: Some(5),
                sync_interval_ms: None,
                kernel: Some(KernelChoice::Diverse),
                fault_rate_per_hour: None,
                discipline: Some(SyncClockDiscipline::FeedForward),
                strategy: Some("trim-edge"),
                compromised: Some(2),
                loss_permille: Some(20),
                partition_s: None,
                election: Some(true),
                announce_interval_ms: Some(250),
                gm_failure_at_s: None,
                rogue_master: Some(1),
                hops: Some(3),
                cross_traffic_pct: Some(30),
                asymmetry_ns: None,
                tc_mode: Some(true),
                topology: Some("ring"),
                adv_offset_ns: Some(20_000),
                fta_f: Some(2),
                fleet_nodes: Some(256),
                fleet_topology: Some("fat-tree"),
            },
            seed: u64::MAX - 3,
            counters: RunCounters::default(),
            bounds: BoundsRecord {
                d_min_ns: 2_500,
                d_max_ns: 7_600,
                reading_error_ns: 5_100,
                drift_offset_ns: 1_250,
                pi_ns: 12_700,
                gamma_ns: 1_200,
                pi_plus_gamma_ns: 13_900,
            },
            precision: Some(PrecisionRecord {
                count: 60,
                mean_ns: 3_120.5,
                std_ns: 800.25,
                min_ns: 900,
                max_ns: 9_800,
                p50_ns: 3_000,
                p90_ns: 4_500,
                p95_ns: 5_200,
                p99_ns: 8_100,
            }),
            fraction_within_bound: 0.9833,
            transitions: vec![
                TransitionRecord {
                    at_ns: 7_000_000_000,
                    node: 0,
                    slot: 1,
                    from: SyncState::Synchronized,
                    to: SyncState::Holdover,
                },
                TransitionRecord {
                    at_ns: 9_500_000_000,
                    node: 0,
                    slot: 1,
                    from: SyncState::Holdover,
                    to: SyncState::Freerun,
                },
            ],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let r = record();
        let line = r.encode();
        assert!(line.ends_with('\n'));
        assert!(!line.trim_end().contains('\n'), "one JSONL line");
        let back = RunRecord::decode(&line).expect("decodes");
        assert_eq!(back, r);
    }

    #[test]
    fn encode_is_deterministic() {
        assert_eq!(record().encode(), record().encode());
    }

    #[test]
    fn decode_rejects_other_schemas_and_garbage() {
        let line = record().encode().replace("\"schema\":7", "\"schema\":5");
        assert!(RunRecord::decode(&line).is_none());
        let line = record().encode().replace("\"schema\":7", "\"schema\":8");
        assert!(RunRecord::decode(&line).is_none());
        assert!(RunRecord::decode("not json").is_none());
        assert!(RunRecord::decode("{}").is_none());
    }

    #[test]
    fn decode_accepts_schema_6_records_without_fleet_fields() {
        // A schema-6 artifact (as committed in the golden fixture) has
        // neither fleet key in its coord object; it must keep decoding,
        // with both fleet axes read back as `None`.
        let line = record()
            .encode()
            .replace("\"schema\":7", "\"schema\":6")
            .replace(",\"fleet_nodes\":256,\"fleet_topology\":\"fat-tree\"", "");
        assert!(!line.contains("fleet_"), "fleet keys stripped");
        let back = RunRecord::decode(&line).expect("schema-6 record decodes");
        assert_eq!(back.coord.fleet_nodes, None);
        assert_eq!(back.coord.fleet_topology, None);
    }

    #[test]
    fn encode_to_matches_encode() {
        let r = record();
        let mut buf = Vec::new();
        r.encode_to(&mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), r.encode());
    }

    #[test]
    fn null_precision_roundtrips() {
        let mut r = record();
        r.precision = None;
        let back = RunRecord::decode(&r.encode()).unwrap();
        assert_eq!(back.precision, None);
    }

    #[test]
    fn summarize_skips_missing_precision() {
        let mut a = record();
        a.fraction_within_bound = 0.9;
        let mut b = record();
        b.precision = None;
        b.fraction_within_bound = 1.0;
        let refs = vec![&a, &b];
        let s = RunRecord::summarize(&refs, |r| r.precision_scalar(|p| p.mean_ns)).unwrap();
        assert_eq!(s.count, 1);
        let v = RunRecord::summarize(&refs, |r| Some(r.violation_rate())).unwrap();
        assert_eq!(v.count, 2);
        assert!((v.mean - 0.05).abs() < 1e-12);
    }
}
