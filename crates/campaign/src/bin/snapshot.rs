//! The `snapshot` CLI: save, inspect, restore, and verify deterministic
//! world checkpoints.
//!
//! ```text
//! snapshot save    [config flags] --at SECS --out FILE
//! snapshot info    --file FILE
//! snapshot restore --file FILE [config flags]
//! snapshot verify  [config flags] [--at SECS] [--epoch-s SECS]
//! ```
//!
//! Config flags (shared by `save`, `restore`, and `verify`):
//! `[--preset quick|paper] [--scenario NAME] [--seed N] [--duration-s S]
//! [--warmup-s S]` — they must describe the *same* configuration when
//! restoring that was used when saving; [`World::restore`] rejects a
//! mismatched fingerprint rather than silently diverging.
//!
//! `verify` is the divergence detector: it checkpoints a run mid-flight,
//! restores a copy, then steps the original and the restored world epoch
//! by epoch, comparing state hashes. The first divergent epoch pinpoints
//! where nondeterminism crept in. Exits 0 when the runs stay identical,
//! 1 on divergence, 2 on usage errors.

use clocksync::scenario::ScenarioKind;
use clocksync::{TestbedConfig, World, WorldSnapshot};
use std::path::PathBuf;
use std::process::ExitCode;
use tsn_time::{Nanos, SimTime};

const USAGE: &str = "usage:
  snapshot save    [config flags] --at SECS --out FILE
  snapshot info    --file FILE
  snapshot restore --file FILE [config flags]
  snapshot verify  [config flags] [--at SECS] [--epoch-s SECS]

config flags: [--preset quick|paper] [--scenario NAME] [--seed N]
              [--duration-s S] [--warmup-s S]
scenarios: baseline, cyber_identical_kernels, cyber_diverse_kernels,
           fault_injection, prior_work_baseline
exit codes: 0 ok, 1 divergence (verify), 2 error";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run_cli(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run_cli(args: &[String]) -> Result<ExitCode, String> {
    let Some(command) = args.first() else {
        return Err("no subcommand".to_string());
    };
    let rest = &args[1..];
    match command.as_str() {
        "save" => cmd_save(rest),
        "info" => cmd_info(rest),
        "restore" => cmd_restore(rest),
        "verify" => cmd_verify(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

/// Strict `--key value` / `--switch` parser (same shape as the
/// `campaign` binary's): unknown flags are errors, not typos-in-waiting.
struct Flags {
    pairs: Vec<(String, String)>,
}

impl Flags {
    fn parse(args: &[String], known_value_flags: &[&str]) -> Result<Flags, String> {
        let mut pairs = Vec::new();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            if known_value_flags.contains(&arg.as_str()) {
                let value = it.next().ok_or_else(|| format!("{arg} requires a value"))?;
                pairs.push((arg.clone(), value.clone()));
            } else {
                return Err(format!("unknown flag {arg:?}"));
            }
        }
        Ok(Flags { pairs })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn get_parsed<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        self.get(key)
            .map(|v| {
                v.parse()
                    .map_err(|_| format!("malformed value {v:?} for {key}"))
            })
            .transpose()
    }
}

const CONFIG_FLAGS: [&str; 5] = [
    "--preset",
    "--scenario",
    "--seed",
    "--duration-s",
    "--warmup-s",
];

/// Materializes a configuration from the shared config flags.
fn build_config(flags: &Flags) -> Result<TestbedConfig, String> {
    let seed = flags.get_parsed::<u64>("--seed")?.unwrap_or(1);
    let mut cfg = match flags.get("--preset").unwrap_or("quick") {
        "quick" => TestbedConfig::quick(seed),
        "paper" => TestbedConfig::paper_default(seed),
        other => return Err(format!("unknown preset {other:?} (quick|paper)")),
    };
    if let Some(s) = flags.get_parsed::<i64>("--duration-s")? {
        cfg.duration = Nanos::from_secs(s);
    }
    if let Some(s) = flags.get_parsed::<i64>("--warmup-s")? {
        cfg.warmup = Nanos::from_secs(s);
    }
    if let Some(name) = flags.get("--scenario") {
        let kind = ScenarioKind::parse(name)
            .ok_or_else(|| format!("unknown scenario {name:?} (see `snapshot help`)"))?;
        kind.apply(&mut cfg);
    }
    Ok(cfg)
}

fn read_snapshot(path: &str) -> Result<WorldSnapshot, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    WorldSnapshot::decode(&bytes).map_err(|e| format!("{path}: {e}"))
}

fn print_info(snap: &WorldSnapshot) {
    println!("state_version:    {}", snap.state_version);
    println!("config_fp:        {:016x}", snap.config_fingerprint);
    println!(
        "at:               {:.3}s ({} ns)",
        snap.at_ns as f64 / 1e9,
        snap.at_ns
    );
    println!("events_processed: {}", snap.events_processed);
    println!("payload:          {} byte(s)", snap.payload.len());
    println!("state_hash:       {:016x}", snap.state_hash());
}

fn cmd_save(args: &[String]) -> Result<ExitCode, String> {
    let mut known = CONFIG_FLAGS.to_vec();
    known.extend(["--at", "--out"]);
    let flags = Flags::parse(args, &known)?;
    let cfg = build_config(&flags)?;
    let at = SimTime::from_secs(
        flags
            .get_parsed::<u64>("--at")?
            .ok_or("--at SECS is required")?,
    );
    let out = PathBuf::from(flags.get("--out").ok_or("--out FILE is required")?);

    let mut world = World::new(cfg);
    if at > world.end_time() {
        return Err(format!(
            "--at {}s is past the end of the run ({}s)",
            at.as_secs_f64(),
            world.end_time().as_secs_f64()
        ));
    }
    world.run_until(at);
    let snap = world.snapshot();
    std::fs::write(&out, snap.encode())
        .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    println!("saved {}", out.display());
    print_info(&snap);
    Ok(ExitCode::SUCCESS)
}

fn cmd_info(args: &[String]) -> Result<ExitCode, String> {
    let flags = Flags::parse(args, &["--file"])?;
    let snap = read_snapshot(flags.get("--file").ok_or("--file FILE is required")?)?;
    print_info(&snap);
    Ok(ExitCode::SUCCESS)
}

fn cmd_restore(args: &[String]) -> Result<ExitCode, String> {
    let mut known = CONFIG_FLAGS.to_vec();
    known.push("--file");
    let flags = Flags::parse(args, &known)?;
    let snap = read_snapshot(flags.get("--file").ok_or("--file FILE is required")?)?;
    let cfg = build_config(&flags)?;

    let mut world = World::restore(cfg, &snap).map_err(|e| format!("restore: {e}"))?;
    let end = world.end_time();
    world.run_until(end);
    println!(
        "restored at {:.3}s, continued to {:.3}s",
        snap.at_ns as f64 / 1e9,
        end.as_secs_f64()
    );
    println!("events_processed: {}", world.events_processed());
    println!("state_hash:       {:016x}", world.state_hash());
    let result = world.into_result();
    println!("counters:         {:?}", result.counters);
    Ok(ExitCode::SUCCESS)
}

fn cmd_verify(args: &[String]) -> Result<ExitCode, String> {
    let mut known = CONFIG_FLAGS.to_vec();
    known.extend(["--at", "--epoch-s"]);
    let flags = Flags::parse(args, &known)?;
    let cfg = build_config(&flags)?;
    let epoch = Nanos::from_secs(flags.get_parsed::<i64>("--epoch-s")?.unwrap_or(1).max(1));

    let mut original = World::new(cfg.clone());
    let end = original.end_time();
    // Default checkpoint: the end of the warm-up (where the campaign
    // engine forks), falling back to the midpoint for zero-warm-up runs.
    let at = match flags.get_parsed::<u64>("--at")? {
        Some(s) => SimTime::from_secs(s),
        None => clocksync::snapshot::checkpoint_time(&cfg)
            .unwrap_or(SimTime::from_nanos(end.as_nanos() / 2)),
    };
    if at > end {
        return Err(format!(
            "--at {}s is past the end of the run ({}s)",
            at.as_secs_f64(),
            end.as_secs_f64()
        ));
    }

    original.run_until(at);
    let snap = original.snapshot();
    let mut restored = World::restore(cfg, &snap).map_err(|e| format!("restore: {e}"))?;
    if restored.state_hash() != original.state_hash() {
        println!(
            "DIVERGED at epoch 0 (t = {:.3}s): restore does not reproduce the checkpoint",
            at.as_secs_f64()
        );
        return Ok(ExitCode::from(1));
    }

    let mut t = at;
    let mut epochs = 0u64;
    while t < end {
        t = (t + epoch).min(end);
        epochs += 1;
        original.run_until(t);
        restored.run_until(t);
        let (a, b) = (original.state_hash(), restored.state_hash());
        if a != b {
            println!(
                "DIVERGED at epoch {epochs} (t = {:.3}s): original {:016x} != restored {:016x}",
                t.as_secs_f64(),
                a,
                b
            );
            println!(
                "first nondeterministic event lies in ({:.3}s, {:.3}s]",
                (t + Nanos::from_nanos(-epoch.as_nanos())).as_secs_f64(),
                t.as_secs_f64()
            );
            return Ok(ExitCode::from(1));
        }
    }
    println!(
        "verified: {epochs} epoch(s) of {:.0}s from {:.3}s to {:.3}s, no divergence (state_hash {:016x})",
        epoch.as_secs_f64(),
        at.as_secs_f64(),
        end.as_secs_f64(),
        original.state_hash()
    );
    Ok(ExitCode::SUCCESS)
}
