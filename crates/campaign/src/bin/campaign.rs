//! The `campaign` CLI: run, resume, summarize, and diff experiment
//! campaigns.
//!
//! ```text
//! campaign run       (--builtin NAME | --spec FILE) [--dir DIR] [--threads N] [--quiet] [--fork] [--check] [--trace DIR] [--trace-cap N]
//! campaign resume    (--builtin NAME | --spec FILE) [--dir DIR] [--threads N] [--quiet] [--fork] [--check] [--trace DIR] [--trace-cap N]
//! campaign frontier  (--builtin NAME | --spec FILE) [--dir DIR] [--threads N] [--quiet] [--check] [--no-fork]
//! campaign summarize --dir DIR [--json]
//! campaign profile   --trace DIR [--json]
//! campaign diff      --baseline DIR --candidate DIR [--tol-violation F]
//!                    [--tol-p95-rel F] [--tol-p95-ns F] [--tol-dwell-ms F]
//!                    [--tol-transitions F] [--tol-uncovered F]
//!                    [--tol-reconvergence-ns F] [--tol-frontier-ns N]
//! campaign spec      --builtin NAME
//! campaign list
//! ```
//!
//! `resume` is an alias of `run` — resumption is automatic and
//! content-addressed, the alias only states intent. `summarize` and
//! `diff` read the spec back from each campaign directory's
//! `manifest.json`, so they need no spec argument. `diff` exits 0 on
//! parity, 1 on regression, 2 on error/incomparable campaigns.
//!
//! `frontier` explores a resilience-frontier spec
//! (`tsn_campaign::frontier`): per discrete adversary cell it bisects
//! the continuous axis until the containment-failure boundary is
//! bracketed, writes `frontier.json`, and prints the
//! empirical-vs-analytical report. Forking is on by default there (the
//! rounds exist to share warm prefixes); `--no-fork` runs cold.
//! `summarize` and `diff` recognize frontier directories by their
//! `frontier.json` and compare brackets instead of group summaries.
//! Exit is nonzero when any cell is inconsistent with the analytical
//! bound, a run failed, or (`--check`) the oracle reported violations.
//!
//! `--check` arms the runtime invariant oracle (`tsn-oracle`) on every
//! executed run: violations are printed to stderr and the command exits
//! 1 if any were found. Artifacts are byte-identical either way.
//!
//! `--trace DIR` arms the structured tracer (`tsn-trace`) on every
//! executed run and writes one Chrome trace-event file
//! `trace-<hash>.json` per run into DIR (open it in `ui.perfetto.dev`),
//! plus a `profile.jsonl` stream with per-run wall time and event
//! counts. `campaign profile --trace DIR` aggregates that stream into a
//! per-scenario hot-spot report (`--json` for the machine-readable
//! table). Artifacts are byte-identical either way.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use tsn_campaign::json::Json;
use tsn_campaign::{
    frontier, profile, runner, summary, CampaignSpec, DiffTolerance, FrontierSpec, RunnerOptions,
};

const USAGE: &str = "usage:
  campaign run       (--builtin NAME | --spec FILE) [--dir DIR] [--threads N] [--quiet] [--fork] [--check] [--trace DIR] [--trace-cap N]
  campaign resume    (--builtin NAME | --spec FILE) [--dir DIR] [--threads N] [--quiet] [--fork] [--check] [--trace DIR] [--trace-cap N]
  campaign frontier  (--builtin NAME | --spec FILE) [--dir DIR] [--threads N] [--quiet] [--check] [--no-fork]
  campaign summarize --dir DIR [--json]
  campaign profile   --trace DIR [--json]
  campaign diff      --baseline DIR --candidate DIR [--tol-violation F] [--tol-p95-rel F] [--tol-p95-ns F]
                     [--tol-dwell-ms F] [--tol-transitions F] [--tol-uncovered F] [--tol-reconvergence-ns F]
                     [--tol-frontier-ns N]
  campaign spec      --builtin NAME
  campaign list

built-in specs: quick-baseline, repro-all, abl2-domains, abl3-sync-interval, adversary-sweep, election-sweep, fabric-sweep, fleet-sweep
built-in frontier specs: frontier-sweep
exit codes (diff): 0 parity, 1 regression, 2 error
exit codes (run --check): 0 clean, 1 invariant violation(s) or failed run(s), 2 error
exit codes (frontier): 0 consistent, 1 inconsistent cell / violation / failed run, 2 error";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run_cli(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run_cli(args: &[String]) -> Result<ExitCode, String> {
    let Some(command) = args.first() else {
        return Err("no subcommand".to_string());
    };
    let rest = &args[1..];
    match command.as_str() {
        "run" | "resume" => cmd_run(rest),
        "frontier" => cmd_frontier(rest),
        "summarize" => cmd_summarize(rest),
        "profile" => cmd_profile(rest),
        "diff" => cmd_diff(rest),
        "spec" => cmd_spec(rest),
        "list" => {
            for name in CampaignSpec::BUILTINS {
                let spec = CampaignSpec::builtin(name).expect("builtin exists");
                println!("{name}  ({} runs)", spec.total_runs());
            }
            for name in FrontierSpec::BUILTINS {
                let spec = FrontierSpec::builtin(name).expect("builtin exists");
                println!(
                    "{name}  (frontier: {} cell(s), ≤{} runs)",
                    spec.cells.len(),
                    spec.cells.len() * spec.budget_per_cell * spec.seeds.len()
                );
            }
            Ok(ExitCode::SUCCESS)
        }
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

/// A tiny strict flag parser: every flag takes one value except the
/// listed boolean switches; unknown flags are errors.
struct Flags {
    pairs: Vec<(String, String)>,
    switches: Vec<String>,
}

impl Flags {
    fn parse(args: &[String], known: &[&str], known_switches: &[&str]) -> Result<Flags, String> {
        let mut pairs = Vec::new();
        let mut switches = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if a == "--help" || a == "-h" {
                return Err("help requested".to_string());
            }
            if known_switches.contains(&a.as_str()) {
                switches.push(a.clone());
            } else if known.contains(&a.as_str()) {
                let v = it
                    .next()
                    .ok_or_else(|| format!("{a} needs a value"))?
                    .clone();
                pairs.push((a.clone(), v));
            } else {
                return Err(format!("unknown argument {a:?}"));
            }
        }
        Ok(Flags { pairs, switches })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn has(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }

    fn get_parsed<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        self.get(key)
            .map(|v| {
                v.parse()
                    .map_err(|_| format!("malformed value {v:?} for {key}"))
            })
            .transpose()
    }
}

fn load_spec(flags: &Flags) -> Result<CampaignSpec, String> {
    match (flags.get("--builtin"), flags.get("--spec")) {
        (Some(name), None) => CampaignSpec::builtin(name)
            .ok_or_else(|| format!("unknown builtin {name:?} (see `campaign list`)")),
        (None, Some(path)) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            CampaignSpec::parse(&text).map_err(|e| format!("{path}: {e}"))
        }
        _ => Err("exactly one of --builtin or --spec is required".to_string()),
    }
}

fn cmd_run(args: &[String]) -> Result<ExitCode, String> {
    let flags = Flags::parse(
        args,
        &[
            "--builtin",
            "--spec",
            "--dir",
            "--threads",
            "--trace",
            "--trace-cap",
        ],
        &["--quiet", "--fork", "--check"],
    )?;
    let spec = load_spec(&flags)?;
    let dir = flags
        .get("--dir")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/campaigns").join(&spec.name));
    let opts = RunnerOptions {
        dir: dir.clone(),
        threads: flags.get_parsed::<usize>("--threads")?.unwrap_or(0),
        quiet: flags.has("--quiet"),
        fork: flags.has("--fork"),
        check: flags.has("--check"),
        trace: flags.get("--trace").map(PathBuf::from),
        trace_max_events: flags.get_parsed::<usize>("--trace-cap")?,
        panic_label: None,
    };
    if opts.trace_max_events.is_some() && opts.trace.is_none() {
        return Err("--trace-cap needs --trace DIR".to_string());
    }
    let report = runner::execute(&spec, &opts).map_err(|e| e.to_string())?;
    println!(
        "campaign {}: {} run(s) total, {} executed, {} resumed, {} thread(s), artifacts in {}",
        spec.name,
        report.records.len(),
        report.executed,
        report.skipped,
        report.threads,
        dir.display()
    );
    if report.quarantined > 0 {
        println!(
            "resume: {} corrupt artifact(s) quarantined to {} and re-run",
            report.quarantined,
            dir.join("runs").join("corrupt").display()
        );
    }
    if report.forked_groups > 0 {
        println!(
            "fork: {} group(s) shared {} warm prefix run(s), {} event(s) skipped",
            report.forked_groups, report.prefix_runs, report.prefix_events_skipped
        );
    }
    print!("{}", summary::render(&summary::summarize(&report.records)));
    if let Some(trace_dir) = &opts.trace {
        println!(
            "trace: {} run(s) traced into {} (open trace-<hash>.json in ui.perfetto.dev; \
             `campaign profile --trace {}` for the hot-spot report)",
            report.executed,
            trace_dir.display(),
            trace_dir.display()
        );
    }
    let mut failing = false;
    if report.trace_dropped_events > 0 {
        eprintln!(
            "trace: {} event(s) dropped past the per-run cap — the trace is truncated \
             (raise --trace-cap; `campaign profile` shows per-scenario drop counts)",
            report.trace_dropped_events
        );
        if opts.check {
            failing = true;
        }
    }
    if !report.failed.is_empty() {
        eprintln!(
            "failed: {} run(s) panicked (campaign finished; resume retries them):",
            report.failed.len()
        );
        for f in &report.failed {
            eprintln!("  {f}");
        }
        failing = true;
    }
    if opts.check {
        if report.violations.is_empty() {
            println!("check: no invariant violations");
        } else {
            eprintln!("check: {} invariant violation(s):", report.violations.len());
            for v in &report.violations {
                eprintln!("  {v}");
            }
            failing = true;
        }
    }
    Ok(if failing {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    })
}

fn cmd_frontier(args: &[String]) -> Result<ExitCode, String> {
    let flags = Flags::parse(
        args,
        &["--builtin", "--spec", "--dir", "--threads"],
        &["--quiet", "--check", "--no-fork"],
    )?;
    let spec = match (flags.get("--builtin"), flags.get("--spec")) {
        (Some(name), None) => FrontierSpec::builtin(name)
            .ok_or_else(|| format!("unknown frontier builtin {name:?} (see `campaign list`)"))?,
        (None, Some(path)) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            FrontierSpec::parse(&text).map_err(|e| format!("{path}: {e}"))?
        }
        _ => return Err("exactly one of --builtin or --spec is required".to_string()),
    };
    let dir = flags
        .get("--dir")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/campaigns").join(&spec.name));
    let opts = RunnerOptions {
        dir: dir.clone(),
        threads: flags.get_parsed::<usize>("--threads")?.unwrap_or(0),
        quiet: flags.has("--quiet"),
        fork: !flags.has("--no-fork"),
        check: flags.has("--check"),
        trace: None,
        trace_max_events: None,
        panic_label: None,
    };
    let report = frontier::execute(&spec, &opts).map_err(|e| e.to_string())?;
    print!("{}", report.doc.render_text());
    println!(
        "frontier: {} executed, {} resumed; artifacts in {}",
        report.executed,
        report.skipped,
        dir.display()
    );
    if report.forked_groups > 0 {
        println!(
            "fork: {} group(s) shared {} warm prefix run(s) across rounds, {} event(s) skipped",
            report.forked_groups, report.prefix_runs, report.prefix_events_skipped
        );
    }
    let mut failing = false;
    if !report.failed.is_empty() {
        eprintln!("failed: {} run(s) panicked:", report.failed.len());
        for f in &report.failed {
            eprintln!("  {f}");
        }
        failing = true;
    }
    if opts.check {
        if report.violations.is_empty() {
            println!("check: no invariant violations");
        } else {
            eprintln!("check: {} invariant violation(s):", report.violations.len());
            for v in &report.violations {
                eprintln!("  {v}");
            }
            failing = true;
        }
    }
    if !report.doc.consistent() {
        eprintln!("frontier: empirical boundary inconsistent with the analytical bound");
        failing = true;
    }
    Ok(if failing {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    })
}

/// Reads the spec back from a campaign directory's manifest.
fn spec_of_dir(dir: &Path) -> Result<CampaignSpec, String> {
    let path = dir.join("manifest.json");
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let manifest =
        Json::parse(&text).map_err(|e| format!("{} is not valid JSON: {e}", path.display()))?;
    let spec = manifest
        .get("spec")
        .ok_or_else(|| format!("{} has no `spec`", path.display()))?;
    let spec =
        CampaignSpec::parse(&spec.render()).map_err(|e| format!("{}: {e}", path.display()))?;
    spec.validate()
        .map_err(|e| format!("{} holds an invalid spec: {e}", path.display()))?;
    Ok(spec)
}

fn load_summaries(dir: &Path) -> Result<Vec<summary::GroupSummary>, String> {
    let spec = spec_of_dir(dir)?;
    // Stream records through the bounded summarizer — one record in
    // memory at a time, so fleet-scale campaigns summarize in O(groups).
    let reader = runner::RunRecordReader::open(&spec, dir).map_err(|e| e.to_string())?;
    if reader.is_empty() {
        return Err(format!(
            "campaign at {} has no completed runs to summarize (run it first)",
            dir.display()
        ));
    }
    let mut summarizer = summary::StreamSummarizer::new();
    for record in reader {
        summarizer.push(&record.map_err(|e| e.to_string())?);
    }
    Ok(summarizer.finish())
}

/// Reads a frontier directory's `frontier.json`, when present.
fn frontier_doc_of_dir(dir: &Path) -> Option<Result<(String, frontier::FrontierDoc), String>> {
    let path = dir.join("frontier.json");
    if !path.exists() {
        return None;
    }
    Some(
        std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))
            .and_then(|text| {
                frontier::FrontierDoc::parse(&text)
                    .map(|doc| (text, doc))
                    .map_err(|e| format!("{}: {e}", path.display()))
            }),
    )
}

fn cmd_summarize(args: &[String]) -> Result<ExitCode, String> {
    let flags = Flags::parse(args, &["--dir"], &["--json"])?;
    let dir = PathBuf::from(flags.get("--dir").ok_or("--dir is required")?);
    // A frontier directory has no manifest — its summary is the
    // frontier document itself.
    if !dir.join("manifest.json").exists() {
        if let Some(loaded) = frontier_doc_of_dir(&dir) {
            let (text, doc) = loaded?;
            if flags.has("--json") {
                print!("{text}");
            } else {
                print!("{}", doc.render_text());
            }
            return Ok(ExitCode::SUCCESS);
        }
    }
    let groups = load_summaries(&dir)?;
    if flags.has("--json") {
        println!("{}", summary::render_json(&groups));
    } else {
        print!("{}", summary::render(&groups));
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_profile(args: &[String]) -> Result<ExitCode, String> {
    let flags = Flags::parse(args, &["--trace"], &["--json"])?;
    let dir = PathBuf::from(flags.get("--trace").ok_or("--trace is required")?);
    let entries = profile::load(&dir).map_err(|e| e.to_string())?;
    if entries.is_empty() {
        return Err(format!(
            "no profiled runs in {} (run a campaign with --trace first)",
            dir.display()
        ));
    }
    if flags.has("--json") {
        println!("{}", profile::render_json(&profile::aggregate(&entries)));
        return Ok(ExitCode::SUCCESS);
    }
    let total_wall: f64 = entries.iter().map(|e| e.wall_s).sum();
    let total_events: u64 = entries.iter().map(|e| e.sim_events).sum();
    println!(
        "{} profiled run(s), {:.2}s wall, {} simulated event(s) ({:.0} events/s overall)",
        entries.len(),
        total_wall,
        total_events,
        if total_wall > 0.0 {
            total_events as f64 / total_wall
        } else {
            0.0
        },
    );
    print!("{}", profile::render(&profile::aggregate(&entries)));
    Ok(ExitCode::SUCCESS)
}

fn cmd_diff(args: &[String]) -> Result<ExitCode, String> {
    let flags = Flags::parse(
        args,
        &[
            "--baseline",
            "--candidate",
            "--tol-violation",
            "--tol-p95-rel",
            "--tol-p95-ns",
            "--tol-dwell-ms",
            "--tol-transitions",
            "--tol-uncovered",
            "--tol-reconvergence-ns",
            "--tol-frontier-ns",
        ],
        &[],
    )?;
    let baseline = PathBuf::from(flags.get("--baseline").ok_or("--baseline is required")?);
    let candidate = PathBuf::from(flags.get("--candidate").ok_or("--candidate is required")?);
    // Two frontier directories diff by bracket, not by group summary.
    if let (Some(base), Some(cand)) = (
        frontier_doc_of_dir(&baseline),
        frontier_doc_of_dir(&candidate),
    ) {
        let (_, base) = base?;
        let (_, cand) = cand?;
        let tol_ns = flags
            .get_parsed::<u64>("--tol-frontier-ns")?
            .unwrap_or(base.spec.axis.resolution);
        let (verdict, lines) = frontier::diff(&base, &cand, tol_ns);
        for line in &lines {
            println!("{line}");
        }
        println!("verdict: {verdict:?}");
        return Ok(ExitCode::from(verdict.exit_code() as u8));
    }
    let mut tol = DiffTolerance::default();
    if let Some(v) = flags.get_parsed("--tol-violation")? {
        tol.violation_abs = v;
    }
    if let Some(v) = flags.get_parsed("--tol-p95-rel")? {
        tol.p95_rel = v;
    }
    if let Some(v) = flags.get_parsed("--tol-p95-ns")? {
        tol.p95_abs_ns = v;
    }
    if let Some(v) = flags.get_parsed("--tol-dwell-ms")? {
        tol.dwell_ms_abs = v;
    }
    if let Some(v) = flags.get_parsed("--tol-transitions")? {
        tol.transitions_abs = v;
    }
    if let Some(v) = flags.get_parsed("--tol-uncovered")? {
        tol.uncovered_abs = v;
    }
    if let Some(v) = flags.get_parsed("--tol-reconvergence-ns")? {
        tol.reconvergence_abs_ns = v;
    }
    let report = summary::diff(
        &load_summaries(&baseline)?,
        &load_summaries(&candidate)?,
        tol,
    );
    for line in &report.lines {
        println!("{line}");
    }
    println!("verdict: {:?}", report.verdict);
    Ok(ExitCode::from(report.verdict.exit_code() as u8))
}

fn cmd_spec(args: &[String]) -> Result<ExitCode, String> {
    let flags = Flags::parse(args, &["--builtin"], &[])?;
    let name = flags.get("--builtin").ok_or("--builtin is required")?;
    if let Some(spec) = CampaignSpec::builtin(name) {
        print!("{}", spec.render());
    } else if let Some(spec) = FrontierSpec::builtin(name) {
        print!("{}", spec.render());
    } else {
        return Err(format!("unknown builtin {name:?} (see `campaign list`)"));
    }
    Ok(ExitCode::SUCCESS)
}
