//! Declarative campaign specifications.
//!
//! A [`CampaignSpec`] is a base testbed configuration plus a parameter
//! grid: scenarios × seeds × domains M × sync interval S × kernel
//! assignment × injector rates × clock discipline. The spec is plain
//! data — expanding it into concrete runs is [`crate::matrix`]'s job —
//! and has a canonical JSON form used both for spec files and for
//! content-addressing run artifacts.

use crate::json::{Json, JsonError};
use clocksync::scenario::ScenarioKind;
use clocksync::{PartitionWindow, TestbedConfig};
use tsn_faults::ByzantineStrategy;
use tsn_hyp::SyncClockDiscipline;
use tsn_time::Nanos;

/// The named base configuration a spec starts from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    /// [`TestbedConfig::paper_default`] (1 h, paper §III-A1).
    Paper,
    /// [`TestbedConfig::quick`] (60 s, for tests and smoke runs).
    Quick,
}

impl Preset {
    /// The stable textual name.
    pub fn name(self) -> &'static str {
        match self {
            Preset::Paper => "paper",
            Preset::Quick => "quick",
        }
    }

    /// Parses a preset name.
    pub fn parse(name: &str) -> Option<Preset> {
        match name {
            "paper" => Some(Preset::Paper),
            "quick" => Some(Preset::Quick),
            _ => None,
        }
    }
}

/// The base testbed configuration: a preset plus scalar overrides.
///
/// Only knobs that are not grid axes live here; everything else comes
/// from the preset so specs stay small and the canonical form stays
/// stable.
#[derive(Debug, Clone, PartialEq)]
pub struct BaseSpec {
    /// The preset to start from.
    pub preset: Preset,
    /// Measured-duration override, in seconds.
    pub duration_s: Option<i64>,
    /// Warm-up override, in seconds.
    pub warmup_s: Option<i64>,
}

impl BaseSpec {
    /// A quick base with the given measured duration.
    pub fn quick(duration_s: i64) -> BaseSpec {
        BaseSpec {
            preset: Preset::Quick,
            duration_s: Some(duration_s),
            warmup_s: None,
        }
    }

    /// Materializes the base configuration for one run seed.
    pub fn materialize(&self, seed: u64) -> TestbedConfig {
        let mut cfg = match self.preset {
            Preset::Paper => TestbedConfig::paper_default(seed),
            Preset::Quick => TestbedConfig::quick(seed),
        };
        if let Some(s) = self.duration_s {
            cfg.duration = Nanos::from_secs(s);
        }
        if let Some(s) = self.warmup_s {
            cfg.warmup = Nanos::from_secs(s);
        }
        cfg
    }

    pub(crate) fn to_json(&self) -> Json {
        let mut pairs = vec![("preset", Json::Str(self.preset.name().to_string()))];
        if let Some(s) = self.duration_s {
            pairs.push(("duration_s", Json::Int(s)));
        }
        if let Some(s) = self.warmup_s {
            pairs.push(("warmup_s", Json::Int(s)));
        }
        Json::object(pairs)
    }

    pub(crate) fn from_json(v: &Json) -> Result<BaseSpec, SpecError> {
        let preset = v
            .get("preset")
            .and_then(Json::as_str)
            .ok_or_else(|| SpecError::field("base.preset"))?;
        let preset =
            Preset::parse(preset).ok_or_else(|| SpecError::value("base.preset", preset))?;
        let duration_s = match v.get("duration_s") {
            None => None,
            Some(d) => Some(
                d.as_i64()
                    .ok_or_else(|| SpecError::field("base.duration_s"))?,
            ),
        };
        let warmup_s = match v.get("warmup_s") {
            None => None,
            Some(w) => Some(
                w.as_i64()
                    .ok_or_else(|| SpecError::field("base.warmup_s"))?,
            ),
        };
        Ok(BaseSpec {
            preset,
            duration_s,
            warmup_s,
        })
    }
}

/// A kernel-assignment axis value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelChoice {
    /// Every GM clock-sync VM runs the same (exploitable) kernel.
    Identical,
    /// Diversified kernels; one node stays exploitable.
    Diverse,
}

impl KernelChoice {
    /// The stable textual name.
    pub fn name(self) -> &'static str {
        match self {
            KernelChoice::Identical => "identical",
            KernelChoice::Diverse => "diverse",
        }
    }

    /// Parses an axis value.
    pub fn parse(name: &str) -> Option<KernelChoice> {
        match name {
            "identical" => Some(KernelChoice::Identical),
            "diverse" => Some(KernelChoice::Diverse),
            _ => None,
        }
    }
}

/// Textual names for [`SyncClockDiscipline`] (the campaign layer owns
/// the naming; core keeps only the enum).
pub fn discipline_name(d: SyncClockDiscipline) -> &'static str {
    match d {
        SyncClockDiscipline::FeedForward => "feed_forward",
        SyncClockDiscipline::Feedback => "feedback",
    }
}

/// Parses a [`SyncClockDiscipline`] name.
pub fn parse_discipline(name: &str) -> Option<SyncClockDiscipline> {
    match name {
        "feed_forward" => Some(SyncClockDiscipline::FeedForward),
        "feedback" => Some(SyncClockDiscipline::Feedback),
        _ => None,
    }
}

/// The link-fault window a `partition_s` axis value generates: node 0
/// is cut off the switch mesh 2 s after the warm-up for `seconds`.
/// [`crate::matrix::materialize`] installs exactly this window, and
/// [`CampaignSpec::validate`] checks its end against the measured
/// duration — one definition, so the check can never drift from the
/// schedule.
pub fn partition_window(seconds: u64) -> PartitionWindow {
    PartitionWindow {
        node: 0,
        from: Nanos::from_secs(2),
        until: Nanos::from_secs(2 + seconds as i64),
    }
}

/// The canonical `&'static` name behind a strategy-axis value, used so
/// [`crate::matrix::Coord`] stays `Copy` ([`ByzantineStrategy::NAMES`]
/// owns the interned spellings).
pub fn strategy_static(name: &str) -> Option<&'static str> {
    ByzantineStrategy::NAMES
        .iter()
        .copied()
        .find(|n| *n == name)
}

/// Fabric topology axis values, in a stable order (the spellings of
/// [`clocksync::fabric::FabricTopology`]'s variants).
pub const TOPOLOGY_NAMES: [&str; 3] = ["line", "ring", "tree"];

/// The canonical `&'static` name behind a topology-axis value (same
/// interning contract as [`strategy_static`]).
pub fn topology_static(name: &str) -> Option<&'static str> {
    TOPOLOGY_NAMES.iter().copied().find(|n| *n == name)
}

/// Parses a topology-axis value into the fabric's enum.
pub fn parse_topology(name: &str) -> Option<clocksync::fabric::FabricTopology> {
    use clocksync::fabric::FabricTopology;
    match name {
        "line" => Some(FabricTopology::Line),
        "ring" => Some(FabricTopology::Ring),
        "tree" => Some(FabricTopology::Tree),
        _ => None,
    }
}

/// Fleet topology axis values, in a stable order (the spellings of
/// [`clocksync::fabric::FleetShape`]'s variants).
pub const FLEET_TOPOLOGY_NAMES: [&str; 4] = ["line", "ring", "tree", "fat-tree"];

/// The default fleet size when only the `fleet_topology` axis is active.
pub const DEFAULT_FLEET_NODES: u32 = 256;

/// The canonical `&'static` name behind a fleet-topology axis value
/// (same interning contract as [`strategy_static`]).
pub fn fleet_topology_static(name: &str) -> Option<&'static str> {
    FLEET_TOPOLOGY_NAMES.iter().copied().find(|n| *n == name)
}

/// The parameter grid. Every axis except `seeds` may be empty, meaning
/// "keep the base/scenario value"; the run matrix is the cross product
/// of all non-empty axes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Grid {
    /// Experiment seeds (the replication axis; must be non-empty).
    pub seeds: Vec<u64>,
    /// Domain counts M (sets `nodes` and `aggregation.domains`, ABL2).
    pub domains: Vec<usize>,
    /// Sync intervals S in milliseconds (staleness follows as 4·S, ABL3).
    pub sync_interval_ms: Vec<u64>,
    /// Kernel assignments (overrides the scenario's choice).
    pub kernels: Vec<KernelChoice>,
    /// Injector rates: random redundant-VM shutdowns per node per hour
    /// (sets `random_per_hour_max`, enabling the injector if needed).
    pub fault_rate_per_hour: Vec<u32>,
    /// `CLOCK_SYNCTIME` disciplines.
    pub disciplines: Vec<SyncClockDiscipline>,
    /// Adversary strategies ([`ByzantineStrategy::NAMES`] presets),
    /// applied to the compromised GMs from strike time onward.
    pub strategies: Vec<String>,
    /// Number of compromised GM domains per run (`0` is the honest
    /// control cell; `f + 1` and beyond are negative-control cells).
    pub compromised: Vec<usize>,
    /// Per-link i.i.d. frame-loss probabilities, in permille (‰).
    pub loss_permille: Vec<u32>,
    /// Partition durations in seconds: node 0 is cut off the switch
    /// mesh 2 s after the warm-up for this long (`0` means no cut).
    pub partition_s: Vec<u64>,
    /// Dynamic BMCA grandmaster election on/off. Omitted, the election
    /// activates implicitly whenever any of the other election axes
    /// (`announce_interval_ms`, `gm_failure_at_s`, `rogue_master`) is
    /// active; an explicit `false` cell keeps the paper's static
    /// assignment and ignores those axes (the honest control).
    pub election: Vec<bool>,
    /// Announce intervals of acting masters, in milliseconds
    /// (activates the election; default 250 ms).
    pub announce_interval_ms: Vec<u64>,
    /// Scheduled grandmaster kill: seconds after the warm-up at which
    /// node 0's GM VM is permanently shut down, forcing domain 0 to
    /// re-elect its second-best master (activates the election).
    pub gm_failure_at_s: Vec<u64>,
    /// Number of rogue masters: compromised nodes (highest indices)
    /// that forge a best-possible priority vector on their foreign
    /// target domain (`0` is the honest control; activates the
    /// election).
    pub rogue_master: Vec<usize>,
    /// Fabric depths: hops through the line of TSN switches between
    /// sender and receiver (activates the fabric; default 1 hop).
    pub hops: Vec<u32>,
    /// Best-effort cross-traffic loads on each fabric egress port, in
    /// percent of the gate-open window (activates the fabric).
    pub cross_traffic_pct: Vec<u32>,
    /// Directional link-delay asymmetries per fabric hop, in
    /// nanoseconds (activates the fabric).
    pub asymmetry_ns: Vec<u64>,
    /// Transparent-clock modes: `true` accumulates per-hop residence
    /// into the gPTP correction field, `false` leaves the raw
    /// end-to-end queuing error (activates the fabric).
    pub tc_mode: Vec<bool>,
    /// Fabric topologies ([`TOPOLOGY_NAMES`] spellings; activates the
    /// fabric). Omitted, fabric runs use a line of switches.
    pub topology: Vec<String>,
    /// Adversary shift magnitudes in nanoseconds: each value replaces
    /// the active strategy preset's dominant waveform parameter via
    /// [`ByzantineStrategy::with_magnitude`] (activates the attack with
    /// the strategy/compromised axes defaulted). This is the continuous
    /// axis `campaign frontier` bisects.
    pub adv_offset_ns: Vec<u64>,
    /// Aggregation trim degrees `f`: each value replaces the preset's
    /// `f` in the configured fault-tolerant method (FTA or midpoint).
    /// Acts from t = 0, so it is prefix-relevant.
    pub fta_f: Vec<usize>,
    /// Fleet sizes: number of ECDs attached to a *generated* switch
    /// fleet (activates the fleet; default 256). Mutually exclusive
    /// with the explicit `hops`/`topology` axes — the generator owns
    /// the fabric's depth and shape.
    pub fleet_nodes: Vec<u32>,
    /// Fleet topology shapes ([`FLEET_TOPOLOGY_NAMES`] spellings;
    /// activates the fleet). Omitted, fleet runs use a line of
    /// switches.
    pub fleet_topology: Vec<String>,
}

impl Grid {
    /// Number of runs this grid expands to (per scenario).
    pub fn runs_per_scenario(&self) -> usize {
        fn axis(len: usize) -> usize {
            len.max(1)
        }
        self.seeds.len()
            * axis(self.domains.len())
            * axis(self.sync_interval_ms.len())
            * axis(self.kernels.len())
            * axis(self.fault_rate_per_hour.len())
            * axis(self.disciplines.len())
            * axis(self.strategies.len())
            * axis(self.compromised.len())
            * axis(self.loss_permille.len())
            * axis(self.partition_s.len())
            * axis(self.election.len())
            * axis(self.announce_interval_ms.len())
            * axis(self.gm_failure_at_s.len())
            * axis(self.rogue_master.len())
            * axis(self.hops.len())
            * axis(self.cross_traffic_pct.len())
            * axis(self.asymmetry_ns.len())
            * axis(self.tc_mode.len())
            * axis(self.topology.len())
            * axis(self.adv_offset_ns.len())
            * axis(self.fta_f.len())
            * axis(self.fleet_nodes.len())
            * axis(self.fleet_topology.len())
    }

    fn to_json(&self) -> Json {
        Json::object(vec![
            (
                "seeds",
                Json::Array(self.seeds.iter().map(|&s| Json::UInt(s)).collect()),
            ),
            (
                "domains",
                Json::Array(self.domains.iter().map(|&m| Json::UInt(m as u64)).collect()),
            ),
            (
                "sync_interval_ms",
                Json::Array(
                    self.sync_interval_ms
                        .iter()
                        .map(|&s| Json::UInt(s))
                        .collect(),
                ),
            ),
            (
                "kernels",
                Json::Array(
                    self.kernels
                        .iter()
                        .map(|k| Json::Str(k.name().to_string()))
                        .collect(),
                ),
            ),
            (
                "fault_rate_per_hour",
                Json::Array(
                    self.fault_rate_per_hour
                        .iter()
                        .map(|&r| Json::UInt(u64::from(r)))
                        .collect(),
                ),
            ),
            (
                "disciplines",
                Json::Array(
                    self.disciplines
                        .iter()
                        .map(|&d| Json::Str(discipline_name(d).to_string()))
                        .collect(),
                ),
            ),
            (
                "strategies",
                Json::Array(
                    self.strategies
                        .iter()
                        .map(|s| Json::Str(s.clone()))
                        .collect(),
                ),
            ),
            (
                "compromised",
                Json::Array(
                    self.compromised
                        .iter()
                        .map(|&n| Json::UInt(n as u64))
                        .collect(),
                ),
            ),
            (
                "loss_permille",
                Json::Array(
                    self.loss_permille
                        .iter()
                        .map(|&p| Json::UInt(u64::from(p)))
                        .collect(),
                ),
            ),
            (
                "partition_s",
                Json::Array(self.partition_s.iter().map(|&s| Json::UInt(s)).collect()),
            ),
            (
                "election",
                Json::Array(self.election.iter().map(|&e| Json::Bool(e)).collect()),
            ),
            (
                "announce_interval_ms",
                Json::Array(
                    self.announce_interval_ms
                        .iter()
                        .map(|&s| Json::UInt(s))
                        .collect(),
                ),
            ),
            (
                "gm_failure_at_s",
                Json::Array(
                    self.gm_failure_at_s
                        .iter()
                        .map(|&s| Json::UInt(s))
                        .collect(),
                ),
            ),
            (
                "rogue_master",
                Json::Array(
                    self.rogue_master
                        .iter()
                        .map(|&n| Json::UInt(n as u64))
                        .collect(),
                ),
            ),
            (
                "hops",
                Json::Array(
                    self.hops
                        .iter()
                        .map(|&h| Json::UInt(u64::from(h)))
                        .collect(),
                ),
            ),
            (
                "cross_traffic_pct",
                Json::Array(
                    self.cross_traffic_pct
                        .iter()
                        .map(|&p| Json::UInt(u64::from(p)))
                        .collect(),
                ),
            ),
            (
                "asymmetry_ns",
                Json::Array(self.asymmetry_ns.iter().map(|&a| Json::UInt(a)).collect()),
            ),
            (
                "tc_mode",
                Json::Array(self.tc_mode.iter().map(|&t| Json::Bool(t)).collect()),
            ),
            (
                "topology",
                Json::Array(self.topology.iter().map(|t| Json::Str(t.clone())).collect()),
            ),
            (
                "adv_offset_ns",
                Json::Array(self.adv_offset_ns.iter().map(|&a| Json::UInt(a)).collect()),
            ),
            (
                "fta_f",
                Json::Array(self.fta_f.iter().map(|&f| Json::UInt(f as u64)).collect()),
            ),
            (
                "fleet_nodes",
                Json::Array(
                    self.fleet_nodes
                        .iter()
                        .map(|&n| Json::UInt(u64::from(n)))
                        .collect(),
                ),
            ),
            (
                "fleet_topology",
                Json::Array(
                    self.fleet_topology
                        .iter()
                        .map(|t| Json::Str(t.clone()))
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<Grid, SpecError> {
        fn list<T>(
            v: &Json,
            key: &str,
            mut item: impl FnMut(&Json) -> Option<T>,
        ) -> Result<Vec<T>, SpecError> {
            match v.get(key) {
                None => Ok(Vec::new()),
                Some(arr) => arr
                    .as_array()
                    .ok_or_else(|| SpecError::field(&format!("grid.{key}")))?
                    .iter()
                    .map(|x| item(x).ok_or_else(|| SpecError::field(&format!("grid.{key}[]"))))
                    .collect(),
            }
        }
        Ok(Grid {
            seeds: list(v, "seeds", Json::as_u64)?,
            domains: list(v, "domains", |x| x.as_u64().map(|m| m as usize))?,
            sync_interval_ms: list(v, "sync_interval_ms", Json::as_u64)?,
            kernels: list(v, "kernels", |x| x.as_str().and_then(KernelChoice::parse))?,
            fault_rate_per_hour: list(v, "fault_rate_per_hour", |x| {
                x.as_u64().and_then(|r| u32::try_from(r).ok())
            })?,
            disciplines: list(v, "disciplines", |x| x.as_str().and_then(parse_discipline))?,
            strategies: list(v, "strategies", |x| x.as_str().map(str::to_string))?,
            compromised: list(v, "compromised", |x| x.as_u64().map(|n| n as usize))?,
            loss_permille: list(v, "loss_permille", |x| {
                x.as_u64().and_then(|p| u32::try_from(p).ok())
            })?,
            partition_s: list(v, "partition_s", Json::as_u64)?,
            election: list(v, "election", Json::as_bool)?,
            announce_interval_ms: list(v, "announce_interval_ms", Json::as_u64)?,
            gm_failure_at_s: list(v, "gm_failure_at_s", Json::as_u64)?,
            rogue_master: list(v, "rogue_master", |x| x.as_u64().map(|n| n as usize))?,
            hops: list(v, "hops", |x| {
                x.as_u64().and_then(|h| u32::try_from(h).ok())
            })?,
            cross_traffic_pct: list(v, "cross_traffic_pct", |x| {
                x.as_u64().and_then(|p| u32::try_from(p).ok())
            })?,
            asymmetry_ns: list(v, "asymmetry_ns", Json::as_u64)?,
            tc_mode: list(v, "tc_mode", Json::as_bool)?,
            topology: list(v, "topology", |x| x.as_str().map(str::to_string))?,
            adv_offset_ns: list(v, "adv_offset_ns", Json::as_u64)?,
            fta_f: list(v, "fta_f", |x| x.as_u64().map(|f| f as usize))?,
            fleet_nodes: list(v, "fleet_nodes", |x| {
                x.as_u64().and_then(|n| u32::try_from(n).ok())
            })?,
            fleet_topology: list(v, "fleet_topology", |x| x.as_str().map(str::to_string))?,
        })
    }
}

/// Spec schema version, bumped on incompatible format changes.
pub const SPEC_SCHEMA: u64 = 1;

/// A declarative experiment campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Human-readable campaign name (also the default directory name).
    pub name: String,
    /// The base configuration.
    pub base: BaseSpec,
    /// Scenarios to sweep (at least one).
    pub scenarios: Vec<ScenarioKind>,
    /// The parameter grid.
    pub grid: Grid,
}

/// A spec validation/parse error.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The document is not valid JSON.
    Json(JsonError),
    /// A required field is missing or has the wrong type.
    Field(String),
    /// A field has an unknown value.
    Value(String, String),
    /// The spec is structurally invalid.
    Invalid(String),
}

impl SpecError {
    fn field(name: &str) -> SpecError {
        SpecError::Field(name.to_string())
    }

    fn value(name: &str, got: &str) -> SpecError {
        SpecError::Value(name.to_string(), got.to_string())
    }
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Json(e) => write!(f, "invalid JSON: {e}"),
            SpecError::Field(name) => write!(f, "missing or mistyped field `{name}`"),
            SpecError::Value(name, got) => write!(f, "unknown value {got:?} for `{name}`"),
            SpecError::Invalid(msg) => write!(f, "invalid spec: {msg}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<JsonError> for SpecError {
    fn from(e: JsonError) -> Self {
        SpecError::Json(e)
    }
}

impl CampaignSpec {
    /// Total number of runs the spec expands to.
    pub fn total_runs(&self) -> usize {
        self.scenarios.len() * self.grid.runs_per_scenario()
    }

    /// Checks structural invariants (non-empty axes, domain counts the
    /// FTA topology supports, positive durations).
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.name.is_empty()
            || !self
                .name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            return Err(SpecError::Invalid(
                "name must be non-empty [A-Za-z0-9_-]".to_string(),
            ));
        }
        if self.scenarios.is_empty() {
            return Err(SpecError::Invalid("no scenarios".to_string()));
        }
        if self.grid.seeds.is_empty() {
            return Err(SpecError::Invalid("grid.seeds is empty".to_string()));
        }
        if let Some(&m) = self.grid.domains.iter().find(|&&m| !(4..=16).contains(&m)) {
            return Err(SpecError::Invalid(format!(
                "domains axis value {m} outside the supported 4..=16 (FTA needs N > 3f)"
            )));
        }
        if self.grid.sync_interval_ms.contains(&0) {
            return Err(SpecError::Invalid("sync interval of 0 ms".to_string()));
        }
        if self.base.duration_s.is_some_and(|d| d <= 0) {
            return Err(SpecError::Invalid("non-positive duration".to_string()));
        }
        if self.base.warmup_s.is_some_and(|w| w < 0) {
            return Err(SpecError::Invalid("negative warmup".to_string()));
        }
        for s in &self.grid.strategies {
            if strategy_static(s).is_none() {
                return Err(SpecError::Value("grid.strategies[]".to_string(), s.clone()));
            }
        }
        if let Some(&n) = self.grid.compromised.iter().find(|&&n| n > 3) {
            return Err(SpecError::Invalid(format!(
                "compromised axis value {n} exceeds the 3 strikeable GM domains"
            )));
        }
        if let Some(&p) = self.grid.loss_permille.iter().find(|&&p| p > 1000) {
            return Err(SpecError::Invalid(format!(
                "loss_permille axis value {p} is not a probability (max 1000)"
            )));
        }
        if self.grid.announce_interval_ms.contains(&0) {
            return Err(SpecError::Invalid("announce interval of 0 ms".to_string()));
        }
        if let Some(&n) = self.grid.rogue_master.iter().find(|&&n| n > 3) {
            return Err(SpecError::Invalid(format!(
                "rogue_master axis value {n} exceeds the 3 capturable foreign domains"
            )));
        }
        if self.grid.rogue_master.iter().any(|&n| n > 0)
            && (!self.grid.strategies.is_empty()
                || !self.grid.compromised.is_empty()
                || !self.grid.adv_offset_ns.is_empty())
        {
            return Err(SpecError::Invalid(
                "rogue_master cannot combine with the strategies/compromised/adv_offset_ns \
                 axes (both materialize strikes on the highest node indices)"
                    .to_string(),
            ));
        }
        if let Some(&a) = self
            .grid
            .adv_offset_ns
            .iter()
            .find(|&&a| a == 0 || a > 10_000_000)
        {
            return Err(SpecError::Invalid(format!(
                "adv_offset_ns axis value {a} outside the supported 1..=10000000 \
                 (a zero magnitude is the honest cell; 10 ms dwarfs every bound)"
            )));
        }
        if !self.grid.fta_f.is_empty() {
            let min_domains = self.grid.domains.iter().copied().min().unwrap_or(4);
            if let Some(&f) = self
                .grid
                .fta_f
                .iter()
                .find(|&&f| f == 0 || 2 * f + 1 > min_domains)
            {
                return Err(SpecError::Invalid(format!(
                    "fta_f axis value {f} needs 2f+1 = {} domains but the smallest domain \
                     count is {min_domains}",
                    2 * f + 1
                )));
            }
        }
        for t in &self.grid.topology {
            if topology_static(t).is_none() {
                return Err(SpecError::Value("grid.topology[]".to_string(), t.clone()));
            }
        }
        if let Some(&h) = self.grid.hops.iter().find(|&&h| !(1..=64).contains(&h)) {
            return Err(SpecError::Invalid(format!(
                "hops axis value {h} outside the supported 1..=64"
            )));
        }
        if let Some(&p) = self.grid.cross_traffic_pct.iter().find(|&&p| p > 95) {
            return Err(SpecError::Invalid(format!(
                "cross_traffic_pct axis value {p} exceeds the 95 % gate-load ceiling"
            )));
        }
        if let Some(&a) = self.grid.asymmetry_ns.iter().find(|&&a| a > 1_000_000) {
            return Err(SpecError::Invalid(format!(
                "asymmetry_ns axis value {a} exceeds 1 ms per hop (not a plausible link)"
            )));
        }
        for t in &self.grid.fleet_topology {
            if fleet_topology_static(t).is_none() {
                return Err(SpecError::Value(
                    "grid.fleet_topology[]".to_string(),
                    t.clone(),
                ));
            }
        }
        if let Some(&n) = self
            .grid
            .fleet_nodes
            .iter()
            .find(|&&n| !(2..=65_536).contains(&n))
        {
            return Err(SpecError::Invalid(format!(
                "fleet_nodes axis value {n} outside the supported 2..=65536"
            )));
        }
        if (!self.grid.fleet_nodes.is_empty() || !self.grid.fleet_topology.is_empty())
            && (!self.grid.hops.is_empty() || !self.grid.topology.is_empty())
        {
            return Err(SpecError::Invalid(
                "fleet_nodes/fleet_topology cannot combine with the hops/topology axes \
                 (the fleet generator owns the fabric's depth and shape)"
                    .to_string(),
            ));
        }
        if !self.grid.gm_failure_at_s.is_empty() {
            let Some(duration) = self.base.duration_s else {
                return Err(SpecError::Invalid(
                    "gm_failure_at_s axis requires an explicit base.duration_s \
                     (the kill time is checked against the measured duration)"
                        .to_string(),
                ));
            };
            let latest = *self.grid.gm_failure_at_s.iter().max().expect("non-empty");
            if latest as i64 >= duration {
                return Err(SpecError::Invalid(format!(
                    "gm_failure_at_s axis reaches {latest} s, beyond the {duration} s \
                     measured duration (no time left to observe the re-election)"
                )));
            }
        }
        if !self.grid.partition_s.is_empty() {
            // Check against the window the axis actually generates
            // (same schedule `matrix::materialize` installs) — no
            // hardcoded start, no silently assumed duration.
            let Some(duration) = self.base.duration_s else {
                return Err(SpecError::Invalid(
                    "partition_s axis requires an explicit base.duration_s \
                     (the window end is checked against the measured duration)"
                        .to_string(),
                ));
            };
            let longest = *self.grid.partition_s.iter().max().expect("non-empty");
            let window = partition_window(longest);
            let end = window.until.as_nanos() / 1_000_000_000;
            if end >= duration {
                return Err(SpecError::Invalid(format!(
                    "partition_s axis reaches {end} s (window {}..{} ns), beyond the \
                     {duration} s measured duration",
                    window.from.as_nanos(),
                    window.until.as_nanos(),
                )));
            }
        }
        Ok(())
    }

    /// The canonical JSON form (deterministic; also what spec files use).
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("schema", Json::UInt(SPEC_SCHEMA)),
            ("name", Json::Str(self.name.clone())),
            ("base", self.base.to_json()),
            (
                "scenarios",
                Json::Array(
                    self.scenarios
                        .iter()
                        .map(|s| Json::Str(s.name().to_string()))
                        .collect(),
                ),
            ),
            ("grid", self.grid.to_json()),
        ])
    }

    /// Renders the spec as pretty-enough JSON (one canonical line).
    pub fn render(&self) -> String {
        self.to_json().render()
    }

    /// Parses and validates a spec document.
    pub fn parse(text: &str) -> Result<CampaignSpec, SpecError> {
        let v = Json::parse(text)?;
        if let Some(schema) = v.get("schema") {
            let schema = schema.as_u64().ok_or_else(|| SpecError::field("schema"))?;
            if schema != SPEC_SCHEMA {
                return Err(SpecError::Invalid(format!(
                    "unsupported schema {schema} (this build reads {SPEC_SCHEMA})"
                )));
            }
        }
        let name = v
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| SpecError::field("name"))?
            .to_string();
        let base = BaseSpec::from_json(v.get("base").ok_or_else(|| SpecError::field("base"))?)?;
        let scenarios = v
            .get("scenarios")
            .and_then(Json::as_array)
            .ok_or_else(|| SpecError::field("scenarios"))?
            .iter()
            .map(|s| {
                let name = s.as_str().ok_or_else(|| SpecError::field("scenarios[]"))?;
                ScenarioKind::parse(name).ok_or_else(|| SpecError::value("scenarios[]", name))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let grid = Grid::from_json(v.get("grid").ok_or_else(|| SpecError::field("grid"))?)?;
        let spec = CampaignSpec {
            name,
            base,
            scenarios,
            grid,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Names of the built-in specs (see [`CampaignSpec::builtin`]).
    pub const BUILTINS: [&'static str; 8] = [
        "quick-baseline",
        "repro-all",
        "abl2-domains",
        "abl3-sync-interval",
        "adversary-sweep",
        "election-sweep",
        "fabric-sweep",
        "fleet-sweep",
    ];

    /// A built-in spec by name.
    ///
    /// * `quick-baseline` — 8 seeds × 2 disciplines of the quick
    ///   baseline (16 runs; the acceptance smoke campaign);
    /// * `repro-all` — all five paper scenarios × 3 seeds (the
    ///   campaign-engine port of the `repro_all` figure runner);
    /// * `abl2-domains` — domains M ∈ {4,5,6,7} × 4 seeds (ABL2);
    /// * `abl3-sync-interval` — S ∈ {62,125,250,500} ms × 4 seeds,
    ///   staleness = 4·S (ABL3);
    /// * `adversary-sweep` — every [`ByzantineStrategy`] preset ×
    ///   compromised ∈ {1, 2} (≤ f and f + 1) × loss ∈ {0, 20} ‰ ×
    ///   2 seeds, reporting worst-case observed precision per cell
    ///   (48 runs; `specs/adversary_sweep.json` is its file form);
    /// * `election-sweep` — dynamic BMCA election with a scheduled kill
    ///   of node 0's GM at +10 s × rogue masters ∈ {0, 1} × 2 seeds
    ///   (4 runs; `specs/election_sweep.json` is its file form);
    /// * `fabric-sweep` — the network depth sweep: topology ∈ {line,
    ///   ring, tree} × hops ∈ {1, 3, 6} through the TSN switch fabric ×
    ///   30 % cross-traffic × transparent clocks {off, on} × 2 seeds
    ///   (36 runs; `specs/fabric_sweep.json` is its file form);
    /// * `fleet-sweep` — the fleet-scale sweep: generated switch fleets
    ///   of {256, 1024} ECDs × all four [`FLEET_TOPOLOGY_NAMES`] shapes
    ///   × 2 seeds (16 runs; `specs/fleet_sweep.json` is its file
    ///   form). Exercises the streaming artifact pipeline at bounded
    ///   memory.
    pub fn builtin(name: &str) -> Option<CampaignSpec> {
        let spec = match name {
            "quick-baseline" => CampaignSpec {
                name: "quick-baseline".to_string(),
                base: BaseSpec::quick(60),
                scenarios: vec![ScenarioKind::Baseline],
                grid: Grid {
                    seeds: (1..=8).collect(),
                    disciplines: vec![
                        SyncClockDiscipline::Feedback,
                        SyncClockDiscipline::FeedForward,
                    ],
                    ..Grid::default()
                },
            },
            "repro-all" => CampaignSpec {
                name: "repro-all".to_string(),
                base: BaseSpec {
                    preset: Preset::Quick,
                    duration_s: Some(300),
                    warmup_s: Some(30),
                },
                scenarios: ScenarioKind::ALL.to_vec(),
                grid: Grid {
                    seeds: vec![7, 8, 9],
                    ..Grid::default()
                },
            },
            "abl2-domains" => CampaignSpec {
                name: "abl2-domains".to_string(),
                base: BaseSpec::quick(90),
                scenarios: vec![ScenarioKind::Baseline],
                grid: Grid {
                    seeds: vec![11, 12, 13, 14],
                    domains: vec![4, 5, 6, 7],
                    ..Grid::default()
                },
            },
            "abl3-sync-interval" => CampaignSpec {
                name: "abl3-sync-interval".to_string(),
                base: BaseSpec::quick(90),
                scenarios: vec![ScenarioKind::Baseline],
                grid: Grid {
                    seeds: vec![13, 14, 15, 16],
                    sync_interval_ms: vec![62, 125, 250, 500],
                    ..Grid::default()
                },
            },
            "adversary-sweep" => CampaignSpec {
                name: "adversary-sweep".to_string(),
                base: BaseSpec {
                    preset: Preset::Quick,
                    duration_s: Some(30),
                    warmup_s: Some(10),
                },
                scenarios: vec![ScenarioKind::Baseline],
                grid: Grid {
                    seeds: vec![21, 22],
                    strategies: ByzantineStrategy::NAMES
                        .iter()
                        .map(|n| n.to_string())
                        .collect(),
                    compromised: vec![1, 2],
                    loss_permille: vec![0, 20],
                    ..Grid::default()
                },
            },
            "election-sweep" => CampaignSpec {
                name: "election-sweep".to_string(),
                base: BaseSpec {
                    preset: Preset::Quick,
                    duration_s: Some(30),
                    warmup_s: Some(10),
                },
                scenarios: vec![ScenarioKind::Baseline],
                grid: Grid {
                    seeds: vec![1, 2],
                    election: vec![true],
                    announce_interval_ms: vec![250],
                    gm_failure_at_s: vec![10],
                    rogue_master: vec![0, 1],
                    ..Grid::default()
                },
            },
            "fabric-sweep" => CampaignSpec {
                name: "fabric-sweep".to_string(),
                base: BaseSpec {
                    preset: Preset::Quick,
                    duration_s: Some(15),
                    warmup_s: Some(5),
                },
                scenarios: vec![ScenarioKind::Baseline],
                grid: Grid {
                    seeds: vec![7, 8],
                    hops: vec![1, 3, 6],
                    cross_traffic_pct: vec![30],
                    tc_mode: vec![false, true],
                    topology: TOPOLOGY_NAMES.iter().map(|t| t.to_string()).collect(),
                    ..Grid::default()
                },
            },
            "fleet-sweep" => CampaignSpec {
                name: "fleet-sweep".to_string(),
                base: BaseSpec {
                    preset: Preset::Quick,
                    duration_s: Some(15),
                    warmup_s: Some(5),
                },
                scenarios: vec![ScenarioKind::Baseline],
                grid: Grid {
                    seeds: vec![3, 4],
                    fleet_nodes: vec![256, 1024],
                    fleet_topology: FLEET_TOPOLOGY_NAMES.iter().map(|t| t.to_string()).collect(),
                    ..Grid::default()
                },
            },
            _ => return None,
        };
        debug_assert!(spec.validate().is_ok());
        Some(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_roundtrip_through_json() {
        for name in CampaignSpec::BUILTINS {
            let spec = CampaignSpec::builtin(name).unwrap();
            spec.validate().unwrap();
            let text = spec.render();
            let back = CampaignSpec::parse(&text).unwrap();
            assert_eq!(back, spec, "{name} did not roundtrip");
        }
        assert!(CampaignSpec::builtin("nope").is_none());
    }

    #[test]
    fn quick_baseline_has_sixteen_runs() {
        let spec = CampaignSpec::builtin("quick-baseline").unwrap();
        assert_eq!(spec.total_runs(), 16);
    }

    #[test]
    fn parse_rejects_bad_specs() {
        assert!(CampaignSpec::parse("{}").is_err());
        // Empty seeds.
        let bad = r#"{"name":"x","base":{"preset":"quick"},"scenarios":["baseline"],"grid":{"seeds":[]}}"#;
        assert!(matches!(
            CampaignSpec::parse(bad),
            Err(SpecError::Invalid(_))
        ));
        // Unknown scenario.
        let bad =
            r#"{"name":"x","base":{"preset":"quick"},"scenarios":["warp"],"grid":{"seeds":[1]}}"#;
        assert!(matches!(
            CampaignSpec::parse(bad),
            Err(SpecError::Value(..))
        ));
        // Unsupported domain count (FTA needs N > 3f).
        let bad = r#"{"name":"x","base":{"preset":"quick"},"scenarios":["baseline"],"grid":{"seeds":[1],"domains":[3]}}"#;
        assert!(matches!(
            CampaignSpec::parse(bad),
            Err(SpecError::Invalid(_))
        ));
    }

    /// Regression: the partition check used to hardcode `2 + max` and
    /// silently assume 60 s when `duration_s` was omitted, so a spec
    /// could pass validation yet schedule a window past its real
    /// (preset) duration. The end now derives from [`partition_window`]
    /// and a partition axis without an explicit duration is an error.
    #[test]
    fn partition_axis_requires_explicit_duration() {
        // Missing duration_s with a partition axis: error, not a silent
        // 60 s assumption.
        let bad = r#"{"name":"x","base":{"preset":"quick"},"scenarios":["baseline"],"grid":{"seeds":[1],"partition_s":[5]}}"#;
        let err = CampaignSpec::parse(bad).expect_err("missing duration_s must be rejected");
        assert!(matches!(err, SpecError::Invalid(ref m) if m.contains("duration_s")));
        // Window end derived from the generated schedule: 2 + 9 = 11 s
        // ≥ 10 s duration.
        let bad = r#"{"name":"x","base":{"preset":"quick","duration_s":10},"scenarios":["baseline"],"grid":{"seeds":[1],"partition_s":[9]}}"#;
        assert!(matches!(
            CampaignSpec::parse(bad),
            Err(SpecError::Invalid(_))
        ));
        // Same axis with room to spare is fine.
        let ok = r#"{"name":"x","base":{"preset":"quick","duration_s":20},"scenarios":["baseline"],"grid":{"seeds":[1],"partition_s":[9]}}"#;
        CampaignSpec::parse(ok).expect("window inside the measured duration");
    }

    #[test]
    fn partition_window_matches_materialized_schedule() {
        let w = partition_window(5);
        assert_eq!(w.node, 0);
        assert_eq!(w.from, Nanos::from_secs(2));
        assert_eq!(w.until, Nanos::from_secs(7));
    }

    #[test]
    fn omitted_axes_default_to_empty() {
        let text = r#"{"name":"tiny","base":{"preset":"quick","duration_s":10},"scenarios":["baseline"],"grid":{"seeds":[1,2]}}"#;
        let spec = CampaignSpec::parse(text).unwrap();
        assert_eq!(spec.total_runs(), 2);
        assert!(spec.grid.domains.is_empty());
    }

    #[test]
    fn base_materializes_overrides() {
        let base = BaseSpec {
            preset: Preset::Quick,
            duration_s: Some(10),
            warmup_s: Some(5),
        };
        let cfg = base.materialize(99);
        assert_eq!(cfg.seed, 99);
        assert_eq!(cfg.duration, Nanos::from_secs(10));
        assert_eq!(cfg.warmup, Nanos::from_secs(5));
    }
}
