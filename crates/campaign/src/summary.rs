//! Cross-seed summarization and baseline comparison of run artifacts.
//!
//! Runs are grouped by every grid coordinate except the seed; each
//! group's per-run scalars (mean/max/quantiles of Π*_s, bound-violation
//! rate, fault counters) are aggregated across seeds with
//! [`SampleSummary`]. The diff mode compares two summarized campaigns
//! group by group and classifies the result as parity or regression
//! with explicit tolerances.

use crate::artifact::RunRecord;
use crate::json::Json;
use crate::matrix::Coord;
use crate::spec::{discipline_name, KernelChoice};
use clocksync::scenario::ScenarioKind;
use tsn_hyp::SyncClockDiscipline;
use tsn_metrics::{SampleSummary, StreamingSummary};

/// A grid point minus the seed axis: the unit of cross-seed grouping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupKey {
    /// The scenario.
    pub scenario: ScenarioKind,
    /// Domain count, if swept.
    pub domains: Option<usize>,
    /// Sync interval in ms, if swept.
    pub sync_interval_ms: Option<u64>,
    /// Kernel assignment, if swept.
    pub kernel: Option<KernelChoice>,
    /// Injector rate, if swept.
    pub fault_rate_per_hour: Option<u32>,
    /// Clock discipline, if swept.
    pub discipline: Option<SyncClockDiscipline>,
    /// Adversary strategy preset, if swept.
    pub strategy: Option<&'static str>,
    /// Compromised GM count, if swept.
    pub compromised: Option<usize>,
    /// Link loss in permille, if swept.
    pub loss_permille: Option<u32>,
    /// Partition window length in seconds, if swept.
    pub partition_s: Option<u64>,
    /// Dynamic BMCA election override, if swept.
    pub election: Option<bool>,
    /// Announce interval in ms, if swept.
    pub announce_interval_ms: Option<u64>,
    /// Scheduled GM kill time in seconds after warm-up, if swept.
    pub gm_failure_at_s: Option<u64>,
    /// Rogue-master count, if swept.
    pub rogue_master: Option<usize>,
    /// Fabric hop count, if swept.
    pub hops: Option<u32>,
    /// Fabric cross-traffic load in percent, if swept.
    pub cross_traffic_pct: Option<u32>,
    /// Fabric per-hop delay asymmetry in ns, if swept.
    pub asymmetry_ns: Option<u64>,
    /// Transparent-clock mode, if swept.
    pub tc_mode: Option<bool>,
    /// Fabric topology, if swept.
    pub topology: Option<&'static str>,
    /// Adversary shift magnitude in ns, if swept.
    pub adv_offset_ns: Option<u64>,
    /// Aggregation trim degree, if swept.
    pub fta_f: Option<usize>,
    /// Fleet node count, if swept.
    pub fleet_nodes: Option<u32>,
    /// Fleet topology shape, if swept.
    pub fleet_topology: Option<&'static str>,
}

impl GroupKey {
    /// The grouping key of a run.
    pub fn of(coord: &Coord) -> GroupKey {
        GroupKey {
            scenario: coord.scenario,
            domains: coord.domains,
            sync_interval_ms: coord.sync_interval_ms,
            kernel: coord.kernel,
            fault_rate_per_hour: coord.fault_rate_per_hour,
            discipline: coord.discipline,
            strategy: coord.strategy,
            compromised: coord.compromised,
            loss_permille: coord.loss_permille,
            partition_s: coord.partition_s,
            election: coord.election,
            announce_interval_ms: coord.announce_interval_ms,
            gm_failure_at_s: coord.gm_failure_at_s,
            rogue_master: coord.rogue_master,
            hops: coord.hops,
            cross_traffic_pct: coord.cross_traffic_pct,
            asymmetry_ns: coord.asymmetry_ns,
            tc_mode: coord.tc_mode,
            topology: coord.topology,
            adv_offset_ns: coord.adv_offset_ns,
            fta_f: coord.fta_f,
            fleet_nodes: coord.fleet_nodes,
            fleet_topology: coord.fleet_topology,
        }
    }

    /// A compact human-readable label, listing only active axes.
    pub fn label(&self) -> String {
        let mut parts = vec![self.scenario.name().to_string()];
        if let Some(m) = self.domains {
            parts.push(format!("M={m}"));
        }
        if let Some(s) = self.sync_interval_ms {
            parts.push(format!("S={s}ms"));
        }
        if let Some(k) = self.kernel {
            parts.push(format!("kernels={}", k.name()));
        }
        if let Some(r) = self.fault_rate_per_hour {
            parts.push(format!("rate={r}/h"));
        }
        if let Some(d) = self.discipline {
            parts.push(discipline_name(d).to_string());
        }
        if let Some(s) = self.strategy {
            parts.push(format!("adv={s}"));
        }
        if let Some(b) = self.compromised {
            parts.push(format!("byz={b}"));
        }
        if let Some(p) = self.loss_permille {
            parts.push(format!("loss={p}pm"));
        }
        if let Some(p) = self.partition_s {
            parts.push(format!("partition={p}s"));
        }
        if let Some(e) = self.election {
            parts.push(format!("election={}", if e { "on" } else { "off" }));
        }
        if let Some(a) = self.announce_interval_ms {
            parts.push(format!("announce={a}ms"));
        }
        if let Some(t) = self.gm_failure_at_s {
            parts.push(format!("gm-kill={t}s"));
        }
        if let Some(r) = self.rogue_master {
            parts.push(format!("rogue={r}"));
        }
        if let Some(h) = self.hops {
            parts.push(format!("hops={h}"));
        }
        if let Some(p) = self.cross_traffic_pct {
            parts.push(format!("xload={p}%"));
        }
        if let Some(a) = self.asymmetry_ns {
            parts.push(format!("asym={a}ns"));
        }
        if let Some(t) = self.tc_mode {
            parts.push(format!("tc={}", if t { "on" } else { "off" }));
        }
        if let Some(t) = self.topology {
            parts.push(format!("topo={t}"));
        }
        if let Some(a) = self.adv_offset_ns {
            parts.push(format!("adv_ns={a}"));
        }
        if let Some(f) = self.fta_f {
            parts.push(format!("f={f}"));
        }
        if let Some(n) = self.fleet_nodes {
            parts.push(format!("fleet_n={n}"));
        }
        if let Some(t) = self.fleet_topology {
            parts.push(format!("fleet_topo={t}"));
        }
        parts.join(" ")
    }
}

/// Cross-seed aggregates of one grid point.
#[derive(Debug, Clone)]
pub struct GroupSummary {
    /// The grid point.
    pub key: GroupKey,
    /// Number of runs (seeds) aggregated.
    pub runs: usize,
    /// Per-run mean Π*_s, aggregated across seeds (ns).
    pub pi_star_mean: Option<SampleSummary>,
    /// Per-run median Π*_s across seeds (ns).
    pub pi_star_p50: Option<SampleSummary>,
    /// Per-run p95 of Π*_s across seeds (ns).
    pub pi_star_p95: Option<SampleSummary>,
    /// Per-run p99 of Π*_s across seeds (ns).
    pub pi_star_p99: Option<SampleSummary>,
    /// Per-run maximum Π*_s across seeds (ns).
    pub pi_star_max: Option<SampleSummary>,
    /// Per-run bound-violation rate (fraction outside Π + γ).
    pub violation_rate: Option<SampleSummary>,
    /// Injected fail-silent VM shutdowns per run.
    pub vm_failures: Option<SampleSummary>,
    /// Injected GM shutdowns per run.
    pub gm_failures: Option<SampleSummary>,
    /// Monitor takeovers per run.
    pub takeovers: Option<SampleSummary>,
    /// Degradation-machine edges (SyncState transitions) per run.
    pub sync_transitions: Option<SampleSummary>,
    /// Total Holdover + Freerun dwell per run (ms).
    pub degraded_dwell_ms: Option<SampleSummary>,
    /// Failures the monitor could not cover with a standby, per run.
    pub uncovered_failures: Option<SampleSummary>,
    /// Elected-GM changes (BMCA winner churn) per run.
    pub elected_gm_changes: Option<SampleSummary>,
    /// Kill-to-re-election latency per run (ms; 0 when no GM was
    /// killed).
    pub reconvergence_ms: Option<SampleSummary>,
    /// Frames delivered to a port with no handler per run.
    pub unhandled_frames: Option<SampleSummary>,
    /// Frames the fabric forwarded per run.
    pub fabric_forwarded: Option<SampleSummary>,
    /// Frames the fabric dropped (gate overruns) per run.
    pub fabric_dropped: Option<SampleSummary>,
    /// Worst per-frame switch residence per run (ns).
    pub max_residence_ns: Option<SampleSummary>,
    /// Accumulated forward/reverse path asymmetry per run (ns).
    pub path_asymmetry_ns: Option<SampleSummary>,
    /// Mean derived bound Π + γ across seeds (ns).
    pub bound_ns_mean: f64,
}

/// Number of per-run scalar metrics aggregated per group.
const METRIC_COUNT: usize = 19;

/// Extracts the per-run metric scalars, in the exact order of the
/// [`GroupSummary`] statistic fields (`pi_star_mean` … `path_asymmetry_ns`).
/// `None` slots (a run without a precision record) are simply not
/// pushed, matching the old `filter_map` collection.
fn metric_values(r: &RunRecord) -> [Option<f64>; METRIC_COUNT] {
    [
        r.precision_scalar(|p| p.mean_ns),
        r.precision_scalar(|p| p.p50_ns as f64),
        r.precision_scalar(|p| p.p95_ns as f64),
        r.precision_scalar(|p| p.p99_ns as f64),
        r.precision_scalar(|p| p.max_ns as f64),
        Some(r.violation_rate()),
        Some(r.counters.vm_failures as f64),
        Some(r.counters.gm_failures as f64),
        Some(r.counters.takeovers as f64),
        Some(r.counters.sync_transitions as f64),
        Some((r.counters.holdover_ns + r.counters.freerun_ns) as f64 / 1e6),
        Some(r.counters.uncovered_failures as f64),
        Some(r.counters.elected_gm_changes as f64),
        Some(r.counters.reconvergence_ns as f64 / 1e6),
        Some(r.counters.unhandled_frames as f64),
        Some(r.counters.fabric_frames_forwarded as f64),
        Some(r.counters.fabric_frames_dropped as f64),
        Some(r.counters.max_residence_ns as f64),
        Some(r.counters.path_asymmetry_ns as f64),
    ]
}

/// Bounded-memory accumulator for one group.
struct GroupAccum {
    runs: usize,
    bound_sum: f64,
    metrics: [StreamingSummary; METRIC_COUNT],
}

impl GroupAccum {
    fn new() -> GroupAccum {
        GroupAccum {
            runs: 0,
            bound_sum: 0.0,
            metrics: std::array::from_fn(|_| StreamingSummary::new()),
        }
    }
}

/// Streaming cross-seed summarizer: accepts run records one at a time
/// and holds memory proportional to the number of *groups* (grid points
/// minus the seed axis), not the number of records. Each metric is
/// tracked with [`StreamingSummary`], so groups small enough for the
/// old in-memory path ([`StreamingSummary::EXACT_CAP`] runs) summarize
/// byte-identically, and fleet-scale groups degrade to a bounded
/// sketch.
pub struct StreamSummarizer {
    // Vec keyed by linear search: groups stay in first-appearance
    // (canonical matrix) order, and campaigns have few groups.
    groups: Vec<(GroupKey, GroupAccum)>,
}

impl Default for StreamSummarizer {
    fn default() -> Self {
        StreamSummarizer::new()
    }
}

impl StreamSummarizer {
    /// An empty summarizer.
    pub fn new() -> StreamSummarizer {
        StreamSummarizer { groups: Vec::new() }
    }

    /// Folds one run record into its group.
    pub fn push(&mut self, r: &RunRecord) {
        let key = GroupKey::of(&r.coord);
        let idx = match self.groups.iter().position(|(k, _)| *k == key) {
            Some(i) => i,
            None => {
                self.groups.push((key, GroupAccum::new()));
                self.groups.len() - 1
            }
        };
        let accum = &mut self.groups[idx].1;
        accum.runs += 1;
        accum.bound_sum += r.bounds.pi_plus_gamma_ns as f64;
        for (slot, value) in accum.metrics.iter_mut().zip(metric_values(r)) {
            if let Some(v) = value {
                slot.push(v);
            }
        }
    }

    /// Finalizes every group, in first-appearance order.
    pub fn finish(self) -> Vec<GroupSummary> {
        self.groups
            .into_iter()
            .map(|(key, accum)| {
                let f = |i: usize| accum.metrics[i].finalize();
                GroupSummary {
                    key,
                    runs: accum.runs,
                    pi_star_mean: f(0),
                    pi_star_p50: f(1),
                    pi_star_p95: f(2),
                    pi_star_p99: f(3),
                    pi_star_max: f(4),
                    violation_rate: f(5),
                    vm_failures: f(6),
                    gm_failures: f(7),
                    takeovers: f(8),
                    sync_transitions: f(9),
                    degraded_dwell_ms: f(10),
                    uncovered_failures: f(11),
                    elected_gm_changes: f(12),
                    reconvergence_ms: f(13),
                    unhandled_frames: f(14),
                    fabric_forwarded: f(15),
                    fabric_dropped: f(16),
                    max_residence_ns: f(17),
                    path_asymmetry_ns: f(18),
                    bound_ns_mean: accum.bound_sum / accum.runs as f64,
                }
            })
            .collect()
    }
}

/// Groups records by non-seed coordinates (in first-appearance order,
/// i.e. canonical matrix order) and aggregates each group. Delegates to
/// [`StreamSummarizer`]; callers with an artifact directory should
/// stream records through the summarizer directly instead of collecting
/// them first.
pub fn summarize(records: &[RunRecord]) -> Vec<GroupSummary> {
    let mut s = StreamSummarizer::new();
    for r in records {
        s.push(r);
    }
    s.finish()
}

/// Renders summaries as a readable text report.
pub fn render(groups: &[GroupSummary]) -> String {
    let mut out = String::new();
    for g in groups {
        out.push_str(&format!("## {}  ({} seeds)\n", g.key.label(), g.runs));
        out.push_str(&format!(
            "bound Pi+gamma: {:.0} ns (mean)\n",
            g.bound_ns_mean
        ));
        let rows: [(&str, &Option<SampleSummary>); 6] = [
            ("Pi* mean", &g.pi_star_mean),
            ("Pi* p50 ", &g.pi_star_p50),
            ("Pi* p95 ", &g.pi_star_p95),
            ("Pi* p99 ", &g.pi_star_p99),
            ("Pi* max ", &g.pi_star_max),
            ("viol rate", &g.violation_rate),
        ];
        for (name, s) in rows {
            if let Some(s) = s {
                out.push_str(&format!(
                    "  {name}: mean {:10.1}  std {:9.1}  min {:10.1}  p50 {:10.1}  p95 {:10.1}  p99 {:10.1}  max {:10.1}\n",
                    s.mean, s.std, s.min, s.p50, s.p95, s.p99, s.max
                ));
            }
        }
        if let (Some(vm), Some(gm), Some(tk)) = (&g.vm_failures, &g.gm_failures, &g.takeovers) {
            out.push_str(&format!(
                "  faults/run: vm mean {:.1} (max {:.0})  gm mean {:.1} (max {:.0})  takeovers mean {:.1} (max {:.0})\n",
                vm.mean, vm.max, gm.mean, gm.max, tk.mean, tk.max
            ));
        }
        if let (Some(tr), Some(dw), Some(uc)) = (
            &g.sync_transitions,
            &g.degraded_dwell_ms,
            &g.uncovered_failures,
        ) {
            out.push_str(&format!(
                "  degradation/run: edges mean {:.1} (max {:.0})  dwell mean {:.1} ms (max {:.1} ms)  uncovered mean {:.1} (max {:.0})\n",
                tr.mean, tr.max, dw.mean, dw.max, uc.mean, uc.max
            ));
        }
        if let (Some(ch), Some(rc), Some(uf)) = (
            &g.elected_gm_changes,
            &g.reconvergence_ms,
            &g.unhandled_frames,
        ) {
            out.push_str(&format!(
                "  election/run: churn mean {:.1} (max {:.0})  reconv mean {:.1} ms (max {:.1} ms)  unhandled mean {:.1} (max {:.0})\n",
                ch.mean, ch.max, rc.mean, rc.max, uf.mean, uf.max
            ));
        }
        // Fabric line only when the group actually carried fabric
        // traffic — paper-default campaigns render exactly as before.
        if let (Some(ff), Some(fd), Some(mr), Some(pa)) = (
            &g.fabric_forwarded,
            &g.fabric_dropped,
            &g.max_residence_ns,
            &g.path_asymmetry_ns,
        ) {
            if ff.max > 0.0 {
                out.push_str(&format!(
                    "  fabric/run: fwd mean {:.0} (max {:.0})  drop mean {:.1} (max {:.0})  residence max {:.0} ns  asym max {:.0} ns\n",
                    ff.mean, ff.max, fd.mean, fd.max, mr.max, pa.max
                ));
            }
        }
    }
    out
}

/// Renders summaries as a JSON document (for scripting).
pub fn render_json(groups: &[GroupSummary]) -> String {
    fn stat(s: &Option<SampleSummary>) -> Json {
        match s {
            None => Json::Null,
            Some(s) => Json::object(vec![
                ("count", Json::UInt(s.count as u64)),
                ("mean", Json::Float(s.mean)),
                ("std", Json::Float(s.std)),
                ("min", Json::Float(s.min)),
                ("max", Json::Float(s.max)),
                ("p50", Json::Float(s.p50)),
                ("p95", Json::Float(s.p95)),
                ("p99", Json::Float(s.p99)),
            ]),
        }
    }
    Json::Array(
        groups
            .iter()
            .map(|g| {
                Json::object(vec![
                    ("group", Json::Str(g.key.label())),
                    ("runs", Json::UInt(g.runs as u64)),
                    ("bound_ns_mean", Json::Float(g.bound_ns_mean)),
                    ("pi_star_mean_ns", stat(&g.pi_star_mean)),
                    ("pi_star_p50_ns", stat(&g.pi_star_p50)),
                    ("pi_star_p95_ns", stat(&g.pi_star_p95)),
                    ("pi_star_p99_ns", stat(&g.pi_star_p99)),
                    ("pi_star_max_ns", stat(&g.pi_star_max)),
                    ("violation_rate", stat(&g.violation_rate)),
                    ("vm_failures", stat(&g.vm_failures)),
                    ("gm_failures", stat(&g.gm_failures)),
                    ("takeovers", stat(&g.takeovers)),
                    ("sync_transitions", stat(&g.sync_transitions)),
                    ("degraded_dwell_ms", stat(&g.degraded_dwell_ms)),
                    ("uncovered_failures", stat(&g.uncovered_failures)),
                    ("elected_gm_changes", stat(&g.elected_gm_changes)),
                    ("reconvergence_ms", stat(&g.reconvergence_ms)),
                    ("unhandled_frames", stat(&g.unhandled_frames)),
                    ("fabric_forwarded", stat(&g.fabric_forwarded)),
                    ("fabric_dropped", stat(&g.fabric_dropped)),
                    ("max_residence_ns", stat(&g.max_residence_ns)),
                    ("path_asymmetry_ns", stat(&g.path_asymmetry_ns)),
                ])
            })
            .collect(),
    )
    .render()
}

/// Diff tolerances (a campaign is stochastic; exact equality across
/// code changes is not the bar — staying within these margins is).
#[derive(Debug, Clone, Copy)]
pub struct DiffTolerance {
    /// Absolute slack on the mean violation rate (default 0.02).
    pub violation_abs: f64,
    /// Relative slack on the mean per-run p95 of Π*_s (default 10%).
    pub p95_rel: f64,
    /// Absolute slack on the same (default 500 ns), so near-zero
    /// baselines don't flag noise.
    pub p95_abs_ns: f64,
    /// Absolute slack on the mean degraded dwell per run, in ms
    /// (default 250 ms): sub-interval jitter in when a holdover entry
    /// or re-acquisition lands is noise, not a regression.
    pub dwell_ms_abs: f64,
    /// Absolute slack on the mean degradation edges per run (default 2,
    /// one extra Holdover ⇄ Synchronized bounce).
    pub transitions_abs: f64,
    /// Absolute slack on the mean uncovered failures per run
    /// (default 0: any new uncovered window is a regression).
    pub uncovered_abs: f64,
    /// Absolute slack on the mean kill-to-re-election latency per run,
    /// in ns (default 50 ms): a slower BMCA reconvergence beyond this
    /// is a regression even when precision stats look fine.
    pub reconvergence_abs_ns: f64,
}

impl Default for DiffTolerance {
    fn default() -> Self {
        DiffTolerance {
            violation_abs: 0.02,
            p95_rel: 0.10,
            p95_abs_ns: 500.0,
            dwell_ms_abs: 250.0,
            transitions_abs: 2.0,
            uncovered_abs: 0.0,
            reconvergence_abs_ns: 50_000_000.0,
        }
    }
}

/// Verdict of a baseline comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffVerdict {
    /// Candidate is within tolerance of (or better than) the baseline.
    Parity,
    /// Candidate is worse than the baseline beyond tolerance.
    Regression,
    /// The campaigns are not comparable (mismatched groups).
    Incomparable,
}

impl DiffVerdict {
    /// The CLI exit code: 0 parity, 1 regression, 2 error.
    pub fn exit_code(self) -> i32 {
        match self {
            DiffVerdict::Parity => 0,
            DiffVerdict::Regression => 1,
            DiffVerdict::Incomparable => 2,
        }
    }
}

/// Result of comparing a candidate campaign against a baseline.
#[derive(Debug)]
pub struct DiffReport {
    /// Overall verdict.
    pub verdict: DiffVerdict,
    /// One human-readable line per group (plus mismatch notes).
    pub lines: Vec<String>,
}

/// Compares summarized campaigns: every baseline group must exist in
/// the candidate; each group's violation rate and p95 are checked
/// against `tol`.
pub fn diff(
    baseline: &[GroupSummary],
    candidate: &[GroupSummary],
    tol: DiffTolerance,
) -> DiffReport {
    let mut lines = Vec::new();
    let mut verdict = DiffVerdict::Parity;
    for b in baseline {
        let Some(c) = candidate.iter().find(|c| c.key == b.key) else {
            lines.push(format!(
                "MISSING  {}: group absent from candidate",
                b.key.label()
            ));
            verdict = DiffVerdict::Incomparable;
            continue;
        };
        let mut worst: Option<String> = None;
        if let (Some(bv), Some(cv)) = (&b.violation_rate, &c.violation_rate) {
            if cv.mean > bv.mean + tol.violation_abs {
                worst = Some(format!(
                    "violation rate {:.4} -> {:.4} (tol +{:.4})",
                    bv.mean, cv.mean, tol.violation_abs
                ));
            }
        }
        if worst.is_none() {
            if let (Some(bp), Some(cp)) = (&b.pi_star_p95, &c.pi_star_p95) {
                let limit = bp.mean * (1.0 + tol.p95_rel) + tol.p95_abs_ns;
                if cp.mean > limit {
                    worst = Some(format!(
                        "Pi* p95 {:.0} ns -> {:.0} ns (limit {:.0} ns)",
                        bp.mean, cp.mean, limit
                    ));
                }
            }
        }
        if worst.is_none() {
            if let (Some(bd), Some(cd)) = (&b.degraded_dwell_ms, &c.degraded_dwell_ms) {
                if cd.mean > bd.mean + tol.dwell_ms_abs {
                    worst = Some(format!(
                        "degraded dwell {:.1} ms -> {:.1} ms (tol +{:.0} ms)",
                        bd.mean, cd.mean, tol.dwell_ms_abs
                    ));
                }
            }
        }
        if worst.is_none() {
            if let (Some(bt), Some(ct)) = (&b.sync_transitions, &c.sync_transitions) {
                if ct.mean > bt.mean + tol.transitions_abs {
                    worst = Some(format!(
                        "degradation edges {:.1} -> {:.1} (tol +{:.1})",
                        bt.mean, ct.mean, tol.transitions_abs
                    ));
                }
            }
        }
        if worst.is_none() {
            if let (Some(bu), Some(cu)) = (&b.uncovered_failures, &c.uncovered_failures) {
                if cu.mean > bu.mean + tol.uncovered_abs {
                    worst = Some(format!(
                        "uncovered failures {:.2} -> {:.2} (tol +{:.2})",
                        bu.mean, cu.mean, tol.uncovered_abs
                    ));
                }
            }
        }
        if worst.is_none() {
            if let (Some(br), Some(cr)) = (&b.reconvergence_ms, &c.reconvergence_ms) {
                if cr.mean * 1e6 > br.mean * 1e6 + tol.reconvergence_abs_ns {
                    worst = Some(format!(
                        "reconvergence {:.1} ms -> {:.1} ms (tol +{:.1} ms)",
                        br.mean,
                        cr.mean,
                        tol.reconvergence_abs_ns / 1e6
                    ));
                }
            }
        }
        match worst {
            Some(reason) => {
                lines.push(format!("REGRESS  {}: {reason}", b.key.label()));
                if verdict == DiffVerdict::Parity {
                    verdict = DiffVerdict::Regression;
                }
            }
            None => lines.push(format!("ok       {}", b.key.label())),
        }
    }
    for c in candidate {
        if !baseline.iter().any(|b| b.key == c.key) {
            lines.push(format!(
                "extra    {}: group absent from baseline (ignored)",
                c.key.label()
            ));
        }
    }
    if baseline.is_empty() {
        lines.push("baseline has no groups".to_string());
        verdict = DiffVerdict::Incomparable;
    }
    DiffReport { verdict, lines }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::{BoundsRecord, PrecisionRecord};
    use clocksync::RunCounters;

    fn rec(seed: u64, discipline: SyncClockDiscipline, p95: i64, within: f64) -> RunRecord {
        RunRecord {
            campaign: "t".to_string(),
            hash: format!("{seed:x}-{}", discipline_name(discipline)),
            coord: Coord {
                scenario: ScenarioKind::Baseline,
                seed,
                domains: None,
                sync_interval_ms: None,
                kernel: None,
                fault_rate_per_hour: None,
                discipline: Some(discipline),
                strategy: None,
                compromised: None,
                loss_permille: None,
                partition_s: None,
                election: None,
                announce_interval_ms: None,
                gm_failure_at_s: None,
                rogue_master: None,
                hops: None,
                cross_traffic_pct: None,
                asymmetry_ns: None,
                tc_mode: None,
                topology: None,
                adv_offset_ns: None,
                fta_f: None,
                fleet_nodes: None,
                fleet_topology: None,
            },
            seed: seed * 1000,
            counters: RunCounters::default(),
            bounds: BoundsRecord {
                d_min_ns: 0,
                d_max_ns: 0,
                reading_error_ns: 0,
                drift_offset_ns: 0,
                pi_ns: 12_000,
                gamma_ns: 1_000,
                pi_plus_gamma_ns: 13_000,
            },
            precision: Some(PrecisionRecord {
                count: 10,
                mean_ns: p95 as f64 / 2.0,
                std_ns: 10.0,
                min_ns: 100,
                max_ns: p95 + 1000,
                p50_ns: p95 / 2,
                p90_ns: p95 - 100,
                p95_ns: p95,
                p99_ns: p95 + 500,
            }),
            fraction_within_bound: within,
            transitions: Vec::new(),
        }
    }

    fn records(p95: i64, within: f64) -> Vec<RunRecord> {
        let mut v = Vec::new();
        for seed in 1..=4 {
            v.push(rec(seed, SyncClockDiscipline::Feedback, p95, within));
            v.push(rec(seed, SyncClockDiscipline::FeedForward, p95 / 2, within));
        }
        v
    }

    #[test]
    fn groups_by_non_seed_axes() {
        let groups = summarize(&records(4000, 1.0));
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].runs, 4);
        let s = groups[0].pi_star_p95.as_ref().unwrap();
        assert_eq!(s.count, 4);
        assert_eq!(s.mean, 4000.0);
        assert_eq!(groups[1].pi_star_p95.as_ref().unwrap().mean, 2000.0);
        assert!(render(&groups).contains("feed_forward"));
        assert!(render_json(&groups).contains("\"runs\":4"));
    }

    #[test]
    fn diff_detects_parity_and_regression() {
        let base = summarize(&records(4000, 1.0));
        // Slightly different but within tolerance.
        let ok = summarize(&records(4200, 0.99));
        let d = diff(&base, &ok, DiffTolerance::default());
        assert_eq!(d.verdict, DiffVerdict::Parity);
        assert_eq!(d.verdict.exit_code(), 0);
        // p95 blowup → regression.
        let bad = summarize(&records(9000, 1.0));
        let d = diff(&base, &bad, DiffTolerance::default());
        assert_eq!(d.verdict, DiffVerdict::Regression);
        assert_eq!(d.verdict.exit_code(), 1);
        assert!(d.lines.iter().any(|l| l.starts_with("REGRESS")));
        // Violation-rate blowup → regression even with identical p95.
        let bad = summarize(&records(4000, 0.90));
        let d = diff(&base, &bad, DiffTolerance::default());
        assert_eq!(d.verdict, DiffVerdict::Regression);
    }

    #[test]
    fn diff_flags_degradation_regressions() {
        let base = summarize(&records(4000, 1.0));
        // Longer degraded dwell beyond tolerance → regression.
        let mut worse: Vec<RunRecord> = records(4000, 1.0);
        for r in &mut worse {
            r.counters.sync_transitions = 3;
            r.counters.holdover_ns = 400_000_000; // 400 ms
        }
        let d = diff(&base, &summarize(&worse), DiffTolerance::default());
        assert_eq!(d.verdict, DiffVerdict::Regression);
        assert!(d.lines.iter().any(|l| l.contains("degraded dwell")));
        // A single new uncovered failure regresses at zero tolerance.
        let mut uncovered: Vec<RunRecord> = records(4000, 1.0);
        uncovered[0].counters.uncovered_failures = 1;
        let d = diff(&base, &summarize(&uncovered), DiffTolerance::default());
        assert_eq!(d.verdict, DiffVerdict::Regression);
        assert!(d.lines.iter().any(|l| l.contains("uncovered failures")));
        // Small dwell within tolerance stays parity.
        let mut ok: Vec<RunRecord> = records(4000, 1.0);
        for r in &mut ok {
            r.counters.holdover_ns = 100_000_000; // 100 ms < 250 ms slack
        }
        let d = diff(&base, &summarize(&ok), DiffTolerance::default());
        assert_eq!(d.verdict, DiffVerdict::Parity);
    }

    #[test]
    fn diff_flags_reconvergence_regressions() {
        let base = summarize(&records(4000, 1.0));
        // A re-election 80 ms slower than baseline exceeds the 50 ms
        // default slack.
        let mut slow: Vec<RunRecord> = records(4000, 1.0);
        for r in &mut slow {
            r.counters.reconvergence_ns = 80_000_000;
        }
        let d = diff(&base, &summarize(&slow), DiffTolerance::default());
        assert_eq!(d.verdict, DiffVerdict::Regression);
        assert!(d.lines.iter().any(|l| l.contains("reconvergence")));
        // Within a loosened tolerance it is parity again (the
        // --tol-reconvergence-ns CLI path).
        let tol = DiffTolerance {
            reconvergence_abs_ns: 100_000_000.0,
            ..DiffTolerance::default()
        };
        let d = diff(&base, &summarize(&slow), tol);
        assert_eq!(d.verdict, DiffVerdict::Parity);
    }

    #[test]
    fn fabric_axes_group_and_render() {
        let mut recs = records(4000, 1.0);
        for r in &mut recs {
            r.coord.hops = Some(3);
            r.coord.tc_mode = Some(true);
            r.counters.fabric_frames_forwarded = 120;
            r.counters.max_residence_ns = 900;
        }
        let groups = summarize(&recs);
        assert_eq!(groups.len(), 2, "fabric axes join the grouping key");
        assert!(groups[0].key.label().contains("hops=3"));
        assert!(groups[0].key.label().contains("tc=on"));
        let text = render(&groups);
        assert!(text.contains("fabric/run"));
        let json = render_json(&groups);
        assert!(json.contains("\"fabric_forwarded\""));
        assert!(json.contains("\"max_residence_ns\""));
        // Without fabric traffic the text line is suppressed.
        let plain = render(&summarize(&records(4000, 1.0)));
        assert!(!plain.contains("fabric/run"));
    }

    #[test]
    fn fleet_axes_group_and_render() {
        let mut recs = records(4000, 1.0);
        for r in &mut recs {
            r.coord.fleet_nodes = Some(1024);
            r.coord.fleet_topology = Some("fat-tree");
        }
        let groups = summarize(&recs);
        assert_eq!(groups.len(), 2, "fleet axes join the grouping key");
        assert!(groups[0].key.label().contains("fleet_n=1024"));
        assert!(groups[0].key.label().contains("fleet_topo=fat-tree"));
    }

    #[test]
    fn streaming_summarizer_matches_the_batch_path() {
        let recs = records(4000, 1.0);
        let batch = summarize(&recs);
        let mut s = StreamSummarizer::new();
        for r in &recs {
            s.push(r);
        }
        let streamed = s.finish();
        assert_eq!(batch.len(), streamed.len());
        for (b, c) in batch.iter().zip(&streamed) {
            assert_eq!(b.key, c.key);
            assert_eq!(b.runs, c.runs);
            assert_eq!(b.bound_ns_mean, c.bound_ns_mean);
            assert_eq!(b.pi_star_p95, c.pi_star_p95);
            assert_eq!(b.violation_rate, c.violation_rate);
        }
    }

    #[test]
    fn diff_flags_missing_groups() {
        let base = summarize(&records(4000, 1.0));
        let partial: Vec<RunRecord> = records(4000, 1.0)
            .into_iter()
            .filter(|r| r.coord.discipline == Some(SyncClockDiscipline::Feedback))
            .collect();
        let d = diff(&base, &summarize(&partial), DiffTolerance::default());
        assert_eq!(d.verdict, DiffVerdict::Incomparable);
        assert_eq!(d.verdict.exit_code(), 2);
    }
}
