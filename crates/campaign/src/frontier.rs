//! Adaptive resilience-frontier exploration.
//!
//! The paper's experiment (ii) demonstrates FTA containment at one
//! fixed adversary point; arXiv:2006.15832 derives where containment
//! *must* hold and where it *must* fail analytically
//! ([`tsn_fta::containment_bound`]). This module closes the loop: for
//! each discrete cell (strategy × compromised count × trim degree `f`)
//! it bisects one continuous adversary axis — the attack-magnitude axis
//! `adv_offset_ns` by default — until the empirical
//! containment-failure boundary is bracketed to a requested resolution,
//! then checks the bracket against the analytical bound.
//!
//! Three properties drive the design:
//!
//! * **Determinism** — probe selection is pure bisection (no RNG) and
//!   per-run seeds derive from the grid coordinate exactly as in a
//!   plain campaign, so the same [`FrontierSpec`] + seeds reproduce
//!   `frontier.json` byte-for-byte (`tests/frontier.rs` proves it).
//! * **Work sharing** — every refinement round executes through
//!   [`runner::execute_with`] with one shared [`SnapshotCache`]: the
//!   magnitude axis is intervention-only, so all probes of a cell fork
//!   the same warm prefix that round 1 simulated, and only the frontier
//!   region is simulated densely.
//! * **Fewer runs than the grid** — a fixed sweep in the style of the
//!   `adversary-sweep` builtin spends [`GRID_REFERENCE_RUNS`] runs for
//!   a spacing of `span / (runs/seeds − 1)`; bisection reaches a
//!   bracket of `resolution` width in `2 + ⌈log₂(span/resolution)⌉`
//!   probes per cell. Both counts are reported so the trade is visible.

use crate::json::Json;
use crate::runner::{self, FailedRun, RunViolation, RunnerOptions, SnapshotCache};
use crate::spec::{strategy_static, BaseSpec, CampaignSpec, Grid, Preset, SpecError};
use clocksync::scenario::ScenarioKind;
use std::io;
use tsn_fta::{containment_bound, AggregationMethod, ResilienceParams};
use tsn_time::Nanos;

/// Schema version of `frontier.json` and frontier spec files.
pub const FRONTIER_SCHEMA: u64 = 1;

/// Run count of the fixed reference grid the frontier is compared
/// against (the `adversary-sweep` builtin's 48 runs).
pub const GRID_REFERENCE_RUNS: usize = 48;

/// Continuous axes the frontier can bisect. Each name maps to the grid
/// axis of the same name; the probe value replaces that axis for one
/// run. Only `adv_offset_ns` has an analytical bound in magnitude
/// space; the other axes get an empirical bracket only.
pub const AXIS_NAMES: [&str; 4] = [
    "adv_offset_ns",
    "loss_permille",
    "partition_s",
    "sync_interval_ms",
];

/// One discrete frontier cell: the adversary shape whose continuous
/// break point is searched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontierCell {
    /// Strategy preset name ([`tsn_faults::ByzantineStrategy::NAMES`]).
    pub strategy: String,
    /// Compromised GM domains `c`.
    pub compromised: usize,
    /// Trim degree `f` override (`None` keeps the preset's `f`).
    pub f: Option<usize>,
}

impl FrontierCell {
    /// Canonical display label, e.g. `colluding c=2 f=1`.
    pub fn label(&self, default_f: usize) -> String {
        format!(
            "{} c={} f={}",
            self.strategy,
            self.compromised,
            self.f.unwrap_or(default_f)
        )
    }
}

/// The continuous axis to bisect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontierAxis {
    /// Axis name ([`AXIS_NAMES`]).
    pub name: String,
    /// Inclusive lower end of the search interval.
    pub min: u64,
    /// Inclusive upper end of the search interval.
    pub max: u64,
    /// Stop refining once the bracket is at most this wide.
    pub resolution: u64,
}

/// A declarative frontier-exploration specification.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierSpec {
    /// Campaign name (also stamped into every run artifact).
    pub name: String,
    /// Base testbed configuration shared by every probe.
    pub base: BaseSpec,
    /// Replication seeds; a probe counts as broken when *any* seed
    /// observes containment broken.
    pub seeds: Vec<u64>,
    /// Discrete cells to search.
    pub cells: Vec<FrontierCell>,
    /// The continuous axis and search interval.
    pub axis: FrontierAxis,
    /// Maximum probes per cell (each probe simulates one run per seed).
    pub budget_per_cell: usize,
}

impl FrontierSpec {
    /// Names of the built-in frontier specs.
    pub const BUILTINS: [&'static str; 1] = ["frontier-sweep"];

    /// A built-in frontier spec by name.
    ///
    /// * `frontier-sweep` — the ROADMAP item 5 search: magnitude axis
    ///   1 µs..64 µs at 684 ns resolution (4× tighter than a 48-run
    ///   grid's 2739 ns spacing) over colluding c ∈ {1, 2} and constant
    ///   c = 2, 2 seeds (`specs/frontier_sweep.json` is its file form).
    pub fn builtin(name: &str) -> Option<FrontierSpec> {
        let spec = match name {
            "frontier-sweep" => FrontierSpec {
                name: "frontier-sweep".to_string(),
                base: BaseSpec {
                    preset: Preset::Quick,
                    duration_s: Some(20),
                    warmup_s: Some(5),
                },
                seeds: vec![21, 22],
                cells: vec![
                    FrontierCell {
                        strategy: "colluding".to_string(),
                        compromised: 2,
                        f: None,
                    },
                    FrontierCell {
                        strategy: "colluding".to_string(),
                        compromised: 1,
                        f: None,
                    },
                    FrontierCell {
                        strategy: "constant".to_string(),
                        compromised: 2,
                        f: None,
                    },
                ],
                axis: FrontierAxis {
                    name: "adv_offset_ns".to_string(),
                    min: 1_000,
                    max: 64_000,
                    resolution: 684,
                },
                budget_per_cell: 12,
            },
            _ => return None,
        };
        debug_assert!(spec.validate().is_ok());
        Some(spec)
    }

    /// The synthetic one-probe campaign spec for a cell: the cell's
    /// discrete coordinates plus the probe value on the continuous
    /// axis. Probes are content-addressed exactly like ordinary
    /// campaign runs, so repeated probes resume instead of re-running.
    pub fn probe_spec(&self, cell: &FrontierCell, probe: u64) -> CampaignSpec {
        let mut grid = Grid {
            seeds: self.seeds.clone(),
            strategies: vec![cell.strategy.clone()],
            compromised: vec![cell.compromised],
            fta_f: cell.f.map(|f| vec![f]).unwrap_or_default(),
            ..Grid::default()
        };
        match self.axis.name.as_str() {
            "adv_offset_ns" => grid.adv_offset_ns = vec![probe],
            "loss_permille" => grid.loss_permille = vec![probe as u32],
            "partition_s" => grid.partition_s = vec![probe],
            "sync_interval_ms" => grid.sync_interval_ms = vec![probe],
            other => unreachable!("validated axis name {other:?}"),
        }
        CampaignSpec {
            name: self.name.clone(),
            base: self.base.clone(),
            scenarios: vec![ScenarioKind::Baseline],
            grid,
        }
    }

    /// Checks structural invariants. Every cell is validated by
    /// materializing its probe spec at both interval ends, so all grid
    /// range rules (magnitude bounds, trim degrees, partition windows)
    /// apply unchanged.
    pub fn validate(&self) -> Result<(), SpecError> {
        if !AXIS_NAMES.contains(&self.axis.name.as_str()) {
            return Err(SpecError::Value(
                "axis.name".to_string(),
                self.axis.name.clone(),
            ));
        }
        if self.axis.min >= self.axis.max {
            return Err(SpecError::Invalid(format!(
                "axis.min {} must be below axis.max {}",
                self.axis.min, self.axis.max
            )));
        }
        if self.axis.resolution == 0 {
            return Err(SpecError::Invalid("axis.resolution of 0".to_string()));
        }
        if self.budget_per_cell < 2 {
            return Err(SpecError::Invalid(
                "budget_per_cell below 2 (both interval ends must be probed)".to_string(),
            ));
        }
        if self.cells.is_empty() {
            return Err(SpecError::Invalid("no cells".to_string()));
        }
        for cell in &self.cells {
            if self.axis.name == "adv_offset_ns" && cell.strategy == "trim-edge" {
                return Err(SpecError::Invalid(
                    "trim-edge cannot be bisected on adv_offset_ns: its magnitude is the \
                     trim margin, so larger values are *weaker* attacks (the bisection \
                     assumes broken(x) is monotone increasing)"
                        .to_string(),
                ));
            }
            self.probe_spec(cell, self.axis.min).validate()?;
            self.probe_spec(cell, self.axis.max).validate()?;
        }
        Ok(())
    }

    /// The canonical JSON form (deterministic; also what spec files
    /// use).
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("schema", Json::UInt(FRONTIER_SCHEMA)),
            ("name", Json::Str(self.name.clone())),
            ("base", self.base.to_json()),
            (
                "seeds",
                Json::Array(self.seeds.iter().map(|&s| Json::UInt(s)).collect()),
            ),
            (
                "axis",
                Json::object(vec![
                    ("name", Json::Str(self.axis.name.clone())),
                    ("min", Json::UInt(self.axis.min)),
                    ("max", Json::UInt(self.axis.max)),
                    ("resolution", Json::UInt(self.axis.resolution)),
                ]),
            ),
            (
                "cells",
                Json::Array(
                    self.cells
                        .iter()
                        .map(|c| {
                            let mut pairs = vec![
                                ("strategy", Json::Str(c.strategy.clone())),
                                ("compromised", Json::UInt(c.compromised as u64)),
                            ];
                            if let Some(f) = c.f {
                                pairs.push(("f", Json::UInt(f as u64)));
                            }
                            Json::object(pairs)
                        })
                        .collect(),
                ),
            ),
            ("budget_per_cell", Json::UInt(self.budget_per_cell as u64)),
        ])
    }

    /// Renders the canonical spec file text (trailing newline).
    pub fn render(&self) -> String {
        format!("{}\n", self.to_json().render())
    }

    /// Parses and validates a frontier spec document.
    pub fn parse(text: &str) -> Result<FrontierSpec, SpecError> {
        let v = Json::parse(text)?;
        let spec = FrontierSpec::from_json(&v)?;
        spec.validate()?;
        Ok(spec)
    }

    fn from_json(v: &Json) -> Result<FrontierSpec, SpecError> {
        let schema = v
            .get("schema")
            .and_then(Json::as_u64)
            .ok_or_else(|| SpecError::Field("schema".to_string()))?;
        if schema != FRONTIER_SCHEMA {
            return Err(SpecError::Invalid(format!(
                "unsupported frontier schema {schema} (expected {FRONTIER_SCHEMA})"
            )));
        }
        let name = v
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| SpecError::Field("name".to_string()))?
            .to_string();
        let base = BaseSpec::from_json(
            v.get("base")
                .ok_or_else(|| SpecError::Field("base".to_string()))?,
        )?;
        let seeds = v
            .get("seeds")
            .and_then(Json::as_array)
            .ok_or_else(|| SpecError::Field("seeds".to_string()))?
            .iter()
            .map(|s| {
                s.as_u64()
                    .ok_or_else(|| SpecError::Field("seeds[]".to_string()))
            })
            .collect::<Result<Vec<u64>, _>>()?;
        let axis_v = v
            .get("axis")
            .ok_or_else(|| SpecError::Field("axis".to_string()))?;
        let axis = FrontierAxis {
            name: axis_v
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| SpecError::Field("axis.name".to_string()))?
                .to_string(),
            min: axis_v
                .get("min")
                .and_then(Json::as_u64)
                .ok_or_else(|| SpecError::Field("axis.min".to_string()))?,
            max: axis_v
                .get("max")
                .and_then(Json::as_u64)
                .ok_or_else(|| SpecError::Field("axis.max".to_string()))?,
            resolution: axis_v
                .get("resolution")
                .and_then(Json::as_u64)
                .ok_or_else(|| SpecError::Field("axis.resolution".to_string()))?,
        };
        let cells = v
            .get("cells")
            .and_then(Json::as_array)
            .ok_or_else(|| SpecError::Field("cells".to_string()))?
            .iter()
            .map(|c| {
                let strategy = c
                    .get("strategy")
                    .and_then(Json::as_str)
                    .ok_or_else(|| SpecError::Field("cells[].strategy".to_string()))?;
                strategy_static(strategy).ok_or_else(|| {
                    SpecError::Value("cells[].strategy".to_string(), strategy.to_string())
                })?;
                let compromised = c
                    .get("compromised")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| SpecError::Field("cells[].compromised".to_string()))?
                    as usize;
                let f = match c.get("f") {
                    None => None,
                    Some(f) => Some(
                        f.as_u64()
                            .ok_or_else(|| SpecError::Field("cells[].f".to_string()))?
                            as usize,
                    ),
                };
                Ok(FrontierCell {
                    strategy: strategy.to_string(),
                    compromised,
                    f,
                })
            })
            .collect::<Result<Vec<FrontierCell>, SpecError>>()?;
        let budget_per_cell = v
            .get("budget_per_cell")
            .and_then(Json::as_u64)
            .ok_or_else(|| SpecError::Field("budget_per_cell".to_string()))?
            as usize;
        Ok(FrontierSpec {
            name,
            base,
            seeds,
            cells,
            axis,
            budget_per_cell,
        })
    }

    /// Spacing of the fixed reference grid this spec is compared
    /// against: [`GRID_REFERENCE_RUNS`] runs spread over the axis at
    /// this spec's seed count.
    pub fn grid_spacing(&self) -> u64 {
        let points = (GRID_REFERENCE_RUNS / self.seeds.len().max(1)).max(2);
        (self.axis.max - self.axis.min) / (points as u64 - 1)
    }
}

/// Deterministic bisection of a monotone break predicate over
/// `[min, max]`.
///
/// Protocol: [`Bisection::next_probe`] yields the next axis value to
/// evaluate (both interval ends first, then midpoints);
/// [`Bisection::report`] feeds back whether containment broke there.
/// Refinement stops when the bracket is at most `resolution` wide, the
/// probe budget is exhausted, or an endpoint settles the cell
/// ([`BisectOutcome::BrokenAtMin`] / [`BisectOutcome::ContainedThroughout`]).
///
/// Probe selection involves no randomness and no wall-clock state, so
/// identical report sequences produce identical probe sequences —
/// `tests/frontier_props.rs` holds it to that.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bisection {
    resolution: u64,
    budget: usize,
    probes: usize,
    lo: u64,
    hi: u64,
    lo_broken: Option<bool>,
    hi_broken: Option<bool>,
}

/// Where a cell's containment frontier was found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BisectOutcome {
    /// Containment was already broken at the interval minimum.
    BrokenAtMin,
    /// Containment held through the interval maximum.
    ContainedThroughout,
    /// The boundary lies in `(contained_at, broken_at]`.
    Bracket {
        /// Largest probed value where containment held.
        contained_at: u64,
        /// Smallest probed value where containment broke.
        broken_at: u64,
    },
}

impl Bisection {
    /// A fresh search over `[min, max]` (`min < max`, `resolution ≥ 1`,
    /// `budget ≥ 2` — enforced by [`FrontierSpec::validate`]).
    pub fn new(min: u64, max: u64, resolution: u64, budget: usize) -> Bisection {
        assert!(min < max, "empty interval");
        assert!(resolution >= 1, "zero resolution");
        assert!(budget >= 2, "budget below 2 cannot settle an interval");
        Bisection {
            resolution,
            budget,
            probes: 0,
            lo: min,
            hi: max,
            lo_broken: None,
            hi_broken: None,
        }
    }

    /// Probes evaluated so far.
    pub fn probes(&self) -> usize {
        self.probes
    }

    /// Current bracket `[lo, hi]`.
    pub fn bracket(&self) -> (u64, u64) {
        (self.lo, self.hi)
    }

    /// The next axis value to evaluate, or `None` when the search is
    /// settled (see [`Bisection::outcome`]). Idempotent: the same value
    /// is returned until it is [`Bisection::report`]ed.
    pub fn next_probe(&self) -> Option<u64> {
        if self.probes >= self.budget {
            return None;
        }
        match (self.lo_broken, self.hi_broken) {
            (None, _) => Some(self.lo),
            (Some(true), _) => None,
            (Some(false), None) => Some(self.hi),
            (Some(false), Some(false)) => None,
            (Some(false), Some(true)) => {
                if self.hi - self.lo <= self.resolution {
                    None
                } else {
                    Some(self.lo + (self.hi - self.lo) / 2)
                }
            }
        }
    }

    /// Feeds back the empirical verdict for the value
    /// [`Bisection::next_probe`] returned.
    ///
    /// # Panics
    ///
    /// Panics when `probe` is not the pending probe.
    pub fn report(&mut self, probe: u64, broken: bool) {
        assert_eq!(
            Some(probe),
            self.next_probe(),
            "report must answer the pending probe"
        );
        self.probes += 1;
        match (self.lo_broken, self.hi_broken) {
            (None, _) => self.lo_broken = Some(broken),
            (Some(false), None) => self.hi_broken = Some(broken),
            _ => {
                if broken {
                    self.hi = probe;
                } else {
                    self.lo = probe;
                }
            }
        }
    }

    /// The settled outcome, or `None` while probes are still pending.
    pub fn outcome(&self) -> Option<BisectOutcome> {
        if self.next_probe().is_some() {
            return None;
        }
        Some(match (self.lo_broken, self.hi_broken) {
            (Some(true), _) => BisectOutcome::BrokenAtMin,
            (Some(false), Some(false)) => BisectOutcome::ContainedThroughout,
            (Some(false), Some(true)) => BisectOutcome::Bracket {
                contained_at: self.lo,
                broken_at: self.hi,
            },
            // budget ≥ 2 always settles both ends before exhausting.
            _ => unreachable!("outcome requested before both interval ends were probed"),
        })
    }
}

/// The analytical side of one cell, in the units of `frontier.json`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalyticalDoc {
    /// Benign precision bound Π used in the derivation.
    pub pi_ns: i64,
    /// Clock reading error γ used in the derivation.
    pub gamma_ns: i64,
    /// Whether the aggregation can form a quorum at all.
    pub quorum: bool,
    /// Values surviving the trim.
    pub kept: usize,
    /// Faulty values surviving into the average.
    pub steered: usize,
    /// Magnitudes strictly below this cannot break containment.
    pub contained_below_ns: Option<i64>,
    /// Analytical point estimate of the frontier.
    pub break_point_ns: Option<i64>,
    /// Magnitudes at or above this are guaranteed to break containment.
    pub broken_above_ns: Option<i64>,
}

/// The empirical side of one cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmpiricalDoc {
    /// How the search settled (`None` when every probe of the cell
    /// failed before the endpoints settled — see
    /// [`FrontierReport::failed`]).
    pub outcome: Option<BisectOutcome>,
    /// Probes evaluated.
    pub probes: usize,
    /// Simulated runs the probes required (probes × seeds).
    pub runs: usize,
}

/// One cell of a frontier document.
#[derive(Debug, Clone, PartialEq)]
pub struct CellDoc {
    /// The discrete cell.
    pub cell: FrontierCell,
    /// Trim degree actually in effect (cell override or preset).
    pub effective_f: usize,
    /// Analytical bound (only for the magnitude axis).
    pub analytical: Option<AnalyticalDoc>,
    /// Empirical search result.
    pub empirical: EmpiricalDoc,
    /// Artifact hash of a run witnessing containment at the bracket's
    /// contained end.
    pub witness_contained: Option<String>,
    /// Artifact hash of a run witnessing the break at the bracket's
    /// broken end.
    pub witness_broken: Option<String>,
    /// Empirical boundary consistent with the analytical bound: no
    /// break observed below `contained_below_ns`, and analytically
    /// unbreakable cells observed contained throughout.
    pub consistent: bool,
}

/// The complete frontier document — what `frontier.json` serializes.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierDoc {
    /// The spec that produced the document.
    pub spec: FrontierSpec,
    /// Fixed reference grid run count ([`GRID_REFERENCE_RUNS`]).
    pub grid_runs: usize,
    /// Reference grid spacing along the axis, ns.
    pub grid_spacing: u64,
    /// Simulated runs the search required in total (deterministic:
    /// resume does not change it).
    pub total_runs: usize,
    /// Per-cell results, in spec order.
    pub cells: Vec<CellDoc>,
}

impl FrontierDoc {
    /// `true` when every cell's empirical boundary is consistent with
    /// its analytical bound.
    pub fn consistent(&self) -> bool {
        self.cells.iter().all(|c| c.consistent)
    }

    /// Widest empirical bracket across cells that produced one, ns.
    pub fn worst_bracket_width(&self) -> Option<u64> {
        self.cells
            .iter()
            .filter_map(|c| match c.empirical.outcome {
                Some(BisectOutcome::Bracket {
                    contained_at,
                    broken_at,
                }) => Some(broken_at - contained_at),
                _ => None,
            })
            .max()
    }

    /// The canonical JSON form of `frontier.json`.
    pub fn to_json(&self) -> Json {
        let opt_ns = |v: Option<i64>| v.map_or(Json::Null, Json::Int);
        let opt_hash = |v: &Option<String>| v.as_ref().map_or(Json::Null, |h| Json::Str(h.clone()));
        Json::object(vec![
            ("schema", Json::UInt(FRONTIER_SCHEMA)),
            ("spec", self.spec.to_json()),
            (
                "grid",
                Json::object(vec![
                    ("runs", Json::UInt(self.grid_runs as u64)),
                    ("spacing_ns", Json::UInt(self.grid_spacing)),
                ]),
            ),
            ("total_runs", Json::UInt(self.total_runs as u64)),
            (
                "cells",
                Json::Array(
                    self.cells
                        .iter()
                        .map(|c| {
                            let analytical = match &c.analytical {
                                None => Json::Null,
                                Some(a) => Json::object(vec![
                                    ("pi_ns", Json::Int(a.pi_ns)),
                                    ("gamma_ns", Json::Int(a.gamma_ns)),
                                    ("quorum", Json::Bool(a.quorum)),
                                    ("kept", Json::UInt(a.kept as u64)),
                                    ("steered", Json::UInt(a.steered as u64)),
                                    ("contained_below_ns", opt_ns(a.contained_below_ns)),
                                    ("break_point_ns", opt_ns(a.break_point_ns)),
                                    ("broken_above_ns", opt_ns(a.broken_above_ns)),
                                ]),
                            };
                            let (outcome, contained_at, broken_at) = match c.empirical.outcome {
                                None => ("failed", Json::Null, Json::Null),
                                Some(BisectOutcome::BrokenAtMin) => {
                                    ("broken_at_min", Json::Null, Json::UInt(self.spec.axis.min))
                                }
                                Some(BisectOutcome::ContainedThroughout) => (
                                    "contained_throughout",
                                    Json::UInt(self.spec.axis.max),
                                    Json::Null,
                                ),
                                Some(BisectOutcome::Bracket {
                                    contained_at,
                                    broken_at,
                                }) => ("bracket", Json::UInt(contained_at), Json::UInt(broken_at)),
                            };
                            Json::object(vec![
                                ("strategy", Json::Str(c.cell.strategy.clone())),
                                ("compromised", Json::UInt(c.cell.compromised as u64)),
                                ("f", Json::UInt(c.effective_f as u64)),
                                ("analytical", analytical),
                                (
                                    "empirical",
                                    Json::object(vec![
                                        ("outcome", Json::Str(outcome.to_string())),
                                        ("contained_at", contained_at),
                                        ("broken_at", broken_at),
                                        ("probes", Json::UInt(c.empirical.probes as u64)),
                                        ("runs", Json::UInt(c.empirical.runs as u64)),
                                    ]),
                                ),
                                (
                                    "witness",
                                    Json::object(vec![
                                        ("contained", opt_hash(&c.witness_contained)),
                                        ("broken", opt_hash(&c.witness_broken)),
                                    ]),
                                ),
                                ("consistent", Json::Bool(c.consistent)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("consistent", Json::Bool(self.consistent())),
        ])
    }

    /// Renders the canonical `frontier.json` text (trailing newline).
    pub fn render(&self) -> String {
        format!("{}\n", self.to_json().render())
    }

    /// Parses a `frontier.json` document.
    pub fn parse(text: &str) -> Result<FrontierDoc, SpecError> {
        let v = Json::parse(text)?;
        let schema = v
            .get("schema")
            .and_then(Json::as_u64)
            .ok_or_else(|| SpecError::Field("schema".to_string()))?;
        if schema != FRONTIER_SCHEMA {
            return Err(SpecError::Invalid(format!(
                "unsupported frontier schema {schema} (expected {FRONTIER_SCHEMA})"
            )));
        }
        let spec = FrontierSpec::from_json(
            v.get("spec")
                .ok_or_else(|| SpecError::Field("spec".to_string()))?,
        )?;
        let grid = v
            .get("grid")
            .ok_or_else(|| SpecError::Field("grid".to_string()))?;
        let grid_runs =
            grid.get("runs")
                .and_then(Json::as_u64)
                .ok_or_else(|| SpecError::Field("grid.runs".to_string()))? as usize;
        let grid_spacing = grid
            .get("spacing_ns")
            .and_then(Json::as_u64)
            .ok_or_else(|| SpecError::Field("grid.spacing_ns".to_string()))?;
        let total_runs =
            v.get("total_runs")
                .and_then(Json::as_u64)
                .ok_or_else(|| SpecError::Field("total_runs".to_string()))? as usize;
        let cells = v
            .get("cells")
            .and_then(Json::as_array)
            .ok_or_else(|| SpecError::Field("cells".to_string()))?
            .iter()
            .map(|c| parse_cell(c, &spec))
            .collect::<Result<Vec<CellDoc>, SpecError>>()?;
        Ok(FrontierDoc {
            spec,
            grid_runs,
            grid_spacing,
            total_runs,
            cells,
        })
    }

    /// Renders the human-readable frontier report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let axis = &self.spec.axis;
        out.push_str(&format!(
            "resilience frontier `{}`: axis {} in [{}, {}] ns, resolution {} ns, {} seed(s)\n",
            self.spec.name,
            axis.name,
            axis.min,
            axis.max,
            axis.resolution,
            self.spec.seeds.len(),
        ));
        for c in &self.cells {
            let label = format!(
                "{} c={} f={}",
                c.cell.strategy, c.cell.compromised, c.effective_f
            );
            let analytical = match &c.analytical {
                None => "-".to_string(),
                Some(a) => match (a.contained_below_ns, a.broken_above_ns) {
                    (Some(lo), Some(hi)) => {
                        let pt = a.break_point_ns.map_or("-".to_string(), |p| p.to_string());
                        format!("contained<{lo} break~{pt} broken>={hi}")
                    }
                    _ => "unbreakable".to_string(),
                },
            };
            let empirical = match c.empirical.outcome {
                None => "failed".to_string(),
                Some(BisectOutcome::BrokenAtMin) => format!("broken at min {}", self.spec.axis.min),
                Some(BisectOutcome::ContainedThroughout) => {
                    format!("contained through max {}", self.spec.axis.max)
                }
                Some(BisectOutcome::Bracket {
                    contained_at,
                    broken_at,
                }) => format!(
                    "boundary in ({contained_at}, {broken_at}] (width {})",
                    broken_at - contained_at
                ),
            };
            out.push_str(&format!(
                "  {label:<24} analytical: {analytical:<42} empirical: {empirical} \
                 [{} probe(s), {} run(s), {}]\n",
                c.empirical.probes,
                c.empirical.runs,
                if c.consistent {
                    "consistent"
                } else {
                    "INCONSISTENT"
                },
            ));
        }
        out.push_str(&format!(
            "frontier: {} simulated run(s) total vs {} for a fixed grid at {} ns spacing",
            self.total_runs, self.grid_runs, self.grid_spacing
        ));
        match self.worst_bracket_width() {
            Some(w) if w > 0 => out.push_str(&format!(
                " ({:.1}x tighter)\n",
                self.grid_spacing as f64 / w as f64
            )),
            _ => out.push('\n'),
        }
        out
    }
}

fn parse_cell(c: &Json, spec: &FrontierSpec) -> Result<CellDoc, SpecError> {
    let strategy = c
        .get("strategy")
        .and_then(Json::as_str)
        .ok_or_else(|| SpecError::Field("cells[].strategy".to_string()))?
        .to_string();
    let compromised =
        c.get("compromised")
            .and_then(Json::as_u64)
            .ok_or_else(|| SpecError::Field("cells[].compromised".to_string()))? as usize;
    let effective_f = c
        .get("f")
        .and_then(Json::as_u64)
        .ok_or_else(|| SpecError::Field("cells[].f".to_string()))? as usize;
    let analytical = match c.get("analytical") {
        None | Some(Json::Null) => None,
        Some(a) => Some(AnalyticalDoc {
            pi_ns: a
                .get("pi_ns")
                .and_then(Json::as_i64)
                .ok_or_else(|| SpecError::Field("analytical.pi_ns".to_string()))?,
            gamma_ns: a
                .get("gamma_ns")
                .and_then(Json::as_i64)
                .ok_or_else(|| SpecError::Field("analytical.gamma_ns".to_string()))?,
            quorum: a
                .get("quorum")
                .and_then(Json::as_bool)
                .ok_or_else(|| SpecError::Field("analytical.quorum".to_string()))?,
            kept: a
                .get("kept")
                .and_then(Json::as_u64)
                .ok_or_else(|| SpecError::Field("analytical.kept".to_string()))?
                as usize,
            steered: a
                .get("steered")
                .and_then(Json::as_u64)
                .ok_or_else(|| SpecError::Field("analytical.steered".to_string()))?
                as usize,
            contained_below_ns: a.get("contained_below_ns").and_then(Json::as_i64),
            break_point_ns: a.get("break_point_ns").and_then(Json::as_i64),
            broken_above_ns: a.get("broken_above_ns").and_then(Json::as_i64),
        }),
    };
    let e = c
        .get("empirical")
        .ok_or_else(|| SpecError::Field("cells[].empirical".to_string()))?;
    let outcome = match e
        .get("outcome")
        .and_then(Json::as_str)
        .ok_or_else(|| SpecError::Field("empirical.outcome".to_string()))?
    {
        "failed" => None,
        "broken_at_min" => Some(BisectOutcome::BrokenAtMin),
        "contained_throughout" => Some(BisectOutcome::ContainedThroughout),
        "bracket" => Some(BisectOutcome::Bracket {
            contained_at: e
                .get("contained_at")
                .and_then(Json::as_u64)
                .ok_or_else(|| SpecError::Field("empirical.contained_at".to_string()))?,
            broken_at: e
                .get("broken_at")
                .and_then(Json::as_u64)
                .ok_or_else(|| SpecError::Field("empirical.broken_at".to_string()))?,
        }),
        other => {
            return Err(SpecError::Value(
                "empirical.outcome".to_string(),
                other.to_string(),
            ))
        }
    };
    let _ = spec; // spec-scoped context only needed for endpoint outcomes
    let empirical = EmpiricalDoc {
        outcome,
        probes: e
            .get("probes")
            .and_then(Json::as_u64)
            .ok_or_else(|| SpecError::Field("empirical.probes".to_string()))?
            as usize,
        runs: e
            .get("runs")
            .and_then(Json::as_u64)
            .ok_or_else(|| SpecError::Field("empirical.runs".to_string()))? as usize,
    };
    let w = c
        .get("witness")
        .ok_or_else(|| SpecError::Field("cells[].witness".to_string()))?;
    let hash_of = |v: Option<&Json>| v.and_then(Json::as_str).map(|s| s.to_string());
    Ok(CellDoc {
        cell: FrontierCell {
            strategy,
            compromised,
            f: Some(effective_f),
        },
        effective_f,
        analytical,
        empirical,
        witness_contained: hash_of(w.get("contained")),
        witness_broken: hash_of(w.get("broken")),
        consistent: c
            .get("consistent")
            .and_then(Json::as_bool)
            .ok_or_else(|| SpecError::Field("cells[].consistent".to_string()))?,
    })
}

/// What one frontier exploration did.
#[derive(Debug)]
pub struct FrontierReport {
    /// The complete document (also written to `frontier.json`).
    pub doc: FrontierDoc,
    /// Runs simulated by this invocation (0 when fully resumed).
    pub executed: usize,
    /// Runs resumed from existing artifacts.
    pub skipped: usize,
    /// Warm-prefix groups forked across all refinement rounds.
    pub forked_groups: usize,
    /// Prefix simulations executed.
    pub prefix_runs: usize,
    /// Events not re-simulated thanks to cross-round forking.
    pub prefix_events_skipped: u64,
    /// Oracle violations across all probes (only with `check`).
    pub violations: Vec<RunViolation>,
    /// Isolated per-run failures across all probes.
    pub failed: Vec<FailedRun>,
}

/// Explores the frontier spec into `opts.dir`.
///
/// Writes `frontier-spec.json`, one `runs/run-<hash>.jsonl` per probe
/// run (content-addressed exactly like a plain campaign, so re-running
/// resumes), and the `frontier.json` document. One [`SnapshotCache`]
/// spans every refinement round, so later rounds fork the warm prefixes
/// the first round simulated.
pub fn execute(spec: &FrontierSpec, opts: &RunnerOptions) -> io::Result<FrontierReport> {
    spec.validate()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, format!("invalid spec: {e}")))?;
    std::fs::create_dir_all(&opts.dir)?;
    runner::write_atomic(&opts.dir.join("frontier-spec.json"), &spec.render())?;

    // Per-seed defaults the cells inherit from the base configuration.
    let base_cfg = spec.base.materialize(spec.seeds[0]);
    let domains = base_cfg.aggregation.domains;
    let preset_f = match base_cfg.aggregation.method {
        AggregationMethod::FaultTolerantAverage { f }
        | AggregationMethod::FaultTolerantMidpoint { f } => f,
        _ => 0,
    };

    struct CellState {
        bisect: Bisection,
        // (probe value, per-seed (artifact hash, fraction within bound)).
        probed: Vec<(u64, Vec<(String, f64)>)>,
        // Π/γ from the first probed record (config-derived, identical
        // across a cell's probes on the magnitude axis).
        bounds: Option<(i64, i64)>,
        failed: bool,
    }
    let mut states: Vec<CellState> = spec
        .cells
        .iter()
        .map(|_| CellState {
            bisect: Bisection::new(
                spec.axis.min,
                spec.axis.max,
                spec.axis.resolution,
                spec.budget_per_cell,
            ),
            probed: Vec::new(),
            bounds: None,
            failed: false,
        })
        .collect();

    let inner_opts = RunnerOptions {
        dir: opts.dir.clone(),
        threads: opts.threads,
        quiet: true,
        fork: opts.fork,
        check: opts.check,
        trace: None,
        trace_max_events: None,
        panic_label: opts.panic_label.clone(),
    };
    let mut cache = SnapshotCache::new();
    let mut executed = 0usize;
    let mut skipped = 0usize;
    let mut forked_groups = 0usize;
    let mut prefix_runs = 0usize;
    let mut prefix_events_skipped = 0u64;
    let mut violations: Vec<RunViolation> = Vec::new();
    let mut failed: Vec<FailedRun> = Vec::new();
    let mut round = 0usize;
    loop {
        let active: Vec<(usize, u64)> = states
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.failed)
            .filter_map(|(i, s)| s.bisect.next_probe().map(|p| (i, p)))
            .collect();
        if active.is_empty() {
            break;
        }
        round += 1;
        if !opts.quiet {
            eprintln!(
                "frontier: round {round}: probing {} cell(s): {}",
                active.len(),
                active
                    .iter()
                    .map(|&(i, p)| format!("{}@{p}", spec.cells[i].label(preset_f)))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
        for (i, probe) in active {
            let probe_spec = spec.probe_spec(&spec.cells[i], probe);
            let report = runner::execute_with(&probe_spec, &inner_opts, &mut cache, false)?;
            executed += report.executed;
            skipped += report.skipped;
            forked_groups += report.forked_groups;
            prefix_runs += report.prefix_runs;
            prefix_events_skipped += report.prefix_events_skipped;
            violations.extend(report.violations);
            if !report.failed.is_empty() {
                // A panicking probe leaves the cell unsettled; freeze it
                // (outcome "failed") and keep exploring the other cells.
                failed.extend(report.failed);
                states[i].failed = true;
                continue;
            }
            let broken = report.records.iter().any(|r| r.fraction_within_bound < 1.0);
            if states[i].bounds.is_none() {
                let b = &report.records[0].bounds;
                states[i].bounds = Some((b.pi_ns, b.gamma_ns));
            }
            states[i].probed.push((
                probe,
                report
                    .records
                    .iter()
                    .map(|r| (r.hash.clone(), r.fraction_within_bound))
                    .collect(),
            ));
            states[i].bisect.report(probe, broken);
        }
    }

    // Assemble the document.
    let mut cells = Vec::with_capacity(spec.cells.len());
    for (cell, state) in spec.cells.iter().zip(&states) {
        let effective_f = cell.f.unwrap_or(preset_f);
        let analytical = if spec.axis.name == "adv_offset_ns" {
            state.bounds.map(|(pi_ns, gamma_ns)| {
                let bound = containment_bound(&ResilienceParams {
                    domains,
                    f: effective_f,
                    compromised: cell.compromised,
                    partitioned: 0,
                    pi: Nanos::from_nanos(pi_ns),
                    gamma: Nanos::from_nanos(gamma_ns),
                });
                AnalyticalDoc {
                    pi_ns,
                    gamma_ns,
                    quorum: bound.quorum,
                    kept: bound.kept,
                    steered: bound.steered,
                    contained_below_ns: bound.contained_below.map(Nanos::as_nanos),
                    break_point_ns: bound.break_point.map(Nanos::as_nanos),
                    broken_above_ns: bound.broken_above.map(Nanos::as_nanos),
                }
            })
        } else {
            None
        };
        let outcome = if state.failed {
            None
        } else {
            state.bisect.outcome()
        };
        let witness_at = |probe: u64, want_broken: bool| -> Option<String> {
            state
                .probed
                .iter()
                .find(|(p, _)| *p == probe)
                .and_then(|(_, runs)| {
                    runs.iter()
                        .find(|(_, frac)| (*frac < 1.0) == want_broken)
                        .map(|(hash, _)| hash.clone())
                })
        };
        let (witness_contained, witness_broken) = match outcome {
            None => (None, None),
            Some(BisectOutcome::BrokenAtMin) => (None, witness_at(spec.axis.min, true)),
            Some(BisectOutcome::ContainedThroughout) => (witness_at(spec.axis.max, false), None),
            Some(BisectOutcome::Bracket {
                contained_at,
                broken_at,
            }) => (witness_at(contained_at, false), witness_at(broken_at, true)),
        };
        let consistent = consistent_with(analytical.as_ref(), outcome, &spec.axis);
        cells.push(CellDoc {
            cell: cell.clone(),
            effective_f,
            analytical,
            empirical: EmpiricalDoc {
                outcome,
                probes: state.bisect.probes(),
                runs: state.bisect.probes() * spec.seeds.len(),
            },
            witness_contained,
            witness_broken,
            consistent,
        });
    }
    let doc = FrontierDoc {
        spec: spec.clone(),
        grid_runs: GRID_REFERENCE_RUNS,
        grid_spacing: spec.grid_spacing(),
        total_runs: cells.iter().map(|c| c.empirical.runs).sum(),
        cells,
    };
    runner::write_atomic(&opts.dir.join("frontier.json"), &doc.render())?;
    if !opts.quiet {
        eprintln!(
            "frontier: {} simulated run(s) required ({} executed now, {} resumed) vs {} for \
             the fixed grid; artifact {}",
            doc.total_runs,
            executed,
            skipped,
            doc.grid_runs,
            opts.dir.join("frontier.json").display()
        );
    }
    Ok(FrontierReport {
        doc,
        executed,
        skipped,
        forked_groups,
        prefix_runs,
        prefix_events_skipped,
        violations,
        failed,
    })
}

/// "Bound violated ⇒ containment actually observed broken": the
/// analytical guarantees that must hold empirically. Below
/// `contained_below` no magnitude may break containment, and a cell the
/// model calls unbreakable must be observed contained throughout. (The
/// converse — breaking at or above `broken_above` — is guaranteed only
/// for the model's ideal adversary, so a weaker preset staying
/// contained longer is not an inconsistency.)
fn consistent_with(
    analytical: Option<&AnalyticalDoc>,
    outcome: Option<BisectOutcome>,
    axis: &FrontierAxis,
) -> bool {
    let Some(a) = analytical else { return true };
    let Some(outcome) = outcome else { return true };
    if !a.quorum {
        return true; // degraded regardless of the adversary
    }
    match a.contained_below_ns {
        None => outcome == BisectOutcome::ContainedThroughout, // unbreakable
        Some(contained_below) => {
            let broken_at = match outcome {
                BisectOutcome::BrokenAtMin => Some(axis.min),
                BisectOutcome::ContainedThroughout => None,
                BisectOutcome::Bracket { broken_at, .. } => Some(broken_at),
            };
            broken_at.is_none_or(|b| b as i64 >= contained_below)
        }
    }
}

/// Compares two frontier documents cell-by-cell.
///
/// `INCOMPARABLE` when specs disagree on axis or cells; `REGRESSION`
/// when any cell's outcome kind changed, a bracket end moved by more
/// than `tol_ns`, or consistency was lost; `OK` otherwise. The returned
/// lines explain every verdict-relevant difference.
pub fn diff(
    base: &FrontierDoc,
    cand: &FrontierDoc,
    tol_ns: u64,
) -> (crate::summary::DiffVerdict, Vec<String>) {
    use crate::summary::DiffVerdict;
    let mut lines = Vec::new();
    if base.spec.axis != cand.spec.axis {
        lines.push(format!(
            "axis differs: {:?} vs {:?}",
            base.spec.axis, cand.spec.axis
        ));
        return (DiffVerdict::Incomparable, lines);
    }
    if base.cells.len() != cand.cells.len()
        || base.cells.iter().zip(&cand.cells).any(|(b, c)| {
            b.cell.strategy != c.cell.strategy
                || b.cell.compromised != c.cell.compromised
                || b.effective_f != c.effective_f
        })
    {
        lines.push("cell sets differ".to_string());
        return (DiffVerdict::Incomparable, lines);
    }
    let mut verdict = DiffVerdict::Parity;
    for (b, c) in base.cells.iter().zip(&cand.cells) {
        let label = format!(
            "{} c={} f={}",
            b.cell.strategy, b.cell.compromised, b.effective_f
        );
        match (b.empirical.outcome, c.empirical.outcome) {
            (
                Some(BisectOutcome::Bracket {
                    contained_at: b_lo,
                    broken_at: b_hi,
                }),
                Some(BisectOutcome::Bracket {
                    contained_at: c_lo,
                    broken_at: c_hi,
                }),
            ) => {
                let moved = b_lo.abs_diff(c_lo).max(b_hi.abs_diff(c_hi));
                if moved > tol_ns {
                    verdict = DiffVerdict::Regression;
                    lines.push(format!(
                        "{label}: bracket moved {moved} ns (({b_lo}, {b_hi}] -> ({c_lo}, {c_hi}], tol {tol_ns})"
                    ));
                } else {
                    lines.push(format!("{label}: bracket within {tol_ns} ns"));
                }
            }
            (b_out, c_out) if b_out == c_out => {
                lines.push(format!("{label}: outcome unchanged"));
            }
            (b_out, c_out) => {
                verdict = DiffVerdict::Regression;
                lines.push(format!("{label}: outcome changed {b_out:?} -> {c_out:?}"));
            }
        }
        if b.consistent && !c.consistent {
            verdict = DiffVerdict::Regression;
            lines.push(format!("{label}: lost analytical consistency"));
        }
    }
    (verdict, lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisection_brackets_a_monotone_threshold() {
        // broken(x) ⇔ x ≥ 37 500; span 63 000 at resolution 684 needs
        // 2 endpoint probes + 7 halvings.
        let mut b = Bisection::new(1_000, 64_000, 684, 16);
        while let Some(p) = b.next_probe() {
            b.report(p, p >= 37_500);
        }
        assert_eq!(b.probes(), 9);
        match b.outcome().unwrap() {
            BisectOutcome::Bracket {
                contained_at,
                broken_at,
            } => {
                assert!(contained_at < 37_500 && 37_500 <= broken_at);
                assert!(broken_at - contained_at <= 684);
            }
            other => panic!("expected bracket, got {other:?}"),
        }
    }

    #[test]
    fn bisection_settles_endpoints_without_refining() {
        let mut b = Bisection::new(10, 100, 5, 8);
        b.report(10, true);
        assert_eq!(b.outcome(), Some(BisectOutcome::BrokenAtMin));
        assert_eq!(b.probes(), 1);

        let mut b = Bisection::new(10, 100, 5, 8);
        b.report(10, false);
        b.report(100, false);
        assert_eq!(b.outcome(), Some(BisectOutcome::ContainedThroughout));
    }

    #[test]
    fn bisection_respects_budget() {
        let mut b = Bisection::new(0, 1 << 20, 1, 4);
        while let Some(p) = b.next_probe() {
            b.report(p, p >= 1000);
        }
        assert_eq!(b.probes(), 4);
        // Budget-exhausted searches still report the bracket they have.
        assert!(matches!(b.outcome(), Some(BisectOutcome::Bracket { .. })));
    }

    #[test]
    fn builtin_roundtrips_and_validates() {
        for name in FrontierSpec::BUILTINS {
            let spec = FrontierSpec::builtin(name).unwrap();
            spec.validate().unwrap();
            let back = FrontierSpec::parse(&spec.render()).unwrap();
            assert_eq!(back, spec, "{name} did not roundtrip");
        }
        assert!(FrontierSpec::builtin("nope").is_none());
    }

    #[test]
    fn builtin_beats_the_grid_on_paper() {
        // The frontier-sweep must be able to reach a bracket ≥ 4×
        // tighter than the 48-run grid within its probe budget.
        let spec = FrontierSpec::builtin("frontier-sweep").unwrap();
        let spacing = spec.grid_spacing();
        assert_eq!(spacing, 2_739); // 63 000 ns / 23 intervals
        assert!(spec.axis.resolution * 4 <= spacing);
        let span = spec.axis.max - spec.axis.min;
        let halvings = (64 - u64::leading_zeros(span / spec.axis.resolution) as usize) + 1;
        assert!(2 + halvings <= spec.budget_per_cell);
    }

    #[test]
    fn validate_rejects_broken_axes_and_cells() {
        let mut spec = FrontierSpec::builtin("frontier-sweep").unwrap();
        spec.axis.min = spec.axis.max;
        assert!(spec.validate().is_err());

        let mut spec = FrontierSpec::builtin("frontier-sweep").unwrap();
        spec.axis.name = "voltage".to_string();
        assert!(matches!(spec.validate(), Err(SpecError::Value(..))));

        let mut spec = FrontierSpec::builtin("frontier-sweep").unwrap();
        spec.cells[0].strategy = "trim-edge".to_string();
        assert!(matches!(spec.validate(), Err(SpecError::Invalid(_))));

        let mut spec = FrontierSpec::builtin("frontier-sweep").unwrap();
        spec.budget_per_cell = 1;
        assert!(spec.validate().is_err());

        // Magnitude 0 is rejected through the probe-spec validation.
        let mut spec = FrontierSpec::builtin("frontier-sweep").unwrap();
        spec.axis.min = 0;
        assert!(spec.validate().is_err());
    }

    #[test]
    fn consistency_requires_breaks_above_the_guarantee() {
        let axis = FrontierAxis {
            name: "adv_offset_ns".to_string(),
            min: 1_000,
            max: 64_000,
            resolution: 500,
        };
        let breakable = AnalyticalDoc {
            pi_ns: 12_000,
            gamma_ns: 1_500,
            quorum: true,
            kept: 2,
            steered: 1,
            contained_below_ns: Some(3_000),
            break_point_ns: Some(27_000),
            broken_above_ns: Some(51_000),
        };
        let bracket = |lo, hi| {
            Some(BisectOutcome::Bracket {
                contained_at: lo,
                broken_at: hi,
            })
        };
        assert!(consistent_with(
            Some(&breakable),
            bracket(26_000, 26_500),
            &axis
        ));
        // A break below the analytical floor is a real anomaly.
        assert!(!consistent_with(
            Some(&breakable),
            bracket(2_000, 2_500),
            &axis
        ));
        assert!(!consistent_with(
            Some(&breakable),
            Some(BisectOutcome::BrokenAtMin),
            &axis
        ));
        // Unbreakable cells must be observed contained.
        let unbreakable = AnalyticalDoc {
            steered: 0,
            contained_below_ns: None,
            break_point_ns: None,
            broken_above_ns: None,
            ..breakable
        };
        assert!(consistent_with(
            Some(&unbreakable),
            Some(BisectOutcome::ContainedThroughout),
            &axis
        ));
        assert!(!consistent_with(
            Some(&unbreakable),
            bracket(26_000, 26_500),
            &axis
        ));
        // No analytical model: nothing to contradict.
        assert!(consistent_with(
            None,
            Some(BisectOutcome::BrokenAtMin),
            &axis
        ));
    }

    fn doc_with_bracket(lo: u64, hi: u64) -> FrontierDoc {
        let spec = FrontierSpec::builtin("frontier-sweep").unwrap();
        let cell = CellDoc {
            cell: spec.cells[0].clone(),
            effective_f: 1,
            analytical: None,
            empirical: EmpiricalDoc {
                outcome: Some(BisectOutcome::Bracket {
                    contained_at: lo,
                    broken_at: hi,
                }),
                probes: 9,
                runs: 18,
            },
            witness_contained: Some("aaaa".to_string()),
            witness_broken: Some("bbbb".to_string()),
            consistent: true,
        };
        FrontierDoc {
            grid_runs: GRID_REFERENCE_RUNS,
            grid_spacing: spec.grid_spacing(),
            total_runs: 18,
            cells: vec![cell],
            spec,
        }
    }

    #[test]
    fn doc_roundtrips_through_json() {
        let doc = doc_with_bracket(31_000, 31_400);
        let back = FrontierDoc::parse(&doc.render()).unwrap();
        assert_eq!(back.total_runs, doc.total_runs);
        assert_eq!(back.cells[0].empirical, doc.cells[0].empirical);
        assert_eq!(back.cells[0].witness_broken, doc.cells[0].witness_broken);
        assert!(back.consistent());
        // The text report renders without panicking and names the cell.
        assert!(doc.render_text().contains("colluding c=2"));
    }

    #[test]
    fn diff_flags_moved_brackets() {
        use crate::summary::DiffVerdict;
        let base = doc_with_bracket(31_000, 31_400);
        let same = doc_with_bracket(31_100, 31_500);
        let (verdict, _) = diff(&base, &same, 500);
        assert_eq!(verdict, DiffVerdict::Parity);
        let moved = doc_with_bracket(40_000, 40_400);
        let (verdict, lines) = diff(&base, &moved, 500);
        assert_eq!(verdict, DiffVerdict::Regression);
        assert!(lines.iter().any(|l| l.contains("bracket moved")));
        let mut incomparable = doc_with_bracket(31_000, 31_400);
        incomparable.spec.axis.max = 128_000;
        let (verdict, _) = diff(&base, &incomparable, 500);
        assert_eq!(verdict, DiffVerdict::Incomparable);
    }
}
