//! A minimal JSON value type with a deterministic writer and a strict
//! parser.
//!
//! The workspace's hermetic build vendors a no-op `serde`, so the
//! campaign engine carries its own (tiny) JSON layer. Two properties
//! matter here and are guaranteed by construction:
//!
//! * **Determinism** — objects keep insertion order and numbers have a
//!   single canonical rendering, so encoding the same record twice (on
//!   any thread) yields byte-identical text. Run artifacts rely on this.
//! * **Lossless integers** — `u64` seeds and hashes round-trip exactly
//!   ([`Json::UInt`]/[`Json::Int`] are separate from [`Json::Float`]).

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A negative integer (or any integer parsed with a leading `-`).
    Int(i64),
    /// A non-negative integer.
    UInt(u64),
    /// A number with a fraction or exponent.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion-ordered (never sorted, never deduplicated).
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn object(pairs: Vec<(&str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(v) => Some(v),
            Json::Int(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::Int(v) => Some(v),
            Json::UInt(v) => i64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as `f64` (integers are widened).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Float(v) => Some(v),
            Json::Int(v) => Some(v as f64),
            Json::UInt(v) => Some(v as f64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value on one line (no trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::UInt(v) => out.push_str(&v.to_string()),
            Json::Float(v) => {
                if v.is_finite() {
                    // `{:?}` is Rust's shortest round-trip rendering and
                    // always contains '.' or 'e', keeping the value a
                    // float on re-parse.
                    out.push_str(&format!("{v:?}"));
                } else {
                    // JSON has no NaN/Inf; campaigns never produce them,
                    // but degrade deterministically if one slips through.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Streams the canonical one-line rendering into an [`std::io::Write`]
    /// sink, byte-identical to [`Json::render`] but without
    /// materializing the whole document as one `String`. The artifact
    /// writer uses this through a bounded `BufWriter` so encoding cost
    /// stays flat as records grow.
    pub fn render_to<W: std::io::Write>(&self, out: &mut W) -> std::io::Result<()> {
        match self {
            Json::Null => out.write_all(b"null"),
            Json::Bool(true) => out.write_all(b"true"),
            Json::Bool(false) => out.write_all(b"false"),
            Json::Int(v) => write!(out, "{v}"),
            Json::UInt(v) => write!(out, "{v}"),
            Json::Float(v) => {
                if v.is_finite() {
                    write!(out, "{v:?}")
                } else {
                    out.write_all(b"null")
                }
            }
            Json::Str(s) => {
                let mut escaped = String::with_capacity(s.len() + 2);
                write_escaped(s, &mut escaped);
                out.write_all(escaped.as_bytes())
            }
            Json::Array(items) => {
                out.write_all(b"[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.write_all(b",")?;
                    }
                    item.render_to(out)?;
                }
                out.write_all(b"]")
            }
            Json::Object(pairs) => {
                out.write_all(b"{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.write_all(b",")?;
                    }
                    let mut escaped = String::with_capacity(k.len() + 2);
                    write_escaped(k, &mut escaped);
                    out.write_all(escaped.as_bytes())?;
                    out.write_all(b":")?;
                    v.render_to(out)?;
                }
                out.write_all(b"}")
            }
        }
    }

    /// Parses one JSON document (trailing whitespace allowed, nothing
    /// else).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Maximum container nesting the parser accepts. Campaign documents
/// nest a handful of levels; the cap turns a pathological input like
/// `"[".repeat(1 << 20)` into a parse error instead of a recursion
/// stack overflow.
const MAX_DEPTH: usize = 512;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {text}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.depth += 1;
        let value = match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        };
        self.depth -= 1;
        value
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for campaign
                            // artifacts; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number chars are ASCII");
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if stripped.parse::<u64>().is_ok() || stripped.is_empty() {
                    return text
                        .parse::<i64>()
                        .map(Json::Int)
                        .map_err(|_| self.err("integer out of range"));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_u64() {
        let v = Json::object(vec![
            ("seed", Json::UInt(u64::MAX)),
            ("neg", Json::Int(-42)),
            ("pi", Json::Float(3.25)),
        ]);
        let text = v.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.get("seed").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(back.get("neg").unwrap().as_i64(), Some(-42));
        assert_eq!(back.get("pi").unwrap().as_f64(), Some(3.25));
        assert_eq!(back, v);
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}".to_string());
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn parses_nested_documents() {
        let text = r#" { "a": [1, 2.5, -3, true, null, "x"], "b": { "c": [] } } "#;
        let v = Json::parse(text).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a.len(), 6);
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].as_f64(), Some(2.5));
        assert_eq!(a[2].as_i64(), Some(-3));
        assert!(v
            .get("b")
            .unwrap()
            .get("c")
            .unwrap()
            .as_array()
            .unwrap()
            .is_empty());
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        let deep = "[".repeat(100_000);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting too deep"));
        // A comfortably nested document still parses.
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn render_to_matches_render_byte_for_byte() {
        let v = Json::object(vec![
            ("seed", Json::UInt(u64::MAX)),
            ("neg", Json::Int(-42)),
            ("pi", Json::Float(3.25)),
            ("bad", Json::Float(f64::NAN)),
            ("s", Json::Str("a\"b\\c\nd\u{1}".to_string())),
            (
                "arr",
                Json::Array(vec![Json::Null, Json::Bool(true), Json::Bool(false)]),
            ),
            ("empty", Json::object(vec![])),
        ]);
        let mut streamed = Vec::new();
        v.render_to(&mut streamed).unwrap();
        assert_eq!(streamed, v.render().into_bytes());
    }

    #[test]
    fn float_rendering_reparses_as_float() {
        let v = Json::Float(2.0);
        let text = v.render();
        assert_eq!(Json::parse(&text).unwrap(), Json::Float(2.0));
    }
}
