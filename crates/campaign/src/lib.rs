//! # tsn-campaign
//!
//! A declarative, parallel, resumable experiment-campaign engine for
//! the `clocksync` testbed.
//!
//! A campaign is a [`CampaignSpec`]: a base configuration plus a
//! parameter grid (scenarios × seeds × domains × sync interval ×
//! kernels × injector rates × clock discipline). The engine expands the
//! spec into a deterministic run matrix ([`matrix::expand`]) with
//! per-run seeds derived by splittable hashing, executes it on a
//! `std::thread::scope` worker pool ([`runner::execute`]) — one
//! single-threaded simulation per worker — and writes one JSONL
//! artifact per run plus a campaign manifest. Re-invoking the same spec
//! resumes: completed runs are recognized by content hash and skipped.
//! [`summary::summarize`] aggregates results across seeds and
//! [`summary::diff`] compares two campaigns with explicit tolerances.
//!
//! Everything an artifact contains is a pure function of the spec, so
//! campaigns are bit-reproducible regardless of thread count or
//! execution order — the `determinism` integration test holds the
//! engine to exactly that.
//!
//! ```no_run
//! use tsn_campaign::{runner, summary, CampaignSpec, RunnerOptions};
//!
//! let spec = CampaignSpec::builtin("quick-baseline").unwrap();
//! let report = runner::execute(&spec, &RunnerOptions::new("target/campaigns/quick")).unwrap();
//! let groups = summary::summarize(&report.records);
//! print!("{}", summary::render(&groups));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod frontier;
pub mod json;
pub mod matrix;
pub mod profile;
pub mod runner;
pub mod spec;
pub mod summary;

pub use artifact::RunRecord;
pub use frontier::{BisectOutcome, Bisection, FrontierDoc, FrontierReport, FrontierSpec};
pub use matrix::{expand, Coord, RunPlan};
pub use profile::{ProfileEntry, ScenarioProfile};
pub use runner::{
    CampaignReport, FailedRun, RunRecordReader, RunViolation, RunnerOptions, SnapshotCache,
};
pub use spec::{BaseSpec, CampaignSpec, Grid, KernelChoice, Preset};
pub use summary::{DiffTolerance, DiffVerdict, GroupSummary, StreamSummarizer};
