//! Per-run profiling of traced campaigns.
//!
//! When a campaign runs with tracing (`campaign run --trace <dir>`),
//! every executed run leaves two things in the trace directory: its
//! Chrome trace-event file `trace-<hash>.json` and one line in
//! `profile.jsonl`. The trace file carries only *simulated* time (so it
//! stays deterministic); the profile line is where host wall-clock time
//! lives — per-run wall seconds, dispatched event counts, and the
//! per-subsystem activity split from [`tsn_trace::TraceReport`].
//!
//! `campaign profile` loads the stream back and aggregates it per
//! scenario: runs, total wall time, events/s throughput, and subsystem
//! shares, sorted hottest-first.

use crate::json::Json;
use std::io;
use std::path::Path;
use tsn_trace::TraceReport;

/// File name of the profile stream inside a trace directory.
pub const PROFILE_FILE: &str = "profile.jsonl";

/// One run's profile: identity, host wall time, and event accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileEntry {
    /// Position in the canonical matrix order.
    pub index: usize,
    /// Canonical coordinate label ([`crate::matrix::Coord::label`]).
    pub label: String,
    /// Scenario name (the aggregation key of `campaign profile`).
    pub scenario: String,
    /// Content hash (names the sibling `trace-<hash>.json`).
    pub hash: String,
    /// Host wall-clock seconds the run took.
    pub wall_s: f64,
    /// Event-queue pops the run dispatched.
    pub sim_events: u64,
    /// Trace events recorded (instants + spans, excludes counted pops).
    pub recorded: u64,
    /// Trace events dropped at the sink cap.
    pub dropped: u64,
    /// Activity per subsystem, in [`tsn_trace::Subsystem::ALL`] order.
    pub subsystems: Vec<(String, u64)>,
}

impl ProfileEntry {
    /// Builds the entry for one executed run.
    pub fn new(
        index: usize,
        label: &str,
        scenario: &str,
        hash: &str,
        wall_s: f64,
        report: &TraceReport,
    ) -> ProfileEntry {
        ProfileEntry {
            index,
            label: label.to_string(),
            scenario: scenario.to_string(),
            hash: hash.to_string(),
            wall_s,
            sim_events: report.sim_events,
            recorded: report.events.len() as u64,
            dropped: report.dropped,
            subsystems: report
                .subsystems
                .iter()
                .map(|&(s, n)| (s.name().to_string(), n))
                .collect(),
        }
    }

    /// Renders the entry as one JSONL line (no trailing newline).
    pub fn encode(&self) -> String {
        Json::object(vec![
            ("index", Json::UInt(self.index as u64)),
            ("label", Json::Str(self.label.clone())),
            ("scenario", Json::Str(self.scenario.clone())),
            ("hash", Json::Str(self.hash.clone())),
            ("wall_s", Json::Float(self.wall_s)),
            ("sim_events", Json::UInt(self.sim_events)),
            ("recorded", Json::UInt(self.recorded)),
            ("dropped", Json::UInt(self.dropped)),
            (
                "subsystems",
                Json::object(
                    self.subsystems
                        .iter()
                        .map(|(name, n)| (name.as_str(), Json::UInt(*n)))
                        .collect(),
                ),
            ),
        ])
        .render()
    }

    /// Parses one JSONL line back into an entry.
    pub fn decode(line: &str) -> Option<ProfileEntry> {
        let v = Json::parse(line).ok()?;
        let subsystems = match v.get("subsystems")? {
            Json::Object(pairs) => pairs
                .iter()
                .map(|(name, n)| Some((name.clone(), n.as_u64()?)))
                .collect::<Option<Vec<_>>>()?,
            _ => return None,
        };
        Some(ProfileEntry {
            index: v.get("index")?.as_u64()? as usize,
            label: v.get("label")?.as_str()?.to_string(),
            scenario: v.get("scenario")?.as_str()?.to_string(),
            hash: v.get("hash")?.as_str()?.to_string(),
            wall_s: v.get("wall_s")?.as_f64()?,
            sim_events: v.get("sim_events")?.as_u64()?,
            recorded: v.get("recorded")?.as_u64()?,
            dropped: v.get("dropped")?.as_u64()?,
            subsystems,
        })
    }
}

/// Loads a `profile.jsonl` stream, skipping blank lines; a malformed
/// line is an error (the stream is machine-written).
pub fn load(dir: &Path) -> io::Result<Vec<ProfileEntry>> {
    let path = dir.join(PROFILE_FILE);
    let text = std::fs::read_to_string(&path)?;
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|line| {
            ProfileEntry::decode(line).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("malformed profile line in {}: {line}", path.display()),
                )
            })
        })
        .collect()
}

/// Aggregate profile of one scenario across its runs.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioProfile {
    /// Scenario name.
    pub scenario: String,
    /// Number of profiled runs.
    pub runs: usize,
    /// Total host wall-clock seconds.
    pub wall_s: f64,
    /// Total dispatched event-queue pops.
    pub sim_events: u64,
    /// Trace events dropped at the sink cap, summed.
    pub dropped: u64,
    /// Summed activity per subsystem, insertion-ordered.
    pub subsystems: Vec<(String, u64)>,
}

impl ScenarioProfile {
    /// Simulation throughput in dispatched events per wall second
    /// (0 when no wall time was accumulated).
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_s <= 0.0 {
            return 0.0;
        }
        self.sim_events as f64 / self.wall_s
    }

    /// Share of this scenario's activity attributed to `name`, in
    /// `[0, 1]`.
    pub fn subsystem_share(&self, name: &str) -> f64 {
        let total: u64 = self.subsystems.iter().map(|(_, n)| n).sum();
        if total == 0 {
            return 0.0;
        }
        let own = self
            .subsystems
            .iter()
            .find(|(s, _)| s == name)
            .map_or(0, |(_, n)| *n);
        own as f64 / total as f64
    }
}

/// Groups entries per scenario and sorts hottest (most wall time)
/// first.
pub fn aggregate(entries: &[ProfileEntry]) -> Vec<ScenarioProfile> {
    let mut out: Vec<ScenarioProfile> = Vec::new();
    for e in entries {
        let agg = match out.iter_mut().find(|a| a.scenario == e.scenario) {
            Some(agg) => agg,
            None => {
                out.push(ScenarioProfile {
                    scenario: e.scenario.clone(),
                    runs: 0,
                    wall_s: 0.0,
                    sim_events: 0,
                    dropped: 0,
                    subsystems: Vec::new(),
                });
                out.last_mut().expect("just pushed")
            }
        };
        agg.runs += 1;
        agg.wall_s += e.wall_s;
        agg.sim_events += e.sim_events;
        agg.dropped += e.dropped;
        for (name, n) in &e.subsystems {
            match agg.subsystems.iter_mut().find(|(s, _)| s == name) {
                Some((_, total)) => *total += n,
                None => agg.subsystems.push((name.clone(), *n)),
            }
        }
    }
    out.sort_by(|a, b| b.wall_s.total_cmp(&a.wall_s));
    out
}

/// Renders the aggregate as the `campaign profile` report table.
pub fn render(aggregates: &[ScenarioProfile]) -> String {
    let mut out = String::new();
    out.push_str("scenario                  runs   wall      events/s   hottest subsystems\n");
    for a in aggregates {
        let mut shares: Vec<(&str, f64)> = a
            .subsystems
            .iter()
            .map(|(name, _)| (name.as_str(), a.subsystem_share(name)))
            .collect();
        shares.sort_by(|x, y| y.1.total_cmp(&x.1));
        let hottest = shares
            .iter()
            .take(3)
            .filter(|(_, share)| *share > 0.0)
            .map(|(name, share)| format!("{name} {:.0}%", share * 100.0))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "{:<25} {:>4}   {:>7}   {:>8.0}   {hottest}\n",
            a.scenario,
            a.runs,
            format!("{:.2}s", a.wall_s),
            a.events_per_sec(),
        ));
        if a.dropped > 0 {
            out.push_str(&format!(
                "{:<25}        ({} trace event(s) dropped at the sink cap)\n",
                "", a.dropped
            ));
        }
    }
    out
}

/// Renders the aggregate as a machine-readable JSON document
/// (`campaign profile --json`): one object per scenario, hottest
/// first, with throughput and per-subsystem shares precomputed so
/// scripts don't re-derive them.
pub fn render_json(aggregates: &[ScenarioProfile]) -> String {
    Json::Array(
        aggregates
            .iter()
            .map(|a| {
                Json::object(vec![
                    ("scenario", Json::Str(a.scenario.clone())),
                    ("runs", Json::UInt(a.runs as u64)),
                    ("wall_s", Json::Float(a.wall_s)),
                    ("sim_events", Json::UInt(a.sim_events)),
                    ("events_per_sec", Json::Float(a.events_per_sec())),
                    ("dropped", Json::UInt(a.dropped)),
                    (
                        "subsystems",
                        Json::object(
                            a.subsystems
                                .iter()
                                .map(|(name, n)| (name.as_str(), Json::UInt(*n)))
                                .collect(),
                        ),
                    ),
                    (
                        "subsystem_share",
                        Json::object(
                            a.subsystems
                                .iter()
                                .map(|(name, _)| {
                                    (name.as_str(), Json::Float(a.subsystem_share(name)))
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    )
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsn_time::SimTime;
    use tsn_trace::{Subsystem, TraceConfig, TraceSink};

    fn entry(scenario: &str, wall_s: f64, pops: u64) -> ProfileEntry {
        let mut sink = TraceSink::new(TraceConfig::default());
        for i in 0..pops {
            sink.pop(SimTime::from_millis(i), "transmit", Subsystem::Netsim);
        }
        sink.instant(SimTime::from_millis(1), "servo", Subsystem::Servo, 100, 0);
        let report = sink.finish(SimTime::from_secs(1));
        ProfileEntry::new(0, "label", scenario, "abc123", wall_s, &report)
    }

    #[test]
    fn entries_roundtrip_through_jsonl() {
        let e = entry("baseline", 0.25, 10);
        let back = ProfileEntry::decode(&e.encode()).expect("roundtrip");
        assert_eq!(back, e);
    }

    #[test]
    fn aggregate_groups_and_ranks_by_wall_time() {
        let entries = vec![
            entry("baseline", 0.5, 100),
            entry("fault_injection", 2.0, 300),
            entry("baseline", 0.5, 100),
        ];
        let aggs = aggregate(&entries);
        assert_eq!(aggs.len(), 2);
        assert_eq!(aggs[0].scenario, "fault_injection"); // hottest first
        assert_eq!(aggs[1].runs, 2);
        assert_eq!(aggs[1].sim_events, 200);
        assert!((aggs[0].events_per_sec() - 150.0).abs() < 1e-9);
        let netsim = aggs[0].subsystem_share("netsim");
        let servo = aggs[0].subsystem_share("servo");
        assert!((netsim + servo - 1.0).abs() < 1e-12);
        let table = render(&aggs);
        assert!(table.contains("fault_injection"));
        assert!(table.contains("events/s"));
    }

    /// Pins the machine-readable schema: scripts key off these exact
    /// field names, so renaming any of them is a breaking change.
    #[test]
    fn profile_json_schema_is_pinned() {
        let aggs = aggregate(&[entry("baseline", 0.5, 100)]);
        let json = render_json(&aggs);
        for key in [
            "\"scenario\"",
            "\"runs\"",
            "\"wall_s\"",
            "\"sim_events\"",
            "\"events_per_sec\"",
            "\"dropped\"",
            "\"subsystems\"",
            "\"subsystem_share\"",
        ] {
            assert!(json.contains(key), "profile --json must carry {key}");
        }
        let parsed = Json::parse(&json).expect("valid JSON");
        let Json::Array(rows) = &parsed else {
            panic!("top level must be an array");
        };
        assert_eq!(rows.len(), 1);
        assert_eq!(
            rows[0].get("events_per_sec").and_then(Json::as_f64),
            Some(200.0)
        );
        let share = rows[0]
            .get("subsystem_share")
            .and_then(|s| s.get("netsim"))
            .and_then(Json::as_f64)
            .expect("netsim share");
        assert!(share > 0.0 && share <= 1.0);
    }

    #[test]
    fn load_rejects_malformed_lines() {
        let dir = std::env::temp_dir().join(format!("tsn-profile-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join(PROFILE_FILE),
            format!("{}\n\nnot json\n", entry("baseline", 0.1, 5).encode()),
        )
        .unwrap();
        assert!(load(&dir).is_err());
        std::fs::write(
            dir.join(PROFILE_FILE),
            format!("{}\n", entry("baseline", 0.1, 5).encode()),
        )
        .unwrap();
        assert_eq!(load(&dir).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
