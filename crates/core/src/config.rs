//! Testbed configuration.
//!
//! [`TestbedConfig`] captures every knob of the paper's experimental
//! setup (§III-A1): four ECDs with two clock-synchronization VMs each,
//! four gPTP domains with spatially separated GMs, integrated TSN
//! switches in a mesh, S = 125 ms, a 125 ms hypervisor monitor, and the
//! fault/attack models layered on top.

use tsn_faults::{AttackPlan, FaultEvent, InjectorConfig, KernelAssignment, TransientFaultConfig};
use tsn_fta::AggregationConfig;
use tsn_hyp::{MonitorConfig, SyncClockDiscipline};
use tsn_netsim::LinkFaultPlan;
use tsn_time::{JitterConfig, Nanos, OscillatorConfig, ServoConfig};

/// Full configuration of one experiment run.
///
/// Serializable, so experiment setups can be stored as config files and
/// attached to published results.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct TestbedConfig {
    /// Master seed; all randomness derives from it.
    pub seed: u64,
    /// Number of ECDs (each hosts the GM of one gPTP domain), ≥ 2.
    pub nodes: usize,
    /// Clock-synchronization VMs per node. The paper runs 2 (fail-silent,
    /// f + 1, limited by passthrough NICs); 3+ adds standby depth — "it
    /// is straightforward to realize fail-consistent behavior by adding
    /// more NICs" (§II-A).
    pub vms_per_node: usize,
    /// Synchronization interval S.
    pub sync_interval: Nanos,
    /// Peer-delay measurement interval.
    pub pdelay_interval: Nanos,
    /// `phc2sys` STSHMEM update interval.
    pub phc2sys_interval: Nanos,
    /// How `CLOCK_SYNCTIME` tracks the PHC. The paper's prototype uses
    /// feedback control (and attributes its precision spikes to it);
    /// `FeedForward` implements the paper's proposed future-work fix.
    pub sync_clock_discipline: SyncClockDiscipline,
    /// Hypervisor monitor configuration.
    pub monitor: MonitorConfig,
    /// Fault-detection mode of the hypervisor monitor. Fail-silent is
    /// the paper's experimental configuration (2 VMs/node); voting
    /// (fail-consistent, §II-A) needs `vms_per_node ≥ 3`.
    pub monitor_mode: HypMonitorMode,
    /// Optional Byzantine dependent-clock fault: from `at` (measured
    /// runtime) on, the targeted clock-sync VM publishes STSHMEM
    /// parameters shifted by `offset` — a *non*-silent fault that only
    /// the voting monitor can detect.
    pub corrupt_publisher: Option<CorruptPublisher>,
    /// Multi-domain aggregation configuration.
    pub aggregation: AggregationConfig,
    /// `true` (the paper's contribution): grandmasters participate in the
    /// distributed FTA, keeping the GM ensemble mutually synchronized.
    /// `false` reproduces the prior-work end-system design the paper
    /// critiques (Kyriakakis et al., ISORC 2021): only clients aggregate,
    /// the GMs free-run — "they conceptually neglect the problem of
    /// (initially) synchronizing GM clocks of different domains with each
    /// other".
    pub gm_mutual_sync: bool,
    /// PI servo configuration.
    pub servo: ServoConfig,
    /// Oscillator tolerance/wander model for NIC PHCs and host clocks.
    pub oscillator: OscillatorConfig,
    /// Hardware timestamping error model.
    pub ts_jitter: JitterConfig,
    /// Static per-link latency range (drawn once per link per run).
    pub link_base_min: Nanos,
    /// Upper bound of the static per-link latency.
    pub link_base_max: Nanos,
    /// Per-frame link jitter (uniform `[0, jitter)`).
    pub link_jitter: Nanos,
    /// Static per-switch residence latency range.
    pub residence_min: Nanos,
    /// Upper bound of the static residence latency.
    pub residence_max: Nanos,
    /// Per-frame residence jitter.
    pub residence_jitter: Nanos,
    /// Transient software fault model.
    pub transient: TransientFaultConfig,
    /// Kernel assignment of the GM clock-sync VMs.
    pub kernels: KernelAssignment,
    /// The attack plan (empty for the fault-injection experiment).
    pub attack: AttackPlan,
    /// Fault-injection schedule configuration (None for the cyber
    /// experiment, which only uses the attacker).
    pub fault_injection: Option<InjectorConfig>,
    /// Explicit fail-silent VM shutdowns, used verbatim instead of a
    /// generated [`tsn_faults::FaultSchedule`] (deterministic scenario
    /// construction in tests/campaigns). Mutually exclusive with
    /// `fault_injection`.
    pub explicit_faults: Option<Vec<FaultEvent>>,
    /// Network fault model: per-link loss (i.i.d. and burst), asymmetric
    /// delay injection, and timed link-down windows. All activity starts
    /// strictly after the warm-up so the warm prefix stays byte-identical.
    pub link_faults: Option<LinkFaultPlan>,
    /// Timed partition of one node: every inter-switch link incident to
    /// the node's switch goes down for the window (relative to the end of
    /// the warm-up).
    pub partition: Option<PartitionWindow>,
    /// Dynamic BMCA grandmaster election (`None` keeps the paper's static
    /// per-domain grandmaster assignment; the run is then byte-identical
    /// to a build without the election subsystem). When set, slot-0 VMs
    /// run a live Announce/BMCA state machine per domain and the roles in
    /// the Fig. 2 topology become the election's *initial* condition.
    pub election: Option<tsn_election::ElectionConfig>,
    /// Multi-hop switch fabric between the integrated TSN switches
    /// (`None` keeps the paper's direct mesh; the run is then
    /// byte-identical to a build without the fabric subsystem). When
    /// set, every inter-switch link is expanded into a chain of
    /// store-and-forward fabric switches with 802.1Qbv gates, analytic
    /// cross-traffic, and optional transparent clocks.
    pub fabric: Option<tsn_fabric::FabricConfig>,
    /// Measured experiment duration (excludes warm-up).
    pub duration: Nanos,
    /// Warm-up before measurement starts (initial synchronization per
    /// §II-B runs during this period).
    pub warmup: Nanos,
    /// Node hosting the measurement VM `c^m_2` ("chosen arbitrarily").
    pub measurement_node: usize,
    /// Probe period of the precision measurement.
    pub probe_interval: Nanos,
    /// Maximum initial PHC offset from true time (uniform ±).
    pub initial_offset_max: Nanos,
    /// Oscillator wander step period.
    pub wander_interval: Nanos,
    /// Maximum drift rate assumed for the bound (r_max, 5 ppm in the
    /// literature).
    pub r_max_ppb: f64,
    /// Gaussian sigma of the `phc2sys` PHC read error (clock_gettime over
    /// PCIe), in ns.
    pub phc_read_sigma_ns: f64,
    /// Probability that one `phc2sys` PHC read hits a latency spike.
    pub phc_read_spike_prob: f64,
    /// Maximum magnitude of a PHC read spike.
    pub phc_read_spike_max: Nanos,
    /// Gaussian sigma of a guest's `CLOCK_SYNCTIME` read, in ns.
    pub synctime_read_sigma_ns: f64,
    /// Optional best-effort background traffic (congestion ablation).
    pub background: Option<BackgroundTraffic>,
    /// Capture the last N gPTP frame events in a debugging ring buffer
    /// (0 disables; rendering is available via `World::frame_trace`).
    pub trace_capacity: usize,
}

/// Hypervisor monitor fault-detection mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum HypMonitorMode {
    /// Freshness/liveness detection only (f + 1 redundancy).
    FailSilent,
    /// Majority vote over per-VM candidate parameters (2f + 1
    /// redundancy).
    Voting,
}

/// A timed isolation window for one node (see
/// [`TestbedConfig::partition`]).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PartitionWindow {
    /// The node to cut off from the mesh.
    pub node: usize,
    /// Window start, relative to the end of the warm-up.
    pub from: Nanos,
    /// Window end (exclusive), relative to the end of the warm-up.
    pub until: Nanos,
}

/// A Byzantine dependent-clock writer (see
/// [`TestbedConfig::corrupt_publisher`]).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CorruptPublisher {
    /// Target node.
    pub node: usize,
    /// Target clock-sync VM slot.
    pub slot: usize,
    /// Corruption onset, relative to the measured axis.
    pub at: Nanos,
    /// Shift applied to the published synchronized time.
    pub offset: Nanos,
}

/// Best-effort background load on every link.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BackgroundTraffic {
    /// Offered load per egress port as a fraction of line rate (0–0.95).
    pub load: f64,
    /// Payload size of each background frame (1500 for full MTU).
    pub frame_bytes: usize,
    /// `true`: 802.1Q strict priority protects gPTP and probe frames
    /// (the TSN configuration); `false`: everything is best-effort
    /// (ablation baseline).
    pub priority_isolation: bool,
}

impl BackgroundTraffic {
    /// Full-MTU background at the given load, with TSN priorities on.
    pub fn mtu_load(load: f64) -> Self {
        BackgroundTraffic {
            load,
            frame_bytes: 1500,
            priority_isolation: true,
        }
    }
}

impl TestbedConfig {
    /// The paper's testbed: 4 ECDs, 4 domains, S = 125 ms, link/residence
    /// latencies calibrated so the derived bounds land near the paper's
    /// (E ≈ 5 µs, Π ≈ 11–13 µs, γ ≈ 1 µs).
    pub fn paper_default(seed: u64) -> Self {
        TestbedConfig {
            seed,
            nodes: 4,
            vms_per_node: 2,
            sync_interval: Nanos::from_millis(125),
            pdelay_interval: Nanos::from_secs(1),
            phc2sys_interval: Nanos::from_millis(125),
            sync_clock_discipline: SyncClockDiscipline::Feedback,
            monitor: MonitorConfig::default(),
            monitor_mode: HypMonitorMode::FailSilent,
            corrupt_publisher: None,
            aggregation: AggregationConfig::paper_default(),
            gm_mutual_sync: true,
            // OpenIL's gPTP profile steps the clock on offsets above
            // 20 us (the attack's -24 us shift lands just past it).
            servo: ServoConfig {
                step_threshold: Nanos::from_micros(20),
                ..ServoConfig::default()
            },
            oscillator: OscillatorConfig::default(),
            ts_jitter: JitterConfig::default(),
            link_base_min: Nanos::from_nanos(1_800),
            link_base_max: Nanos::from_nanos(2_200),
            link_jitter: Nanos::from_nanos(120),
            residence_min: Nanos::from_nanos(700),
            residence_max: Nanos::from_nanos(1_100),
            residence_jitter: Nanos::from_nanos(150),
            transient: TransientFaultConfig::default(),
            kernels: KernelAssignment::identical(4),
            attack: AttackPlan::none(),
            fault_injection: None,
            explicit_faults: None,
            link_faults: None,
            partition: None,
            election: None,
            fabric: None,
            duration: Nanos::from_secs(3600),
            warmup: Nanos::from_secs(30),
            measurement_node: 1,
            probe_interval: Nanos::from_secs(1),
            initial_offset_max: Nanos::from_micros(50),
            wander_interval: Nanos::from_secs(10),
            r_max_ppb: 5_000.0,
            background: None,
            trace_capacity: 0,
            phc_read_sigma_ns: 50.0,
            phc_read_spike_prob: 0.005,
            phc_read_spike_max: Nanos::from_micros(3),
            synctime_read_sigma_ns: 30.0,
        }
    }

    /// A small fast configuration for tests and the quickstart example:
    /// 4 nodes, short duration, no faults.
    pub fn quick(seed: u64) -> Self {
        TestbedConfig {
            duration: Nanos::from_secs(60),
            warmup: Nanos::from_secs(20),
            ..Self::paper_default(seed)
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent settings; called by the testbed builder.
    pub fn validate(&self) {
        assert!(self.nodes >= 2, "need at least two nodes");
        assert!(
            (2..=4).contains(&self.vms_per_node),
            "2 to 4 clock-sync VMs per node supported"
        );
        assert_eq!(
            self.aggregation.domains, self.nodes,
            "one gPTP domain per node is required by the Fig. 2 topology"
        );
        assert!(
            self.measurement_node < self.nodes,
            "measurement node out of range"
        );
        assert_eq!(
            self.kernels.len(),
            self.nodes,
            "kernel assignment must cover every node"
        );
        assert!(
            self.sync_interval == self.aggregation.sync_interval,
            "aggregation sync interval must match the testbed's"
        );
        assert!(
            self.link_base_min <= self.link_base_max,
            "link range inverted"
        );
        assert!(
            self.residence_min <= self.residence_max,
            "residence range inverted"
        );
        if self.monitor_mode == HypMonitorMode::Voting {
            assert!(
                self.vms_per_node >= 3,
                "voting (fail-consistent) monitoring needs 2f+1 >= 3 clock-sync VMs per node"
            );
        }
        if let Some(cp) = &self.corrupt_publisher {
            assert!(cp.node < self.nodes, "corrupt publisher node out of range");
            assert!(
                cp.slot < self.vms_per_node,
                "corrupt publisher slot out of range"
            );
        }
        if let Some(fi) = &self.fault_injection {
            assert_eq!(fi.nodes, self.nodes, "fault injector node count mismatch");
        }
        for s in self.attack.strikes() {
            assert!(s.target_node < self.nodes, "strike target out of range");
        }
        if let Some(faults) = &self.explicit_faults {
            assert!(
                self.fault_injection.is_none(),
                "explicit_faults and fault_injection are mutually exclusive"
            );
            for f in faults {
                assert!(f.node < self.nodes, "explicit fault node out of range");
                assert!(
                    f.reboot_at > f.at,
                    "explicit fault reboot must follow the failure"
                );
            }
        }
        if let Some(plan) = &self.link_faults {
            if let Err(e) = plan.validate() {
                panic!("invalid link fault plan: {e}");
            }
        }
        if let Some(p) = &self.partition {
            assert!(p.node < self.nodes, "partition node out of range");
            assert!(p.until > p.from, "partition window empty or inverted");
        }
        if let Some(el) = &self.election {
            el.validate(self.nodes);
        }
        if let Some(fab) = &self.fabric {
            fab.validate();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_valid() {
        TestbedConfig::paper_default(1).validate();
        TestbedConfig::quick(1).validate();
    }

    #[test]
    fn paper_default_matches_paper_parameters() {
        let c = TestbedConfig::paper_default(1);
        assert_eq!(c.nodes, 4);
        assert_eq!(c.sync_interval, Nanos::from_millis(125));
        assert_eq!(c.monitor.period, Nanos::from_millis(125));
        assert_eq!(c.aggregation.domains, 4);
        assert_eq!(c.r_max_ppb, 5_000.0);
    }

    #[test]
    #[should_panic(expected = "one gPTP domain per node")]
    fn mismatched_domains_rejected() {
        let mut c = TestbedConfig::paper_default(1);
        c.aggregation.domains = 3;
        c.validate();
    }

    #[test]
    fn config_is_fully_serializable() {
        fn assert_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}
        assert_serde::<TestbedConfig>();
    }

    #[test]
    #[should_panic(expected = "measurement node out of range")]
    fn bad_measurement_node_rejected() {
        let mut c = TestbedConfig::paper_default(1);
        c.measurement_node = 9;
        c.validate();
    }
}
