//! Checkpoint/restore support: configuration fingerprints, the
//! warm-prefix projection, and the fork checkpoint boundary.
//!
//! A *warm prefix* is the part of a run every member of a campaign group
//! shares: the warm-up period before any scenario-specific intervention
//! (attacker strikes, fault injection, publisher corruption, kernel
//! diversity) can influence the world. Two configurations with equal
//! warm-prefix projections evolve byte-identically until the checkpoint
//! boundary, so the prefix can be simulated once and forked per run.

use crate::config::TestbedConfig;
use tsn_faults::{AttackPlan, KernelAssignment};
use tsn_time::{Nanos, SimTime};

/// Version of the world's encoded state schema. Bump whenever any
/// `SnapState` implementation in the workspace changes its layout.
pub const WORLD_STATE_VERSION: u32 = 4;

/// Fingerprint of a configuration (FNV-1a over its canonical `Debug`
/// rendering), binding snapshots to the configuration that produced
/// them.
pub fn config_fingerprint(cfg: &TestbedConfig) -> u64 {
    tsn_snapshot::fingerprint_str(&format!("{cfg:?}"))
}

/// The warm-prefix projection: `cfg` with every post-warmup intervention
/// stripped.
///
/// Strikes, injected faults, publisher corruption, kernel diversity,
/// link faults, and partitions only act strictly after the warm-up
/// (fault/strike/window times are offset by it, the corrupt publisher
/// arms at `warmup + at`, kernels only matter to strike outcomes, and
/// link faults gate all activity — including RNG draws — behind the
/// warm-up boundary), so removing them leaves the warm-up evolution
/// untouched. Everything else — seed, topology axes, intervals,
/// discipline, `gm_mutual_sync` — shapes the prefix and is kept.
pub fn warm_prefix_config(cfg: &TestbedConfig) -> TestbedConfig {
    let mut prefix = cfg.clone();
    prefix.attack = AttackPlan::none();
    prefix.fault_injection = None;
    prefix.explicit_faults = None;
    prefix.corrupt_publisher = None;
    prefix.kernels = KernelAssignment::identical(prefix.nodes);
    prefix.link_faults = None;
    prefix.partition = None;
    if let Some(el) = &mut prefix.election {
        // The scheduled grandmaster kill fires strictly after the
        // warm-up; the election machinery itself (Announce traffic,
        // timeouts) runs during the prefix and must stay.
        el.gm_failure_at = None;
    }
    prefix
}

/// Fingerprint of the warm-prefix projection. Two configurations with
/// equal warm-prefix fingerprints can share one prefix simulation.
pub fn warm_prefix_fingerprint(cfg: &TestbedConfig) -> u64 {
    config_fingerprint(&warm_prefix_config(cfg))
}

/// The checkpoint boundary for fork-based execution: one nanosecond
/// before the warm-up ends, so that *every* divergent behavior —
/// including interventions armed exactly at the warm-up boundary — falls
/// strictly after the checkpoint. `None` when there is no warm-up (no
/// shared prefix worth forking).
pub fn checkpoint_time(cfg: &TestbedConfig) -> Option<SimTime> {
    (cfg.warmup > Nanos::ZERO).then(|| SimTime::ZERO + cfg.warmup - Nanos::from_nanos(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_projection_is_scenario_invariant() {
        let base = TestbedConfig::quick(7);
        let mut attacked = base.clone();
        attacked.attack = AttackPlan::paper_default();
        attacked.kernels = KernelAssignment::diverse(attacked.nodes, 3);
        attacked.link_faults = Some(tsn_netsim::LinkFaultPlan::with_loss(0.05));
        attacked.partition = Some(crate::config::PartitionWindow {
            node: 1,
            from: Nanos::from_secs(2),
            until: Nanos::from_secs(4),
        });
        assert_eq!(
            warm_prefix_fingerprint(&base),
            warm_prefix_fingerprint(&attacked)
        );
        // But the full configurations are distinct.
        assert_ne!(config_fingerprint(&base), config_fingerprint(&attacked));
    }

    #[test]
    fn checkpoint_precedes_warmup_end() {
        let cfg = TestbedConfig::quick(1);
        let cp = checkpoint_time(&cfg).expect("has warmup");
        assert!(cp < SimTime::ZERO + cfg.warmup);
        let mut no_warmup = cfg;
        no_warmup.warmup = Nanos::ZERO;
        assert!(checkpoint_time(&no_warmup).is_none());
    }
}
