//! The experiment world: a deterministic discrete-event simulation of the
//! paper's virtualized distributed real-time system (Fig. 2).
//!
//! The world owns every simulated entity — ECD host clocks, clock-sync
//! VMs with passthrough NICs, integrated TSN switches, the gPTP engines,
//! the FTSHMEM aggregators, the hypervisor dependent-clock devices, the
//! fault injector and the attacker — and moves real Ethernet frames
//! between them through the event queue.
//!
//! Topology (paper §III-A1): `N` ECDs, each with an integrated TSN switch;
//! switch ports 0 and 1 connect the node's two clock-sync VM NICs, the
//! remaining ports form a full mesh with the other switches. gPTP domain
//! `x` is rooted at VM(x, 0); its static external port configuration is
//! the 2-level tree `GM → sw_x → {sw_y} → VMs`.

use crate::config::{HypMonitorMode, TestbedConfig};
use crate::densemap::{DevMap, PortTable};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::{BTreeMap, HashMap};
use tsn_election::{ElectionEvent, NodeElection};
use tsn_fabric::{Fabric, FrameClass};
use tsn_faults::{
    AttackPlan, ByzantineStrategy, FaultEvent, FaultSchedule, StrikeOutcome, TransientFaults,
    VmSlot,
};
use tsn_fta::{AggregationMethod, AggregationMode, MultiDomainAggregator, SubmitOutcome};
use tsn_gptp::{
    msg::Message, msg::MessageType, msg::GPTP_MAJOR_SDO_ID, msg::PTP_VERSION, BridgeRelay,
    ClockIdentity, LinkDelayService, PortIdentity, SyncMaster, SyncSlave,
};
use tsn_hyp::{
    DependentClockDevice, Phc2Sys, SyncClockDiscipline, SyncTimeServo, VmId, VotingMonitor,
};
use tsn_metrics::{
    precision_of, BoundsReport, EventLog, ExperimentEvent, PrecisionSample, PrecisionSeries,
    TransientKind,
};
use tsn_netsim::{
    ethertype, DelayModel, DeviceId, EthernetFrame, EventQueue, FrameTrace, LaunchOutcome, MacAddr,
    Nic, PortAddr, PortNo, SeedSplitter, Switch, Topology, TraceDir, VlanTag,
};
use tsn_netsim::{LinkFaultPlan, LinkFaults, LinkId};
use tsn_oracle::{Observation, OracleConfig, OracleRegistry};
use tsn_time::{ClockTime, Nanos, Oscillator, Phc, ServoOutput, SimTime};
use tsn_trace::{node_pid, Subsystem as TraceSub, TraceConfig, TraceSink, SIM_PID};

/// VLAN used by the measurement probes.
const MEASUREMENT_VID: u16 = 100;
/// Minimum lead time between scheduling a Sync and its launch boundary.
const LAUNCH_LEAD: Nanos = Nanos::from_millis(20);
/// Default link-delay assumption before the first pdelay exchange
/// completes.
const DEFAULT_LINK_DELAY: Nanos = Nanos::from_nanos(2_000);

/// Sequence id of an encoded gPTP message (header bytes 30..32).
fn peek_sequence(payload: &[u8]) -> u16 {
    if payload.len() < 32 {
        return 0;
    }
    u16::from_be_bytes([payload[30], payload[31]])
}

/// Adds `residence_ns` to the correction field of an encoded gPTP
/// message in place (header bytes 8..16, nanoseconds scaled by 2^16 —
/// IEEE 1588 clause 13.3.2.7), as a chain of transparent clocks would.
fn add_correction(frame: &mut EthernetFrame, residence_ns: i64) {
    if frame.payload.len() < 16 {
        return;
    }
    let mut buf = frame.payload.to_vec();
    let cur = i64::from_be_bytes(buf[8..16].try_into().expect("slice of 8"));
    let patched = cur.saturating_add(residence_ns.saturating_mul(65_536));
    buf[8..16].copy_from_slice(&patched.to_be_bytes());
    frame.payload = bytes::Bytes::from(buf);
}

/// Transmission context: what to do once the frame's hardware egress
/// timestamp is known.
#[derive(Debug, Clone)]
enum TxCtx {
    /// No follow-up action (general messages, probes).
    None,
    /// A grandmaster's Sync: emit the Follow_Up. `domain` selects the
    /// originating master function (home domain or an election-acquired
    /// foreign domain).
    GmSync { node: usize, domain: u8, seq: u16 },
    /// A bridge-regenerated Sync: report to the relay.
    BridgeSync { sw: usize, domain: u8, seq: u16 },
    /// A Pdelay_Req: report t1 to the initiator.
    PdelayReq { dev: DeviceId, seq: u16 },
    /// A Pdelay_Resp: emit the Pdelay_Resp_Follow_Up with t3.
    PdelayResp {
        dev: DeviceId,
        seq: u16,
        requesting: PortIdentity,
    },
}

/// World events.
#[derive(Debug, Clone)]
enum Ev {
    /// Frame departs `from` (tx timestamping + ctx), then crosses the
    /// link.
    Transmit {
        from: PortAddr,
        frame: EthernetFrame,
        ctx: TxCtx,
    },
    /// Frame arrives at `to`.
    Arrive { to: PortAddr, frame: EthernetFrame },
    /// A grandmaster VM prepares its next Sync.
    GmSyncTick { node: usize },
    /// Peer-delay measurement round on one port.
    PdelayTick { port: PortAddr },
    /// phc2sys updates STSHMEM parameters.
    Phc2SysTick { node: usize, slot: usize },
    /// Hypervisor monitor tick.
    MonitorTick { node: usize },
    /// Oscillator wander step (all clocks).
    WanderTick,
    /// Measurement probe emission.
    ProbeTick { seq: u64 },
    /// Fault-injection shutdown event `i` of the schedule.
    FaultAt(usize),
    /// Reboot completion of schedule event `i`.
    RebootAt(usize),
    /// Attacker strike `i` of the plan.
    StrikeAt(usize),
    /// An egress port finished serializing its in-flight frame.
    PortFree { from: PortAddr },
    /// Best-effort background traffic generator tick for one port.
    BackgroundTick { port: PortAddr },
    /// Edge of link-down window `i` (`down = true` opens it).
    LinkWindow { i: usize, down: bool },
    /// Election round on one node: expire claims, decide, announce.
    ElectionTick { node: usize },
    /// Scheduled permanent grandmaster kill (election failover scenario).
    GmKill,
}

impl Ev {
    /// Stable name and owning subsystem of this event kind, for the
    /// trace profiler's pop accounting.
    fn kind(&self) -> (&'static str, TraceSub) {
        match self {
            Ev::Transmit { .. } => ("transmit", TraceSub::Netsim),
            Ev::Arrive { .. } => ("arrive", TraceSub::Netsim),
            Ev::GmSyncTick { .. } => ("gm_sync_tick", TraceSub::Gptp),
            Ev::PdelayTick { .. } => ("pdelay_tick", TraceSub::Gptp),
            Ev::Phc2SysTick { .. } => ("phc2sys_tick", TraceSub::Hyp),
            Ev::MonitorTick { .. } => ("monitor_tick", TraceSub::Hyp),
            Ev::WanderTick => ("wander_tick", TraceSub::Time),
            Ev::ProbeTick { .. } => ("probe_tick", TraceSub::Measure),
            Ev::FaultAt(_) => ("fault", TraceSub::Faults),
            Ev::RebootAt(_) => ("reboot", TraceSub::Faults),
            Ev::StrikeAt(_) => ("strike", TraceSub::Faults),
            Ev::PortFree { .. } => ("port_free", TraceSub::Netsim),
            Ev::BackgroundTick { .. } => ("background_tick", TraceSub::Netsim),
            Ev::LinkWindow { .. } => ("link_window", TraceSub::Faults),
            Ev::ElectionTick { .. } => ("election_tick", TraceSub::Election),
            Ev::GmKill => ("gm_kill", TraceSub::Election),
        }
    }
}

/// One clock-synchronization VM.
struct VmState {
    nic_device: DeviceId,
    nic: Nic,
    osc: Oscillator,
    running: bool,
    compromised: bool,
    /// Index into the attack plan of the strike that compromised this
    /// VM; drives the per-tick Byzantine strategy offset.
    strike_idx: Option<usize>,
    /// Only the slot-0 (GM) VM has a master for its node's domain.
    master: Option<SyncMaster>,
    /// `true` while the GM VM is actively serving its domain.
    gm_active: bool,
    slaves: Vec<SyncSlave>,
    aggregator: MultiDomainAggregator,
    /// CMLDS: one shared link-delay service per NIC port.
    pd: LinkDelayService,
    phc2sys: Phc2Sys,
    sync_servo: SyncTimeServo,
    /// Live BMCA election state; present on slot-0 VMs when the
    /// testbed's election mode is on, `None` otherwise (static external
    /// port configuration).
    election: Option<NodeElection>,
    /// Master functions for foreign domains this node won by election,
    /// keyed by domain.
    acquired: BTreeMap<u8, SyncMaster>,
}

/// One ECD.
struct NodeState {
    host_phc: Phc,
    host_osc: Oscillator,
    vms: Vec<VmState>,
    device: DependentClockDevice,
    /// Present in fail-consistent (voting) monitor mode.
    voting: Option<VotingMonitor>,
}

/// One integrated TSN switch.
struct SwitchState {
    device: DeviceId,
    phc: Phc,
    osc: Oscillator,
    fabric: Switch,
    relays: Vec<BridgeRelay>,
    pd: HashMap<u8, LinkDelayService>,
}

/// Aggregate counters reported after a run.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RunCounters {
    /// Transmit-timestamp retrieval timeouts across all `ptp4l` masters.
    pub tx_timestamp_timeouts: u64,
    /// Sync launch deadline misses.
    pub deadline_misses: u64,
    /// Injected fail-silent VM shutdowns.
    pub vm_failures: u64,
    /// Injected GM shutdowns (subset of `vm_failures`).
    pub gm_failures: u64,
    /// `CLOCK_SYNCTIME` takeovers performed by the monitors.
    pub takeovers: u64,
    /// Aggregations executed across all VMs.
    pub aggregations: u64,
    /// Intervals skipped for lack of quorum.
    pub no_quorum: u64,
    /// Successful attacker strikes.
    pub strikes_succeeded: u64,
    /// Failed attacker strikes.
    pub strikes_failed: u64,
    /// Frames that had to wait in an egress queue.
    pub frames_queued: u64,
    /// Degradation state transitions across all aggregators.
    pub sync_transitions: u64,
    /// Total time any aggregator spent in Holdover (ns).
    pub holdover_ns: u64,
    /// Total time any aggregator spent in Freerun (ns).
    pub freerun_ns: u64,
    /// Active-VM failures the monitors could not cover (no standby).
    pub uncovered_failures: u64,
    /// gPTP frames received by a handler with no role for them in the
    /// active configuration (Announce outside election mode, E2E
    /// delay-mechanism and Signaling messages).
    pub unhandled_frames: u64,
    /// Announce messages originated by acting masters (election mode).
    pub announce_tx: u64,
    /// Elected-grandmaster changes observed across all nodes' BMCA
    /// instances (election churn; 0 in a stable run).
    pub elected_gm_changes: u64,
    /// Time from the scheduled grandmaster kill to the first replacement
    /// promotion on the killed domain (ns; 0 when no kill happened or
    /// the domain never recovered).
    pub reconvergence_ns: u64,
    /// Protected frames forwarded end to end by the multi-hop switch
    /// fabric (0 when the fabric is disabled).
    pub fabric_frames_forwarded: u64,
    /// Protected frames dropped at a saturated fabric hop.
    pub fabric_frames_dropped: u64,
    /// Largest accumulated fabric residence observed on one crossing
    /// (ns).
    pub max_residence_ns: u64,
    /// Largest static directional path asymmetry of the fabric (ns).
    pub path_asymmetry_ns: u64,
}

/// The result of one experiment run.
pub struct RunResult {
    /// Measured precision series (raw sim timestamps; subtract `warmup`
    /// for paper-style runtime axes).
    pub series: PrecisionSeries,
    /// Ground-truth time error of node 0's `CLOCK_SYNCTIME` (ns, one
    /// sample per probe interval) for stability analysis.
    pub ground_truth: tsn_metrics::TimeErrorSeries,
    /// `CLOCK_SYNCTIME` minus the maintaining VM's PHC on node 0 — the
    /// dependent-clock discipline error, free of ensemble common-mode
    /// wander.
    pub discipline_error: tsn_metrics::TimeErrorSeries,
    /// Annotated experiment events.
    pub events: EventLog,
    /// Derived bounds (Π, E, γ, …).
    pub bounds: BoundsReport,
    /// Aggregate counters.
    pub counters: RunCounters,
    /// Warm-up offset of the series timestamps.
    pub warmup: Nanos,
    /// Invariant violations detected by the runtime oracle; always empty
    /// unless [`World::enable_oracle`] was called before the run.
    pub violations: Vec<tsn_metrics::ViolationRecord>,
    /// Sealed execution trace; always `None` unless
    /// [`World::enable_trace`] was called before the run.
    pub trace: Option<tsn_trace::TraceReport>,
}

/// The simulation world. Construct with [`World::new`], then call
/// [`World::run`].
pub struct World {
    cfg: TestbedConfig,
    queue: EventQueue<Ev>,
    topo: Topology,
    nodes: Vec<NodeState>,
    switches: Vec<SwitchState>,
    /// Station device → (node, vm slot).
    station_map: DevMap<(usize, usize)>,
    /// Switch device → switch index.
    switch_map: DevMap<usize>,
    egress: PortTable<(EthernetFrame, TxCtx)>,
    /// Per-port link lookup, resolved once at construction: the link id,
    /// the receiving port, whether transmission runs a→b, and the
    /// one-way delay model. Indexed like [`PortTable`]; `None` for
    /// unwired ports. (The topology is immutable after `World::new`.)
    port_links: Vec<Option<(LinkId, PortAddr, bool, DelayModel)>>,
    /// Flat-index stride for `egress`/`port_links` (max wired port + 1).
    port_stride: usize,
    /// Wired port numbers per device, ascending — the cached result of
    /// [`Topology::wired_ports`], which Announce flooding needs on
    /// every switch hop.
    device_ports: Vec<Vec<u8>>,
    trace: Option<FrameTrace>,
    schedule: Vec<FaultEvent>,
    transient: TransientFaults<StdRng>,
    frame_rng: StdRng,
    /// Link-fault runtime state (always present; a no-op plan draws no
    /// randomness and drops nothing).
    link_faults: LinkFaults,
    /// Dedicated RNG stream for the probabilistic loss models, drawn
    /// only strictly after the warm-up so the warm prefix stays shared.
    linkfault_rng: StdRng,
    /// Resolved link-down windows `(link, from, until)` relative to the
    /// warm-up end: the plan's own windows plus the partition expansion.
    down_windows: Vec<(LinkId, Nanos, Nanos)>,
    /// Mesh port map: `mesh_port[a][b]` is switch `a`'s port toward
    /// switch `b` (election rerooting rebuilds relay trees from it).
    mesh_port: Vec<Vec<Option<u8>>>,
    /// Current relay-tree root of each domain (initially the static
    /// assignment `domain d → node d`; changed by election handoffs).
    domain_roots: Vec<usize>,
    /// The scheduled GM kill once it fired: `(kill time, killed node)` —
    /// the re-election stopwatch for `reconvergence_ns`.
    gm_kill: Option<(SimTime, u8)>,
    /// Multi-hop switch fabric between the integrated switches; `None`
    /// keeps the paper's direct mesh (and is byte-identical to a build
    /// without the fabric subsystem).
    fabric: Option<Fabric>,
    probes: HashMap<u64, Vec<ClockTime>>,
    probe_sent_at: HashMap<u64, SimTime>,
    /// Ground-truth time error of node 0's CLOCK_SYNCTIME (ns), sampled
    /// once per probe — input to the stability analysis (ADEV/MTIE).
    ground_truth_ns: Vec<f64>,
    /// CLOCK_SYNCTIME minus the active VM's PHC on node 0 (ns): the
    /// dependent-clock *discipline* error, free of the ensemble's
    /// common-mode wander.
    discipline_error_ns: Vec<f64>,
    series: PrecisionSeries,
    events: EventLog,
    counters: RunCounters,
    end: SimTime,
    /// Runtime invariant oracle, off by default (see
    /// [`World::enable_oracle`]). Strictly passive and deliberately
    /// excluded from [`SnapState`] so enabling it cannot perturb state
    /// hashes, snapshots, or artifacts.
    oracle: Option<OracleRegistry>,
    /// Structured execution tracer, off by default (see
    /// [`World::enable_trace`]). Passive like the oracle and likewise
    /// excluded from [`SnapState`]. Distinct from `trace` above, which
    /// is the in-band gPTP frame capture.
    tracer: Option<TraceSink>,
}

impl World {
    /// Builds the testbed from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`TestbedConfig::validate`]).
    // Parallel index-addressed structures (stations per node/slot, mesh
    // ports per switch pair) read more clearly with explicit indices.
    #[allow(clippy::needless_range_loop)]
    pub fn new(cfg: TestbedConfig) -> Self {
        cfg.validate();
        let seeds = SeedSplitter::new(cfg.seed);
        let n = cfg.nodes;
        let mut topo = Topology::new();
        let mut link_rng = seeds.rng("links");

        // Devices: stations (VM NICs) then bridges (switches).
        let vpn = cfg.vms_per_node;
        let mut station_ids = vec![Vec::new(); n];
        for node in 0..n {
            for slot in 0..vpn {
                station_ids[node].push(topo.add_station(&format!("c{}_{}", node + 1, slot + 1)));
            }
        }
        let switch_ids: Vec<DeviceId> = (0..n)
            .map(|x| topo.add_bridge(&format!("sw{}", x + 1)))
            .collect();

        let draw_delay = |rng: &mut StdRng| -> DelayModel {
            let lo = cfg.link_base_min.as_nanos();
            let hi = cfg.link_base_max.as_nanos().max(lo + 1);
            DelayModel {
                base: Nanos::from_nanos(rng.gen_range(lo..hi)),
                jitter_max: cfg.link_jitter,
            }
        };

        // Node-internal links: VM NIC ↔ switch ports 0/1.
        for node in 0..n {
            for slot in 0..vpn {
                // Cables are symmetric: one static latency per link.
                let d = draw_delay(&mut link_rng);
                topo.connect(
                    topo.port(station_ids[node][slot], 0),
                    topo.port(switch_ids[node], slot as u8),
                    d,
                    d,
                );
            }
        }
        // Full mesh between switches, ports 2+.
        let mut next_port = vec![vpn as u8; n];
        let mut mesh_port = vec![vec![None; n]; n];
        for a in 0..n {
            for b in (a + 1)..n {
                let pa = next_port[a];
                let pb = next_port[b];
                next_port[a] += 1;
                next_port[b] += 1;
                mesh_port[a][b] = Some(pa);
                mesh_port[b][a] = Some(pb);
                let d = draw_delay(&mut link_rng);
                topo.connect(
                    topo.port(switch_ids[a], pa),
                    topo.port(switch_ids[b], pb),
                    d,
                    d,
                );
            }
        }

        // Nodes: host clock + 2 clock-sync VMs each.
        let mut station_map = DevMap::new();
        let mut nodes = Vec::with_capacity(n);
        for node in 0..n {
            let mut osc_rng = seeds.rng(&format!("osc/host{node}"));
            let host_osc = Oscillator::new(cfg.oscillator, &mut osc_rng);
            let host_phc = Phc::new(
                ClockTime::from_nanos(1_000_000_000),
                host_osc.deviation_ppb(),
            );
            let mut vms = Vec::with_capacity(vpn);
            for slot in 0..vpn {
                let dev = station_ids[node][slot];
                station_map.insert(dev, (node, slot));
                let mut rng = seeds.rng(&format!("osc/nic{node}_{slot}"));
                let osc = Oscillator::new(cfg.oscillator, &mut rng);
                let epoch_jitter = rng.gen_range(
                    -cfg.initial_offset_max.as_nanos()..=cfg.initial_offset_max.as_nanos(),
                );
                let phc = Phc::new(
                    ClockTime::from_nanos(1_000_000_000) + Nanos::from_nanos(epoch_jitter),
                    osc.deviation_ppb(),
                );
                let mut nic = Nic::new(MacAddr::for_nic(dev.0 as u32), phc);
                nic.ts_jitter = cfg.ts_jitter;
                let identity = ClockIdentity::for_index(dev.0 as u32);
                let port_id = PortIdentity::new(identity, 1);
                let master = (slot == 0).then(|| {
                    SyncMaster::new(node as u8, port_id, log2_interval(cfg.sync_interval))
                });
                let election = (slot == 0)
                    .then_some(cfg.election.as_ref())
                    .flatten()
                    .map(|el| {
                        let ids = (0..n)
                            .map(|x| ClockIdentity::for_index(station_ids[x][0].0 as u32))
                            .collect();
                        NodeElection::new(node, ids, el)
                    });
                vms.push(VmState {
                    nic_device: dev,
                    nic,
                    osc,
                    running: true,
                    compromised: false,
                    strike_idx: None,
                    master,
                    gm_active: false,
                    slaves: (0..n as u8).map(SyncSlave::new).collect(),
                    aggregator: {
                        let mut agg = MultiDomainAggregator::new(cfg.aggregation, cfg.servo);
                        agg.set_self_domain((slot == 0).then_some(node));
                        agg
                    },
                    pd: LinkDelayService::new(port_id),
                    phc2sys: Phc2Sys::new(),
                    sync_servo: SyncTimeServo::new(
                        tsn_time::ServoConfig::default(),
                        cfg.phc2sys_interval,
                    ),
                    election,
                    acquired: BTreeMap::new(),
                });
            }
            let voting = (cfg.monitor_mode == HypMonitorMode::Voting).then(|| {
                VotingMonitor::new(vpn, Nanos::from_micros(10), cfg.monitor.freshness_timeout)
            });
            nodes.push(NodeState {
                host_phc,
                host_osc,
                vms,
                voting,
                device: DependentClockDevice::new(
                    VmId(0),
                    (1..vpn).map(VmId).collect(),
                    cfg.monitor,
                ),
            });
        }

        // Switches: fabric + per-domain relays + per-port pdelay.
        let mut switch_map = DevMap::new();
        let mut switches = Vec::with_capacity(n);
        let mut res_rng = seeds.rng("residence");
        for x in 0..n {
            let dev = switch_ids[x];
            switch_map.insert(dev, x);
            let mut rng = seeds.rng(&format!("osc/sw{x}"));
            let osc = Oscillator::new(cfg.oscillator, &mut rng);
            let epoch = rng.gen_range(-1_000_000i64..=1_000_000);
            let phc = Phc::new(
                ClockTime::from_nanos(1_000_000_000) + Nanos::from_nanos(epoch),
                osc.deviation_ppb(),
            );
            let res_lo = cfg.residence_min.as_nanos();
            let res_hi = cfg.residence_max.as_nanos().max(res_lo + 1);
            let residence = DelayModel {
                base: Nanos::from_nanos(res_rng.gen_range(res_lo..res_hi)),
                jitter_max: cfg.residence_jitter,
            };
            let mut fabric = Switch::new(&format!("sw{}", x + 1), residence);
            // Measurement VLAN: spanning tree rooted at the measurement
            // node's switch (static FDB → known probe paths).
            let m = cfg.measurement_node;
            if x == m {
                for y in 0..n {
                    if y != x {
                        let p = PortNo(mesh_port[x][y].expect("mesh port"));
                        fabric.fdb.add_vlan_member(MEASUREMENT_VID, p);
                    }
                }
                // Ingress from the measurement VM (port 1).
                fabric.fdb.add_vlan_member(MEASUREMENT_VID, PortNo(1));
                let egress: Vec<PortNo> = (0..n)
                    .filter(|&y| y != x)
                    .map(|y| PortNo(mesh_port[x][y].expect("mesh port")))
                    .collect();
                fabric
                    .fdb
                    .add_static_entry(MEASUREMENT_VID, MacAddr::PTP_MULTICAST, &egress);
            } else {
                let ingress = PortNo(mesh_port[x][m].expect("mesh port"));
                fabric.fdb.add_vlan_member(MEASUREMENT_VID, ingress);
                let vm_ports: Vec<PortNo> = (0..vpn as u8).map(PortNo).collect();
                for p in &vm_ports {
                    fabric.fdb.add_vlan_member(MEASUREMENT_VID, *p);
                }
                fabric
                    .fdb
                    .add_static_entry(MEASUREMENT_VID, MacAddr::PTP_MULTICAST, &vm_ports);
            }

            // Per-domain relays: external port configuration.
            let identity = ClockIdentity::for_index(dev.0 as u32);
            let relays = (0..n)
                .map(|domain| {
                    if domain == x {
                        // Root switch of the domain: slave toward the GM
                        // VM (port 0), masters to the standby VM and all
                        // mesh ports.
                        let mut masters: Vec<u16> = (1..vpn as u16).collect();
                        for y in 0..n {
                            if y != x {
                                masters.push(u16::from(mesh_port[x][y].expect("mesh port")));
                            }
                        }
                        BridgeRelay::new(domain as u8, identity, 0, masters)
                    } else {
                        // Downstream switch: slave toward the root switch,
                        // masters to the local VMs only.
                        let slave = u16::from(mesh_port[x][domain].expect("mesh port"));
                        BridgeRelay::new(domain as u8, identity, slave, (0..vpn as u16).collect())
                    }
                })
                .collect();

            let pd = topo
                .wired_ports(dev)
                .into_iter()
                .map(|p| {
                    let pid = PortIdentity::new(identity, u16::from(p.port.0) + 1);
                    (p.port.0, LinkDelayService::new(pid))
                })
                .collect();

            switches.push(SwitchState {
                device: dev,
                phc,
                osc,
                fabric,
                relays,
                pd,
            });
        }

        let schedule = match (&cfg.explicit_faults, &cfg.fault_injection) {
            (Some(events), _) => events.clone(),
            (None, Some(fi)) => {
                let mut rng = seeds.rng("faults");
                FaultSchedule::generate(fi, &mut rng).events().to_vec()
            }
            (None, None) => Vec::new(),
        };

        // Link faults: resolve the plan's down windows plus the partition
        // (every inter-switch link incident to the partitioned node's
        // switch) into one window list the control events index into.
        let plan = cfg.link_faults.clone().unwrap_or_else(LinkFaultPlan::none);
        let mut down_windows: Vec<(LinkId, Nanos, Nanos)> = plan
            .down
            .iter()
            .map(|w| (LinkId(w.link), w.from, w.until))
            .collect();
        if let Some(p) = cfg.partition {
            let sw_dev = switch_ids[p.node];
            for (i, link) in topo.links().iter().enumerate() {
                let inter_switch = switch_map.contains_key(link.a.device)
                    && switch_map.contains_key(link.b.device);
                if inter_switch && (link.a.device == sw_dev || link.b.device == sw_dev) {
                    down_windows.push((LinkId(i), p.from, p.until));
                }
            }
        }
        let link_faults = LinkFaults::new(plan, topo.links().len());
        let linkfault_rng = seeds.rng("linkfaults");

        let transient = TransientFaults::new(cfg.transient, seeds.rng("transient"));
        let frame_rng = seeds.rng("frames");
        // Fabric streams are drawn only when the fabric is enabled, and
        // strictly after every pre-existing stream, so `fabric = None`
        // runs stay byte-identical to the pre-fabric build.
        let fabric = cfg.fabric.map(|fc| {
            let mut fabric_link_rng = seeds.rng("fabric/links");
            Fabric::new(fc, n, &mut fabric_link_rng, seeds.rng("fabric/xtraffic"))
        });
        let end = SimTime::ZERO + cfg.warmup + cfg.duration;

        let trace = (cfg.trace_capacity > 0).then(|| FrameTrace::new(cfg.trace_capacity));
        // Flat port-indexed tables for the frame hot path: one slot per
        // possible (device, port), resolved links precomputed.
        let n_devices = topo.devices().map(|d| d.0 + 1).max().unwrap_or(0);
        let port_stride = topo
            .devices()
            .flat_map(|d| topo.wired_ports(d))
            .map(|p| p.port.0 as usize + 1)
            .max()
            .unwrap_or(1);
        let mut port_links = Vec::new();
        port_links.resize_with(n_devices * port_stride, || None);
        let mut device_ports = vec![Vec::new(); n_devices];
        for dev in topo.devices() {
            for p in topo.wired_ports(dev) {
                let (id, link) = topo.link_of(p).expect("wired port has a link");
                port_links[p.device.0 * port_stride + p.port.0 as usize] =
                    Some((id, link.peer_of(p), p == link.a, *link.delay_from(p)));
                device_ports[dev.0].push(p.port.0);
            }
        }
        let mut world = World {
            queue: EventQueue::new(),
            egress: PortTable::new(n_devices, port_stride),
            port_links,
            port_stride,
            device_ports,
            trace,
            topo,
            nodes,
            switches,
            station_map,
            switch_map,
            schedule,
            transient,
            frame_rng,
            link_faults,
            linkfault_rng,
            down_windows,
            mesh_port,
            domain_roots: (0..n).collect(),
            gm_kill: None,
            fabric,
            probes: HashMap::new(),
            probe_sent_at: HashMap::new(),
            ground_truth_ns: Vec::new(),
            discipline_error_ns: Vec::new(),
            series: PrecisionSeries::new(),
            events: EventLog::new(),
            counters: RunCounters::default(),
            end,
            oracle: None,
            tracer: None,
            cfg,
        };
        world.schedule_initial();
        world
    }

    fn schedule_initial(&mut self) {
        let n = self.cfg.nodes;
        // Stagger periodic activities so same-time ties are rare.
        for node in 0..n {
            let jitter = Nanos::from_nanos((node as i64) * 1_371);
            self.queue
                .schedule_at(SimTime::from_millis(50) + jitter, Ev::GmSyncTick { node });
            self.queue
                .schedule_at(SimTime::from_millis(10) + jitter, Ev::MonitorTick { node });
            for slot in 0..self.cfg.vms_per_node {
                self.queue.schedule_at(
                    SimTime::from_millis(20) + jitter + Nanos::from_nanos(slot as i64 * 977),
                    Ev::Phc2SysTick { node, slot },
                );
            }
            if self.cfg.election.is_some() {
                self.queue
                    .schedule_at(SimTime::from_millis(60) + jitter, Ev::ElectionTick { node });
            }
        }
        // The election failover scenario's GM kill is a post-warmup
        // intervention like faults and strikes: control sequence space,
        // offset by the warm-up (and stripped from the warm prefix).
        if let Some(el) = &self.cfg.election {
            if let Some(at) = el.gm_failure_at {
                self.queue
                    .schedule_ctl_at(SimTime::ZERO + self.cfg.warmup + at, Ev::GmKill);
            }
        }
        // Pdelay on every wired port of every device.
        let mut ports: Vec<PortAddr> = Vec::new();
        for dev in self.topo.devices() {
            ports.extend(self.topo.wired_ports(dev));
        }
        for (i, port) in ports.into_iter().enumerate() {
            let offset = Nanos::from_nanos(5_000_000 + (i as i64) * 33_333_333 % 1_000_000_000);
            self.queue
                .schedule_at(SimTime::ZERO + offset, Ev::PdelayTick { port });
        }
        self.queue
            .schedule_at(SimTime::ZERO + self.cfg.wander_interval, Ev::WanderTick);
        if self.cfg.background.is_some() {
            let mut ports: Vec<PortAddr> = Vec::new();
            for dev in self.topo.devices() {
                ports.extend(self.topo.wired_ports(dev));
            }
            for (i, port) in ports.into_iter().enumerate() {
                let offset = Nanos::from_nanos(1_000_000 + (i as i64) * 13_337);
                self.queue
                    .schedule_at(SimTime::ZERO + offset, Ev::BackgroundTick { port });
            }
        }
        // Probes start after warm-up, phase-shifted to the middle of the
        // synchronization interval: the probe period is a multiple of S,
        // so an unshifted schedule would collide with the synchronized
        // Sync bursts on every hop, every probe, inflating the measured
        // precision with queuing jitter.
        self.queue.schedule_at(
            SimTime::ZERO + self.cfg.warmup + self.cfg.sync_interval / 2,
            Ev::ProbeTick { seq: 0 },
        );
        // Faults and strikes are offset by the warm-up so their paper
        // times (e.g. 00:21:42) land on the measured axis. They use the
        // control sequence space so that configurations differing only
        // in post-warmup interventions stay byte-identical through the
        // warm-up (the fork-based campaign invariant, see
        // `tsn_netsim::CTL_SEQ_BASE`).
        for (i, f) in self.schedule.iter().enumerate() {
            self.queue
                .schedule_ctl_at(f.at + self.cfg.warmup, Ev::FaultAt(i));
        }
        let strikes: Vec<_> = self.cfg.attack.strikes().to_vec();
        for (i, s) in strikes.iter().enumerate() {
            self.queue
                .schedule_ctl_at(s.at + self.cfg.warmup, Ev::StrikeAt(i));
        }
        // Link-down windows toggle through the control space too, so
        // forked continuations re-arm them alongside faults and strikes.
        let windows = self.down_windows.clone();
        for (i, (_, from, until)) in windows.into_iter().enumerate() {
            self.queue.schedule_ctl_at(
                SimTime::ZERO + self.cfg.warmup + from,
                Ev::LinkWindow { i, down: true },
            );
            self.queue.schedule_ctl_at(
                SimTime::ZERO + self.cfg.warmup + until,
                Ev::LinkWindow { i, down: false },
            );
        }
    }

    /// Enables the runtime invariant oracle (`tsn-oracle`) for this run.
    ///
    /// The standard registry checks event-queue causality,
    /// `CLOCK_SYNCTIME` monotonicity/continuity, frame conservation, FTA
    /// containment, servo clamp respect and bound-algebra consistency.
    /// The oracle is strictly passive: it draws no randomness and
    /// schedules no events, so the run — state hashes, snapshots,
    /// artifacts — is byte-identical with it on or off. Violations are
    /// returned in [`RunResult::violations`].
    pub fn enable_oracle(&mut self) {
        let f = match self.cfg.aggregation.method {
            AggregationMethod::FaultTolerantAverage { f }
            | AggregationMethod::FaultTolerantMidpoint { f } => Some(f),
            AggregationMethod::Mean | AggregationMethod::Median => None,
        };
        let step_threshold = self
            .cfg
            .servo
            .step_threshold
            .max(self.cfg.servo.first_step_threshold)
            .max(Nanos::from_micros(20));
        self.oracle = Some(OracleRegistry::standard(OracleConfig {
            warmup: SimTime::ZERO + self.cfg.warmup,
            step_threshold,
            max_frequency_ppb: self.cfg.servo.max_frequency_ppb,
            f,
            election_convergence: self
                .cfg
                .election
                .map(|el| el.convergence_bound())
                .unwrap_or(Nanos::from_millis(2_000)),
        }));
    }

    /// `true` when [`World::enable_oracle`] was called.
    pub fn oracle_enabled(&self) -> bool {
        self.oracle.is_some()
    }

    /// Enables structured execution tracing (`tsn-trace`) for this run.
    ///
    /// The tracer records queue-pop accounting, gPTP message tx/rx, FTA
    /// rounds with trim decisions, servo updates, `SyncState`
    /// transitions, fault injections and link-down windows, all stamped
    /// with simulated time. Like the oracle it is strictly passive — it
    /// draws no randomness and schedules no events, so state hashes,
    /// snapshots and artifacts stay byte-identical with it on or off.
    /// The sealed trace is returned in [`RunResult::trace`].
    pub fn enable_trace(&mut self) {
        self.tracer = Some(TraceSink::new(TraceConfig::default()));
    }

    /// [`World::enable_trace`] with an explicit bounded-sink event cap
    /// (the default is 2^20). Long fleet-scale runs overflow the
    /// default cap; raising it trades memory for completeness, and the
    /// sink's drop counter reports any truncation either way.
    pub fn enable_trace_capped(&mut self, max_events: usize) {
        self.tracer = Some(TraceSink::new(TraceConfig {
            max_events,
            ..TraceConfig::default()
        }));
    }

    /// `true` when [`World::enable_trace`] was called.
    pub fn trace_enabled(&self) -> bool {
        self.tracer.is_some()
    }

    fn observe(&mut self, obs: Observation<'_>) {
        if let Some(oracle) = self.oracle.as_mut() {
            oracle.observe(&obs);
        }
    }

    /// Runs the experiment to completion and returns the result.
    ///
    /// Events are consumed in same-timestamp batches
    /// ([`EventQueue::pop_batch`]): handling order is still exact
    /// `(time, seq)` order, because anything a handler schedules at the
    /// current timestamp draws a later sequence number and therefore
    /// lands in the *next* batch at that same time.
    pub fn run(mut self) -> RunResult {
        let mut batch = Vec::new();
        while self.queue.pop_batch(self.end, &mut batch) > 0 {
            for (t, ev) in batch.drain(..) {
                if self.oracle.is_some() {
                    self.observe(Observation::Event { at: t });
                }
                if let Some(tracer) = self.tracer.as_mut() {
                    let (kind, sub) = ev.kind();
                    tracer.pop(t, kind, sub);
                }
                self.handle(t, ev);
            }
        }
        self.finish()
    }

    fn finish(mut self) -> RunResult {
        // Gather counters.
        for node in &mut self.nodes {
            for vm in &mut node.vms {
                if let Some(m) = &vm.master {
                    self.counters.tx_timestamp_timeouts += m.tx_timestamp_timeouts;
                    self.counters.deadline_misses += m.tx_deadline_misses;
                }
                let shm = vm.aggregator.shmem();
                let shm = shm.lock();
                self.counters.aggregations += shm.aggregations;
                self.counters.no_quorum += shm.no_quorum;
            }
            self.counters.takeovers += node.device.takeovers;
            self.counters.uncovered_failures += node.device.uncovered_failures;
        }
        for port in self.egress.values() {
            self.counters.frames_queued += port.queued_frames;
        }
        let (holdover_ns, freerun_ns) = self.events.degradation_dwell(self.end);
        self.counters.holdover_ns = holdover_ns;
        self.counters.freerun_ns = freerun_ns;
        if let Some(fab) = &self.fabric {
            self.counters.fabric_frames_forwarded = fab.frames_forwarded();
            self.counters.fabric_frames_dropped = fab.frames_dropped();
            self.counters.max_residence_ns = fab.max_residence_ns();
            self.counters.path_asymmetry_ns = fab.path_asymmetry_ns();
        }
        let bounds = self.derive_bounds();
        let violations = match self.oracle.take() {
            Some(mut oracle) => {
                let residual: u64 = self.egress.values().map(|p| p.len() as u64).sum();
                oracle.observe(&Observation::RunEnd {
                    at: self.end,
                    residual_frames: residual,
                });
                if self.fabric.is_some() {
                    oracle.observe(&Observation::FabricTotals {
                        at: self.end,
                        forwarded: self.counters.fabric_frames_forwarded,
                        dropped: self.counters.fabric_frames_dropped,
                    });
                }
                oracle.observe(&Observation::Bounds {
                    at: self.end,
                    n: self.cfg.nodes,
                    f: 1,
                    r_max_ppb: self.cfg.r_max_ppb,
                    sync_interval: self.cfg.sync_interval,
                    d_min: bounds.d_min,
                    d_max: bounds.d_max,
                    reading_error: bounds.reading_error,
                    drift_offset: bounds.drift_offset,
                    pi: bounds.pi,
                });
                oracle.finish();
                oracle.take_violations()
            }
            None => Vec::new(),
        };
        let trace = self.tracer.take().map(|sink| sink.finish(self.end));
        let tau0 = self.cfg.probe_interval.as_secs_f64();
        RunResult {
            ground_truth: tsn_metrics::TimeErrorSeries::new(tau0, self.ground_truth_ns),
            discipline_error: tsn_metrics::TimeErrorSeries::new(tau0, self.discipline_error_ns),
            series: self.series,
            events: self.events,
            bounds,
            counters: self.counters,
            warmup: self.cfg.warmup,
            violations,
            trace,
        }
    }

    fn derive_bounds(&self) -> BoundsReport {
        let res_min = self.cfg.residence_min;
        let res_max = self.cfg.residence_max + self.cfg.residence_jitter;
        let stations: Vec<DeviceId> = self.topo.stations().collect();
        let mut all = Vec::new();
        for &a in &stations {
            for &b in &stations {
                if a != b {
                    if let Some(p) = self.topo.path_delay_bounds(a, b, res_min, res_max) {
                        all.push(self.widen_for_fabric(a, b, p));
                    }
                }
            }
        }
        let m = self.cfg.measurement_node;
        let sender = self.nodes[m].vms[1].nic_device;
        let mut meas = Vec::new();
        for (dev, (node, _)) in self.station_map.iter() {
            if node != m {
                if let Some(p) = self.topo.path_delay_bounds(sender, dev, res_min, res_max) {
                    meas.push(p);
                }
            }
        }
        BoundsReport::derive(
            self.cfg.nodes,
            1,
            self.cfg.r_max_ppb,
            self.cfg.sync_interval,
            &all,
            &meas,
        )
    }

    /// Widens a station-pair path-delay bound by the fabric's extra
    /// inter-switch contribution when the stations sit on different
    /// nodes. Measurement-probe paths are *not* widened: probes bypass
    /// the fabric (statically pinned, calibrated paths).
    fn widen_for_fabric(&self, a: DeviceId, b: DeviceId, p: (Nanos, Nanos)) -> (Nanos, Nanos) {
        let Some(fab) = &self.fabric else {
            return p;
        };
        let (Some((na, _)), Some((nb, _))) = (self.station_map.get(a), self.station_map.get(b))
        else {
            return p;
        };
        if na == nb {
            return p;
        }
        // Conservative protected-frame serialization (a Follow_Up with
        // its header comfortably fits 128 bytes on the wire) and one
        // concurrent protected frame per domain.
        let ser_ns = fab.config().serialization_ns(128);
        let (lo, hi) = fab.path_bounds(na, nb, ser_ns, self.cfg.nodes as i64);
        (p.0 + lo, p.1 + hi)
    }

    // ----- event dispatch --------------------------------------------

    fn handle(&mut self, t: SimTime, ev: Ev) {
        match ev {
            Ev::Transmit { from, frame, ctx } => self.on_transmit(t, from, frame, ctx),
            Ev::Arrive { to, frame } => self.on_arrive(t, to, frame),
            Ev::GmSyncTick { node } => self.on_gm_sync_tick(t, node),
            Ev::PdelayTick { port } => self.on_pdelay_tick(t, port),
            Ev::Phc2SysTick { node, slot } => self.on_phc2sys_tick(t, node, slot),
            Ev::MonitorTick { node } => self.on_monitor_tick(t, node),
            Ev::WanderTick => self.on_wander_tick(t),
            Ev::ProbeTick { seq } => self.on_probe_tick(t, seq),
            Ev::FaultAt(i) => self.on_fault(t, i),
            Ev::RebootAt(i) => self.on_reboot(t, i),
            Ev::StrikeAt(i) => self.on_strike(t, i),
            Ev::PortFree { from } => self.on_port_free(t, from),
            Ev::BackgroundTick { port } => self.on_background_tick(t, port),
            Ev::LinkWindow { i, down } => self.on_link_window(t, i, down),
            Ev::ElectionTick { node } => self.on_election_tick(t, node),
            Ev::GmKill => self.on_gm_kill(t),
        }
    }

    fn on_link_window(&mut self, t: SimTime, i: usize, down: bool) {
        let (link, _, _) = self.down_windows[i];
        if let Some(tracer) = self.tracer.as_mut() {
            if down {
                tracer.begin_span(
                    i as u64,
                    t,
                    "link_down",
                    TraceSub::Netsim,
                    SIM_PID,
                    TraceSub::Netsim.lane(),
                );
            } else {
                tracer.end_span(i as u64, t);
            }
        }
        self.link_faults.set_down(link, down);
    }

    /// 802.1Q traffic class of a frame: explicit PCP if tagged, else by
    /// ethertype (gPTP highest; background best-effort). With priority
    /// isolation disabled (ablation), everything is best-effort.
    fn priority_of(&self, frame: &EthernetFrame) -> u8 {
        if let Some(bg) = &self.cfg.background {
            if !bg.priority_isolation {
                return 0;
            }
        }
        if let Some(tag) = frame.vlan {
            return tag.pcp;
        }
        match frame.ethertype {
            ethertype::PTP => 7,
            ethertype::MEASUREMENT => 6,
            _ => 0,
        }
    }

    fn on_port_free(&mut self, t: SimTime, from: PortAddr) {
        // A same-instant transmission may have grabbed the wire already;
        // its own PortFree will drain the queue.
        let Some(port) = self.egress.get_mut(from) else {
            return;
        };
        if port.is_busy(t) {
            return;
        }
        if let Some((_, (frame, ctx))) = port.pop_ready() {
            if self.oracle.is_some() {
                self.observe(Observation::FramePopped { at: t });
            }
            self.depart(t, from, frame, ctx, true);
        }
    }

    fn on_background_tick(&mut self, t: SimTime, port: PortAddr) {
        let Some(bg) = self.cfg.background else {
            return;
        };
        // Interarrival: frame service time / load, jittered ±50 %.
        let payload = vec![0u8; bg.frame_bytes];
        let frame = EthernetFrame {
            dst: MacAddr::BROADCAST,
            src: MacAddr::for_nic(port.device.0 as u32),
            vlan: None,
            ethertype: ethertype::BACKGROUND,
            payload: bytes::Bytes::from(payload),
        };
        let service = frame.serialization_ns(1_000_000_000).as_nanos() as f64;
        let mean_gap = (service / bg.load.clamp(0.01, 0.95)).max(1.0);
        let gap = mean_gap * self.frame_rng.gen_range(0.5..1.5);
        self.queue.schedule_at(
            t + Nanos::from_nanos(gap as i64),
            Ev::BackgroundTick { port },
        );
        self.on_transmit(t, port, frame, TxCtx::None);
    }

    // ----- transmission ----------------------------------------------

    /// Queues a general (not launch-timed) transmission after a small
    /// driver latency.
    fn send_general(&mut self, t: SimTime, from: PortAddr, frame: EthernetFrame, ctx: TxCtx) {
        let latency = Nanos::from_nanos(self.frame_rng.gen_range(1_000..20_000));
        self.queue
            .schedule_at(t + latency, Ev::Transmit { from, frame, ctx });
    }

    fn ptp_frame(src: MacAddr, payload: bytes::Bytes) -> EthernetFrame {
        EthernetFrame {
            dst: MacAddr::GPTP_MULTICAST,
            src,
            vlan: None,
            ethertype: ethertype::PTP,
            payload,
        }
    }

    fn on_transmit(&mut self, t: SimTime, from: PortAddr, frame: EthernetFrame, ctx: TxCtx) {
        // Strict-priority egress queuing: if the port is serializing
        // another frame — or higher/earlier frames are already queued —
        // join the queue rather than jumping it.
        let prio = self.priority_of(&frame);
        let (busy, backlog) = self
            .egress
            .get(from)
            .map(|p| (p.is_busy(t), !p.is_empty()))
            .unwrap_or((false, false));
        if busy || backlog {
            self.egress.materialize(from).enqueue(prio, (frame, ctx));
            if self.oracle.is_some() {
                self.observe(Observation::FrameEnqueued { at: t });
            }
            if !busy {
                // Port idle with a backlog (possible when a departure was
                // dropped): drain it now in priority order.
                self.on_port_free(t, from);
            }
            return;
        }
        self.depart(t, from, frame, ctx, false);
    }

    fn depart(
        &mut self,
        t: SimTime,
        from: PortAddr,
        frame: EthernetFrame,
        ctx: TxCtx,
        queued: bool,
    ) {
        // A VM that died between queuing and departure transmits nothing;
        // drain whatever else is queued on the port.
        if let Some((node, slot)) = self.station_map.get(from.device) {
            if !self.nodes[node].vms[slot].running {
                if self.oracle.is_some() {
                    self.observe(Observation::FrameDropped {
                        at: t,
                        from_queue: queued,
                    });
                }
                self.on_port_free(t, from);
                return;
            }
        }
        if self.oracle.is_some() {
            self.observe(Observation::FrameDelivered {
                at: t,
                from_queue: queued,
            });
        }
        self.trace_frame(t, from, TraceDir::Tx, &frame);
        self.trace_frame_event(t, from.device, true, &frame);
        // Occupy the wire for the frame's serialization time.
        let duration = frame.serialization_ns(1_000_000_000);
        self.egress
            .materialize(from)
            .begin_transmission(t, duration);
        self.queue.schedule_at(t + duration, Ev::PortFree { from });

        // Departure timestamp with the sender's clock, then ctx actions.
        match ctx {
            TxCtx::None => {}
            TxCtx::GmSync { node, domain, seq } => {
                let timed_out = self.transient.tx_timestamp_times_out();
                let home = domain as usize == node;
                let vm = &mut self.nodes[node].vms[0];
                if timed_out {
                    let m = if home {
                        vm.master.as_mut()
                    } else {
                        vm.acquired.get_mut(&domain)
                    };
                    if let Some(m) = m {
                        m.sync_tx_failed(seq);
                    }
                    self.log(
                        t,
                        ExperimentEvent::Transient {
                            node,
                            kind: TransientKind::TxTimestampTimeout,
                        },
                    );
                } else {
                    let tx_ts = {
                        let mut rng = self.frame_rng.clone();
                        let ts = vm.nic.tx_timestamp(t, &mut rng);
                        self.frame_rng = rng;
                        ts
                    };
                    let m = if home {
                        vm.master.as_mut()
                    } else {
                        vm.acquired.get_mut(&domain)
                    };
                    let fu = m.and_then(|m| m.sync_sent(seq, tx_ts));
                    if let Some(fu) = fu {
                        let fu_frame = Self::ptp_frame(self.nodes[node].vms[0].nic.mac, fu);
                        self.send_general(t, from, fu_frame, TxCtx::None);
                    }
                }
            }
            TxCtx::BridgeSync { sw, domain, seq } => {
                let tx_ts = {
                    let mut rng = self.frame_rng.clone();
                    let s = &mut self.switches[sw];
                    let ts = s.phc.now(t)
                        + tsn_time::sample_timestamp_error(&self.cfg.ts_jitter, &mut rng);
                    self.frame_rng = rng;
                    ts
                };
                let emissions = self.switches[sw].relays[domain as usize].sync_forwarded(
                    seq,
                    u16::from(from.port.0),
                    tx_ts,
                );
                let src = MacAddr::for_nic(self.switches[sw].device.0 as u32);
                for (port, bytes) in emissions {
                    let fu_frame = Self::ptp_frame(src, bytes);
                    let out = PortAddr::new(self.switches[sw].device, port as u8);
                    self.send_general(t, out, fu_frame, TxCtx::None);
                }
            }
            TxCtx::PdelayReq { dev, seq } => {
                let t1 = self.event_timestamp(t, dev);
                if let Some(t1) = t1 {
                    if let Some((node, slot)) = self.station_map.get(dev) {
                        self.nodes[node].vms[slot].pd.request_sent(seq, t1);
                    } else if let Some(sw) = self.switch_map.get(dev) {
                        if let Some(svc) = self.switches[sw].pd.get_mut(&from.port.0) {
                            svc.request_sent(seq, t1);
                        }
                    }
                }
            }
            TxCtx::PdelayResp {
                dev,
                seq,
                requesting,
            } => {
                let t3 = self.event_timestamp(t, dev);
                if let Some(t3) = t3 {
                    let fu = if let Some((node, slot)) = self.station_map.get(dev) {
                        Some(
                            self.nodes[node].vms[slot]
                                .pd
                                .make_resp_follow_up(seq, requesting, t3),
                        )
                    } else if let Some(sw) = self.switch_map.get(dev) {
                        self.switches[sw]
                            .pd
                            .get(&from.port.0)
                            .map(|svc| svc.make_resp_follow_up(seq, requesting, t3))
                    } else {
                        None
                    };
                    if let Some(fu) = fu {
                        let src = frame.src;
                        let fu_frame = Self::ptp_frame(src, fu);
                        self.send_general(t, from, fu_frame, TxCtx::None);
                    }
                }
            }
        }
        // Cross the link (resolved at construction; see `port_links`).
        let Some((link_id, to, toward_b, delay_model)) =
            self.port_links[from.device.0 * self.port_stride + from.port.0 as usize]
        else {
            return;
        };
        // Link-fault surface (loss, down windows, asymmetry) acts
        // strictly after the warm-up: the shared warm prefix must not
        // observe it, and the loss models must not draw from their RNG
        // stream before the fork boundary.
        let faults_active = t >= SimTime::ZERO + self.cfg.warmup;
        if faults_active && self.link_faults.is_down(link_id) {
            return;
        }
        // Hardware timestamps reference the start-of-frame delimiter on
        // both ends (IEEE 1588 clause 7.3.4), so serialization time does
        // not enter the timestamped path delay; it is absorbed into the
        // link's base latency model.
        let mut delay = delay_model.sample(&mut self.frame_rng);
        if faults_active {
            if self.link_faults.drops(link_id, &mut self.linkfault_rng) {
                return;
            }
            delay += self.link_faults.extra_delay(link_id, toward_b);
        }
        // Multi-hop fabric: a PTP frame crossing the inter-switch mesh
        // traverses the expanded hop chain analytically (computed here,
        // no extra events). Measurement probes bypass it — the paper
        // pins probe paths with static FDB entries and calibrates their
        // static delay — and background frames are subsumed by the
        // fabric's own analytic cross-traffic model.
        let mut frame = frame;
        if frame.ethertype == ethertype::PTP && self.fabric.is_some() {
            if let (Some(sw_from), Some(sw_to)) = (
                self.switch_map.get(from.device),
                self.switch_map.get(to.device),
            ) {
                if sw_from != sw_to {
                    match self.fabric_cross(t, sw_from, sw_to, &mut frame) {
                        Some(extra) => delay += extra,
                        // Dropped at a saturated fabric hop.
                        None => return,
                    }
                }
            }
        }
        self.queue.schedule_at(t + delay, Ev::Arrive { to, frame });
    }

    /// Carries one inter-switch PTP frame across the multi-hop fabric:
    /// returns the extra one-way delay, or `None` when the frame was
    /// dropped at a saturated hop. Maintains the transparent-clock
    /// correction bookkeeping: a Sync's measured residence is recorded
    /// at traversal and patched into the matching Follow_Up's
    /// correction field when it crosses the same mesh segment.
    fn fabric_cross(
        &mut self,
        t: SimTime,
        sw_from: usize,
        sw_to: usize,
        frame: &mut EthernetFrame,
    ) -> Option<Nanos> {
        let kind = MessageType::peek(&frame.payload);
        let class = match kind {
            Some(MessageType::Sync) => FrameClass::Sync,
            Some(MessageType::PdelayReq) | Some(MessageType::PdelayResp) => FrameClass::Pdelay,
            _ => FrameClass::General,
        };
        let fab = self.fabric.as_mut().expect("fabric checked by caller");
        let ser_ns = fab.config().serialization_ns(frame.wire_len());
        let transparent = fab.config().transparent_clock;
        let tr = fab.traverse(t, sw_from, sw_to, ser_ns, class);
        if tr.dropped {
            if let Some(tracer) = &mut self.tracer {
                tracer
                    .instant(
                        t,
                        "fabric_drop",
                        TraceSub::Fabric,
                        SIM_PID,
                        TraceSub::Fabric.lane(),
                    )
                    .arg_u64("from_sw", sw_from as u64)
                    .arg_u64("to_sw", sw_to as u64);
            }
            if self.oracle.is_some() {
                self.observe(Observation::FabricCrossing {
                    at: t,
                    dropped: true,
                });
            }
            return None;
        }
        if transparent {
            let domain = frame.payload.get(4).copied().unwrap_or(0);
            let seq = peek_sequence(&frame.payload);
            let fab = self.fabric.as_mut().expect("fabric present");
            match kind {
                Some(MessageType::Sync) => {
                    fab.record_pending(sw_from, sw_to, domain, seq, tr.residence_ns);
                }
                Some(MessageType::FollowUp) => {
                    if let Some(res) = fab.take_pending(sw_from, sw_to, domain, seq) {
                        add_correction(frame, res);
                    }
                }
                _ => {}
            }
        }
        if class == FrameClass::Sync {
            if let Some(tracer) = &mut self.tracer {
                tracer
                    .instant(
                        t,
                        "fabric_sync",
                        TraceSub::Fabric,
                        SIM_PID,
                        TraceSub::Fabric.lane(),
                    )
                    .arg_u64("from_sw", sw_from as u64)
                    .arg_u64("to_sw", sw_to as u64)
                    .arg_i64("delay_ns", tr.delay.as_nanos())
                    .arg_i64("residence_ns", tr.residence_ns);
            }
        }
        if self.oracle.is_some() {
            self.observe(Observation::FabricCrossing {
                at: t,
                dropped: false,
            });
        }
        Some(tr.delay)
    }

    /// Hardware event timestamp at a device's clock (station NIC or
    /// switch PHC); `None` if the owning VM is down.
    fn event_timestamp(&mut self, t: SimTime, dev: DeviceId) -> Option<ClockTime> {
        let mut rng = self.frame_rng.clone();
        let ts = if let Some((node, slot)) = self.station_map.get(dev) {
            let vm = &mut self.nodes[node].vms[slot];
            if !vm.running {
                self.frame_rng = rng;
                return None;
            }
            Some(vm.nic.rx_timestamp(t, &mut rng))
        } else if let Some(sw) = self.switch_map.get(dev) {
            let s = &mut self.switches[sw];
            Some(s.phc.now(t) + tsn_time::sample_timestamp_error(&self.cfg.ts_jitter, &mut rng))
        } else {
            None
        };
        self.frame_rng = rng;
        ts
    }

    // ----- reception ---------------------------------------------------

    fn on_arrive(&mut self, t: SimTime, to: PortAddr, frame: EthernetFrame) {
        self.trace_frame(t, to, TraceDir::Rx, &frame);
        self.trace_frame_event(t, to.device, false, &frame);
        if let Some((node, slot)) = self.station_map.get(to.device) {
            self.arrive_at_station(t, node, slot, frame);
        } else if let Some(sw) = self.switch_map.get(to.device) {
            self.arrive_at_switch(t, sw, to.port.0, frame);
        }
    }

    fn arrive_at_station(&mut self, t: SimTime, node: usize, slot: usize, frame: EthernetFrame) {
        if !self.nodes[node].vms[slot].running {
            return;
        }
        match frame.ethertype {
            ethertype::PTP => {
                let Ok(msg) = Message::decode(&frame.payload) else {
                    return;
                };
                self.station_ptp(t, node, slot, msg);
            }
            // Probe: timestamp with the node's CLOCK_SYNCTIME.
            ethertype::MEASUREMENT if frame.payload.len() >= 8 => {
                let seq = u64::from_be_bytes(frame.payload[0..8].try_into().expect("slice of 8"));
                let host_now = self.nodes[node].host_phc.now(t);
                let read_err = Nanos::from_nanos(sample_gaussian(
                    &mut self.frame_rng,
                    self.cfg.synctime_read_sigma_ns,
                ));
                let reading = self.nodes[node].device.synctime(host_now) + read_err;
                self.probes.entry(seq).or_default().push(reading);
            }
            _ => {}
        }
    }

    fn station_ptp(&mut self, t: SimTime, node: usize, slot: usize, msg: Message) {
        match &msg {
            Message::Sync { header, .. } => {
                let rx_ts = {
                    let mut rng = self.frame_rng.clone();
                    let ts = self.nodes[node].vms[slot].nic.rx_timestamp(t, &mut rng);
                    self.frame_rng = rng;
                    ts
                };
                let domain = header.domain as usize;
                if domain < self.nodes[node].vms[slot].slaves.len() {
                    self.nodes[node].vms[slot].slaves[domain].handle_sync(&msg, rx_ts);
                }
            }
            Message::FollowUp { header, .. } => {
                // Note: a compromised VM keeps aggregating benignly — the
                // paper's attacker is stealthy (its own node stays
                // synchronized; only the distributed
                // preciseOriginTimestamps are malicious), which is what
                // makes the first strike in Fig. 3a invisible to the
                // measured precision.
                let vm = &mut self.nodes[node].vms[slot];
                let domain = header.domain as usize;
                if domain >= vm.slaves.len() {
                    return;
                }
                // A domain this VM currently originates Syncs for (its
                // own as acting GM, or one acquired by election) has no
                // slave function.
                if slot == 0
                    && ((domain == node && vm.gm_active)
                        || vm.acquired.contains_key(&header.domain))
                {
                    return;
                }
                // Prior-work baseline: GM VMs do not run multi-domain
                // aggregation (clients only).
                if slot == 0 && !self.cfg.gm_mutual_sync {
                    return;
                }
                let link = vm.pd.link_state();
                let link_delay = link.mean_link_delay.unwrap_or(DEFAULT_LINK_DELAY);
                let nrr = link.neighbor_rate_ratio;
                if let Some(sample) = vm.slaves[domain].handle_follow_up(&msg, link_delay, nrr) {
                    let now_clock = vm.nic.phc.now(t);
                    let outcome = vm.aggregator.submit(
                        domain,
                        sample.offset,
                        sample.sync_rx_local,
                        sample.rate_ratio,
                        now_clock,
                    );
                    self.apply_outcome(t, node, slot, outcome);
                }
            }
            Message::PdelayReq { .. } => {
                let rx = self.event_timestamp(t, self.nodes[node].vms[slot].nic_device);
                let Some(t2) = rx else { return };
                let vm = &mut self.nodes[node].vms[slot];
                if let Some(ctx) = vm.pd.handle(&msg, t2) {
                    let dev = vm.nic_device;
                    let mac = vm.nic.mac;
                    let turnaround = Nanos::from_nanos(self.frame_rng.gen_range(50_000..300_000));
                    let resp_frame = Self::ptp_frame(mac, ctx.resp);
                    self.queue.schedule_at(
                        t + turnaround,
                        Ev::Transmit {
                            from: PortAddr::new(dev, 0),
                            frame: resp_frame,
                            ctx: TxCtx::PdelayResp {
                                dev,
                                seq: ctx.seq,
                                requesting: ctx.requesting_port,
                            },
                        },
                    );
                }
            }
            Message::PdelayResp { .. } => {
                let rx = self.event_timestamp(t, self.nodes[node].vms[slot].nic_device);
                let Some(t4) = rx else { return };
                let _ = self.nodes[node].vms[slot].pd.handle(&msg, t4);
            }
            Message::PdelayRespFollowUp { .. } => {
                let _ = self.nodes[node].vms[slot].pd.handle(&msg, ClockTime::ZERO);
            }
            Message::Announce { header, .. } => {
                if self.cfg.election.is_none() {
                    // Static external port configuration: Announce plays
                    // no role.
                    self.counters.unhandled_frames += 1;
                    return;
                }
                // Only slot-0 VMs participate in the election; standby
                // VMs drop Announce by design.
                if slot == 0 {
                    let vm = &mut self.nodes[node].vms[slot];
                    let now = vm.nic.phc.now(t);
                    if let Some(e) = vm.election.as_mut() {
                        e.on_announce(header.domain, &msg, now);
                    }
                }
            }
            // The testbed runs the gPTP profile: peer delay, no E2E
            // mechanism, no runtime interval changes.
            Message::DelayReq { .. } | Message::DelayResp { .. } | Message::Signaling { .. } => {
                self.counters.unhandled_frames += 1;
            }
        }
    }

    fn arrive_at_switch(&mut self, t: SimTime, sw: usize, port: u8, frame: EthernetFrame) {
        match frame.ethertype {
            // Background traffic only loads the egress ports it crossed.
            ethertype::BACKGROUND => {}
            ethertype::PTP => {
                if self.switch_announce_fast(t, sw, port, &frame) {
                    return;
                }
                let Ok(msg) = Message::decode(&frame.payload) else {
                    return;
                };
                self.switch_ptp(t, sw, port, msg, &frame);
            }
            _ => {
                // Fabric forwarding (measurement probes, etc.).
                let mut rng = self.frame_rng.clone();
                let out = self.switches[sw]
                    .fabric
                    .forward(PortNo(port), &frame, &mut rng);
                self.frame_rng = rng;
                for (egress, residence) in out {
                    let from = PortAddr::new(self.switches[sw].device, egress.0);
                    self.queue.schedule_at(
                        t + residence,
                        Ev::Transmit {
                            from,
                            frame: frame.clone(),
                            ctx: TxCtx::None,
                        },
                    );
                }
            }
        }
    }

    /// Switch-side Announce flood without decode + re-encode.
    ///
    /// Every Announce on the simulated wire originates from
    /// [`Message::encode`], so the forwarded frame is the input bytes
    /// with three fields patched (messageLength, stepsRemoved, the
    /// PATH_TRACE TLV length) and this switch's identity appended.
    /// Strict byte guards pin that canonical form — exact length, the
    /// zero reserved fields the encoder writes, PATH_TRACE as the sole
    /// trailing TLV; any mismatch returns `false` and the caller takes
    /// the decode path, which defines the behavior. RNG draw order is
    /// identical to the slow path (one residence sample per out port).
    ///
    /// Returns `true` if the frame was fully handled (forwarded, or
    /// dropped by PATH_TRACE loop prevention).
    fn switch_announce_fast(
        &mut self,
        t: SimTime,
        sw: usize,
        port: u8,
        frame: &EthernetFrame,
    ) -> bool {
        if self.cfg.election.is_none() {
            return false;
        }
        let b: &[u8] = &frame.payload;
        // Offsets per `tsn_gptp::msg`: 34-byte header, 30-byte Announce
        // body, then the PATH_TRACE TLV (type 0x0008, 8 bytes per id).
        if b.len() < 68 || b.len() > 0xFF00 || !(b.len() - 68).is_multiple_of(8) {
            return false;
        }
        let ids = b.len() - 68;
        let canonical = b[0] == (GPTP_MAJOR_SDO_ID << 4) | (MessageType::Announce as u8)
            && b[1] == PTP_VERSION
            && b[2..4] == (b.len() as u16).to_be_bytes()
            && b[5] == 0 // minorSdoId
            && b[16..20] == [0; 4] // messageTypeSpecific
            && b[32] == 5 // Announce control field
            && b[34..44] == [0; 10] // originTimestamp (always zero)
            && b[46] == 0 // body reserved byte
            && b[64..66] == [0x00, 0x08] // PATH_TRACE type
            && b[66..68] == (ids as u16).to_be_bytes();
        if !canonical {
            return false;
        }
        let dev = self.switches[sw].device;
        let own = ClockIdentity::for_index(dev.0 as u32);
        if b[68..].chunks_exact(8).any(|id| id == own.0) {
            // Loop prevention: already carried this Announce.
            return true;
        }
        let mut out = Vec::with_capacity(b.len() + 8);
        out.extend_from_slice(b);
        out[2..4].copy_from_slice(&((b.len() + 8) as u16).to_be_bytes());
        let steps = u16::from_be_bytes([b[61], b[62]]).saturating_add(1);
        out[61..63].copy_from_slice(&steps.to_be_bytes());
        out[66..68].copy_from_slice(&((ids + 8) as u16).to_be_bytes());
        out.extend_from_slice(&own.0);
        let bytes = bytes::Bytes::from(out);
        let residence = self.switches[sw].fabric.residence;
        let src = MacAddr::for_nic(dev.0 as u32);
        for i in 0..self.device_ports[dev.0].len() {
            let out_port = self.device_ports[dev.0][i];
            if out_port == port {
                continue;
            }
            let delay = residence.sample(&mut self.frame_rng);
            let ann_frame = Self::ptp_frame(src, bytes.clone());
            self.queue.schedule_at(
                t + delay,
                Ev::Transmit {
                    from: PortAddr::new(dev, out_port),
                    frame: ann_frame,
                    ctx: TxCtx::None,
                },
            );
        }
        true
    }

    fn switch_ptp(&mut self, t: SimTime, sw: usize, port: u8, msg: Message, frame: &EthernetFrame) {
        match &msg {
            Message::Sync { header, .. } => {
                let rx_ts = match self.event_timestamp(t, self.switches[sw].device) {
                    Some(ts) => ts,
                    None => return,
                };
                let domain = header.domain as usize;
                if domain >= self.switches[sw].relays.len() {
                    return;
                }
                let emissions =
                    self.switches[sw].relays[domain].handle_sync(&msg, u16::from(port), rx_ts);
                let residence = self.switches[sw].fabric.residence;
                let src = MacAddr::for_nic(self.switches[sw].device.0 as u32);
                let seq = header.sequence_id;
                let domain_u8 = header.domain;
                for (out_port, bytes) in emissions {
                    let delay = residence.sample(&mut self.frame_rng);
                    let sync_frame = Self::ptp_frame(src, bytes);
                    let from = PortAddr::new(self.switches[sw].device, out_port as u8);
                    self.queue.schedule_at(
                        t + delay,
                        Ev::Transmit {
                            from,
                            frame: sync_frame,
                            ctx: TxCtx::BridgeSync {
                                sw,
                                domain: domain_u8,
                                seq,
                            },
                        },
                    );
                }
            }
            Message::FollowUp { header, .. } => {
                let domain = header.domain as usize;
                if domain >= self.switches[sw].relays.len() {
                    return;
                }
                let (link_delay, nrr) = match self.switches[sw].pd.get(&port) {
                    Some(svc) => {
                        let ls = svc.link_state();
                        (
                            ls.mean_link_delay.unwrap_or(DEFAULT_LINK_DELAY),
                            ls.neighbor_rate_ratio,
                        )
                    }
                    None => (DEFAULT_LINK_DELAY, 1.0),
                };
                let emissions = self.switches[sw].relays[domain].handle_follow_up(
                    &msg,
                    u16::from(port),
                    link_delay,
                    nrr,
                );
                let src = MacAddr::for_nic(self.switches[sw].device.0 as u32);
                for (out_port, bytes) in emissions {
                    let fu_frame = Self::ptp_frame(src, bytes);
                    let from = PortAddr::new(self.switches[sw].device, out_port as u8);
                    self.send_general(t, from, fu_frame, TxCtx::None);
                }
            }
            Message::PdelayReq { .. } => {
                let rx = self.event_timestamp(t, self.switches[sw].device);
                let Some(t2) = rx else { return };
                let dev = self.switches[sw].device;
                if let Some(svc) = self.switches[sw].pd.get_mut(&port) {
                    if let Some(ctx) = svc.handle(&msg, t2) {
                        let turnaround =
                            Nanos::from_nanos(self.frame_rng.gen_range(50_000..300_000));
                        let resp_frame = Self::ptp_frame(frame.dst, ctx.resp);
                        self.queue.schedule_at(
                            t + turnaround,
                            Ev::Transmit {
                                from: PortAddr::new(dev, port),
                                frame: resp_frame,
                                ctx: TxCtx::PdelayResp {
                                    dev,
                                    seq: ctx.seq,
                                    requesting: ctx.requesting_port,
                                },
                            },
                        );
                    }
                }
            }
            Message::PdelayResp { .. } => {
                let rx = self.event_timestamp(t, self.switches[sw].device);
                let Some(t4) = rx else { return };
                if let Some(svc) = self.switches[sw].pd.get_mut(&port) {
                    let _ = svc.handle(&msg, t4);
                }
            }
            Message::PdelayRespFollowUp { .. } => {
                if let Some(svc) = self.switches[sw].pd.get_mut(&port) {
                    let _ = svc.handle(&msg, ClockTime::ZERO);
                }
            }
            Message::Announce {
                header,
                path_trace,
                body,
            } => {
                if self.cfg.election.is_none() {
                    self.counters.unhandled_frames += 1;
                    return;
                }
                // Announce floods the whole fabric (the election runs on
                // one logical port per VM); the path trace caps the
                // flood — a switch never forwards an Announce it already
                // carried (802.1AS clause 10.3.8.23 loop prevention).
                let dev = self.switches[sw].device;
                let own = ClockIdentity::for_index(dev.0 as u32);
                if path_trace.contains(&own) {
                    return;
                }
                let mut pt = path_trace.clone();
                pt.push(own);
                let mut fwd_body = *body;
                fwd_body.steps_removed = fwd_body.steps_removed.saturating_add(1);
                let fwd = Message::Announce {
                    header: *header,
                    path_trace: pt,
                    body: fwd_body,
                };
                let bytes = fwd.encode();
                let residence = self.switches[sw].fabric.residence;
                let src = MacAddr::for_nic(dev.0 as u32);
                for i in 0..self.device_ports[dev.0].len() {
                    let out_port = self.device_ports[dev.0][i];
                    if out_port == port {
                        continue;
                    }
                    let delay = residence.sample(&mut self.frame_rng);
                    let ann_frame = Self::ptp_frame(src, bytes.clone());
                    self.queue.schedule_at(
                        t + delay,
                        Ev::Transmit {
                            from: PortAddr::new(dev, out_port),
                            frame: ann_frame,
                            ctx: TxCtx::None,
                        },
                    );
                }
            }
            Message::DelayReq { .. } | Message::DelayResp { .. } | Message::Signaling { .. } => {
                self.counters.unhandled_frames += 1;
            }
        }
    }

    // ----- servo application -------------------------------------------

    fn apply_outcome(&mut self, t: SimTime, node: usize, slot: usize, outcome: SubmitOutcome) {
        if self.oracle.is_some() {
            if let SubmitOutcome::Aggregated(a) = &outcome {
                let byzantine: Vec<bool> =
                    self.nodes.iter().map(|n| n.vms[0].compromised).collect();
                self.observe(Observation::Aggregated {
                    at: t,
                    node,
                    offset: a.offset,
                    fault_tolerant: a.mode == AggregationMode::FaultTolerant,
                    used: &a.used,
                    byzantine: &byzantine,
                });
                match a.servo {
                    ServoOutput::Gathering => {}
                    ServoOutput::Step { freq_adj_ppb, .. }
                    | ServoOutput::Adjust { freq_adj_ppb } => {
                        self.observe(Observation::ServoFrequency {
                            at: t,
                            node,
                            slot,
                            freq_adj_ppb,
                        });
                    }
                }
            }
        }
        if let Some(tracer) = self.tracer.as_mut() {
            if let SubmitOutcome::Aggregated(a) = &outcome {
                let f = self.cfg.aggregation.method.trim_degree();
                let inputs: Vec<Nanos> = a.used.iter().map(|&(_, o)| o).collect();
                let trimmed = tsn_fta::trimmed_indices(&inputs, f);
                let used: Vec<String> = a
                    .used
                    .iter()
                    .map(|(d, o)| format!("{d}:{:+}", o.as_nanos()))
                    .collect();
                let trimmed: Vec<String> =
                    trimmed.iter().map(|&i| a.used[i].0.to_string()).collect();
                tracer
                    .instant(t, "fta_round", TraceSub::Fta, node_pid(node), slot as u32)
                    .arg_i64("offset_ns", a.offset.as_nanos())
                    .arg_str(
                        "mode",
                        match a.mode {
                            AggregationMode::Startup => "startup",
                            AggregationMode::FaultTolerant => "fault_tolerant",
                        },
                    )
                    .arg_str("used", used.join(","))
                    .arg_str("trimmed", trimmed.join(","))
                    .arg_str("servo", a.servo.kind_name());
                if let Some(ppb) = a.servo.freq_adj_ppb() {
                    let ev = tracer
                        .instant(t, "servo", TraceSub::Servo, node_pid(node), slot as u32)
                        .arg_f64("freq_adj_ppb", ppb);
                    if let ServoOutput::Step { delta, .. } = a.servo {
                        ev.arg_i64("step_ns", delta.as_nanos());
                    }
                }
            }
        }
        let vm = &mut self.nodes[node].vms[slot];
        if let SubmitOutcome::Aggregated(a) = outcome {
            match a.servo {
                ServoOutput::Gathering => {}
                ServoOutput::Step {
                    delta,
                    freq_adj_ppb,
                } => {
                    vm.nic.phc.step(t, delta);
                    vm.nic.phc.adj_frequency(t, freq_adj_ppb);
                }
                ServoOutput::Adjust { freq_adj_ppb } => {
                    vm.nic.phc.adj_frequency(t, freq_adj_ppb);
                }
            }
        }
        // Drain degradation-state transitions this submission produced
        // (Synchronized → Holdover → Freerun → reacquisition) into the
        // event log and the oracle.
        let transitions = self.nodes[node].vms[slot].aggregator.take_transitions();
        for (_, from, to) in transitions {
            self.counters.sync_transitions += 1;
            self.log(
                t,
                ExperimentEvent::SyncStateChange {
                    node,
                    slot,
                    from,
                    to,
                },
            );
            if self.oracle.is_some() {
                self.observe(Observation::SyncTransition {
                    at: t,
                    node,
                    slot,
                    from,
                    to,
                });
            }
        }
    }

    // ----- periodic activities -----------------------------------------

    fn on_gm_sync_tick(&mut self, t: SimTime, node: usize) {
        let s = self.cfg.sync_interval;
        let vm = &mut self.nodes[node].vms[0];
        if !vm.running {
            self.queue.schedule_at(t + s, Ev::GmSyncTick { node });
            return;
        }
        // Serve election-acquired foreign domains first, then fall into
        // the home-domain flow below.
        self.emit_acquired_syncs(t, node);
        // A home GM demoted by the election stops originating its own
        // domain's Syncs (and stops self-submitting) until re-promoted.
        let acting_home = self.nodes[node].vms[0]
            .election
            .as_ref()
            .map(|e| e.acting(node as u8))
            .unwrap_or(true);
        if !acting_home {
            self.queue.schedule_at(t + s, Ev::GmSyncTick { node });
            return;
        }
        let vm = &mut self.nodes[node].vms[0];
        // The GM's own-domain instance stores its self-offset of zero
        // each interval — this is what keeps the GM inside the
        // distributed FTA ensemble (and what bootstraps the initial
        // domain's GM through the startup protocol). Compromised VMs
        // keep doing this too (stealthy attacker).
        //
        // With `gm_mutual_sync` disabled (the prior-work baseline the
        // paper critiques), grandmasters do not aggregate at all: their
        // clocks free-run and the GM ensemble drifts apart.
        if self.cfg.gm_mutual_sync {
            let now_clock = vm.nic.phc.now(t);
            let outcome = vm.aggregator.submit_self(node, now_clock);
            self.apply_outcome(t, node, 0, outcome);
        } else {
            vm.gm_active = true;
        }
        let vm = &mut self.nodes[node].vms[0];
        // A restarted (or initial) GM only serves its domain once its own
        // clock has converged to the ensemble.
        if !vm.gm_active && !vm.compromised {
            if vm.aggregator.mode() == AggregationMode::FaultTolerant {
                vm.gm_active = true;
                if t > SimTime::ZERO + self.cfg.warmup {
                    self.log(t, ExperimentEvent::GmResumed { node });
                }
            } else {
                self.queue.schedule_at(t + s, Ev::GmSyncTick { node });
                return;
            }
        }
        // A compromised GM re-evaluates its Byzantine strategy every
        // interval: the lie it serves is a function of time since the
        // strike (ramps, oscillations, duty cycles, trim-edge hugging).
        if self.nodes[node].vms[0].compromised {
            if let Some(i) = self.nodes[node].vms[0].strike_idx {
                let strike = self.cfg.attack.strikes()[i];
                let elapsed = t - (strike.at + self.cfg.warmup);
                let offset = strike.offset_at(elapsed, self.cfg.aggregation.validity_threshold);
                if let Some(m) = &mut self.nodes[node].vms[0].master {
                    m.pot_offset = offset;
                }
                // A rogue master lies on every domain it serves,
                // including captured foreign ones.
                for m in self.nodes[node].vms[0].acquired.values_mut() {
                    m.pot_offset = offset;
                }
            }
        }
        let vm = &mut self.nodes[node].vms[0];
        // Launch on the next S boundary of the VM's own synchronized
        // clock, at least LAUNCH_LEAD ahead (paper: ETF qdisc +
        // launch-time so all domains transmit within Π of each other).
        let now_clock = vm.nic.phc.now(t);
        let launch = (now_clock + LAUNCH_LEAD).ceil_to(s);
        let (bytes, seq) = vm.master.as_mut().expect("slot 0 has master").make_sync();
        if self.transient.deadline_missed() {
            vm.master
                .as_mut()
                .expect("has master")
                .sync_deadline_missed(seq);
            self.log(
                t,
                ExperimentEvent::Transient {
                    node,
                    kind: TransientKind::DeadlineMiss,
                },
            );
            self.queue.schedule_at(t + s, Ev::GmSyncTick { node });
            return;
        }
        match self.nodes[node].vms[0].nic.launch(t, launch) {
            LaunchOutcome::DepartsAt(depart) => {
                let mac = self.nodes[node].vms[0].nic.mac;
                let dev = self.nodes[node].vms[0].nic_device;
                let frame = Self::ptp_frame(mac, bytes);
                self.queue.schedule_at(
                    depart,
                    Ev::Transmit {
                        from: PortAddr::new(dev, 0),
                        frame,
                        ctx: TxCtx::GmSync {
                            node,
                            domain: node as u8,
                            seq,
                        },
                    },
                );
                // Next tick lands LAUNCH_LEAD + margin before the next
                // boundary so the ceil above resolves to it exactly.
                self.queue.schedule_at(
                    depart + s - LAUNCH_LEAD - Nanos::from_millis(5),
                    Ev::GmSyncTick { node },
                );
            }
            LaunchOutcome::DeadlineMiss => {
                self.nodes[node].vms[0]
                    .master
                    .as_mut()
                    .expect("has master")
                    .sync_deadline_missed(seq);
                self.log(
                    t,
                    ExperimentEvent::Transient {
                        node,
                        kind: TransientKind::DeadlineMiss,
                    },
                );
                self.queue.schedule_at(t + s, Ev::GmSyncTick { node });
            }
        }
    }

    /// Originates one Sync per election-acquired foreign domain. These
    /// go out driver-timed (not launch-scheduled): an interim master is
    /// a degraded-mode stand-in, not a planned ETF emission.
    fn emit_acquired_syncs(&mut self, t: SimTime, node: usize) {
        let domains: Vec<u8> = self.nodes[node].vms[0].acquired.keys().copied().collect();
        for d in domains {
            let vm = &mut self.nodes[node].vms[0];
            let Some(m) = vm.acquired.get_mut(&d) else {
                continue;
            };
            let (bytes, seq) = m.make_sync();
            let mac = vm.nic.mac;
            let dev = vm.nic_device;
            let frame = Self::ptp_frame(mac, bytes);
            self.send_general(
                t,
                PortAddr::new(dev, 0),
                frame,
                TxCtx::GmSync {
                    node,
                    domain: d,
                    seq,
                },
            );
        }
    }

    /// One election round on `node`: expire stale Announce claims, run
    /// the BMCA decision per domain, apply the transitions, and emit
    /// this node's Announce for every domain it acts for.
    fn on_election_tick(&mut self, t: SimTime, node: usize) {
        let interval = match self.nodes[node].vms[0].election.as_ref() {
            Some(e) => e.announce_interval(),
            None => return,
        };
        self.queue
            .schedule_at(t + interval, Ev::ElectionTick { node });
        if !self.nodes[node].vms[0].running {
            return;
        }
        let now = self.nodes[node].vms[0].nic.phc.now(t);
        let events = self.nodes[node].vms[0]
            .election
            .as_mut()
            .expect("checked above")
            .step(now);
        for ev in events {
            self.apply_election_event(t, node, ev);
        }
        let acting = self.nodes[node].vms[0]
            .election
            .as_ref()
            .expect("checked above")
            .acting_domains();
        for d in acting {
            let msg = self.nodes[node].vms[0]
                .election
                .as_mut()
                .expect("checked above")
                .make_announce(d);
            let bytes = msg.encode();
            let mac = self.nodes[node].vms[0].nic.mac;
            let dev = self.nodes[node].vms[0].nic_device;
            let frame = Self::ptp_frame(mac, bytes);
            self.send_general(t, PortAddr::new(dev, 0), frame, TxCtx::None);
            self.counters.announce_tx += 1;
        }
    }

    fn apply_election_event(&mut self, t: SimTime, node: usize, ev: ElectionEvent) {
        match ev {
            ElectionEvent::Promoted { domain } => self.promote_acting(t, node, domain),
            ElectionEvent::Demoted { domain } => {
                if let Some(tracer) = self.tracer.as_mut() {
                    tracer
                        .instant(t, "demoted", TraceSub::Election, node_pid(node), 0)
                        .arg_u64("domain", u64::from(domain));
                }
                if self.oracle.is_some() {
                    self.observe(Observation::ElectionActing {
                        at: t,
                        domain: domain as usize,
                        node,
                        acting: false,
                    });
                }
                let vm = &mut self.nodes[node].vms[0];
                if domain as usize == node {
                    vm.gm_active = false;
                } else {
                    vm.acquired.remove(&domain);
                }
            }
            ElectionEvent::Elected {
                domain,
                node: winner,
                prev,
            } => {
                self.counters.elected_gm_changes += 1;
                if let Some(tracer) = self.tracer.as_mut() {
                    tracer
                        .instant(t, "elected", TraceSub::Election, node_pid(node), 0)
                        .arg_u64("domain", u64::from(domain))
                        .arg_u64("winner", winner as u64)
                        .arg_u64("prev", prev as u64);
                }
            }
        }
    }

    /// Makes `node` the acting master of `domain`: home domain → resume
    /// the static master function; foreign domain → instantiate an
    /// interim one. Reroots the domain's relay tree at the node's switch
    /// and stops the re-election stopwatch on the killed domain.
    fn promote_acting(&mut self, t: SimTime, node: usize, domain: u8) {
        if let Some(tracer) = self.tracer.as_mut() {
            tracer
                .instant(t, "promoted", TraceSub::Election, node_pid(node), 0)
                .arg_u64("domain", u64::from(domain));
        }
        if self.oracle.is_some() {
            self.observe(Observation::ElectionActing {
                at: t,
                domain: domain as usize,
                node,
                acting: true,
            });
        }
        let s = self.cfg.sync_interval;
        let vm = &mut self.nodes[node].vms[0];
        if domain as usize == node {
            vm.gm_active = true;
        } else {
            let identity = ClockIdentity::for_index(vm.nic_device.0 as u32);
            let port_id = PortIdentity::new(identity, 1);
            vm.acquired
                .entry(domain)
                .or_insert_with(|| SyncMaster::new(domain, port_id, log2_interval(s)));
        }
        if self.domain_roots[domain as usize] != node {
            self.domain_roots[domain as usize] = node;
            self.reroot_domain(domain as usize, node);
        }
        if let Some((kill_at, killed)) = self.gm_kill {
            if domain == killed && self.counters.reconvergence_ns == 0 {
                self.counters.reconvergence_ns = (t - kill_at).as_nanos() as u64;
            }
        }
    }

    /// Rebuilds every switch's relay for `domain` around the new root:
    /// the root's switch takes the Sync feed from its VM port, everyone
    /// else slaves toward the root through the mesh. In-flight partial
    /// Sync/Follow_Up sequences of the old tree are dropped (they belong
    /// to the dead master anyway).
    fn reroot_domain(&mut self, domain: usize, root: usize) {
        let vpn = self.cfg.vms_per_node;
        let n = self.cfg.nodes;
        for y in 0..n {
            let identity = ClockIdentity::for_index(self.switches[y].device.0 as u32);
            let relay = if y == root {
                let mut masters: Vec<u16> = (1..vpn as u16).collect();
                for z in 0..n {
                    if z != y {
                        masters.push(u16::from(self.mesh_port[y][z].expect("mesh port")));
                    }
                }
                BridgeRelay::new(domain as u8, identity, 0, masters)
            } else {
                let slave = u16::from(self.mesh_port[y][root].expect("mesh port"));
                BridgeRelay::new(domain as u8, identity, slave, (0..vpn as u16).collect())
            };
            self.switches[y].relays[domain] = relay;
        }
    }

    /// The scheduled grandmaster kill: permanently shuts down the
    /// configured node's GM VM (no reboot — the failover must come from
    /// re-election, not recovery).
    fn on_gm_kill(&mut self, t: SimTime) {
        let Some(el) = self.cfg.election else {
            return;
        };
        let node = el.gm_failure_node;
        let vm = &mut self.nodes[node].vms[0];
        if !vm.running {
            return;
        }
        vm.running = false;
        vm.gm_active = false;
        self.counters.vm_failures += 1;
        self.counters.gm_failures += 1;
        let acting: Vec<u8> = vm
            .election
            .as_ref()
            .map(|e| e.acting_domains())
            .unwrap_or_default();
        self.gm_kill = Some((t, node as u8));
        if self.oracle.is_some() {
            for d in acting {
                self.observe(Observation::ElectionActing {
                    at: t,
                    domain: d as usize,
                    node,
                    acting: false,
                });
                self.observe(Observation::GmKilled {
                    at: t,
                    domain: d as usize,
                });
            }
        }
        self.log(
            t,
            ExperimentEvent::VmFailure {
                node,
                grandmaster: true,
            },
        );
    }

    fn on_pdelay_tick(&mut self, t: SimTime, port: PortAddr) {
        self.queue
            .schedule_at(t + self.cfg.pdelay_interval, Ev::PdelayTick { port });
        let dev = port.device;
        let (req, mac) = if let Some((node, slot)) = self.station_map.get(dev) {
            let vm = &mut self.nodes[node].vms[slot];
            if !vm.running {
                return;
            }
            let (bytes, seq) = vm.pd.make_request();
            (Some((bytes, seq)), vm.nic.mac)
        } else if let Some(sw) = self.switch_map.get(dev) {
            let mac = MacAddr::for_nic(dev.0 as u32);
            match self.switches[sw].pd.get_mut(&port.port.0) {
                Some(svc) => {
                    let (bytes, seq) = svc.make_request();
                    (Some((bytes, seq)), mac)
                }
                None => (None, mac),
            }
        } else {
            (None, MacAddr::BROADCAST)
        };
        if let Some((bytes, seq)) = req {
            let frame = Self::ptp_frame(mac, bytes);
            self.send_general(t, port, frame, TxCtx::PdelayReq { dev, seq });
        }
    }

    fn on_phc2sys_tick(&mut self, t: SimTime, node: usize, slot: usize) {
        self.queue.schedule_at(
            t + self.cfg.phc2sys_interval,
            Ev::Phc2SysTick { node, slot },
        );
        let host_now = self.nodes[node].host_phc.now(t);
        if !self.nodes[node].vms[slot].running {
            return;
        }
        // Reading the PHC is a PCIe register access from a guest: model
        // its error as Gaussian noise with occasional latency spikes —
        // the raw material of the paper's Fig. 4 precision spikes, which
        // the feedback discipline amplifies.
        let read_error = {
            let g = sample_gaussian(&mut self.frame_rng, self.cfg.phc_read_sigma_ns);
            let spike = if self.frame_rng.gen::<f64>() < self.cfg.phc_read_spike_prob {
                let m = self.cfg.phc_read_spike_max.as_nanos();
                self.frame_rng.gen_range(-m..=m)
            } else {
                0
            };
            Nanos::from_nanos(g + spike)
        };
        let phc_now = self.nodes[node].vms[slot].nic.phc.now(t) + read_error;
        // A Byzantine dependent-clock writer shifts everything it
        // publishes (candidate and page alike).
        let corruption = match self.cfg.corrupt_publisher {
            Some(cp)
                if cp.node == node
                    && cp.slot == slot
                    && t >= SimTime::ZERO + self.cfg.warmup + cp.at =>
            {
                cp.offset
            }
            _ => Nanos::ZERO,
        };
        // In voting mode every clock-sync VM publishes a candidate
        // mapping into its private hypervisor slot.
        if self.nodes[node].voting.is_some() {
            let mut candidate = self.nodes[node].vms[slot].phc2sys.sample(host_now, phc_now);
            candidate.base_sync = candidate.base_sync + corruption;
            if let Some(v) = &mut self.nodes[node].voting {
                v.publish_candidate(VmId(slot), candidate, host_now);
            }
        }
        let mut params = match self.cfg.sync_clock_discipline {
            SyncClockDiscipline::FeedForward => {
                self.nodes[node].vms[slot].phc2sys.sample(host_now, phc_now)
            }
            SyncClockDiscipline::Feedback => {
                // Only the active maintainer runs the feedback loop (the
                // standby's servo starts fresh on takeover).
                if self.nodes[node].device.active() != VmId(slot) {
                    return;
                }
                let current = self.nodes[node].device.stshmem().params();
                self.nodes[node].vms[slot]
                    .sync_servo
                    .sample(&current, host_now, phc_now)
            }
        };
        params.base_sync = params.base_sync + corruption;
        self.nodes[node]
            .device
            .publish(VmId(slot), params, host_now);
    }

    fn on_monitor_tick(&mut self, t: SimTime, node: usize) {
        self.queue.schedule_at(
            t + self.nodes[node].device.config().period,
            Ev::MonitorTick { node },
        );
        if self.oracle.is_some() {
            // Noise-free CLOCK_SYNCTIME reading for the continuity
            // invariant (a pure function of published STSHMEM params —
            // no randomness, no state change).
            let host_now = self.nodes[node].host_phc.now(t);
            let synctime_ns = self.nodes[node].device.synctime(host_now).as_nanos();
            self.observe(Observation::Synctime {
                at: t,
                node,
                synctime_ns,
            });
        }
        let host_now = self.nodes[node].host_phc.now(t);
        let running: Vec<bool> = self.nodes[node].vms.iter().map(|vm| vm.running).collect();
        // Fail-consistent detection first: a VM voted faulty is treated
        // like a failed one even though it keeps publishing.
        let faulty: Vec<bool> = match &self.nodes[node].voting {
            Some(v) => v.vote(host_now),
            None => vec![false; self.nodes[node].vms.len()],
        };
        if faulty[self.nodes[node].device.active().0] {
            let ok = |vm: VmId| running[vm.0] && !faulty[vm.0];
            if let Some(takeover) = self.nodes[node].device.force_takeover(ok) {
                self.nodes[node].vms[takeover.to.0].sync_servo.reset();
                self.log(t, ExperimentEvent::Takeover { node });
            }
        }
        if let Some(takeover) = self.nodes[node]
            .device
            .monitor_tick(host_now, |vm| running[vm.0])
        {
            // The promoted VM's CLOCK_SYNCTIME servo starts fresh.
            self.nodes[node].vms[takeover.to.0].sync_servo.reset();
            self.log(t, ExperimentEvent::Takeover { node });
        }
    }

    fn on_wander_tick(&mut self, t: SimTime) {
        self.queue
            .schedule_at(t + self.cfg.wander_interval, Ev::WanderTick);
        let mut rng = self.frame_rng.clone();
        for node in &mut self.nodes {
            let dev = node.host_osc.step_wander(&mut rng);
            node.host_phc.set_oscillator_deviation(t, dev);
            for vm in &mut node.vms {
                let dev = vm.osc.step_wander(&mut rng);
                vm.nic.phc.set_oscillator_deviation(t, dev);
            }
        }
        for sw in &mut self.switches {
            let dev = sw.osc.step_wander(&mut rng);
            sw.phc.set_oscillator_deviation(t, dev);
        }
        self.frame_rng = rng;
    }

    fn on_probe_tick(&mut self, t: SimTime, seq: u64) {
        self.queue
            .schedule_at(t + self.cfg.probe_interval, Ev::ProbeTick { seq: seq + 1 });
        // Finalize the previous probe.
        if seq > 0 {
            self.finalize_probe(seq - 1);
        }
        let m = self.cfg.measurement_node;
        if !self.nodes[m].vms[1].running {
            return;
        }
        self.probe_sent_at.insert(seq, t);
        let host_now = self.nodes[0].host_phc.now(t);
        let sync = self.nodes[0].device.synctime(host_now).as_nanos();
        self.ground_truth_ns
            .push((sync - t.as_nanos() as i64) as f64);
        let active = self.nodes[0].device.active().0;
        let phc = self.nodes[0].vms[active].nic.phc.now(t).as_nanos();
        self.discipline_error_ns.push((sync - phc) as f64);
        let vm = &self.nodes[m].vms[1];
        let frame = EthernetFrame {
            dst: MacAddr::PTP_MULTICAST,
            src: vm.nic.mac,
            vlan: Some(VlanTag::new(6, MEASUREMENT_VID)),
            ethertype: ethertype::MEASUREMENT,
            payload: bytes::Bytes::copy_from_slice(&seq.to_be_bytes()),
        };
        let from = PortAddr::new(vm.nic_device, 0);
        self.send_general(t, from, frame, TxCtx::None);
    }

    fn finalize_probe(&mut self, seq: u64) {
        let Some(at) = self.probe_sent_at.remove(&seq) else {
            return;
        };
        let Some(readings) = self.probes.remove(&seq) else {
            return;
        };
        if let Some(value) = precision_of(&readings) {
            self.series.push(PrecisionSample {
                at,
                value,
                receivers: readings.len(),
            });
        }
    }

    // ----- faults and attacks ------------------------------------------

    fn on_fault(&mut self, t: SimTime, i: usize) {
        let f = self.schedule[i];
        let slot = match f.slot {
            VmSlot::Grandmaster => 0,
            VmSlot::Redundant => 1,
        };
        let vm = &mut self.nodes[f.node].vms[slot];
        if !vm.running {
            return; // already down (should not happen per constraints)
        }
        vm.running = false;
        vm.gm_active = false;
        let was_acting: Vec<u8> = vm
            .election
            .as_ref()
            .map(|e| e.acting_domains())
            .unwrap_or_default();
        self.counters.vm_failures += 1;
        if f.slot == VmSlot::Grandmaster {
            self.counters.gm_failures += 1;
        }
        if self.oracle.is_some() {
            for d in was_acting {
                self.observe(Observation::ElectionActing {
                    at: t,
                    domain: d as usize,
                    node: f.node,
                    acting: false,
                });
            }
        }
        self.log(
            t,
            ExperimentEvent::VmFailure {
                node: f.node,
                grandmaster: f.slot == VmSlot::Grandmaster,
            },
        );
        self.queue
            .schedule_at(f.reboot_at + self.cfg.warmup, Ev::RebootAt(i));
    }

    fn on_reboot(&mut self, t: SimTime, i: usize) {
        let f = self.schedule[i];
        let slot = match f.slot {
            VmSlot::Grandmaster => 0,
            VmSlot::Redundant => 1,
        };
        let n = self.cfg.nodes;
        let vm = &mut self.nodes[f.node].vms[slot];
        vm.running = true;
        vm.compromised = false;
        vm.strike_idx = None;
        for s in &mut vm.slaves {
            s.reset();
        }
        vm.aggregator.restart();
        vm.phc2sys.reset();
        vm.sync_servo.reset();
        let dev = vm.nic_device;
        let pid = PortIdentity::new(ClockIdentity::for_index(dev.0 as u32), 1);
        vm.pd = LinkDelayService::new(pid);
        let _ = n;
        self.log(
            t,
            ExperimentEvent::VmReboot {
                node: f.node,
                grandmaster: f.slot == VmSlot::Grandmaster,
            },
        );
    }

    fn on_strike(&mut self, t: SimTime, i: usize) {
        let strike = self.cfg.attack.strikes()[i];
        let kernel = self.cfg.kernels.kernel(strike.target_node);
        let outcome = AttackPlan::attempt(&strike, kernel);
        let succeeded = outcome == StrikeOutcome::RootObtained;
        if succeeded {
            self.counters.strikes_succeeded += 1;
            let vm = &mut self.nodes[strike.target_node].vms[0];
            vm.compromised = true;
            vm.strike_idx = Some(i);
            if let Some(m) = &mut vm.master {
                m.pot_offset =
                    strike.offset_at(Nanos::ZERO, self.cfg.aggregation.validity_threshold);
            }
            // The malicious ptp4l serves the domain unconditionally.
            vm.gm_active = true;
            // A rogue master additionally forges a best-possible BMCA
            // claim on its cyclic predecessor's domain, capturing it
            // through the election (no effect without election mode).
            if self.cfg.election.is_some()
                && matches!(strike.strategy, Some(ByzantineStrategy::RogueMaster { .. }))
            {
                let n = self.cfg.nodes;
                let domain = ((strike.target_node + n - 1) % n) as u8;
                if let Some(e) = self.nodes[strike.target_node].vms[0].election.as_mut() {
                    e.capture(domain, 0);
                    self.promote_acting(t, strike.target_node, domain);
                }
            }
        } else {
            self.counters.strikes_failed += 1;
        }
        self.log(
            t,
            ExperimentEvent::Strike {
                node: strike.target_node,
                succeeded,
            },
        );
    }

    fn log(&mut self, t: SimTime, e: ExperimentEvent) {
        if let Some(tracer) = self.tracer.as_mut() {
            match e {
                ExperimentEvent::VmFailure { node, grandmaster } => {
                    let slot = if grandmaster { 0 } else { 1 };
                    tracer.instant(t, "vm_failure", TraceSub::Faults, node_pid(node), slot);
                }
                ExperimentEvent::VmReboot { node, grandmaster } => {
                    let slot = if grandmaster { 0 } else { 1 };
                    tracer.instant(t, "vm_reboot", TraceSub::Faults, node_pid(node), slot);
                }
                ExperimentEvent::Takeover { node } => {
                    tracer.instant(t, "takeover", TraceSub::Hyp, node_pid(node), 0);
                }
                ExperimentEvent::Transient { node, kind } => {
                    tracer
                        .instant(t, "transient", TraceSub::Faults, node_pid(node), 0)
                        .arg_str(
                            "kind",
                            match kind {
                                TransientKind::TxTimestampTimeout => "tx_timestamp_timeout",
                                TransientKind::DeadlineMiss => "deadline_miss",
                            },
                        );
                }
                ExperimentEvent::Strike { node, succeeded } => {
                    tracer
                        .instant(t, "strike", TraceSub::Faults, node_pid(node), 0)
                        .arg_bool("succeeded", succeeded);
                }
                ExperimentEvent::GmResumed { node } => {
                    tracer.instant(t, "gm_resumed", TraceSub::Gptp, node_pid(node), 0);
                }
                ExperimentEvent::SyncStateChange {
                    node,
                    slot,
                    from,
                    to,
                } => {
                    tracer
                        .instant(t, "sync_state", TraceSub::Hyp, node_pid(node), slot as u32)
                        .arg_str("from", from.name())
                        .arg_str("to", to.name());
                }
            }
        }
        self.events.record(t, e);
    }

    /// Mirrors a gPTP or measurement frame tx/rx into the structured
    /// tracer as an instant on the owning station's (or the fabric's)
    /// lane. Classification peeks the wire bytes allocation-free.
    fn trace_frame_event(&mut self, t: SimTime, dev: DeviceId, tx: bool, frame: &EthernetFrame) {
        if self.tracer.is_none() {
            return;
        }
        let (pid, tid) = match self.station_map.get(dev) {
            Some((node, slot)) => (node_pid(node), slot as u32),
            None => (SIM_PID, TraceSub::Gptp.lane()),
        };
        match frame.ethertype {
            ethertype::PTP => {
                let Some(mt) = MessageType::peek(&frame.payload) else {
                    return;
                };
                let domain = frame.payload.get(4).copied().unwrap_or(0);
                let Some(tracer) = self.tracer.as_mut() else {
                    return;
                };
                tracer
                    .instant(
                        t,
                        if tx { "ptp_tx" } else { "ptp_rx" },
                        TraceSub::Gptp,
                        pid,
                        tid,
                    )
                    .arg_str("type", mt.name())
                    .arg_u64("domain", u64::from(domain));
            }
            ethertype::MEASUREMENT => {
                let Some(tracer) = self.tracer.as_mut() else {
                    return;
                };
                tracer.instant(
                    t,
                    if tx { "probe_tx" } else { "probe_rx" },
                    TraceSub::Measure,
                    pid,
                    tid,
                );
            }
            _ => {}
        }
    }

    fn trace_frame(&mut self, t: SimTime, port: PortAddr, dir: TraceDir, frame: &EthernetFrame) {
        let Some(trace) = &mut self.trace else {
            return;
        };
        if frame.ethertype != ethertype::PTP {
            return;
        }
        let summary = match Message::decode(&frame.payload) {
            Ok(msg) => msg.to_string(),
            Err(e) => format!("undecodable: {e}"),
        };
        trace.record(t, port, dir, summary);
    }

    /// The captured frame trace, if `trace_capacity > 0` was configured.
    pub fn frame_trace(&self) -> Option<&FrameTrace> {
        self.trace.as_ref()
    }

    // ----- introspection (tests, examples) ------------------------------

    /// Ground truth: the spread of the clock-sync VMs' PHCs at true time
    /// `t` (running VMs only). Not available to any simulated component.
    /// Per-VM diagnostic snapshot: `(node, slot, true offset of the NIC
    /// PHC, servo frequency adjustment ppb, aggregation mode,
    /// aggregation count, no-quorum count, running)`.
    #[allow(clippy::type_complexity)]
    pub fn vm_diagnostics(
        &mut self,
        t: SimTime,
    ) -> Vec<(usize, usize, Nanos, f64, AggregationMode, u64, u64, bool)> {
        let mut out = Vec::new();
        for (n, node) in self.nodes.iter_mut().enumerate() {
            for (s, vm) in node.vms.iter_mut().enumerate() {
                let off = vm.nic.phc.true_offset(t);
                let shm = vm.aggregator.shmem();
                let shm = shm.lock();
                out.push((
                    n,
                    s,
                    off,
                    vm.nic.phc.freq_adj_ppb(),
                    vm.aggregator.mode(),
                    shm.aggregations,
                    shm.no_quorum,
                    vm.running,
                ));
            }
        }
        out
    }

    /// Nodes currently acting as grandmaster for `domain` (running
    /// clock-sync VMs only). With the election disabled this is the
    /// static home assignment; with it enabled, whatever BMCA decided.
    pub fn acting_masters(&self, domain: u8) -> Vec<usize> {
        let mut out = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            let vm = &node.vms[0];
            if !vm.running {
                continue;
            }
            let acting = match &vm.election {
                Some(e) => e.acting(domain),
                None => i == domain as usize && vm.gm_active,
            };
            if acting {
                out.push(i);
            }
        }
        out
    }

    /// Ground truth: the spread of the clock-sync VMs' PHCs at true time
    /// `t` (running VMs only). Not available to any simulated component.
    pub fn phc_spread(&mut self, t: SimTime) -> Nanos {
        let mut readings = Vec::new();
        for node in &mut self.nodes {
            for vm in &mut node.vms {
                if vm.running {
                    readings.push(vm.nic.phc.now(t));
                }
            }
        }
        let min = readings.iter().min().copied().unwrap_or(ClockTime::ZERO);
        let max = readings.iter().max().copied().unwrap_or(ClockTime::ZERO);
        max - min
    }

    /// Diagnostic: mean aggregated offset (ns) of one VM's FTSHMEM.
    pub fn offset_bias(&self, node: usize, slot: usize) -> f64 {
        let shm = self.nodes[node].vms[slot].aggregator.shmem();
        let shm = shm.lock();
        if shm.aggregations == 0 {
            0.0
        } else {
            shm.offset_sum_ns as f64 / shm.aggregations as f64
        }
    }

    /// Ground truth: spread of the grandmaster VMs' PHCs at true time
    /// `t` — the quantity whose boundedness separates the paper's design
    /// from the prior-work baseline.
    pub fn gm_spread(&mut self, t: SimTime) -> Nanos {
        let mut readings = Vec::new();
        for node in &mut self.nodes {
            if node.vms[0].running {
                readings.push(node.vms[0].nic.phc.now(t));
            }
        }
        let min = readings.iter().min().copied().unwrap_or(ClockTime::ZERO);
        let max = readings.iter().max().copied().unwrap_or(ClockTime::ZERO);
        max - min
    }

    /// Ground truth: each node's `CLOCK_SYNCTIME` minus true time at `t`.
    pub fn synctime_offsets(&mut self, t: SimTime) -> Vec<Nanos> {
        self.nodes
            .iter_mut()
            .map(|node| {
                let host_now = node.host_phc.now(t);
                Nanos::from_nanos(node.device.synctime(host_now).as_nanos() - t.as_nanos() as i64)
            })
            .collect()
    }

    /// Ground truth: the spread of the nodes' `CLOCK_SYNCTIME` readings
    /// at true time `t`.
    pub fn synctime_spread(&mut self, t: SimTime) -> Nanos {
        let mut readings = Vec::new();
        for node in &mut self.nodes {
            let host_now = node.host_phc.now(t);
            readings.push(node.device.synctime(host_now));
        }
        let min = readings.iter().min().copied().unwrap_or(ClockTime::ZERO);
        let max = readings.iter().max().copied().unwrap_or(ClockTime::ZERO);
        max - min
    }

    /// The configured end of the run.
    pub fn end_time(&self) -> SimTime {
        self.end
    }

    /// Runs the world until `t` (inclusive), for step-wise tests.
    ///
    /// Same batch consumption as [`World::run`].
    pub fn run_until(&mut self, t: SimTime) {
        let mut batch = Vec::new();
        while self.queue.pop_batch(t, &mut batch) > 0 {
            for (now, ev) in batch.drain(..) {
                if self.oracle.is_some() {
                    self.observe(Observation::Event { at: now });
                }
                if let Some(tracer) = self.tracer.as_mut() {
                    let (kind, sub) = ev.kind();
                    tracer.pop(now, kind, sub);
                }
                self.handle(now, ev);
            }
        }
    }

    /// Consumes the world and produces the result (for use after
    /// [`World::run_until`]).
    pub fn into_result(self) -> RunResult {
        self.finish()
    }
}

/// Irwin–Hall Gaussian sample (ns), matching `tsn_time::jitter`.
fn sample_gaussian<R: Rng + ?Sized>(rng: &mut R, sigma: f64) -> i64 {
    if sigma <= 0.0 {
        return 0;
    }
    let mut z = -6.0;
    for _ in 0..12 {
        z += rng.gen::<f64>();
    }
    (z * sigma).round() as i64
}

fn log2_interval(interval: Nanos) -> i8 {
    let secs = interval.as_secs_f64();
    secs.log2().round() as i8
}

// ----- checkpoint / restore ------------------------------------------

use crate::snapshot::{config_fingerprint, warm_prefix_fingerprint, WORLD_STATE_VERSION};
use tsn_snapshot::{Reader, Snap, SnapError, SnapState, WorldSnapshot, Writer};

impl Snap for TxCtx {
    fn put(&self, w: &mut Writer) {
        match self {
            TxCtx::None => 0u8.put(w),
            TxCtx::GmSync { node, domain, seq } => {
                1u8.put(w);
                node.put(w);
                domain.put(w);
                seq.put(w);
            }
            TxCtx::BridgeSync { sw, domain, seq } => {
                2u8.put(w);
                sw.put(w);
                domain.put(w);
                seq.put(w);
            }
            TxCtx::PdelayReq { dev, seq } => {
                3u8.put(w);
                dev.put(w);
                seq.put(w);
            }
            TxCtx::PdelayResp {
                dev,
                seq,
                requesting,
            } => {
                4u8.put(w);
                dev.put(w);
                seq.put(w);
                requesting.put(w);
            }
        }
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(match u8::get(r)? {
            0 => TxCtx::None,
            1 => TxCtx::GmSync {
                node: Snap::get(r)?,
                domain: Snap::get(r)?,
                seq: Snap::get(r)?,
            },
            2 => TxCtx::BridgeSync {
                sw: Snap::get(r)?,
                domain: Snap::get(r)?,
                seq: Snap::get(r)?,
            },
            3 => TxCtx::PdelayReq {
                dev: Snap::get(r)?,
                seq: Snap::get(r)?,
            },
            4 => TxCtx::PdelayResp {
                dev: Snap::get(r)?,
                seq: Snap::get(r)?,
                requesting: Snap::get(r)?,
            },
            _ => return Err(SnapError::Malformed("tx context discriminant")),
        })
    }
}

impl Snap for Ev {
    fn put(&self, w: &mut Writer) {
        match self {
            Ev::Transmit { from, frame, ctx } => {
                0u8.put(w);
                from.put(w);
                frame.put(w);
                ctx.put(w);
            }
            Ev::Arrive { to, frame } => {
                1u8.put(w);
                to.put(w);
                frame.put(w);
            }
            Ev::GmSyncTick { node } => {
                2u8.put(w);
                node.put(w);
            }
            Ev::PdelayTick { port } => {
                3u8.put(w);
                port.put(w);
            }
            Ev::Phc2SysTick { node, slot } => {
                4u8.put(w);
                node.put(w);
                slot.put(w);
            }
            Ev::MonitorTick { node } => {
                5u8.put(w);
                node.put(w);
            }
            Ev::WanderTick => 6u8.put(w),
            Ev::ProbeTick { seq } => {
                7u8.put(w);
                seq.put(w);
            }
            Ev::FaultAt(i) => {
                8u8.put(w);
                i.put(w);
            }
            Ev::RebootAt(i) => {
                9u8.put(w);
                i.put(w);
            }
            Ev::StrikeAt(i) => {
                10u8.put(w);
                i.put(w);
            }
            Ev::PortFree { from } => {
                11u8.put(w);
                from.put(w);
            }
            Ev::BackgroundTick { port } => {
                12u8.put(w);
                port.put(w);
            }
            Ev::LinkWindow { i, down } => {
                13u8.put(w);
                i.put(w);
                down.put(w);
            }
            Ev::ElectionTick { node } => {
                14u8.put(w);
                node.put(w);
            }
            Ev::GmKill => 15u8.put(w),
        }
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(match u8::get(r)? {
            0 => Ev::Transmit {
                from: Snap::get(r)?,
                frame: Snap::get(r)?,
                ctx: Snap::get(r)?,
            },
            1 => Ev::Arrive {
                to: Snap::get(r)?,
                frame: Snap::get(r)?,
            },
            2 => Ev::GmSyncTick {
                node: Snap::get(r)?,
            },
            3 => Ev::PdelayTick {
                port: Snap::get(r)?,
            },
            4 => Ev::Phc2SysTick {
                node: Snap::get(r)?,
                slot: Snap::get(r)?,
            },
            5 => Ev::MonitorTick {
                node: Snap::get(r)?,
            },
            6 => Ev::WanderTick,
            7 => Ev::ProbeTick { seq: Snap::get(r)? },
            8 => Ev::FaultAt(Snap::get(r)?),
            9 => Ev::RebootAt(Snap::get(r)?),
            10 => Ev::StrikeAt(Snap::get(r)?),
            11 => Ev::PortFree {
                from: Snap::get(r)?,
            },
            12 => Ev::BackgroundTick {
                port: Snap::get(r)?,
            },
            13 => Ev::LinkWindow {
                i: Snap::get(r)?,
                down: Snap::get(r)?,
            },
            14 => Ev::ElectionTick {
                node: Snap::get(r)?,
            },
            15 => Ev::GmKill,
            _ => return Err(SnapError::Malformed("event discriminant")),
        })
    }
}

impl Snap for RunCounters {
    fn put(&self, w: &mut Writer) {
        self.tx_timestamp_timeouts.put(w);
        self.deadline_misses.put(w);
        self.vm_failures.put(w);
        self.gm_failures.put(w);
        self.takeovers.put(w);
        self.aggregations.put(w);
        self.no_quorum.put(w);
        self.strikes_succeeded.put(w);
        self.strikes_failed.put(w);
        self.frames_queued.put(w);
        self.sync_transitions.put(w);
        self.holdover_ns.put(w);
        self.freerun_ns.put(w);
        self.uncovered_failures.put(w);
        self.unhandled_frames.put(w);
        self.announce_tx.put(w);
        self.elected_gm_changes.put(w);
        self.reconvergence_ns.put(w);
        // The fabric counters are deliberately *not* encoded here: they
        // live in the fabric's own `SnapState` (appended to the world's
        // state only when the fabric is enabled) and are copied into
        // `RunCounters` at `finish()`. Encoding them here would change
        // the state bytes of every `fabric = None` run.
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(RunCounters {
            tx_timestamp_timeouts: Snap::get(r)?,
            deadline_misses: Snap::get(r)?,
            vm_failures: Snap::get(r)?,
            gm_failures: Snap::get(r)?,
            takeovers: Snap::get(r)?,
            aggregations: Snap::get(r)?,
            no_quorum: Snap::get(r)?,
            strikes_succeeded: Snap::get(r)?,
            strikes_failed: Snap::get(r)?,
            frames_queued: Snap::get(r)?,
            sync_transitions: Snap::get(r)?,
            holdover_ns: Snap::get(r)?,
            freerun_ns: Snap::get(r)?,
            uncovered_failures: Snap::get(r)?,
            unhandled_frames: Snap::get(r)?,
            announce_tx: Snap::get(r)?,
            elected_gm_changes: Snap::get(r)?,
            reconvergence_ns: Snap::get(r)?,
            fabric_frames_forwarded: 0,
            fabric_frames_dropped: 0,
            max_residence_ns: 0,
            path_asymmetry_ns: 0,
        })
    }
}

impl SnapState for VmState {
    // `nic_device` and NIC static parameters (MAC, jitter model, line
    // rate) come from configuration; master/slave/aggregator structure is
    // fixed per slot.
    fn save_state(&self, w: &mut Writer) {
        self.nic.phc.save_state(w);
        self.osc.save_state(w);
        self.running.put(w);
        self.compromised.put(w);
        self.strike_idx.is_some().put(w);
        if let Some(i) = self.strike_idx {
            i.put(w);
        }
        self.master.is_some().put(w);
        if let Some(m) = &self.master {
            m.save_state(w);
        }
        self.gm_active.put(w);
        for s in &self.slaves {
            s.save_state(w);
        }
        self.aggregator.save_state(w);
        self.pd.save_state(w);
        self.phc2sys.save_state(w);
        self.sync_servo.save_state(w);
        self.election.is_some().put(w);
        if let Some(e) = &self.election {
            e.save_state(w);
        }
        // Acquired masters are dynamic: encode domain keys so load can
        // reconstruct each function before overwriting its state.
        self.acquired.len().put(w);
        for (d, m) in &self.acquired {
            d.put(w);
            m.save_state(w);
        }
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        self.nic.phc.load_state(r)?;
        self.osc.load_state(r)?;
        self.running = Snap::get(r)?;
        self.compromised = Snap::get(r)?;
        self.strike_idx = if bool::get(r)? {
            Some(usize::get(r)?)
        } else {
            None
        };
        if bool::get(r)? != self.master.is_some() {
            return Err(SnapError::Malformed("sync master presence"));
        }
        if let Some(m) = &mut self.master {
            m.load_state(r)?;
        }
        self.gm_active = Snap::get(r)?;
        for s in &mut self.slaves {
            s.load_state(r)?;
        }
        self.aggregator.load_state(r)?;
        self.pd.load_state(r)?;
        self.phc2sys.load_state(r)?;
        self.sync_servo.load_state(r)?;
        if bool::get(r)? != self.election.is_some() {
            return Err(SnapError::Malformed("election presence"));
        }
        if let Some(e) = &mut self.election {
            e.load_state(r)?;
        }
        let n = usize::get(r)?;
        let mut acquired = BTreeMap::new();
        let identity = ClockIdentity::for_index(self.nic_device.0 as u32);
        for _ in 0..n {
            let d = u8::get(r)?;
            // The log2 interval is part of the saved state; the
            // placeholder is overwritten by load_state.
            let mut m = SyncMaster::new(d, PortIdentity::new(identity, 1), -3);
            m.load_state(r)?;
            if acquired.insert(d, m).is_some() {
                return Err(SnapError::Malformed("duplicate acquired domain"));
            }
        }
        self.acquired = acquired;
        Ok(())
    }
}

impl SnapState for NodeState {
    fn save_state(&self, w: &mut Writer) {
        self.host_phc.save_state(w);
        self.host_osc.save_state(w);
        for vm in &self.vms {
            vm.save_state(w);
        }
        self.device.save_state(w);
        if let Some(v) = &self.voting {
            v.save_state(w);
        }
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        self.host_phc.load_state(r)?;
        self.host_osc.load_state(r)?;
        for vm in &mut self.vms {
            vm.load_state(r)?;
        }
        self.device.load_state(r)?;
        if let Some(v) = &mut self.voting {
            v.load_state(r)?;
        }
        Ok(())
    }
}

impl SnapState for SwitchState {
    // The fabric (FDB, residence model) is static configuration; per-port
    // pdelay services are keyed by a fixed port set.
    fn save_state(&self, w: &mut Writer) {
        self.phc.save_state(w);
        self.osc.save_state(w);
        for relay in &self.relays {
            relay.save_state(w);
        }
        let mut ports: Vec<u8> = self.pd.keys().copied().collect();
        ports.sort_unstable();
        for p in ports {
            self.pd[&p].save_state(w);
        }
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        self.phc.load_state(r)?;
        self.osc.load_state(r)?;
        for relay in &mut self.relays {
            relay.load_state(r)?;
        }
        let mut ports: Vec<u8> = self.pd.keys().copied().collect();
        ports.sort_unstable();
        for p in ports {
            self.pd.get_mut(&p).expect("known port").load_state(r)?;
        }
        Ok(())
    }
}

impl SnapState for World {
    fn save_state(&self, w: &mut Writer) {
        self.queue.save_state(w);
        for node in &self.nodes {
            node.save_state(w);
        }
        // Roots precede switch states: restore must reroot the relay
        // trees before overwriting their (topology-shaped) states.
        self.domain_roots.put(w);
        for sw in &self.switches {
            sw.save_state(w);
        }
        // Egress ports materialize lazily; encode the populated set.
        // `live_ports` yields ascending `PortAddr` order — the same
        // bytes as the sorted-key encoding of the old port map.
        self.egress.live_ports().count().put(w);
        for (p, port) in self.egress.live_ports() {
            p.put(w);
            port.save_state(w);
        }
        self.trace.is_some().put(w);
        if let Some(tr) = &self.trace {
            tr.save_state(w);
        }
        self.transient.save_state(w);
        self.frame_rng.put(w);
        self.probes.put(w);
        self.probe_sent_at.put(w);
        self.ground_truth_ns.put(w);
        self.discipline_error_ns.put(w);
        self.series.save_state(w);
        self.events.save_state(w);
        self.counters.put(w);
        self.link_faults.save_state(w);
        self.linkfault_rng.put(w);
        self.gm_kill.is_some().put(w);
        if let Some((at, node)) = self.gm_kill {
            at.put(w);
            node.put(w);
        }
        // Fabric state rides at the very end, only when enabled — a
        // `fabric = None` world's state bytes are identical to a build
        // without the fabric subsystem.
        if let Some(fab) = &self.fabric {
            fab.save_state(w);
        }
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        self.queue.load_state(r)?;
        for node in &mut self.nodes {
            node.load_state(r)?;
        }
        let roots: Vec<usize> = Snap::get(r)?;
        if roots.len() != self.domain_roots.len() {
            return Err(SnapError::Malformed("domain root count"));
        }
        for (d, &root) in roots.iter().enumerate() {
            if self.domain_roots[d] != root {
                self.domain_roots[d] = root;
                self.reroot_domain(d, root);
            }
        }
        for sw in &mut self.switches {
            sw.load_state(r)?;
        }
        let n = usize::get(r)?;
        self.egress.reset();
        for _ in 0..n {
            let p = PortAddr::get(r)?;
            if !self.egress.in_range(p) {
                return Err(SnapError::Malformed("egress port outside topology"));
            }
            if self.egress.is_live(p) {
                return Err(SnapError::Malformed("duplicate egress port"));
            }
            self.egress.materialize(p).load_state(r)?;
        }
        if bool::get(r)? != self.trace.is_some() {
            return Err(SnapError::Malformed("frame trace presence"));
        }
        if let Some(tr) = &mut self.trace {
            tr.load_state(r)?;
        }
        self.transient.load_state(r)?;
        self.frame_rng = Snap::get(r)?;
        self.probes = Snap::get(r)?;
        self.probe_sent_at = Snap::get(r)?;
        self.ground_truth_ns = Snap::get(r)?;
        self.discipline_error_ns = Snap::get(r)?;
        self.series.load_state(r)?;
        self.events.load_state(r)?;
        self.counters = Snap::get(r)?;
        self.link_faults.load_state(r)?;
        self.linkfault_rng = Snap::get(r)?;
        self.gm_kill = if bool::get(r)? {
            Some((Snap::get(r)?, Snap::get(r)?))
        } else {
            None
        };
        if let Some(fab) = &mut self.fabric {
            fab.load_state(r)?;
        }
        Ok(())
    }
}

impl World {
    /// Current simulation time (the timestamp of the last handled event).
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Events handled since construction.
    pub fn events_processed(&self) -> u64 {
        self.queue.events_processed()
    }

    /// Captures the complete mutable state as a versioned snapshot.
    pub fn snapshot(&self) -> WorldSnapshot {
        let mut w = Writer::new();
        self.save_state(&mut w);
        WorldSnapshot {
            state_version: WORLD_STATE_VERSION,
            config_fingerprint: config_fingerprint(&self.cfg),
            at_ns: self.queue.now().as_nanos(),
            events_processed: self.queue.events_processed(),
            payload: w.into_bytes(),
        }
    }

    /// FNV-1a hash of the complete encoded state — equal hashes mean
    /// byte-identical worlds. The divergence check of `snapshot verify`
    /// compares these per epoch.
    pub fn state_hash(&self) -> u64 {
        let mut w = Writer::new();
        self.save_state(&mut w);
        tsn_snapshot::fnv1a64(&w.into_bytes())
    }

    /// Rebuilds a world from `cfg` and overwrites its mutable state from
    /// `snap` (reconstruct-then-overwrite).
    ///
    /// The snapshot must have been produced either by this exact
    /// configuration or by its warm-prefix projection
    /// ([`crate::snapshot::warm_prefix_config`]); in the latter case the
    /// post-warmup interventions (faults, strikes) stripped from the
    /// prefix are re-armed from the rebuilt world's own schedule.
    pub fn restore(cfg: TestbedConfig, snap: &WorldSnapshot) -> Result<World, SnapError> {
        if snap.state_version != WORLD_STATE_VERSION {
            return Err(SnapError::UnsupportedVersion(snap.state_version));
        }
        if snap.config_fingerprint != config_fingerprint(&cfg)
            && snap.config_fingerprint != warm_prefix_fingerprint(&cfg)
        {
            return Err(SnapError::Malformed(
                "snapshot was produced by a different configuration",
            ));
        }
        let mut world = World::new(cfg);
        // Control events the full configuration armed at t=0. If the
        // snapshot's queue never used the control space (a warm prefix
        // with interventions stripped), re-arm them with their original
        // sequence numbers; otherwise the snapshot already carries them.
        let ctl = world.queue.drain_ctl();
        let mut r = Reader::new(&snap.payload);
        world.load_state(&mut r)?;
        r.finish()?;
        if world.queue.ctl_len() == 0 && world.queue.next_ctl_seq() == tsn_netsim::CTL_SEQ_BASE {
            for (at, seq, ev) in ctl {
                world.queue.insert_raw(at, seq, ev);
            }
        }
        Ok(world)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_of_paper_interval() {
        assert_eq!(log2_interval(Nanos::from_millis(125)), -3);
        assert_eq!(log2_interval(Nanos::from_secs(1)), 0);
        assert_eq!(log2_interval(Nanos::from_millis(250)), -2);
    }

    fn tiny_world(seed: u64) -> World {
        let mut cfg = TestbedConfig::paper_default(seed);
        cfg.duration = Nanos::from_secs(5);
        cfg.warmup = Nanos::from_secs(5);
        World::new(cfg)
    }

    #[test]
    fn frame_priorities() {
        let w = tiny_world(1);
        let ptp = EthernetFrame {
            dst: MacAddr::GPTP_MULTICAST,
            src: MacAddr::for_nic(1),
            vlan: None,
            ethertype: ethertype::PTP,
            payload: bytes::Bytes::new(),
        };
        assert_eq!(w.priority_of(&ptp), 7);
        let probe = EthernetFrame {
            vlan: Some(VlanTag::new(6, MEASUREMENT_VID)),
            ethertype: ethertype::MEASUREMENT,
            ..ptp.clone()
        };
        assert_eq!(w.priority_of(&probe), 6);
        let be = EthernetFrame {
            ethertype: ethertype::BACKGROUND,
            ..ptp.clone()
        };
        assert_eq!(w.priority_of(&be), 0);
    }

    #[test]
    fn priority_isolation_off_flattens_classes() {
        let mut cfg = TestbedConfig::paper_default(1);
        cfg.background = Some(crate::config::BackgroundTraffic {
            load: 0.1,
            frame_bytes: 1500,
            priority_isolation: false,
        });
        cfg.duration = Nanos::from_secs(1);
        let w = World::new(cfg);
        let ptp = EthernetFrame {
            dst: MacAddr::GPTP_MULTICAST,
            src: MacAddr::for_nic(1),
            vlan: None,
            ethertype: ethertype::PTP,
            payload: bytes::Bytes::new(),
        };
        assert_eq!(w.priority_of(&ptp), 0);
    }

    #[test]
    fn bounds_derivation_internally_consistent() {
        let w = tiny_world(3);
        let b = w.derive_bounds();
        assert_eq!(b.reading_error, b.d_max - b.d_min);
        assert!(b.gamma <= b.reading_error + b.drift_offset + b.reading_error);
        assert!(b.pi_plus_gamma() > b.pi);
    }

    #[test]
    fn short_run_is_deterministic_end_to_end() {
        let run = |seed| {
            let mut w = tiny_world(seed);
            w.run_until(SimTime::from_secs(8));
            (
                w.phc_spread(SimTime::from_secs(8)),
                w.synctime_spread(SimTime::from_secs(8)),
                w.gm_spread(SimTime::from_secs(8)),
            )
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn vm_diagnostics_shape() {
        let mut w = tiny_world(5);
        w.run_until(SimTime::from_secs(3));
        let d = w.vm_diagnostics(SimTime::from_secs(3));
        assert_eq!(d.len(), 8); // 4 nodes × 2 VMs
        assert!(d.iter().all(|(_, _, _, _, _, _, _, running)| *running));
    }
}
