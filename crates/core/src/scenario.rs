//! Ready-made experiment scenarios mirroring the paper's evaluation.
//!
//! Each scenario is a named layer of settings over a [`TestbedConfig`]:
//! [`ScenarioKind::apply`] materializes the layer onto an arbitrary base
//! configuration, which is what the campaign engine (`tsn-campaign`)
//! uses to run scenario × parameter-grid sweeps, and the classic
//! `fn(seed, duration)` entry points below remain as conveniences over
//! the paper's defaults.

use crate::config::TestbedConfig;
use crate::world::{RunResult, World};
use tsn_faults::{AttackPlan, InjectorConfig, KernelAssignment};
use tsn_time::Nanos;

/// A finished scenario run.
pub struct ScenarioOutcome {
    /// The configuration that produced it.
    pub config: TestbedConfig,
    /// The run's result.
    pub result: RunResult,
}

/// The named experiment scenarios of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ScenarioKind {
    /// No faults, no attack (sanity baseline).
    Baseline,
    /// Fig. 3a: all virtual GMs run the exploitable kernel; the attacker
    /// roots two of them and synchronization is lost.
    CyberIdenticalKernels,
    /// Fig. 3b: diversified kernels; the second strike fails and the FTA
    /// masks the single Byzantine GM.
    CyberDiverseKernels,
    /// Fig. 4/5: sequential GM shutdowns plus random redundant-VM
    /// shutdowns.
    FaultInjection,
    /// The prior-work end-system design the paper critiques (Kyriakakis
    /// et al.): clients aggregate, grandmasters free-run.
    PriorWorkBaseline,
}

impl ScenarioKind {
    /// All scenarios, in their canonical order.
    pub const ALL: [ScenarioKind; 5] = [
        ScenarioKind::Baseline,
        ScenarioKind::CyberIdenticalKernels,
        ScenarioKind::CyberDiverseKernels,
        ScenarioKind::FaultInjection,
        ScenarioKind::PriorWorkBaseline,
    ];

    /// The stable textual name (used in campaign specs and artifacts).
    pub fn name(self) -> &'static str {
        match self {
            ScenarioKind::Baseline => "baseline",
            ScenarioKind::CyberIdenticalKernels => "cyber_identical_kernels",
            ScenarioKind::CyberDiverseKernels => "cyber_diverse_kernels",
            ScenarioKind::FaultInjection => "fault_injection",
            ScenarioKind::PriorWorkBaseline => "prior_work_baseline",
        }
    }

    /// Parses a scenario name as produced by [`ScenarioKind::name`].
    pub fn parse(name: &str) -> Option<ScenarioKind> {
        Self::ALL.into_iter().find(|k| k.name() == name)
    }

    /// Layers this scenario's settings onto `config`.
    ///
    /// The base configuration keeps its seed, duration, node count, and
    /// sweep overrides; the scenario decides kernels, attack plan, fault
    /// injection, and GM mutual synchronization. Node-count-dependent
    /// pieces (kernel assignment, injector node count, target of the
    /// second strike) follow `config.nodes`.
    pub fn apply(self, config: &mut TestbedConfig) {
        match self {
            ScenarioKind::Baseline => {}
            ScenarioKind::CyberIdenticalKernels => {
                config.kernels = KernelAssignment::identical(config.nodes);
                config.attack = AttackPlan::paper_default();
            }
            ScenarioKind::CyberDiverseKernels => {
                // The paper leaves only GM c1_4 (node 3) exploitable;
                // clamp for smaller sweeps.
                let exploitable = 3.min(config.nodes - 1);
                config.kernels = KernelAssignment::diverse(config.nodes, exploitable);
                config.attack = AttackPlan::paper_default();
            }
            ScenarioKind::FaultInjection => {
                config.fault_injection = Some(InjectorConfig {
                    duration: config.duration,
                    nodes: config.nodes,
                    ..InjectorConfig::paper_default()
                });
            }
            ScenarioKind::PriorWorkBaseline => {
                config.gm_mutual_sync = false;
            }
        }
    }
}

/// Error returned by [`run_named`] for an unknown scenario name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownScenario(pub String);

impl std::fmt::Display for UnknownScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown scenario {:?} (known: {})",
            self.0,
            ScenarioKind::ALL.map(|k| k.name()).join(", ")
        )
    }
}

impl std::error::Error for UnknownScenario {}

/// Optional passive observers to arm on the [`World`] before a run.
///
/// Both are strictly passive (no randomness, no scheduled events), so
/// any combination yields byte-identical state hashes and artifacts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunOptions {
    /// Arm the runtime invariant oracle ([`World::enable_oracle`]).
    pub oracle: bool,
    /// Arm the structured execution tracer ([`World::enable_trace`]).
    pub trace: bool,
    /// Override the tracer's bounded-sink event cap (`None` keeps the
    /// [`tsn_trace::TraceConfig`] default of 2^20). Events past the cap
    /// are dropped and counted, never silently lost: the drop count
    /// surfaces in the [`tsn_trace::TraceReport`].
    pub trace_max_events: Option<usize>,
}

/// The serde-run entry point: applies the named scenario to `config` and
/// runs it. This is the single function an orchestrator needs: a
/// scenario name plus a (deserialized) [`TestbedConfig`] yields a
/// [`RunResult`].
pub fn run_named(name: &str, config: TestbedConfig) -> Result<ScenarioOutcome, UnknownScenario> {
    run_named_with(name, config, RunOptions::default())
}

/// [`run_named`] with explicit observer options.
pub fn run_named_with(
    name: &str,
    mut config: TestbedConfig,
    opts: RunOptions,
) -> Result<ScenarioOutcome, UnknownScenario> {
    let kind = ScenarioKind::parse(name).ok_or_else(|| UnknownScenario(name.to_string()))?;
    kind.apply(&mut config);
    Ok(run_with(config, opts))
}

/// Runs the testbed with no faults and no attack (sanity baseline).
pub fn baseline(config: TestbedConfig) -> ScenarioOutcome {
    run(config)
}

/// The paper's first cyber-resilience experiment (Fig. 3a); see
/// [`ScenarioKind::CyberIdenticalKernels`].
pub fn cyber_identical_kernels(seed: u64, duration: Nanos) -> ScenarioOutcome {
    from_paper_default(ScenarioKind::CyberIdenticalKernels, seed, duration)
}

/// The paper's second cyber-resilience experiment (Fig. 3b); see
/// [`ScenarioKind::CyberDiverseKernels`].
pub fn cyber_diverse_kernels(seed: u64, duration: Nanos) -> ScenarioOutcome {
    from_paper_default(ScenarioKind::CyberDiverseKernels, seed, duration)
}

/// The paper's 24 h fault-injection experiment (Fig. 4/5); see
/// [`ScenarioKind::FaultInjection`]. Pass a shorter `duration` for
/// tests; the figure regenerators use the full 24 h.
pub fn fault_injection(seed: u64, duration: Nanos) -> ScenarioOutcome {
    from_paper_default(ScenarioKind::FaultInjection, seed, duration)
}

/// The prior-work baseline the paper critiques; see
/// [`ScenarioKind::PriorWorkBaseline`].
pub fn prior_work_baseline(seed: u64, duration: Nanos) -> ScenarioOutcome {
    from_paper_default(ScenarioKind::PriorWorkBaseline, seed, duration)
}

fn from_paper_default(kind: ScenarioKind, seed: u64, duration: Nanos) -> ScenarioOutcome {
    let mut cfg = TestbedConfig::paper_default(seed);
    cfg.duration = duration;
    kind.apply(&mut cfg);
    run(cfg)
}

/// Runs an arbitrary configuration.
pub fn run(config: TestbedConfig) -> ScenarioOutcome {
    run_with(config, RunOptions::default())
}

/// Runs an arbitrary configuration with explicit observer options.
pub fn run_with(config: TestbedConfig, opts: RunOptions) -> ScenarioOutcome {
    let mut world = World::new(config.clone());
    if opts.oracle {
        world.enable_oracle();
    }
    if opts.trace {
        match opts.trace_max_events {
            Some(cap) => world.enable_trace_capped(cap),
            None => world.enable_trace(),
        }
    }
    let result = world.run();
    ScenarioOutcome { config, result }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for kind in ScenarioKind::ALL {
            assert_eq!(ScenarioKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(ScenarioKind::parse("nope"), None);
    }

    #[test]
    fn apply_respects_node_count() {
        let mut cfg = TestbedConfig::quick(1);
        cfg.nodes = 6;
        cfg.aggregation.domains = 6;
        ScenarioKind::CyberIdenticalKernels.apply(&mut cfg);
        assert_eq!(cfg.kernels.len(), 6);
        let mut cfg = TestbedConfig::quick(1);
        ScenarioKind::FaultInjection.apply(&mut cfg);
        let fi = cfg.fault_injection.expect("injector configured");
        assert_eq!(fi.nodes, cfg.nodes);
        assert_eq!(fi.duration, cfg.duration);
        cfg.validate();
    }

    #[test]
    fn run_named_rejects_unknown() {
        let Err(err) = run_named("bogus", TestbedConfig::quick(1)) else {
            panic!("unknown scenario must be rejected");
        };
        assert!(err.to_string().contains("bogus"));
    }
}
