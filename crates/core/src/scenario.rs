//! Ready-made experiment scenarios mirroring the paper's evaluation.

use crate::config::TestbedConfig;
use crate::world::{RunResult, World};
use tsn_faults::{AttackPlan, InjectorConfig, KernelAssignment};
use tsn_time::Nanos;

/// A finished scenario run.
pub struct ScenarioOutcome {
    /// The configuration that produced it.
    pub config: TestbedConfig,
    /// The run's result.
    pub result: RunResult,
}

/// Runs the testbed with no faults and no attack (sanity baseline).
pub fn baseline(config: TestbedConfig) -> ScenarioOutcome {
    run(config)
}

/// The paper's first cyber-resilience experiment (Fig. 3a): all virtual
/// GMs run the exploitable kernel v4.19.1; the attacker roots two of
/// them and synchronization is lost.
pub fn cyber_identical_kernels(seed: u64, duration: Nanos) -> ScenarioOutcome {
    let mut cfg = TestbedConfig::paper_default(seed);
    cfg.duration = duration;
    cfg.kernels = KernelAssignment::identical(cfg.nodes);
    cfg.attack = AttackPlan::paper_default();
    run(cfg)
}

/// The paper's second cyber-resilience experiment (Fig. 3b): diversified
/// kernels — only GM c1_4 (node 3) is exploitable, so the second strike
/// fails and the FTA masks the single Byzantine GM.
pub fn cyber_diverse_kernels(seed: u64, duration: Nanos) -> ScenarioOutcome {
    let mut cfg = TestbedConfig::paper_default(seed);
    cfg.duration = duration;
    cfg.kernels = KernelAssignment::diverse(cfg.nodes, 3);
    cfg.attack = AttackPlan::paper_default();
    run(cfg)
}

/// The paper's 24 h fault-injection experiment (Fig. 4/5): sequential GM
/// shutdowns plus random redundant-VM shutdowns. Pass a shorter
/// `duration` for tests; the figure regenerators use the full 24 h.
pub fn fault_injection(seed: u64, duration: Nanos) -> ScenarioOutcome {
    let mut cfg = TestbedConfig::paper_default(seed);
    cfg.duration = duration;
    cfg.fault_injection = Some(InjectorConfig {
        duration,
        ..InjectorConfig::paper_default()
    });
    run(cfg)
}

/// The prior-work baseline the paper critiques (Kyriakakis et al.):
/// multi-domain FTA on the clients only, grandmasters free-running. The
/// GM ensemble's spread grows without bound, which is what breaks the
/// design's Byzantine fault tolerance "in real-world systems" (paper
/// §I).
pub fn prior_work_baseline(seed: u64, duration: Nanos) -> ScenarioOutcome {
    let mut cfg = TestbedConfig::paper_default(seed);
    cfg.duration = duration;
    cfg.gm_mutual_sync = false;
    run(cfg)
}

/// Runs an arbitrary configuration.
pub fn run(config: TestbedConfig) -> ScenarioOutcome {
    let world = World::new(config.clone());
    let result = world.run();
    ScenarioOutcome { config, result }
}
