//! A self-contained multi-domain clock-synchronization node — the
//! library-level embodiment of the paper's clock-synchronization VM.
//!
//! [`MultiDomainNode`] bundles everything one VM runs: `M` per-domain
//! Sync slaves, an optional Sync master for its own domain, the shared
//! peer-delay service of its NIC port, and the `FTSHMEM` multi-domain
//! aggregator. It is sans-IO: callers feed it received frames with
//! hardware timestamps and deliver whatever it emits; clock commands come
//! back as [`NodeOutput::AdjustClock`].
//!
//! The full testbed ([`crate::World`]) wires nodes through the simulated
//! network; this facade exists so the aggregation logic can be embedded
//! in other harnesses (or, with a real NIC backend, an actual system)
//! without pulling in the simulation world.
//!
//! # Example
//!
//! Two nodes — a grandmaster and a client — connected back to back:
//!
//! ```
//! use clocksync::node::{MultiDomainNode, NodeConfig, NodeInput, NodeOutput};
//! use tsn_time::{ClockTime, Nanos};
//!
//! let cfg = NodeConfig::single_domain();
//! let mut gm = MultiDomainNode::new(cfg.clone(), 1, Some(0));
//! let mut client = MultiDomainNode::new(cfg, 2, None);
//!
//! // One synchronization interval, by hand: the GM emits a Sync…
//! let outs = gm.handle(NodeInput::SyncTick {
//!     now: ClockTime::from_nanos(1_000_000),
//! });
//! # assert!(!outs.is_empty());
//! ```

use tsn_fta::{AggregationConfig, MultiDomainAggregator, SubmitOutcome};
use tsn_gptp::msg::Message;
use tsn_gptp::{
    ClockIdentity, PdelayInitiator, PdelayResponder, PortIdentity, SyncMaster, SyncSlave,
};
use tsn_time::{ClockTime, Nanos, ServoConfig, ServoOutput};

/// Configuration of a [`MultiDomainNode`].
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Multi-domain aggregation settings (`M`, FTA parameters, startup).
    pub aggregation: AggregationConfig,
    /// PI servo settings.
    pub servo: ServoConfig,
    /// log2 Sync interval advertised by a master.
    pub log_sync_interval: i8,
}

impl NodeConfig {
    /// The paper's configuration (M = 4 domains, FTA f = 1, S = 125 ms).
    pub fn paper_default() -> Self {
        NodeConfig {
            aggregation: AggregationConfig::paper_default(),
            servo: ServoConfig::default(),
            log_sync_interval: -3,
        }
    }

    /// A single-domain configuration (plain gPTP, mean aggregation) for
    /// small setups and tests.
    pub fn single_domain() -> Self {
        NodeConfig {
            aggregation: AggregationConfig {
                domains: 1,
                method: tsn_fta::AggregationMethod::Mean,
                ..AggregationConfig::paper_default()
            },
            servo: ServoConfig::default(),
            log_sync_interval: -3,
        }
    }
}

/// Input events a node consumes.
#[derive(Debug, Clone)]
pub enum NodeInput {
    /// A gPTP frame arrived; `rx_ts` is the hardware receive timestamp
    /// (event messages) or the current clock reading (general messages).
    Frame {
        /// Encoded gPTP message bytes.
        bytes: bytes::Bytes,
        /// Hardware receive timestamp.
        rx_ts: ClockTime,
    },
    /// Start of a synchronization interval (masters emit Sync; everyone
    /// refreshes the self-offset when mastering a domain).
    SyncTick {
        /// Current local clock reading.
        now: ClockTime,
    },
    /// The hardware egress timestamp of a previously emitted event
    /// message became available.
    TxTimestamp {
        /// Which emission it belongs to.
        token: TxToken,
        /// The egress timestamp.
        ts: ClockTime,
    },
    /// Start a peer-delay measurement round.
    PdelayTick,
}

/// Identifies an emitted event message awaiting its egress timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxToken {
    /// A Sync of the node's own domain with this sequence id.
    Sync(u16),
    /// A Pdelay_Req with this sequence id.
    PdelayReq(u16),
    /// A Pdelay_Resp for this exchange.
    PdelayResp {
        /// Sequence id of the request.
        seq: u16,
        /// The requester (needed for the follow-up).
        requesting: PortIdentity,
    },
}

/// Output actions a node emits.
#[derive(Debug, Clone)]
pub enum NodeOutput {
    /// Transmit these bytes. Event messages carry a [`TxToken`]: report
    /// their hardware egress timestamp back via
    /// [`NodeInput::TxTimestamp`].
    Send {
        /// Encoded gPTP message.
        bytes: bytes::Bytes,
        /// Present on event messages that need egress timestamps.
        token: Option<TxToken>,
    },
    /// Apply this servo command to the local clock.
    AdjustClock(ServoOutput),
}

/// One clock-synchronization VM's engine set (see module docs).
#[derive(Debug)]
pub struct MultiDomainNode {
    slaves: Vec<SyncSlave>,
    master: Option<SyncMaster>,
    own_domain: Option<usize>,
    aggregator: MultiDomainAggregator,
    pd_init: PdelayInitiator,
    pd_resp: PdelayResponder,
}

impl MultiDomainNode {
    /// Creates a node. `clock_index` derives the clock/port identities;
    /// `master_of` makes it the grandmaster of that domain.
    ///
    /// # Panics
    ///
    /// Panics if `master_of` is outside the configured domain count.
    pub fn new(config: NodeConfig, clock_index: u32, master_of: Option<usize>) -> Self {
        let domains = config.aggregation.domains;
        if let Some(d) = master_of {
            assert!(d < domains, "master domain {d} out of range");
        }
        let identity = ClockIdentity::for_index(clock_index);
        let port = PortIdentity::new(identity, 1);
        let mut aggregator = MultiDomainAggregator::new(config.aggregation, config.servo);
        aggregator.set_self_domain(master_of);
        MultiDomainNode {
            slaves: (0..domains as u8).map(SyncSlave::new).collect(),
            master: master_of.map(|d| SyncMaster::new(d as u8, port, config.log_sync_interval)),
            own_domain: master_of,
            aggregator,
            pd_init: PdelayInitiator::new(port),
            pd_resp: PdelayResponder::new(port),
        }
    }

    /// The node's aggregation mode (startup vs fault-tolerant).
    pub fn mode(&self) -> tsn_fta::AggregationMode {
        self.aggregator.mode()
    }

    /// The measured mean link delay of the node's port, if available.
    pub fn mean_link_delay(&self) -> Option<Nanos> {
        self.pd_init.mean_link_delay()
    }

    /// Feeds one input, returning the actions to perform.
    pub fn handle(&mut self, input: NodeInput) -> Vec<NodeOutput> {
        match input {
            NodeInput::Frame { bytes, rx_ts } => self.on_frame(&bytes, rx_ts),
            NodeInput::SyncTick { now } => self.on_sync_tick(now),
            NodeInput::TxTimestamp { token, ts } => self.on_tx_timestamp(token, ts),
            NodeInput::PdelayTick => {
                let (bytes, seq) = self.pd_init.make_request();
                vec![NodeOutput::Send {
                    bytes,
                    token: Some(TxToken::PdelayReq(seq)),
                }]
            }
        }
    }

    fn on_sync_tick(&mut self, now: ClockTime) -> Vec<NodeOutput> {
        let mut out = Vec::new();
        if let Some(master) = &mut self.master {
            let (bytes, seq) = master.make_sync();
            out.push(NodeOutput::Send {
                bytes,
                token: Some(TxToken::Sync(seq)),
            });
        }
        if let Some(d) = self.own_domain {
            let outcome = self.aggregator.submit_self(d, now);
            if let SubmitOutcome::Aggregated(a) = outcome {
                out.push(NodeOutput::AdjustClock(a.servo));
            }
        }
        out
    }

    fn on_tx_timestamp(&mut self, token: TxToken, ts: ClockTime) -> Vec<NodeOutput> {
        match token {
            TxToken::Sync(seq) => {
                let fu = self.master.as_mut().and_then(|m| m.sync_sent(seq, ts));
                fu.map(|bytes| NodeOutput::Send { bytes, token: None })
                    .into_iter()
                    .collect()
            }
            TxToken::PdelayReq(seq) => {
                self.pd_init.request_sent(seq, ts);
                Vec::new()
            }
            TxToken::PdelayResp { seq, requesting } => {
                let bytes = self.pd_resp.make_resp_follow_up(seq, requesting, ts);
                vec![NodeOutput::Send { bytes, token: None }]
            }
        }
    }

    fn on_frame(&mut self, bytes: &[u8], rx_ts: ClockTime) -> Vec<NodeOutput> {
        let Ok(msg) = Message::decode(bytes) else {
            return Vec::new();
        };
        match &msg {
            Message::Sync { header, .. } => {
                let domain = header.domain as usize;
                if let Some(slave) = self.slaves.get_mut(domain) {
                    slave.handle_sync(&msg, rx_ts);
                }
                Vec::new()
            }
            Message::FollowUp { header, .. } => {
                let domain = header.domain as usize;
                if Some(domain) == self.own_domain {
                    return Vec::new();
                }
                let link_delay = self
                    .pd_init
                    .mean_link_delay()
                    .unwrap_or(Nanos::from_nanos(0));
                let nrr = self.pd_init.neighbor_rate_ratio();
                let Some(slave) = self.slaves.get_mut(domain) else {
                    return Vec::new();
                };
                let Some(sample) = slave.handle_follow_up(&msg, link_delay, nrr) else {
                    return Vec::new();
                };
                let outcome = self.aggregator.submit(
                    domain,
                    sample.offset,
                    sample.sync_rx_local,
                    sample.rate_ratio,
                    // Local time: the sync receipt is the freshest clock
                    // reading this sans-IO node has.
                    sample.sync_rx_local,
                );
                match outcome {
                    SubmitOutcome::Aggregated(a) => {
                        vec![NodeOutput::AdjustClock(a.servo)]
                    }
                    _ => Vec::new(),
                }
            }
            Message::PdelayReq { .. } => match self.pd_resp.handle_request(&msg, rx_ts) {
                Some(ctx) => vec![NodeOutput::Send {
                    bytes: ctx.resp,
                    token: Some(TxToken::PdelayResp {
                        seq: ctx.seq,
                        requesting: ctx.requesting_port,
                    }),
                }],
                None => Vec::new(),
            },
            Message::PdelayResp { .. } => {
                self.pd_init.handle_resp(&msg, rx_ts);
                Vec::new()
            }
            Message::PdelayRespFollowUp { .. } => {
                let _ = self.pd_init.handle_resp_follow_up(&msg);
                Vec::new()
            }
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsn_time::{Phc, SimTime};

    /// Wires two nodes back to back over an ideal 2 µs link and runs
    /// `rounds` synchronization intervals. Returns the client's PHC
    /// offset from the GM's at the end.
    fn run_pair(rounds: usize, client_epoch_ns: i64) -> Nanos {
        let link = Nanos::from_nanos(2_000);
        let cfg = NodeConfig::single_domain();
        let mut gm = MultiDomainNode::new(cfg.clone(), 1, Some(0));
        let mut client = MultiDomainNode::new(cfg, 2, None);
        let mut gm_clock = Phc::new(ClockTime::from_nanos(1_000_000_000), 1_000.0);
        let mut client_clock = Phc::new(
            ClockTime::from_nanos(1_000_000_000 + client_epoch_ns),
            -2_000.0,
        );
        let s = Nanos::from_millis(125);
        let mut t = SimTime::from_millis(10);

        for round in 0..rounds {
            // Peer delay every 8th round (1 s cadence).
            if round % 8 == 0 {
                let outs = client.handle(NodeInput::PdelayTick);
                let mut pending: Vec<(bytes::Bytes, Option<TxToken>)> = outs
                    .into_iter()
                    .map(|o| match o {
                        NodeOutput::Send { bytes, token } => (bytes, token),
                        _ => panic!("unexpected"),
                    })
                    .collect();
                // Req departs client, arrives GM after `link`.
                let (req, tok) = pending.pop().unwrap();
                let t1 = client_clock.now(t);
                for o in client.handle(NodeInput::TxTimestamp {
                    token: tok.unwrap(),
                    ts: t1,
                }) {
                    let _ = o;
                }
                let t_arr = t + link;
                let t2 = gm_clock.now(t_arr);
                let outs = gm.handle(NodeInput::Frame {
                    bytes: req,
                    rx_ts: t2,
                });
                // Resp goes back.
                for o in outs {
                    if let NodeOutput::Send { bytes, token } = o {
                        let t_dep = t_arr + Nanos::from_micros(100);
                        let t3 = gm_clock.now(t_dep);
                        let t_back = t_dep + link;
                        let t4 = client_clock.now(t_back);
                        let _ = client.handle(NodeInput::Frame { bytes, rx_ts: t4 });
                        if let Some(tok) = token {
                            for o2 in gm.handle(NodeInput::TxTimestamp { token: tok, ts: t3 }) {
                                if let NodeOutput::Send { bytes, .. } = o2 {
                                    let t5 = client_clock.now(t_back + link);
                                    let _ = client.handle(NodeInput::Frame { bytes, rx_ts: t5 });
                                }
                            }
                        }
                    }
                }
            }

            // Sync interval.
            let outs = gm.handle(NodeInput::SyncTick {
                now: gm_clock.now(t),
            });
            for o in outs {
                match o {
                    NodeOutput::Send { bytes, token } => {
                        let tx_t = t + Nanos::from_micros(50);
                        let tx_ts = gm_clock.now(tx_t);
                        let rx_ts = client_clock.now(tx_t + link);
                        let _ = client.handle(NodeInput::Frame { bytes, rx_ts });
                        if let Some(tok) = token {
                            for o2 in gm.handle(NodeInput::TxTimestamp {
                                token: tok,
                                ts: tx_ts,
                            }) {
                                if let NodeOutput::Send { bytes, .. } = o2 {
                                    let fu_rx =
                                        client_clock.now(tx_t + link + Nanos::from_micros(20));
                                    for o3 in client.handle(NodeInput::Frame {
                                        bytes,
                                        rx_ts: fu_rx,
                                    }) {
                                        if let NodeOutput::AdjustClock(cmd) = o3 {
                                            let apply_t = tx_t + link + Nanos::from_micros(21);
                                            match cmd {
                                                ServoOutput::Gathering => {}
                                                ServoOutput::Step {
                                                    delta,
                                                    freq_adj_ppb,
                                                } => {
                                                    client_clock.step(apply_t, delta);
                                                    client_clock
                                                        .adj_frequency(apply_t, freq_adj_ppb);
                                                }
                                                ServoOutput::Adjust { freq_adj_ppb } => {
                                                    client_clock
                                                        .adj_frequency(apply_t, freq_adj_ppb);
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                    NodeOutput::AdjustClock(_) => {}
                }
            }
            t += s;
        }
        client_clock.now(t) - gm_clock.now(t)
    }

    #[test]
    fn back_to_back_pair_converges() {
        // From 40 µs initial offset to sub-µs (the residual few hundred
        // ns stem from the hand-rolled harness's coarse NRR cadence).
        let off = run_pair(200, 40_000);
        assert!(off.abs() < Nanos::from_nanos(500), "offset {off}");
    }

    #[test]
    fn converges_from_negative_epoch_too() {
        let off = run_pair(200, -35_000);
        assert!(off.abs() < Nanos::from_nanos(500), "offset {off}");
    }

    #[test]
    fn gm_emits_sync_and_follow_up() {
        let mut gm = MultiDomainNode::new(NodeConfig::single_domain(), 1, Some(0));
        let outs = gm.handle(NodeInput::SyncTick {
            now: ClockTime::from_nanos(5),
        });
        let token = outs
            .iter()
            .find_map(|o| match o {
                NodeOutput::Send { token: Some(t), .. } => Some(*t),
                _ => None,
            })
            .expect("sync emitted with token");
        let fu = gm.handle(NodeInput::TxTimestamp {
            token,
            ts: ClockTime::from_nanos(100),
        });
        assert!(matches!(
            fu.as_slice(),
            [NodeOutput::Send { token: None, .. }]
        ));
    }

    #[test]
    fn client_emits_nothing_on_sync_tick() {
        let mut client = MultiDomainNode::new(NodeConfig::single_domain(), 2, None);
        assert!(client
            .handle(NodeInput::SyncTick {
                now: ClockTime::from_nanos(5)
            })
            .is_empty());
    }

    #[test]
    fn garbage_frames_ignored() {
        let mut node = MultiDomainNode::new(NodeConfig::paper_default(), 3, None);
        let outs = node.handle(NodeInput::Frame {
            bytes: bytes::Bytes::from_static(b"not a ptp frame"),
            rx_ts: ClockTime::ZERO,
        });
        assert!(outs.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn master_domain_validated() {
        MultiDomainNode::new(NodeConfig::single_domain(), 1, Some(5));
    }
}
