//! # clocksync
//!
//! A faithful, laptop-scale reproduction of *IEEE 802.1AS Multi-Domain
//! Aggregation for Virtualized Distributed Real-Time Systems* (Ruh,
//! Steiner, Fohler — DSN-S 2023): cyber-resilient clock synchronization
//! built from fault-tolerant dependent clocks and gPTP multi-domain
//! aggregation with a fault-tolerant average (FTA).
//!
//! The paper's hardware testbed (Intel Atom ECDs, I210 NICs, integrated
//! TSN switches, the ACRN hypervisor) is replaced by a deterministic
//! discrete-event simulation; see `DESIGN.md` for the substitution table.
//!
//! * [`TestbedConfig`] — the full experiment configuration
//!   ([`TestbedConfig::paper_default`] reproduces §III-A1);
//! * [`World`] — the simulation world (topology of Fig. 2, gPTP engines,
//!   FTSHMEM aggregation, dependent clocks, faults, attacker, probes);
//! * [`scenario`] — ready-made runners for the paper's experiments.
//!
//! # Quickstart
//!
//! ```
//! use clocksync::{scenario, TestbedConfig};
//! use tsn_time::Nanos;
//!
//! let mut cfg = TestbedConfig::quick(42);
//! cfg.duration = Nanos::from_secs(30);
//! let outcome = scenario::baseline(cfg);
//! // Synchronized: measured precision stays within the derived bound.
//! let bound = outcome.result.bounds.pi_plus_gamma();
//! assert!(outcome.result.series.fraction_within(bound) > 0.99);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod densemap;
pub mod node;
pub mod scenario;
pub mod snapshot;
mod world;

pub use config::{
    BackgroundTraffic, CorruptPublisher, HypMonitorMode, PartitionWindow, TestbedConfig,
};
pub use world::{RunCounters, RunResult, World};

pub use tsn_snapshot::WorldSnapshot;

pub use tsn_election as election;
pub use tsn_fabric as fabric;
pub use tsn_faults as faults;
pub use tsn_fta as fta;
pub use tsn_gptp as gptp;
pub use tsn_hyp as hyp;
pub use tsn_metrics as metrics;
pub use tsn_netsim as netsim;
pub use tsn_oracle as oracle;
pub use tsn_time as time;
pub use tsn_trace as trace;
