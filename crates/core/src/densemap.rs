//! Dense, hash-free lookup tables for the event hot path.
//!
//! Every frame event resolves its device and egress port several times;
//! with `HashMap` those lookups (SipHash + probing) dominate the event
//! loop. Device ids and port numbers are small and consecutive by
//! construction ([`Topology`](tsn_netsim::Topology) allocates them
//! densely), so plain vectors indexed by id replace the maps.
//!
//! [`PortTable`] preserves the *lazy materialization* semantics of the
//! `HashMap<PortAddr, EgressPort>` it replaces: a port slot exists from
//! construction but only becomes **live** when the world first touches
//! it through [`PortTable::materialize`]. Snapshots encode exactly the
//! live set, in ascending [`PortAddr`] order — byte-identical to the
//! old map's sorted-key encoding, because the flat index
//! `device * stride + port` is monotone in the derived `(device, port)`
//! lexicographic `Ord`.

use tsn_netsim::{DeviceId, EgressPort, PortAddr};

/// A map from [`DeviceId`] to a small copyable value, backed by a
/// vector indexed by the raw id.
#[derive(Debug, Clone)]
pub(crate) struct DevMap<V> {
    slots: Vec<Option<V>>,
}

impl<V: Copy> DevMap<V> {
    pub fn new() -> Self {
        DevMap { slots: Vec::new() }
    }

    pub fn insert(&mut self, dev: DeviceId, value: V) {
        if dev.0 >= self.slots.len() {
            self.slots.resize_with(dev.0 + 1, || None);
        }
        self.slots[dev.0] = Some(value);
    }

    #[inline]
    pub fn get(&self, dev: DeviceId) -> Option<V> {
        self.slots.get(dev.0).copied().flatten()
    }

    #[inline]
    pub fn contains_key(&self, dev: DeviceId) -> bool {
        self.get(dev).is_some()
    }

    /// Entries in ascending device order.
    pub fn iter(&self) -> impl Iterator<Item = (DeviceId, V)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.map(|v| (DeviceId(i), v)))
    }
}

/// Flat egress-port table indexed by `device * stride + port`.
///
/// `stride` is one past the highest wired port number in the topology,
/// so the flat index is collision-free and ordered like `PortAddr`.
#[derive(Debug)]
pub(crate) struct PortTable<T> {
    stride: usize,
    live: Vec<bool>,
    slots: Vec<EgressPort<T>>,
}

impl<T> PortTable<T> {
    /// A table covering `devices × stride` port slots, all idle and
    /// not live.
    pub fn new(devices: usize, stride: usize) -> Self {
        let stride = stride.max(1);
        let n = devices * stride;
        PortTable {
            stride,
            live: vec![false; n],
            slots: (0..n).map(|_| EgressPort::default()).collect(),
        }
    }

    #[inline]
    fn idx(&self, p: PortAddr) -> usize {
        p.device.0 * self.stride + p.port.0 as usize
    }

    /// `true` if `p` maps to a slot (used to validate snapshot input;
    /// ports generated at runtime are in range by construction).
    pub fn in_range(&self, p: PortAddr) -> bool {
        (p.port.0 as usize) < self.stride && self.idx(p) < self.slots.len()
    }

    #[inline]
    pub fn get(&self, p: PortAddr) -> Option<&EgressPort<T>> {
        let i = self.idx(p);
        match self.live.get(i) {
            Some(true) => Some(&self.slots[i]),
            _ => None,
        }
    }

    #[inline]
    pub fn get_mut(&mut self, p: PortAddr) -> Option<&mut EgressPort<T>> {
        let i = self.idx(p);
        match self.live.get(i) {
            Some(true) => Some(&mut self.slots[i]),
            _ => None,
        }
    }

    /// Marks `p` live and returns its port — the `entry().or_default()`
    /// of the map this table replaces.
    #[inline]
    pub fn materialize(&mut self, p: PortAddr) -> &mut EgressPort<T> {
        let i = self.idx(p);
        self.live[i] = true;
        &mut self.slots[i]
    }

    /// `true` if `p` has been materialized.
    pub fn is_live(&self, p: PortAddr) -> bool {
        matches!(self.live.get(self.idx(p)), Some(true))
    }

    /// Live ports only (materialization order is irrelevant to callers;
    /// they fold commutatively).
    pub fn values(&self) -> impl Iterator<Item = &EgressPort<T>> {
        self.live
            .iter()
            .zip(&self.slots)
            .filter_map(|(&l, s)| l.then_some(s))
    }

    /// Live `(addr, port)` pairs in ascending [`PortAddr`] order.
    pub fn live_ports(&self) -> impl Iterator<Item = (PortAddr, &EgressPort<T>)> {
        let stride = self.stride;
        self.live
            .iter()
            .zip(&self.slots)
            .enumerate()
            .filter(|&(_, (&l, _))| l)
            .map(move |(i, (_, s))| (PortAddr::new(DeviceId(i / stride), (i % stride) as u8), s))
    }

    /// Returns the table to its post-construction state (all slots
    /// idle, nothing live) — snapshot restore rebuilds the live set.
    pub fn reset(&mut self) {
        self.live.iter_mut().for_each(|l| *l = false);
        self.slots
            .iter_mut()
            .for_each(|s| *s = EgressPort::default());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn devmap_get_insert_iter() {
        let mut m: DevMap<(usize, usize)> = DevMap::new();
        m.insert(DeviceId(4), (1, 0));
        m.insert(DeviceId(1), (0, 1));
        assert_eq!(m.get(DeviceId(1)), Some((0, 1)));
        assert_eq!(m.get(DeviceId(4)), Some((1, 0)));
        assert_eq!(m.get(DeviceId(2)), None);
        assert_eq!(m.get(DeviceId(99)), None);
        assert!(m.contains_key(DeviceId(4)));
        let all: Vec<_> = m.iter().collect();
        assert_eq!(all, vec![(DeviceId(1), (0, 1)), (DeviceId(4), (1, 0))]);
    }

    #[test]
    fn port_table_live_set_and_order() {
        let mut t: PortTable<u32> = PortTable::new(3, 4);
        assert!(t.get(PortAddr::new(DeviceId(2), 3)).is_none());
        t.materialize(PortAddr::new(DeviceId(2), 3)).enqueue(0, 7);
        t.materialize(PortAddr::new(DeviceId(0), 1));
        assert!(t.is_live(PortAddr::new(DeviceId(0), 1)));
        assert!(!t.is_live(PortAddr::new(DeviceId(0), 0)));
        assert_eq!(
            t.get(PortAddr::new(DeviceId(2), 3)).map(|p| p.len()),
            Some(1)
        );
        // Ascending PortAddr order, exactly the live set.
        let addrs: Vec<PortAddr> = t.live_ports().map(|(a, _)| a).collect();
        assert_eq!(
            addrs,
            vec![PortAddr::new(DeviceId(0), 1), PortAddr::new(DeviceId(2), 3)]
        );
        assert_eq!(t.values().count(), 2);
        t.reset();
        assert_eq!(t.values().count(), 0);
        assert!(t.get(PortAddr::new(DeviceId(2), 3)).is_none());
    }

    #[test]
    fn port_table_range_check() {
        let t: PortTable<u32> = PortTable::new(2, 4);
        assert!(t.in_range(PortAddr::new(DeviceId(1), 3)));
        assert!(!t.in_range(PortAddr::new(DeviceId(1), 4)));
        assert!(!t.in_range(PortAddr::new(DeviceId(2), 0)));
    }
}
