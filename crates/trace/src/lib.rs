//! # tsn-trace
//!
//! Off-by-default structured execution tracing for the `clocksync`
//! simulation of *IEEE 802.1AS Multi-Domain Aggregation for Virtualized
//! Distributed Real-Time Systems* (DSN-S 2023).
//!
//! The paper's evaluation (§IV) reasons about *when* things happen —
//! servo adjustments every sync interval `S`, FTA rounds, holdover
//! entry and exit — but a campaign artifact only carries end-of-run
//! aggregates. This crate records per-run causality instead: a
//! [`TraceSink`] collects typed spans and instants (event-queue pops,
//! gPTP message tx/rx, FTA rounds with per-domain inputs and trim
//! decisions, servo updates, `SyncState` transitions, link-fault
//! windows) stamped with *simulated* time, and [`TraceReport`] exports
//! them as Chrome trace-event JSON that opens directly in
//! `ui.perfetto.dev` or `chrome://tracing`.
//!
//! Like `tsn-oracle`, the sink is strictly passive: it draws no
//! randomness, schedules no events, and holds no simulation state, so
//! enabling it cannot perturb the deterministic run — state hashes,
//! snapshots, and campaign artifacts are byte-identical with tracing on
//! or off (held by `tests/trace.rs` and the CI trace-parity job). Host
//! wall-clock time never enters a trace file; it is measured by the
//! campaign runner and kept in the separate profile stream.
//!
//! ```
//! use tsn_trace::{Subsystem, TraceConfig, TraceSink, SIM_PID};
//! use tsn_time::SimTime;
//!
//! let mut sink = TraceSink::new(TraceConfig::default());
//! sink.pop(SimTime::from_millis(1), "transmit", Subsystem::Netsim);
//! sink.instant(SimTime::from_millis(1), "fta_round", Subsystem::Fta, 100, 0)
//!     .arg_i64("offset_ns", 125)
//!     .arg_str("used", "0:+125,1:-80,2:+10,3:+4");
//! let report = sink.finish(SimTime::from_millis(2));
//! let json = report.to_chrome_json();
//! assert!(json.contains("\"traceEvents\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use tsn_time::{Nanos, SimTime};

/// The `pid` of global (non-node) trace lanes: the event queue, the
/// network fabric, faults, and measurement probes.
pub const SIM_PID: u32 = 1;

/// The `pid` of one simulated node's trace lanes (its `tid`s are the VM
/// slots).
pub fn node_pid(node: usize) -> u32 {
    100 + node as u32
}

/// The simulation subsystem a trace event belongs to. Doubles as the
/// Chrome trace-event category and as the profiler's accounting key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Subsystem {
    /// Frame transport: links, egress queues, background traffic,
    /// link-fault windows.
    Netsim,
    /// gPTP protocol activity: Sync/Follow_Up/Pdelay message tx/rx.
    Gptp,
    /// Multi-domain fault-tolerant aggregation rounds.
    Fta,
    /// PHC servo frequency/phase corrections.
    Servo,
    /// Hypervisor layer: monitors, takeovers, `CLOCK_SYNCTIME`.
    Hyp,
    /// Clock plumbing: oscillator wander steps.
    Time,
    /// Fault injection and the attacker.
    Faults,
    /// Precision measurement probes.
    Measure,
    /// BMCA grandmaster election: Announce tx/rx, role transitions,
    /// election rounds, GM handoff.
    Election,
    /// Multi-hop switch fabric: Qbv gate waits, transparent-clock
    /// corrections, cross-traffic blocking, fabric drops.
    Fabric,
}

impl Subsystem {
    /// Every subsystem, in canonical (report) order.
    pub const ALL: [Subsystem; 10] = [
        Subsystem::Netsim,
        Subsystem::Gptp,
        Subsystem::Fta,
        Subsystem::Servo,
        Subsystem::Hyp,
        Subsystem::Time,
        Subsystem::Faults,
        Subsystem::Measure,
        Subsystem::Election,
        Subsystem::Fabric,
    ];

    /// The stable textual name (trace category, profile key).
    pub fn name(self) -> &'static str {
        match self {
            Subsystem::Netsim => "netsim",
            Subsystem::Gptp => "gptp",
            Subsystem::Fta => "fta",
            Subsystem::Servo => "servo",
            Subsystem::Hyp => "hyp",
            Subsystem::Time => "time",
            Subsystem::Faults => "faults",
            Subsystem::Measure => "measure",
            Subsystem::Election => "election",
            Subsystem::Fabric => "fabric",
        }
    }

    /// The `tid` lane this subsystem occupies under [`SIM_PID`].
    pub fn lane(self) -> u32 {
        self.index() as u32
    }

    fn index(self) -> usize {
        Subsystem::ALL
            .iter()
            .position(|&s| s == self)
            .expect("subsystem is in ALL")
    }
}

/// One typed argument value attached to a trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Float (rendered `null` when non-finite; JSON has no NaN).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

/// One recorded trace event (an instant, or a complete span when `dur`
/// is set).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (`name` in the Chrome trace-event format).
    pub name: &'static str,
    /// Subsystem (exported as the `cat` field).
    pub cat: Subsystem,
    /// Simulated start time.
    pub ts: SimTime,
    /// Duration for complete (`ph: "X"`) spans; `None` for instants.
    pub dur: Option<Nanos>,
    /// Process lane: [`SIM_PID`] or [`node_pid`].
    pub pid: u32,
    /// Thread lane: the VM slot under a node pid, the subsystem index
    /// under [`SIM_PID`].
    pub tid: u32,
    /// Typed key/value arguments.
    pub args: Vec<(&'static str, ArgValue)>,
}

/// Mutable view of the event just recorded, for fluent argument
/// attachment.
pub struct EventRef<'a>(Option<&'a mut TraceEvent>);

impl EventRef<'_> {
    fn push(&mut self, key: &'static str, value: ArgValue) {
        if let Some(ev) = self.0.as_deref_mut() {
            ev.args.push((key, value));
        }
    }

    /// Attaches a signed-integer argument.
    pub fn arg_i64(mut self, key: &'static str, value: i64) -> Self {
        self.push(key, ArgValue::I64(value));
        self
    }

    /// Attaches an unsigned-integer argument.
    pub fn arg_u64(mut self, key: &'static str, value: u64) -> Self {
        self.push(key, ArgValue::U64(value));
        self
    }

    /// Attaches a float argument.
    pub fn arg_f64(mut self, key: &'static str, value: f64) -> Self {
        self.push(key, ArgValue::F64(value));
        self
    }

    /// Attaches a boolean argument.
    pub fn arg_bool(mut self, key: &'static str, value: bool) -> Self {
        self.push(key, ArgValue::Bool(value));
        self
    }

    /// Attaches a string argument.
    pub fn arg_str(mut self, key: &'static str, value: impl Into<String>) -> Self {
        self.push(key, ArgValue::Str(value.into()));
        self
    }
}

/// Sink configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Hard cap on recorded events. Beyond it events are counted as
    /// dropped (reported in the export metadata), never silently lost.
    pub max_events: usize,
    /// Emit a cumulative `events` counter sample every this many queue
    /// pops (a cheap timeline-density view; pops are otherwise counted,
    /// not individually recorded).
    pub counter_stride: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            max_events: 1 << 20,
            counter_stride: 4096,
        }
    }
}

/// Collects trace events and per-subsystem counts during a run.
///
/// The sink is bounded ([`TraceConfig::max_events`]) and append-only;
/// every mutating method is `O(1)` amortized, and the per-event cost
/// when tracing is *disabled* is a single `Option` discriminant check
/// in the caller (the same pattern as `World::enable_oracle`).
#[derive(Debug)]
pub struct TraceSink {
    cfg: TraceConfig,
    events: Vec<TraceEvent>,
    dropped: u64,
    /// Queue pops per event kind, insertion-ordered (kinds are a small
    /// closed set of static names, so a Vec beats a map).
    pop_kinds: Vec<(&'static str, u64)>,
    /// Events (pops + recorded instants/spans) per subsystem.
    subsystems: [u64; Subsystem::ALL.len()],
    pops: u64,
    /// Open begin/end spans keyed by caller-chosen ids.
    open: Vec<(u64, TraceEvent)>,
}

impl TraceSink {
    /// A new, empty sink.
    pub fn new(cfg: TraceConfig) -> TraceSink {
        TraceSink {
            cfg,
            events: Vec::new(),
            dropped: 0,
            pop_kinds: Vec::new(),
            subsystems: [0; Subsystem::ALL.len()],
            pops: 0,
            open: Vec::new(),
        }
    }

    fn record(&mut self, ev: TraceEvent) -> EventRef<'_> {
        if self.events.len() >= self.cfg.max_events {
            self.dropped += 1;
            return EventRef(None);
        }
        self.events.push(ev);
        EventRef(self.events.last_mut())
    }

    /// Records an event-queue pop: counted per kind and subsystem, and
    /// sampled into a cumulative counter track every
    /// [`TraceConfig::counter_stride`] pops.
    pub fn pop(&mut self, at: SimTime, kind: &'static str, sub: Subsystem) {
        self.subsystems[sub.index()] += 1;
        match self.pop_kinds.iter_mut().find(|(k, _)| *k == kind) {
            Some((_, n)) => *n += 1,
            None => self.pop_kinds.push((kind, 1)),
        }
        self.pops += 1;
        if self.pops.is_multiple_of(self.cfg.counter_stride) {
            let pops = self.pops;
            self.record(TraceEvent {
                name: "events",
                cat: Subsystem::Netsim,
                ts: at,
                dur: None,
                pid: SIM_PID,
                tid: 0,
                args: vec![("count", ArgValue::U64(pops))],
            });
        }
    }

    /// Records an instant event and returns a handle for attaching
    /// arguments.
    pub fn instant(
        &mut self,
        at: SimTime,
        name: &'static str,
        cat: Subsystem,
        pid: u32,
        tid: u32,
    ) -> EventRef<'_> {
        self.subsystems[cat.index()] += 1;
        self.record(TraceEvent {
            name,
            cat,
            ts: at,
            dur: None,
            pid,
            tid,
            args: Vec::new(),
        })
    }

    /// Records a complete span with a known duration.
    pub fn span(
        &mut self,
        from: SimTime,
        dur: Nanos,
        name: &'static str,
        cat: Subsystem,
        pid: u32,
        tid: u32,
    ) -> EventRef<'_> {
        self.subsystems[cat.index()] += 1;
        self.record(TraceEvent {
            name,
            cat,
            ts: from,
            dur: Some(dur),
            pid,
            tid,
            args: Vec::new(),
        })
    }

    /// Opens a span whose end is not yet known; close it with
    /// [`TraceSink::end_span`] under the same `key`. Unclosed spans are
    /// flushed at [`TraceSink::finish`] with the run-end timestamp.
    pub fn begin_span(
        &mut self,
        key: u64,
        from: SimTime,
        name: &'static str,
        cat: Subsystem,
        pid: u32,
        tid: u32,
    ) {
        self.open.push((
            key,
            TraceEvent {
                name,
                cat,
                ts: from,
                dur: None,
                pid,
                tid,
                args: Vec::new(),
            },
        ));
    }

    /// Closes the pending span opened under `key`, recording it as a
    /// complete span. A close without a matching open is ignored (a
    /// forked run may begin mid-window).
    pub fn end_span(&mut self, key: u64, at: SimTime) {
        if let Some(i) = self.open.iter().position(|(k, _)| *k == key) {
            let (_, mut ev) = self.open.remove(i);
            ev.dur = Some(at - ev.ts);
            self.subsystems[ev.cat.index()] += 1;
            self.record(ev);
        }
    }

    /// Events recorded so far (excluding counted-only pops).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no event has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Seals the sink: flushes still-open spans at `end` and produces
    /// the exportable report.
    pub fn finish(mut self, end: SimTime) -> TraceReport {
        let open = std::mem::take(&mut self.open);
        for (_, mut ev) in open {
            ev.dur = Some(end - ev.ts);
            self.subsystems[ev.cat.index()] += 1;
            self.record(ev);
        }
        TraceReport {
            events: self.events,
            pop_kinds: self.pop_kinds,
            subsystems: Subsystem::ALL
                .iter()
                .map(|&s| (s, self.subsystems[s.index()]))
                .collect(),
            sim_events: self.pops,
            dropped: self.dropped,
            end,
        }
    }
}

/// The sealed output of one traced run: the recorded events plus the
/// profiler's per-subsystem accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceReport {
    /// Recorded events in recording (simulated-time) order.
    pub events: Vec<TraceEvent>,
    /// Event-queue pops per event kind.
    pub pop_kinds: Vec<(&'static str, u64)>,
    /// Activity per subsystem (pops + recorded events).
    pub subsystems: Vec<(Subsystem, u64)>,
    /// Total event-queue pops the run dispatched.
    pub sim_events: u64,
    /// Events discarded at the [`TraceConfig::max_events`] cap.
    pub dropped: u64,
    /// Simulated end time of the run.
    pub end: SimTime,
}

impl TraceReport {
    /// Renders the report as a Chrome trace-event JSON object
    /// (`{"traceEvents": [...], ...}`) that `ui.perfetto.dev` and
    /// `chrome://tracing` open directly.
    ///
    /// Timestamps are the *simulated* clock in microseconds. Process
    /// lanes follow the workspace convention: pid [`SIM_PID`] is the
    /// global `sim` process with one thread per subsystem, and pid
    /// [`node_pid`]`(i)` is `node i` with one thread per VM slot.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"otherData\":{");
        out.push_str(&format!(
            "\"clock\":\"simulated\",\"sim_events\":{},\"recorded\":{},\"dropped\":{}",
            self.sim_events,
            self.events.len(),
            self.dropped
        ));
        out.push_str("},\"traceEvents\":[");
        let mut first = true;
        let mut emit = |out: &mut String, piece: &str| {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(piece);
        };
        // Metadata: name the process/thread lanes that appear.
        let mut pids: Vec<u32> = self.events.iter().map(|e| e.pid).collect();
        pids.sort_unstable();
        pids.dedup();
        for pid in &pids {
            let name = if *pid == SIM_PID {
                "sim".to_string()
            } else {
                format!("node {}", pid.saturating_sub(100))
            };
            emit(
                &mut out,
                &format!(
                    "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":{}}}}}",
                    json_str(&name)
                ),
            );
        }
        let mut lanes: Vec<(u32, u32)> = self.events.iter().map(|e| (e.pid, e.tid)).collect();
        lanes.sort_unstable();
        lanes.dedup();
        for (pid, tid) in &lanes {
            let name = if *pid == SIM_PID {
                Subsystem::ALL
                    .get(*tid as usize)
                    .map_or_else(|| format!("lane {tid}"), |s| s.name().to_string())
            } else {
                format!("vm {tid}")
            };
            emit(
                &mut out,
                &format!(
                    "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":{}}}}}",
                    json_str(&name)
                ),
            );
        }
        for ev in &self.events {
            let ts_us = ev.ts.as_nanos() as f64 / 1_000.0;
            let mut piece = String::with_capacity(96);
            piece.push('{');
            piece.push_str(&format!("\"name\":{},", json_str(ev.name)));
            piece.push_str(&format!("\"cat\":\"{}\",", ev.cat.name()));
            match ev.dur {
                Some(dur) => {
                    let dur_us = dur.as_nanos() as f64 / 1_000.0;
                    piece.push_str(&format!(
                        "\"ph\":\"X\",\"ts\":{ts_us:.3},\"dur\":{dur_us:.3},"
                    ));
                }
                None if ev.name == "events" => {
                    piece.push_str(&format!("\"ph\":\"C\",\"ts\":{ts_us:.3},"));
                }
                None => {
                    piece.push_str(&format!("\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts_us:.3},"));
                }
            }
            piece.push_str(&format!(
                "\"pid\":{},\"tid\":{},\"args\":{{",
                ev.pid, ev.tid
            ));
            for (i, (key, value)) in ev.args.iter().enumerate() {
                if i > 0 {
                    piece.push(',');
                }
                piece.push_str(&format!("{}:", json_str(key)));
                match value {
                    ArgValue::I64(v) => piece.push_str(&v.to_string()),
                    ArgValue::U64(v) => piece.push_str(&v.to_string()),
                    ArgValue::F64(v) if v.is_finite() => piece.push_str(&format!("{v:?}")),
                    ArgValue::F64(_) => piece.push_str("null"),
                    ArgValue::Bool(v) => piece.push_str(if *v { "true" } else { "false" }),
                    ArgValue::Str(s) => piece.push_str(&json_str(s)),
                }
            }
            piece.push_str("}}");
            emit(&mut out, &piece);
        }
        out.push_str("]}");
        out
    }

    /// Share of total activity attributed to `sub`, in `[0, 1]` (0 when
    /// the run recorded nothing).
    pub fn subsystem_share(&self, sub: Subsystem) -> f64 {
        let total: u64 = self.subsystems.iter().map(|(_, n)| n).sum();
        if total == 0 {
            return 0.0;
        }
        let own = self
            .subsystems
            .iter()
            .find(|(s, _)| *s == sub)
            .map_or(0, |(_, n)| *n);
        own as f64 / total as f64
    }
}

/// Escapes `s` as a JSON string literal (quotes included).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_exports() {
        let mut sink = TraceSink::new(TraceConfig::default());
        sink.pop(SimTime::from_millis(1), "transmit", Subsystem::Netsim);
        sink.instant(
            SimTime::from_millis(2),
            "fta_round",
            Subsystem::Fta,
            node_pid(0),
            0,
        )
        .arg_i64("offset_ns", -42)
        .arg_str("mode", "fault_tolerant");
        sink.span(
            SimTime::from_millis(3),
            Nanos::from_micros(12),
            "tx",
            Subsystem::Gptp,
            node_pid(1),
            1,
        );
        let report = sink.finish(SimTime::from_millis(10));
        assert_eq!(report.sim_events, 1);
        assert_eq!(report.events.len(), 2);
        let json = report.to_chrome_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"fta_round\""));
        assert!(json.contains("\"offset_ns\":-42"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"process_name\""));
    }

    #[test]
    fn pending_spans_flush_at_finish() {
        let mut sink = TraceSink::new(TraceConfig::default());
        sink.begin_span(
            7,
            SimTime::from_millis(4),
            "link_down",
            Subsystem::Netsim,
            SIM_PID,
            0,
        );
        sink.end_span(99, SimTime::from_millis(5)); // unmatched: ignored
        let report = sink.finish(SimTime::from_millis(9));
        assert_eq!(report.events.len(), 1);
        assert_eq!(report.events[0].dur, Some(Nanos::from_millis(5)));
    }

    #[test]
    fn cap_counts_drops_instead_of_growing() {
        let mut sink = TraceSink::new(TraceConfig {
            max_events: 2,
            counter_stride: 4096,
        });
        for i in 0..5 {
            sink.instant(SimTime::from_millis(i), "x", Subsystem::Hyp, SIM_PID, 0);
        }
        let report = sink.finish(SimTime::from_millis(5));
        assert_eq!(report.events.len(), 2);
        assert_eq!(report.dropped, 3);
        assert!(report.to_chrome_json().contains("\"dropped\":3"));
    }

    #[test]
    fn pop_counter_track_is_sampled() {
        let mut sink = TraceSink::new(TraceConfig {
            max_events: 1 << 20,
            counter_stride: 2,
        });
        for i in 0..5 {
            sink.pop(SimTime::from_millis(i), "transmit", Subsystem::Netsim);
        }
        let report = sink.finish(SimTime::from_millis(5));
        assert_eq!(report.sim_events, 5);
        assert_eq!(report.pop_kinds, vec![("transmit", 5)]);
        // Counter samples at pop 2 and 4.
        assert_eq!(
            report.events.iter().filter(|e| e.name == "events").count(),
            2
        );
    }

    #[test]
    fn subsystem_shares_sum_to_one() {
        let mut sink = TraceSink::new(TraceConfig::default());
        sink.pop(SimTime::from_millis(1), "transmit", Subsystem::Netsim);
        sink.instant(SimTime::from_millis(1), "servo", Subsystem::Servo, 100, 0);
        let report = sink.finish(SimTime::from_millis(2));
        let total: f64 = Subsystem::ALL
            .iter()
            .map(|&s| report.subsystem_share(s))
            .sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(report.subsystem_share(Subsystem::Netsim) > 0.0);
    }
}
