//! Per-domain end-station port machinery: Sync master and Sync slave.
//!
//! A clock-synchronization VM runs one instance per gPTP domain (the
//! paper's `M` `ptp4l` processes). On its own domain a grandmaster VM
//! runs a [`SyncMaster`]; on every other domain it runs a [`SyncSlave`].
//! Redundant (non-GM) VMs run slaves on all domains.
//!
//! Engines are sans-IO: the experiment world feeds them frames and
//! hardware timestamps and transmits whatever bytes they emit.

use crate::msg::{FollowUpTlv, Header, Message, MessageType, FLAG_TWO_STEP};
use crate::types::{rate_ratio, PortIdentity, PtpTimestamp};
use bytes::Bytes;
use tsn_time::{ClockTime, Nanos};

/// A grandmaster's per-domain Sync transmitter (two-step).
///
/// The flow per synchronization interval:
/// 1. [`SyncMaster::make_sync`] produces the `Sync` bytes; the caller
///    schedules them with an ETF launch time on the interval boundary;
/// 2. once the NIC reports the hardware egress timestamp, the caller
///    invokes [`SyncMaster::sync_sent`] to obtain the `Follow_Up`;
/// 3. if timestamp retrieval times out (the igb driver fault the paper
///    observed 2992 times in 24 h), the caller invokes
///    [`SyncMaster::sync_tx_failed`] instead and no `Follow_Up` is sent.
#[derive(Debug, Clone)]
pub struct SyncMaster {
    domain: u8,
    port: PortIdentity,
    log_sync_interval: i8,
    // (interval may be changed at runtime via Signaling)
    one_step: bool,
    next_seq: u16,
    pending: Option<u16>,
    /// Malicious shift applied to the `preciseOriginTimestamp`. Zero for
    /// a benign master; the paper's attacker sets −24 µs after rooting
    /// the GM VM.
    pub pot_offset: Nanos,
    /// Count of Sync transmissions whose Follow_Up was never sent because
    /// the hardware transmit timestamp could not be retrieved.
    pub tx_timestamp_timeouts: u64,
    /// Count of Syncs dropped by the ETF qdisc (launch deadline missed).
    pub tx_deadline_misses: u64,
}

impl SyncMaster {
    /// Creates a master for `domain` with the given sync interval
    /// (log2 seconds; −3 is the paper's 125 ms).
    pub fn new(domain: u8, port: PortIdentity, log_sync_interval: i8) -> Self {
        SyncMaster {
            domain,
            port,
            log_sync_interval,
            one_step: false,
            next_seq: 0,
            pending: None,
            pot_offset: Nanos::ZERO,
            tx_timestamp_timeouts: 0,
            tx_deadline_misses: 0,
        }
    }

    /// The master's domain.
    pub fn domain(&self) -> u8 {
        self.domain
    }

    /// The master's port identity.
    pub fn port_identity(&self) -> PortIdentity {
        self.port
    }

    /// Builds the next `Sync`; returns the encoded bytes and its
    /// sequence id.
    ///
    /// If the previous `Sync` is still awaiting its transmit timestamp the
    /// pending state is abandoned (counted as a timeout).
    pub fn make_sync(&mut self) -> (Bytes, u16) {
        if self.pending.take().is_some() {
            self.tx_timestamp_timeouts += 1;
        }
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        self.pending = Some(seq);
        let msg = Message::Sync {
            header: Header::new(
                MessageType::Sync,
                self.domain,
                self.port,
                seq,
                self.log_sync_interval,
            ),
            origin: PtpTimestamp::default(),
        };
        (msg.encode(), seq)
    }

    /// The `Sync` with id `seq` departed at hardware timestamp `tx_ts`;
    /// returns the corresponding `Follow_Up`.
    ///
    /// The `preciseOriginTimestamp` is `tx_ts + pot_offset` — the benign
    /// value when `pot_offset` is zero, the Byzantine value otherwise.
    pub fn sync_sent(&mut self, seq: u16, tx_ts: ClockTime) -> Option<Bytes> {
        if self.pending != Some(seq) {
            return None;
        }
        self.pending = None;
        let fu = Message::FollowUp {
            header: Header::new(
                MessageType::FollowUp,
                self.domain,
                self.port,
                seq,
                self.log_sync_interval,
            ),
            precise_origin: PtpTimestamp::from_clock_time(tx_ts + self.pot_offset),
            tlv: FollowUpTlv::default(), // GM: cumulative rate offset 0
        };
        Some(fu.encode())
    }

    /// Transmit-timestamp retrieval for `seq` timed out; no `Follow_Up`
    /// is produced.
    pub fn sync_tx_failed(&mut self, seq: u16) {
        if self.pending == Some(seq) {
            self.pending = None;
            self.tx_timestamp_timeouts += 1;
        }
    }

    /// The `Sync` with id `seq` missed its launch deadline and was
    /// dropped by the qdisc.
    pub fn sync_deadline_missed(&mut self, seq: u16) {
        if self.pending == Some(seq) {
            self.pending = None;
            self.tx_deadline_misses += 1;
        }
    }

    /// The current log2 Sync interval.
    pub fn log_sync_interval(&self) -> i8 {
        self.log_sync_interval
    }

    /// Switches to one-step operation (802.1AS-2020 optional feature,
    /// supported by e.g. the Intel I210): the hardware inserts the egress
    /// timestamp into the Sync itself and no Follow_Up is sent.
    pub fn set_one_step(&mut self, one_step: bool) {
        self.one_step = one_step;
    }

    /// `true` in one-step operation.
    pub fn is_one_step(&self) -> bool {
        self.one_step
    }

    /// One-step only: produces the final Sync bytes with the hardware
    /// egress timestamp inserted (what the NIC does on the wire). No
    /// Follow_Up follows.
    ///
    /// # Panics
    ///
    /// Panics if the master is in two-step mode.
    pub fn finalize_one_step(&mut self, seq: u16, tx_ts: ClockTime) -> Option<Bytes> {
        assert!(self.one_step, "finalize_one_step requires one-step mode");
        if self.pending != Some(seq) {
            return None;
        }
        self.pending = None;
        let mut header = Header::new(
            MessageType::Sync,
            self.domain,
            self.port,
            seq,
            self.log_sync_interval,
        );
        header.flags &= !FLAG_TWO_STEP;
        Some(
            Message::Sync {
                header,
                origin: PtpTimestamp::from_clock_time(tx_ts + self.pot_offset),
            }
            .encode(),
        )
    }

    /// Handles a Signaling message targeting this port (or any port) and
    /// applies a requested Sync-interval change (clause 10.6.4.3;
    /// 127 = leave unchanged). Returns the new interval if it changed.
    pub fn handle_signaling(&mut self, msg: &Message) -> Option<i8> {
        let Message::Signaling {
            header,
            target_port,
            tlv,
        } = msg
        else {
            return None;
        };
        if header.domain != self.domain {
            return None;
        }
        let any = PortIdentity::new(crate::types::ClockIdentity([0xFF; 8]), 0xFFFF);
        if *target_port != self.port && *target_port != any {
            return None;
        }
        if tlv.time_sync_interval == crate::msg::IntervalRequestTlv::UNCHANGED
            || tlv.time_sync_interval == self.log_sync_interval
        {
            return None;
        }
        self.log_sync_interval = tlv.time_sync_interval;
        Some(self.log_sync_interval)
    }
}

/// A slave's view of one completed Sync/Follow_Up pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OffsetSample {
    /// gPTP domain the sample belongs to.
    pub domain: u8,
    /// Offset of the local clock from the domain GM:
    /// `rx_ts − (preciseOrigin + correction + meanLinkDelay)`.
    pub offset: Nanos,
    /// Local hardware receive timestamp of the `Sync`.
    pub sync_rx_local: ClockTime,
    /// The corrected origin (GM time of the Sync's arrival instant).
    pub corrected_origin: ClockTime,
    /// Cumulative GM-to-local rate ratio.
    pub rate_ratio: f64,
    /// Source port of the Sync (the upstream master).
    pub source_port: PortIdentity,
}

#[derive(Debug, Clone, Copy)]
struct PendingSync {
    seq: u16,
    rx_ts: ClockTime,
    source: PortIdentity,
}

/// A per-domain Sync receiver computing GM offsets.
#[derive(Debug, Clone)]
pub struct SyncSlave {
    domain: u8,
    pending: Option<PendingSync>,
    /// Syncs whose Follow_Up never arrived.
    pub missed_follow_ups: u64,
    /// Last completed sample.
    last_sample: Option<OffsetSample>,
    /// Local receive timestamp of the last Sync (any completeness).
    last_sync_rx: Option<ClockTime>,
}

impl SyncSlave {
    /// Creates a slave for `domain`.
    pub fn new(domain: u8) -> Self {
        SyncSlave {
            domain,
            pending: None,
            missed_follow_ups: 0,
            last_sample: None,
            last_sync_rx: None,
        }
    }

    /// `true` if no Sync has been received within `timeout` of `now`
    /// (802.1AS `syncReceiptTimeout`, default 3 sync intervals): the
    /// upstream master is silent and the time data for this domain is no
    /// longer current.
    pub fn sync_receipt_timed_out(&self, now: ClockTime, timeout: Nanos) -> bool {
        match self.last_sync_rx {
            Some(rx) => now - rx > timeout,
            None => true,
        }
    }

    /// The slave's domain.
    pub fn domain(&self) -> u8 {
        self.domain
    }

    /// The most recent completed sample, if any.
    pub fn last_sample(&self) -> Option<&OffsetSample> {
        self.last_sample.as_ref()
    }

    /// One-step reception: a `Sync` with the two-step flag clear carries
    /// its own origin timestamp and correction; the offset is computed
    /// immediately, no Follow_Up is expected.
    ///
    /// Returns `None` for two-step Syncs (use
    /// [`SyncSlave::handle_sync`] + [`SyncSlave::handle_follow_up`]).
    pub fn handle_one_step_sync(
        &mut self,
        msg: &Message,
        rx_ts: ClockTime,
        mean_link_delay: Nanos,
        local_nrr: f64,
    ) -> Option<OffsetSample> {
        let Message::Sync { header, origin } = msg else {
            return None;
        };
        if header.domain != self.domain || header.flags & FLAG_TWO_STEP != 0 {
            return None;
        }
        let corrected_origin =
            origin.to_clock_time() + header.correction.to_nanos() + mean_link_delay;
        let sample = OffsetSample {
            domain: self.domain,
            offset: rx_ts - corrected_origin,
            sync_rx_local: rx_ts,
            corrected_origin,
            rate_ratio: local_nrr,
            source_port: header.source_port,
        };
        self.last_sample = Some(sample);
        Some(sample)
    }

    /// Handles a received `Sync` (hardware rx timestamp `rx_ts`).
    pub fn handle_sync(&mut self, msg: &Message, rx_ts: ClockTime) {
        let Message::Sync { header, .. } = msg else {
            return;
        };
        if header.domain != self.domain {
            return;
        }
        if self.pending.take().is_some() {
            self.missed_follow_ups += 1;
        }
        self.last_sync_rx = Some(rx_ts);
        self.pending = Some(PendingSync {
            seq: header.sequence_id,
            rx_ts,
            source: header.source_port,
        });
    }

    /// Handles the matching `Follow_Up`, producing an offset sample.
    ///
    /// `mean_link_delay` and `local_nrr` come from the port's shared
    /// peer-delay service.
    pub fn handle_follow_up(
        &mut self,
        msg: &Message,
        mean_link_delay: Nanos,
        local_nrr: f64,
    ) -> Option<OffsetSample> {
        let Message::FollowUp {
            header,
            precise_origin,
            tlv,
        } = msg
        else {
            return None;
        };
        if header.domain != self.domain {
            return None;
        }
        let pending = self.pending?;
        if header.sequence_id != pending.seq || header.source_port != pending.source {
            return None;
        }
        self.pending = None;

        let origin = precise_origin.to_clock_time();
        let correction = header.correction.to_nanos();
        let corrected_origin = origin + correction + mean_link_delay;
        let offset = pending.rx_ts - corrected_origin;
        let cumulative = rate_ratio::from_scaled(tlv.cumulative_scaled_rate_offset);
        // Rate ratios compose multiplicatively; for ppm-scale deviations
        // the additive approximation the standard uses is exact enough.
        let rr = cumulative * local_nrr;
        let sample = OffsetSample {
            domain: self.domain,
            offset,
            sync_rx_local: pending.rx_ts,
            corrected_origin,
            rate_ratio: rr,
            source_port: header.source_port,
        };
        self.last_sample = Some(sample);
        Some(sample)
    }

    /// Clears any half-completed state (used when the upstream master
    /// changes or the VM restarts).
    pub fn reset(&mut self) {
        if self.pending.take().is_some() {
            self.missed_follow_ups += 1;
        }
        self.last_sample = None;
        self.last_sync_rx = None;
    }
}

use tsn_snapshot::{Reader, Snap, SnapError, SnapState, Writer};

impl Snap for OffsetSample {
    fn put(&self, w: &mut Writer) {
        self.domain.put(w);
        self.offset.put(w);
        self.sync_rx_local.put(w);
        self.corrected_origin.put(w);
        self.rate_ratio.put(w);
        self.source_port.put(w);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(OffsetSample {
            domain: Snap::get(r)?,
            offset: Snap::get(r)?,
            sync_rx_local: Snap::get(r)?,
            corrected_origin: Snap::get(r)?,
            rate_ratio: Snap::get(r)?,
            source_port: Snap::get(r)?,
        })
    }
}

impl Snap for PendingSync {
    fn put(&self, w: &mut Writer) {
        self.seq.put(w);
        self.rx_ts.put(w);
        self.source.put(w);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(PendingSync {
            seq: Snap::get(r)?,
            rx_ts: Snap::get(r)?,
            source: Snap::get(r)?,
        })
    }
}

impl SnapState for SyncMaster {
    fn save_state(&self, w: &mut Writer) {
        self.log_sync_interval.put(w);
        self.one_step.put(w);
        self.next_seq.put(w);
        self.pending.put(w);
        self.pot_offset.put(w);
        self.tx_timestamp_timeouts.put(w);
        self.tx_deadline_misses.put(w);
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        self.log_sync_interval = Snap::get(r)?;
        self.one_step = Snap::get(r)?;
        self.next_seq = Snap::get(r)?;
        self.pending = Snap::get(r)?;
        self.pot_offset = Snap::get(r)?;
        self.tx_timestamp_timeouts = Snap::get(r)?;
        self.tx_deadline_misses = Snap::get(r)?;
        Ok(())
    }
}

impl SnapState for SyncSlave {
    fn save_state(&self, w: &mut Writer) {
        self.pending.put(w);
        self.missed_follow_ups.put(w);
        self.last_sample.put(w);
        self.last_sync_rx.put(w);
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        self.pending = Snap::get(r)?;
        self.missed_follow_ups = Snap::get(r)?;
        self.last_sample = Snap::get(r)?;
        self.last_sync_rx = Snap::get(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ClockIdentity;

    fn pid(i: u32) -> PortIdentity {
        PortIdentity::new(ClockIdentity::for_index(i), 1)
    }

    fn complete_exchange(
        master: &mut SyncMaster,
        slave: &mut SyncSlave,
        tx_ts: i64,
        rx_ts: i64,
        link_delay: i64,
    ) -> Option<OffsetSample> {
        let (sync_bytes, seq) = master.make_sync();
        let sync = Message::decode(&sync_bytes).unwrap();
        slave.handle_sync(&sync, ClockTime::from_nanos(rx_ts));
        let fu_bytes = master.sync_sent(seq, ClockTime::from_nanos(tx_ts)).unwrap();
        let fu = Message::decode(&fu_bytes).unwrap();
        slave.handle_follow_up(&fu, Nanos::from_nanos(link_delay), 1.0)
    }

    #[test]
    fn offset_zero_for_synchronized_clocks() {
        let mut master = SyncMaster::new(1, pid(1), -3);
        let mut slave = SyncSlave::new(1);
        // Slave receives 2500 ns after tx; link delay measured as 2500.
        let s = complete_exchange(&mut master, &mut slave, 1_000_000, 1_002_500, 2_500).unwrap();
        assert_eq!(s.offset, Nanos::ZERO);
    }

    #[test]
    fn offset_reflects_clock_skew() {
        let mut master = SyncMaster::new(1, pid(1), -3);
        let mut slave = SyncSlave::new(1);
        // Slave clock 10 µs ahead of GM.
        let s = complete_exchange(
            &mut master,
            &mut slave,
            1_000_000,
            1_002_500 + 10_000,
            2_500,
        )
        .unwrap();
        assert_eq!(s.offset, Nanos::from_micros(10));
    }

    #[test]
    fn malicious_pot_offset_shifts_measured_offset() {
        let mut master = SyncMaster::new(1, pid(1), -3);
        master.pot_offset = Nanos::from_micros(-24);
        let mut slave = SyncSlave::new(1);
        let s = complete_exchange(&mut master, &mut slave, 1_000_000, 1_002_500, 2_500).unwrap();
        // POT shifted −24 µs makes the slave believe it is +24 µs ahead.
        assert_eq!(s.offset, Nanos::from_micros(24));
    }

    #[test]
    fn wrong_domain_ignored() {
        let mut master = SyncMaster::new(1, pid(1), -3);
        let mut slave = SyncSlave::new(2);
        assert!(complete_exchange(&mut master, &mut slave, 0, 0, 0).is_none());
    }

    #[test]
    fn follow_up_without_sync_ignored() {
        let mut master = SyncMaster::new(1, pid(1), -3);
        let mut slave = SyncSlave::new(1);
        let (_, seq) = master.make_sync();
        let fu_bytes = master.sync_sent(seq, ClockTime::from_nanos(5)).unwrap();
        let fu = Message::decode(&fu_bytes).unwrap();
        assert!(slave.handle_follow_up(&fu, Nanos::ZERO, 1.0).is_none());
    }

    #[test]
    fn mismatched_sequence_ignored() {
        let mut master = SyncMaster::new(1, pid(1), -3);
        let mut slave = SyncSlave::new(1);
        let (sync_bytes, seq) = master.make_sync();
        let sync = Message::decode(&sync_bytes).unwrap();
        slave.handle_sync(&sync, ClockTime::from_nanos(100));
        // Forge a follow-up with a different sequence id.
        let fu = Message::FollowUp {
            header: Header::new(MessageType::FollowUp, 1, pid(1), seq.wrapping_add(1), -3),
            precise_origin: PtpTimestamp::default(),
            tlv: FollowUpTlv::default(),
        };
        assert!(slave.handle_follow_up(&fu, Nanos::ZERO, 1.0).is_none());
    }

    #[test]
    fn tx_timeout_counted_and_no_follow_up() {
        let mut master = SyncMaster::new(1, pid(1), -3);
        let (_, seq) = master.make_sync();
        master.sync_tx_failed(seq);
        assert_eq!(master.tx_timestamp_timeouts, 1);
        // Late timestamp arrival after the failure is ignored.
        assert!(master.sync_sent(seq, ClockTime::ZERO).is_none());
    }

    #[test]
    fn abandoned_pending_sync_counts_as_timeout() {
        let mut master = SyncMaster::new(1, pid(1), -3);
        let _ = master.make_sync();
        let _ = master.make_sync(); // previous never timestamped
        assert_eq!(master.tx_timestamp_timeouts, 1);
    }

    #[test]
    fn deadline_miss_counted() {
        let mut master = SyncMaster::new(1, pid(1), -3);
        let (_, seq) = master.make_sync();
        master.sync_deadline_missed(seq);
        assert_eq!(master.tx_deadline_misses, 1);
    }

    #[test]
    fn missed_follow_up_counted_on_next_sync() {
        let mut master = SyncMaster::new(1, pid(1), -3);
        let mut slave = SyncSlave::new(1);
        let (sync_bytes, _) = master.make_sync();
        let sync = Message::decode(&sync_bytes).unwrap();
        slave.handle_sync(&sync, ClockTime::from_nanos(1));
        let (sync_bytes2, _) = master.make_sync();
        let sync2 = Message::decode(&sync_bytes2).unwrap();
        slave.handle_sync(&sync2, ClockTime::from_nanos(2));
        assert_eq!(slave.missed_follow_ups, 1);
    }

    #[test]
    fn one_step_exchange_computes_offset_without_follow_up() {
        let mut master = SyncMaster::new(1, pid(1), -3);
        master.set_one_step(true);
        assert!(master.is_one_step());
        let mut slave = SyncSlave::new(1);
        let (_template, seq) = master.make_sync();
        // Hardware inserts the egress timestamp at departure.
        let bytes = master
            .finalize_one_step(seq, ClockTime::from_nanos(1_000_000))
            .expect("finalized");
        let sync = Message::decode(&bytes).unwrap();
        assert_eq!(sync.header().flags & FLAG_TWO_STEP, 0, "one-step flag");
        let sample = slave
            .handle_one_step_sync(
                &sync,
                ClockTime::from_nanos(1_002_500 + 750),
                Nanos::from_nanos(2_500),
                1.0,
            )
            .expect("one-step sample");
        assert_eq!(sample.offset, Nanos::from_nanos(750));
        // No pending Follow_Up state was created.
        assert_eq!(slave.missed_follow_ups, 0);
    }

    #[test]
    fn one_step_malicious_origin_shifts_offset() {
        let mut master = SyncMaster::new(1, pid(1), -3);
        master.set_one_step(true);
        master.pot_offset = Nanos::from_micros(-24);
        let mut slave = SyncSlave::new(1);
        let (_t, seq) = master.make_sync();
        let bytes = master
            .finalize_one_step(seq, ClockTime::from_nanos(1_000_000))
            .unwrap();
        let sync = Message::decode(&bytes).unwrap();
        let sample = slave
            .handle_one_step_sync(
                &sync,
                ClockTime::from_nanos(1_002_500),
                Nanos::from_nanos(2_500),
                1.0,
            )
            .unwrap();
        assert_eq!(sample.offset, Nanos::from_micros(24));
    }

    #[test]
    fn two_step_sync_rejected_by_one_step_handler() {
        let mut master = SyncMaster::new(1, pid(1), -3);
        let mut slave = SyncSlave::new(1);
        let (bytes, _) = master.make_sync();
        let sync = Message::decode(&bytes).unwrap();
        assert!(slave
            .handle_one_step_sync(&sync, ClockTime::ZERO, Nanos::ZERO, 1.0)
            .is_none());
    }

    #[test]
    #[should_panic(expected = "requires one-step mode")]
    fn finalize_one_step_in_two_step_mode_panics() {
        let mut master = SyncMaster::new(1, pid(1), -3);
        let (_b, seq) = master.make_sync();
        let _ = master.finalize_one_step(seq, ClockTime::ZERO);
    }

    #[test]
    fn signaling_changes_sync_interval() {
        use crate::msg::IntervalRequestTlv;
        let mut master = SyncMaster::new(1, pid(1), -3);
        let sig = Message::Signaling {
            header: Header::new(MessageType::Signaling, 1, pid(9), 0, 0x7F),
            target_port: pid(1),
            tlv: IntervalRequestTlv {
                link_delay_interval: IntervalRequestTlv::UNCHANGED,
                time_sync_interval: -2,
                announce_interval: IntervalRequestTlv::UNCHANGED,
                flags: 0,
            },
        };
        assert_eq!(master.handle_signaling(&sig), Some(-2));
        assert_eq!(master.log_sync_interval(), -2);
        // The next Sync advertises the new interval.
        let (bytes, _) = master.make_sync();
        let m = Message::decode(&bytes).unwrap();
        assert_eq!(m.header().log_message_interval, -2);
        // "Unchanged" request is a no-op.
        let sig2 = Message::Signaling {
            header: Header::new(MessageType::Signaling, 1, pid(9), 1, 0x7F),
            target_port: pid(1),
            tlv: IntervalRequestTlv {
                link_delay_interval: IntervalRequestTlv::UNCHANGED,
                time_sync_interval: IntervalRequestTlv::UNCHANGED,
                announce_interval: IntervalRequestTlv::UNCHANGED,
                flags: 0,
            },
        };
        assert_eq!(master.handle_signaling(&sig2), None);
    }

    #[test]
    fn signaling_for_other_port_or_domain_ignored() {
        use crate::msg::IntervalRequestTlv;
        let mut master = SyncMaster::new(1, pid(1), -3);
        let mk = |domain, target| Message::Signaling {
            header: Header::new(MessageType::Signaling, domain, pid(9), 0, 0x7F),
            target_port: target,
            tlv: IntervalRequestTlv {
                link_delay_interval: IntervalRequestTlv::UNCHANGED,
                time_sync_interval: -1,
                announce_interval: IntervalRequestTlv::UNCHANGED,
                flags: 0,
            },
        };
        assert_eq!(master.handle_signaling(&mk(2, pid(1))), None);
        assert_eq!(master.handle_signaling(&mk(1, pid(5))), None);
        // All-ones target addresses any port.
        let any = PortIdentity::new(ClockIdentity([0xFF; 8]), 0xFFFF);
        assert_eq!(master.handle_signaling(&mk(1, any)), Some(-1));
    }

    #[test]
    fn sync_receipt_timeout_detects_silent_master() {
        let mut master = SyncMaster::new(1, pid(1), -3);
        let mut slave = SyncSlave::new(1);
        let timeout = Nanos::from_millis(375); // 3 × 125 ms
                                               // Never heard anything: timed out.
        assert!(slave.sync_receipt_timed_out(ClockTime::from_nanos(0), timeout));
        let (sync_bytes, _) = master.make_sync();
        let sync = Message::decode(&sync_bytes).unwrap();
        slave.handle_sync(&sync, ClockTime::from_nanos(1_000_000));
        assert!(!slave.sync_receipt_timed_out(ClockTime::from_nanos(300_000_000), timeout));
        assert!(slave.sync_receipt_timed_out(ClockTime::from_nanos(500_000_000), timeout));
        // Reset clears the receipt history.
        slave.reset();
        assert!(slave.sync_receipt_timed_out(ClockTime::from_nanos(1_000_001), timeout));
    }

    #[test]
    fn correction_field_applied() {
        let mut master = SyncMaster::new(1, pid(1), -3);
        let mut slave = SyncSlave::new(1);
        let (sync_bytes, seq) = master.make_sync();
        let sync = Message::decode(&sync_bytes).unwrap();
        slave.handle_sync(&sync, ClockTime::from_nanos(10_000));
        let fu_bytes = master.sync_sent(seq, ClockTime::from_nanos(1_000)).unwrap();
        // Simulate a bridge adding 3 µs of residence correction.
        let mut fu = Message::decode(&fu_bytes).unwrap();
        if let Message::FollowUp { header, .. } = &mut fu {
            header.correction = Correction::from_nanos(Nanos::from_micros(3));
        }
        let s = slave
            .handle_follow_up(&fu, Nanos::from_nanos(2_000), 1.0)
            .unwrap();
        // offset = 10000 − (1000 + 3000 + 2000) = 4000.
        assert_eq!(s.offset, Nanos::from_nanos(4_000));
    }

    use crate::types::Correction;
}
