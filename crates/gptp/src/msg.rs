//! IEEE 802.1AS message wire formats.
//!
//! Byte-level encode/decode of the gPTP message set: the IEEE 1588 common
//! header (34 bytes), two-step `Sync`, `Follow_Up` with the 802.1AS
//! Follow_Up information TLV (`cumulativeScaledRateOffset` et al.), the
//! peer-delay triple, and `Announce`.
//!
//! Frames on the simulated wire are these bytes; the malicious `ptp4l` of
//! the paper's cyber-resilience experiment manipulates the encoded
//! `preciseOriginTimestamp`, so nothing downstream can tell a Byzantine
//! grandmaster from an honest one except by its timing content.

use crate::types::{ClockIdentity, ClockQuality, Correction, PortIdentity, PtpTimestamp};
use bytes::{BufMut, Bytes, BytesMut};
use std::fmt;

/// gPTP `majorSdoId` (transportSpecific) nibble.
pub const GPTP_MAJOR_SDO_ID: u8 = 0x1;
/// PTP version encoded in all messages.
pub const PTP_VERSION: u8 = 0x02;

/// Two-step flag (octet 0 bit 1 of the flags field).
pub const FLAG_TWO_STEP: u16 = 0x0200;
/// PTP timescale flag (octet 1 bit 3).
pub const FLAG_PTP_TIMESCALE: u16 = 0x0008;

/// PTP message types (IEEE 1588 Table 36).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum MessageType {
    /// Event: Sync.
    Sync = 0x0,
    /// Event: Delay_Req (IEEE 1588 end-to-end mechanism; plain PTP —
    /// gPTP proper always uses the peer-delay mechanism).
    DelayReq = 0x1,
    /// Event: Pdelay_Req.
    PdelayReq = 0x2,
    /// Event: Pdelay_Resp.
    PdelayResp = 0x3,
    /// General: Follow_Up.
    FollowUp = 0x8,
    /// General: Delay_Resp (end-to-end mechanism).
    DelayResp = 0x9,
    /// General: Pdelay_Resp_Follow_Up.
    PdelayRespFollowUp = 0xA,
    /// General: Announce.
    Announce = 0xB,
    /// General: Signaling (carries the 802.1AS message-interval request).
    Signaling = 0xC,
}

impl MessageType {
    fn from_nibble(n: u8) -> Option<MessageType> {
        Some(match n {
            0x0 => MessageType::Sync,
            0x1 => MessageType::DelayReq,
            0x2 => MessageType::PdelayReq,
            0x3 => MessageType::PdelayResp,
            0x8 => MessageType::FollowUp,
            0x9 => MessageType::DelayResp,
            0xA => MessageType::PdelayRespFollowUp,
            0xB => MessageType::Announce,
            0xC => MessageType::Signaling,
            _ => return None,
        })
    }

    /// Lower-case name for logs and trace lanes.
    pub fn name(self) -> &'static str {
        match self {
            MessageType::Sync => "sync",
            MessageType::DelayReq => "delay_req",
            MessageType::PdelayReq => "pdelay_req",
            MessageType::PdelayResp => "pdelay_resp",
            MessageType::FollowUp => "follow_up",
            MessageType::DelayResp => "delay_resp",
            MessageType::PdelayRespFollowUp => "pdelay_resp_follow_up",
            MessageType::Announce => "announce",
            MessageType::Signaling => "signaling",
        }
    }

    /// Reads the message type from the first byte of an encoded message
    /// without decoding the rest — the type lives in the low nibble of
    /// octet 0, so observers (tracing, packet filters) can classify a
    /// frame allocation-free. `None` for empty or non-PTP payloads.
    pub fn peek(payload: &[u8]) -> Option<MessageType> {
        MessageType::from_nibble(*payload.first()? & 0x0F)
    }

    /// IEEE 1588 controlField value for this type.
    fn control_field(self) -> u8 {
        match self {
            MessageType::Sync => 0,
            MessageType::DelayReq => 1,
            MessageType::FollowUp => 2,
            MessageType::DelayResp => 3,
            _ => 5,
        }
    }
}

/// The IEEE 1588 common message header (34 bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Message type.
    pub message_type: MessageType,
    /// gPTP domain number.
    pub domain: u8,
    /// Flag field (big-endian u16 of the two flag octets).
    pub flags: u16,
    /// Correction field.
    pub correction: Correction,
    /// Sending port identity.
    pub source_port: PortIdentity,
    /// Sequence id.
    pub sequence_id: u16,
    /// log2 of the message interval in seconds.
    pub log_message_interval: i8,
}

impl Header {
    /// Creates a header with gPTP-typical flags for the message type.
    pub fn new(
        message_type: MessageType,
        domain: u8,
        source_port: PortIdentity,
        sequence_id: u16,
        log_message_interval: i8,
    ) -> Header {
        let mut flags = FLAG_PTP_TIMESCALE;
        if matches!(message_type, MessageType::Sync | MessageType::PdelayResp) {
            flags |= FLAG_TWO_STEP;
        }
        Header {
            message_type,
            domain,
            flags,
            correction: Correction::ZERO,
            source_port,
            sequence_id,
            log_message_interval,
        }
    }

    fn encode_into(&self, buf: &mut BytesMut, message_length: u16) {
        buf.put_u8((GPTP_MAJOR_SDO_ID << 4) | (self.message_type as u8));
        buf.put_u8(PTP_VERSION);
        buf.put_u16(message_length);
        buf.put_u8(self.domain);
        buf.put_u8(0); // minorSdoId
        buf.put_u16(self.flags);
        buf.put_i64(self.correction.scaled());
        buf.put_u32(0); // messageTypeSpecific
        buf.put_slice(&self.source_port.clock.0);
        buf.put_u16(self.source_port.port);
        buf.put_u16(self.sequence_id);
        buf.put_u8(self.message_type.control_field());
        buf.put_i8(self.log_message_interval);
    }

    fn decode(b: &[u8]) -> Result<(Header, u16), DecodeError> {
        if b.len() < 34 {
            return Err(DecodeError::Truncated);
        }
        let message_type =
            MessageType::from_nibble(b[0] & 0x0F).ok_or(DecodeError::UnknownType(b[0] & 0x0F))?;
        if b[1] & 0x0F != PTP_VERSION {
            return Err(DecodeError::BadVersion(b[1]));
        }
        let message_length = u16::from_be_bytes([b[2], b[3]]);
        if usize::from(message_length) > b.len() {
            return Err(DecodeError::Truncated);
        }
        let domain = b[4];
        let flags = u16::from_be_bytes([b[6], b[7]]);
        let correction =
            Correction::from_scaled(i64::from_be_bytes(b[8..16].try_into().expect("slice of 8")));
        let clock = ClockIdentity(b[20..28].try_into().expect("slice of 8"));
        let port = u16::from_be_bytes([b[28], b[29]]);
        let sequence_id = u16::from_be_bytes([b[30], b[31]]);
        let log_message_interval = b[33] as i8;
        Ok((
            Header {
                message_type,
                domain,
                flags,
                correction,
                source_port: PortIdentity::new(clock, port),
                sequence_id,
                log_message_interval,
            },
            message_length,
        ))
    }
}

/// The 802.1AS message-interval request TLV (clause 10.6.4.3), carried
/// in Signaling messages: a downstream system asks its neighbor to
/// change its transmission intervals (log2 seconds; 126 = "initial",
/// 127 = "leave unchanged").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntervalRequestTlv {
    /// Requested Pdelay_Req interval.
    pub link_delay_interval: i8,
    /// Requested Sync interval.
    pub time_sync_interval: i8,
    /// Requested Announce interval.
    pub announce_interval: i8,
    /// Flags (computeNeighborRateRatio / computeMeanLinkDelay).
    pub flags: u8,
}

impl IntervalRequestTlv {
    /// "Leave every interval unchanged."
    pub const UNCHANGED: i8 = 127;

    fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u16(0x0003); // ORGANIZATION_EXTENSION
        buf.put_u16(12); // lengthField
        buf.put_slice(&[0x00, 0x80, 0xC2]); // organizationId
        buf.put_slice(&[0x00, 0x00, 0x02]); // organizationSubType 2
        buf.put_i8(self.link_delay_interval);
        buf.put_i8(self.time_sync_interval);
        buf.put_i8(self.announce_interval);
        buf.put_u8(self.flags);
        buf.put_slice(&[0u8; 2]); // reserved
    }

    fn decode(b: &[u8]) -> Result<IntervalRequestTlv, DecodeError> {
        if b.len() < 16 {
            return Err(DecodeError::BadTlv);
        }
        if b[0..2] != [0x00, 0x03] || b[4..7] != [0x00, 0x80, 0xC2] || b[7..10] != [0, 0, 2] {
            return Err(DecodeError::BadTlv);
        }
        Ok(IntervalRequestTlv {
            link_delay_interval: b[10] as i8,
            time_sync_interval: b[11] as i8,
            announce_interval: b[12] as i8,
            flags: b[13],
        })
    }
}

/// The 802.1AS Follow_Up information TLV (clause 11.4.4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FollowUpTlv {
    /// (rateRatio − 1) · 2⁴¹ accumulated from the GM to the sender.
    pub cumulative_scaled_rate_offset: i32,
    /// Incremented when the GM time base changes.
    pub gm_time_base_indicator: u16,
    /// Last GM phase change (we carry only the low 64 bits of the
    /// ScaledNs value; the rest encode as zero).
    pub last_gm_phase_change: i64,
    /// Last GM frequency change, scaled by 2⁴¹.
    pub scaled_last_gm_freq_change: i32,
}

const FOLLOW_UP_TLV_LEN: usize = 32;

impl FollowUpTlv {
    fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u16(0x0003); // ORGANIZATION_EXTENSION
        buf.put_u16(28); // lengthField
        buf.put_slice(&[0x00, 0x80, 0xC2]); // organizationId
        buf.put_slice(&[0x00, 0x00, 0x01]); // organizationSubType 1
        buf.put_i32(self.cumulative_scaled_rate_offset);
        buf.put_u16(self.gm_time_base_indicator);
        // lastGmPhaseChange is a 96-bit ScaledNs: 4 high bytes + 8 low.
        buf.put_u32(if self.last_gm_phase_change < 0 {
            0xFFFF_FFFF
        } else {
            0
        });
        buf.put_i64(self.last_gm_phase_change);
        buf.put_i32(self.scaled_last_gm_freq_change);
    }

    fn decode(b: &[u8]) -> Result<FollowUpTlv, DecodeError> {
        if b.len() < FOLLOW_UP_TLV_LEN {
            return Err(DecodeError::BadTlv);
        }
        if b[0..2] != [0x00, 0x03] || b[4..7] != [0x00, 0x80, 0xC2] {
            return Err(DecodeError::BadTlv);
        }
        Ok(FollowUpTlv {
            cumulative_scaled_rate_offset: i32::from_be_bytes(
                b[10..14].try_into().expect("slice of 4"),
            ),
            gm_time_base_indicator: u16::from_be_bytes([b[14], b[15]]),
            last_gm_phase_change: i64::from_be_bytes(b[20..28].try_into().expect("slice of 8")),
            scaled_last_gm_freq_change: i32::from_be_bytes(
                b[28..32].try_into().expect("slice of 4"),
            ),
        })
    }
}

/// Announce message body (IEEE 1588 clause 13.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnnounceBody {
    /// currentUtcOffset.
    pub current_utc_offset: i16,
    /// grandmasterPriority1.
    pub priority1: u8,
    /// grandmasterClockQuality.
    pub quality: ClockQuality,
    /// grandmasterPriority2.
    pub priority2: u8,
    /// grandmasterIdentity.
    pub gm_identity: ClockIdentity,
    /// stepsRemoved.
    pub steps_removed: u16,
    /// timeSource enumeration.
    pub time_source: u8,
}

/// A decoded gPTP message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Sync. Two-step Syncs carry a zero origin timestamp (the precise
    /// origin arrives in the Follow_Up); one-step Syncs carry the
    /// hardware-inserted egress timestamp directly.
    Sync {
        /// Common header.
        header: Header,
        /// Origin timestamp (zero in two-step operation).
        origin: PtpTimestamp,
    },
    /// Follow_Up with preciseOriginTimestamp and information TLV.
    FollowUp {
        /// Common header (carries the accumulated correction).
        header: Header,
        /// Precise origin timestamp of the associated Sync.
        precise_origin: PtpTimestamp,
        /// Follow_Up information TLV.
        tlv: FollowUpTlv,
    },
    /// Delay_Req (end-to-end mechanism).
    DelayReq {
        /// Common header.
        header: Header,
    },
    /// Delay_Resp carrying the master's receive timestamp (t4).
    DelayResp {
        /// Common header.
        header: Header,
        /// t4 at the master.
        receive_timestamp: PtpTimestamp,
        /// Identity of the requesting (slave) port.
        requesting_port: PortIdentity,
    },
    /// Pdelay_Req.
    PdelayReq {
        /// Common header.
        header: Header,
    },
    /// Pdelay_Resp carrying the request receipt timestamp (t2).
    PdelayResp {
        /// Common header.
        header: Header,
        /// t2 at the responder.
        request_receipt: PtpTimestamp,
        /// Identity of the requesting port.
        requesting_port: PortIdentity,
    },
    /// Pdelay_Resp_Follow_Up carrying the response origin timestamp (t3).
    PdelayRespFollowUp {
        /// Common header.
        header: Header,
        /// t3 at the responder.
        response_origin: PtpTimestamp,
        /// Identity of the requesting port.
        requesting_port: PortIdentity,
    },
    /// Signaling with a message-interval request TLV.
    Signaling {
        /// Common header.
        header: Header,
        /// The port the request targets (all-ones = any).
        target_port: PortIdentity,
        /// The interval request.
        tlv: IntervalRequestTlv,
    },
    /// Announce (used when BMCA is enabled; the paper's experiments use
    /// external port configuration instead).
    Announce {
        /// Common header.
        header: Header,
        /// Announce body.
        body: AnnounceBody,
        /// Path trace TLV (clause 10.3.8.23): the clock identities the
        /// Announce has traversed, appended by each time-aware system.
        /// Used by BMCA to discard looping Announces.
        path_trace: Vec<ClockIdentity>,
    },
}

/// Errors from [`Message::decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Not enough bytes.
    Truncated,
    /// versionPTP field is not 2.
    BadVersion(u8),
    /// Unknown message type nibble.
    UnknownType(u8),
    /// Malformed Follow_Up information TLV.
    BadTlv,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "message truncated"),
            DecodeError::BadVersion(v) => write!(f, "unsupported PTP version {v:#x}"),
            DecodeError::UnknownType(t) => write!(f, "unknown message type {t:#x}"),
            DecodeError::BadTlv => write!(f, "malformed follow-up TLV"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn put_timestamp(buf: &mut BytesMut, ts: PtpTimestamp) {
    buf.put_u16((ts.seconds >> 32) as u16);
    buf.put_u32(ts.seconds as u32);
    buf.put_u32(ts.nanoseconds);
}

fn get_timestamp(b: &[u8]) -> PtpTimestamp {
    let sec_hi = u64::from(u16::from_be_bytes([b[0], b[1]]));
    let sec_lo = u64::from(u32::from_be_bytes([b[2], b[3], b[4], b[5]]));
    PtpTimestamp {
        seconds: (sec_hi << 32) | sec_lo,
        nanoseconds: u32::from_be_bytes([b[6], b[7], b[8], b[9]]),
    }
}

fn get_port_identity(b: &[u8]) -> PortIdentity {
    PortIdentity::new(
        ClockIdentity(b[0..8].try_into().expect("slice of 8")),
        u16::from_be_bytes([b[8], b[9]]),
    )
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let h = self.header();
        match self {
            Message::Sync { .. } => write!(
                f,
                "Sync dom={} seq={} from={}",
                h.domain, h.sequence_id, h.source_port
            ),
            Message::FollowUp { precise_origin, .. } => write!(
                f,
                "Follow_Up dom={} seq={} pot={} corr={}",
                h.domain,
                h.sequence_id,
                precise_origin.to_clock_time(),
                h.correction.to_nanos()
            ),
            Message::DelayReq { .. } => {
                write!(f, "Delay_Req dom={} seq={}", h.domain, h.sequence_id)
            }
            Message::DelayResp { .. } => {
                write!(f, "Delay_Resp dom={} seq={}", h.domain, h.sequence_id)
            }
            Message::PdelayReq { .. } => {
                write!(f, "Pdelay_Req seq={} from={}", h.sequence_id, h.source_port)
            }
            Message::PdelayResp { .. } => {
                write!(
                    f,
                    "Pdelay_Resp seq={} from={}",
                    h.sequence_id, h.source_port
                )
            }
            Message::PdelayRespFollowUp { .. } => write!(
                f,
                "Pdelay_Resp_Follow_Up seq={} from={}",
                h.sequence_id, h.source_port
            ),
            Message::Signaling { tlv, .. } => write!(
                f,
                "Signaling dom={} sync_ival={}",
                h.domain, tlv.time_sync_interval
            ),
            Message::Announce { body, .. } => write!(
                f,
                "Announce dom={} gm={} p1={} steps={}",
                h.domain, body.gm_identity, body.priority1, body.steps_removed
            ),
        }
    }
}

impl Message {
    /// The message's common header.
    pub fn header(&self) -> &Header {
        match self {
            Message::Sync { header, .. }
            | Message::FollowUp { header, .. }
            | Message::DelayReq { header }
            | Message::DelayResp { header, .. }
            | Message::PdelayReq { header }
            | Message::PdelayResp { header, .. }
            | Message::PdelayRespFollowUp { header, .. }
            | Message::Signaling { header, .. }
            | Message::Announce { header, .. } => header,
        }
    }

    /// Encodes the message to wire bytes.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(96);
        match self {
            Message::Sync { header, origin } => {
                header.encode_into(&mut buf, 44);
                put_timestamp(&mut buf, *origin);
            }
            Message::FollowUp {
                header,
                precise_origin,
                tlv,
            } => {
                header.encode_into(&mut buf, (44 + FOLLOW_UP_TLV_LEN) as u16);
                put_timestamp(&mut buf, *precise_origin);
                tlv.encode_into(&mut buf);
            }
            Message::DelayReq { header } => {
                header.encode_into(&mut buf, 44);
                put_timestamp(&mut buf, PtpTimestamp::default());
            }
            Message::DelayResp {
                header,
                receive_timestamp,
                requesting_port,
            } => {
                header.encode_into(&mut buf, 54);
                put_timestamp(&mut buf, *receive_timestamp);
                buf.put_slice(&requesting_port.clock.0);
                buf.put_u16(requesting_port.port);
            }
            Message::PdelayReq { header } => {
                header.encode_into(&mut buf, 54);
                put_timestamp(&mut buf, PtpTimestamp::default());
                buf.put_slice(&[0u8; 10]);
            }
            Message::PdelayResp {
                header,
                request_receipt,
                requesting_port,
            } => {
                header.encode_into(&mut buf, 54);
                put_timestamp(&mut buf, *request_receipt);
                buf.put_slice(&requesting_port.clock.0);
                buf.put_u16(requesting_port.port);
            }
            Message::PdelayRespFollowUp {
                header,
                response_origin,
                requesting_port,
            } => {
                header.encode_into(&mut buf, 54);
                put_timestamp(&mut buf, *response_origin);
                buf.put_slice(&requesting_port.clock.0);
                buf.put_u16(requesting_port.port);
            }
            Message::Signaling {
                header,
                target_port,
                tlv,
            } => {
                header.encode_into(&mut buf, (34 + 10 + 16) as u16);
                buf.put_slice(&target_port.clock.0);
                buf.put_u16(target_port.port);
                tlv.encode_into(&mut buf);
            }
            Message::Announce {
                header,
                body,
                path_trace,
            } => {
                header.encode_into(&mut buf, (64 + 4 + 8 * path_trace.len()) as u16);
                put_timestamp(&mut buf, PtpTimestamp::default());
                buf.put_i16(body.current_utc_offset);
                buf.put_u8(0); // reserved
                buf.put_u8(body.priority1);
                buf.put_u8(body.quality.class);
                buf.put_u8(body.quality.accuracy);
                buf.put_u16(body.quality.variance);
                buf.put_u8(body.priority2);
                buf.put_slice(&body.gm_identity.0);
                buf.put_u16(body.steps_removed);
                buf.put_u8(body.time_source);
                // PATH_TRACE TLV (type 0x8).
                buf.put_u16(0x0008);
                buf.put_u16((8 * path_trace.len()) as u16);
                for id in path_trace {
                    buf.put_slice(&id.0);
                }
            }
        }
        buf.freeze()
    }

    /// Decodes a message from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on truncation, unknown type, bad version,
    /// or malformed TLV.
    pub fn decode(b: &[u8]) -> Result<Message, DecodeError> {
        let (header, _len) = Header::decode(b)?;
        let body = &b[34..];
        match header.message_type {
            MessageType::Sync => {
                if body.len() < 10 {
                    return Err(DecodeError::Truncated);
                }
                Ok(Message::Sync {
                    header,
                    origin: get_timestamp(body),
                })
            }
            MessageType::FollowUp => {
                if body.len() < 10 + FOLLOW_UP_TLV_LEN {
                    return Err(DecodeError::Truncated);
                }
                Ok(Message::FollowUp {
                    header,
                    precise_origin: get_timestamp(body),
                    tlv: FollowUpTlv::decode(&body[10..])?,
                })
            }
            MessageType::DelayReq => {
                if body.len() < 10 {
                    return Err(DecodeError::Truncated);
                }
                Ok(Message::DelayReq { header })
            }
            MessageType::DelayResp => {
                if body.len() < 20 {
                    return Err(DecodeError::Truncated);
                }
                Ok(Message::DelayResp {
                    header,
                    receive_timestamp: get_timestamp(body),
                    requesting_port: get_port_identity(&body[10..]),
                })
            }
            MessageType::PdelayReq => {
                if body.len() < 20 {
                    return Err(DecodeError::Truncated);
                }
                Ok(Message::PdelayReq { header })
            }
            MessageType::PdelayResp => {
                if body.len() < 20 {
                    return Err(DecodeError::Truncated);
                }
                Ok(Message::PdelayResp {
                    header,
                    request_receipt: get_timestamp(body),
                    requesting_port: get_port_identity(&body[10..]),
                })
            }
            MessageType::PdelayRespFollowUp => {
                if body.len() < 20 {
                    return Err(DecodeError::Truncated);
                }
                Ok(Message::PdelayRespFollowUp {
                    header,
                    response_origin: get_timestamp(body),
                    requesting_port: get_port_identity(&body[10..]),
                })
            }
            MessageType::Signaling => {
                if body.len() < 26 {
                    return Err(DecodeError::Truncated);
                }
                Ok(Message::Signaling {
                    header,
                    target_port: get_port_identity(body),
                    tlv: IntervalRequestTlv::decode(&body[10..])?,
                })
            }
            MessageType::Announce => {
                if body.len() < 30 {
                    return Err(DecodeError::Truncated);
                }
                // Optional PATH_TRACE TLV after the 30-byte body.
                let mut path_trace = Vec::new();
                if body.len() >= 34 && body[30..32] == [0x00, 0x08] {
                    let len = usize::from(u16::from_be_bytes([body[32], body[33]]));
                    if len % 8 != 0 || body.len() < 34 + len {
                        return Err(DecodeError::BadTlv);
                    }
                    for chunk in body[34..34 + len].chunks_exact(8) {
                        path_trace.push(ClockIdentity(chunk.try_into().expect("chunk of 8")));
                    }
                }
                Ok(Message::Announce {
                    header,
                    path_trace,
                    body: AnnounceBody {
                        current_utc_offset: i16::from_be_bytes([body[10], body[11]]),
                        priority1: body[13],
                        quality: ClockQuality {
                            class: body[14],
                            accuracy: body[15],
                            variance: u16::from_be_bytes([body[16], body[17]]),
                        },
                        priority2: body[18],
                        gm_identity: ClockIdentity(body[19..27].try_into().expect("slice of 8")),
                        steps_removed: u16::from_be_bytes([body[27], body[28]]),
                        time_source: body[29],
                    },
                })
            }
        }
    }

    /// `true` for event messages (hardware-timestamped on rx/tx).
    pub fn is_event(&self) -> bool {
        matches!(
            self.header().message_type,
            MessageType::Sync
                | MessageType::DelayReq
                | MessageType::PdelayReq
                | MessageType::PdelayResp
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsn_time::{ClockTime, Nanos};

    fn port_id(i: u32) -> PortIdentity {
        PortIdentity::new(ClockIdentity::for_index(i), 1)
    }

    fn roundtrip(msg: Message) {
        let bytes = msg.encode();
        let back = Message::decode(&bytes).expect("decodes");
        assert_eq!(back, msg);
    }

    #[test]
    fn sync_roundtrip() {
        roundtrip(Message::Sync {
            header: Header::new(MessageType::Sync, 1, port_id(1), 42, -3),
            origin: PtpTimestamp::default(),
        });
        // One-step Sync carries a real origin timestamp.
        roundtrip(Message::Sync {
            header: Header::new(MessageType::Sync, 1, port_id(1), 43, -3),
            origin: PtpTimestamp::from_clock_time(ClockTime::from_nanos(777_000)),
        });
    }

    #[test]
    fn follow_up_roundtrip() {
        let mut header = Header::new(MessageType::FollowUp, 2, port_id(1), 42, -3);
        header.correction = Correction::from_nanos(Nanos::from_nanos(5_068));
        roundtrip(Message::FollowUp {
            header,
            precise_origin: PtpTimestamp::from_clock_time(ClockTime::from_nanos(1_234_567_890_123)),
            tlv: FollowUpTlv {
                cumulative_scaled_rate_offset: -12345,
                gm_time_base_indicator: 3,
                last_gm_phase_change: -42,
                scaled_last_gm_freq_change: 77,
            },
        });
    }

    #[test]
    fn delay_req_resp_roundtrip() {
        roundtrip(Message::DelayReq {
            header: Header::new(MessageType::DelayReq, 0, port_id(2), 17, 0),
        });
        roundtrip(Message::DelayResp {
            header: Header::new(MessageType::DelayResp, 0, port_id(1), 17, 0),
            receive_timestamp: PtpTimestamp::from_clock_time(ClockTime::from_nanos(424_242)),
            requesting_port: port_id(2),
        });
    }

    #[test]
    fn pdelay_triple_roundtrip() {
        roundtrip(Message::PdelayReq {
            header: Header::new(MessageType::PdelayReq, 0, port_id(2), 9, 0),
        });
        roundtrip(Message::PdelayResp {
            header: Header::new(MessageType::PdelayResp, 0, port_id(3), 9, 0),
            request_receipt: PtpTimestamp::from_clock_time(ClockTime::from_nanos(55)),
            requesting_port: port_id(2),
        });
        roundtrip(Message::PdelayRespFollowUp {
            header: Header::new(MessageType::PdelayRespFollowUp, 0, port_id(3), 9, 0),
            response_origin: PtpTimestamp::from_clock_time(ClockTime::from_nanos(99)),
            requesting_port: port_id(2),
        });
    }

    #[test]
    fn signaling_roundtrip() {
        roundtrip(Message::Signaling {
            header: Header::new(MessageType::Signaling, 2, port_id(3), 5, 0x7F),
            target_port: port_id(7),
            tlv: IntervalRequestTlv {
                link_delay_interval: 0,
                time_sync_interval: -3,
                announce_interval: IntervalRequestTlv::UNCHANGED,
                flags: 0b11,
            },
        });
    }

    #[test]
    fn announce_roundtrip() {
        roundtrip(Message::Announce {
            header: Header::new(MessageType::Announce, 3, port_id(4), 100, 0),
            path_trace: vec![ClockIdentity::for_index(4), ClockIdentity::for_index(9)],
            body: AnnounceBody {
                current_utc_offset: 37,
                priority1: 246,
                quality: ClockQuality::default(),
                priority2: 248,
                gm_identity: ClockIdentity::for_index(4),
                steps_removed: 2,
                time_source: 0xA0,
            },
        });
    }

    #[test]
    fn two_step_flag_set_on_sync() {
        let h = Header::new(MessageType::Sync, 0, port_id(1), 0, -3);
        assert_ne!(h.flags & FLAG_TWO_STEP, 0);
        let h = Header::new(MessageType::FollowUp, 0, port_id(1), 0, -3);
        assert_eq!(h.flags & FLAG_TWO_STEP, 0);
    }

    #[test]
    fn sync_wire_length_is_44() {
        let msg = Message::Sync {
            header: Header::new(MessageType::Sync, 1, port_id(1), 42, -3),
            origin: PtpTimestamp::default(),
        };
        assert_eq!(msg.encode().len(), 44);
    }

    #[test]
    fn follow_up_wire_length_is_76() {
        let msg = Message::FollowUp {
            header: Header::new(MessageType::FollowUp, 1, port_id(1), 42, -3),
            precise_origin: PtpTimestamp::default(),
            tlv: FollowUpTlv::default(),
        };
        assert_eq!(msg.encode().len(), 76);
    }

    #[test]
    fn truncated_rejected() {
        let msg = Message::Sync {
            header: Header::new(MessageType::Sync, 1, port_id(1), 42, -3),
            origin: PtpTimestamp::default(),
        };
        let bytes = msg.encode();
        assert_eq!(Message::decode(&bytes[..20]), Err(DecodeError::Truncated));
    }

    #[test]
    fn unknown_type_rejected() {
        let msg = Message::Sync {
            header: Header::new(MessageType::Sync, 1, port_id(1), 42, -3),
            origin: PtpTimestamp::default(),
        };
        let mut bytes = msg.encode().to_vec();
        bytes[0] = (bytes[0] & 0xF0) | 0x5; // management-ish type, unsupported
        assert_eq!(Message::decode(&bytes), Err(DecodeError::UnknownType(5)));
    }

    #[test]
    fn bad_version_rejected() {
        let msg = Message::Sync {
            header: Header::new(MessageType::Sync, 1, port_id(1), 42, -3),
            origin: PtpTimestamp::default(),
        };
        let mut bytes = msg.encode().to_vec();
        bytes[1] = 0x01;
        assert_eq!(Message::decode(&bytes), Err(DecodeError::BadVersion(1)));
    }

    #[test]
    fn event_classification() {
        let sync = Message::Sync {
            header: Header::new(MessageType::Sync, 1, port_id(1), 0, -3),
            origin: PtpTimestamp::default(),
        };
        assert!(sync.is_event());
        let fu = Message::FollowUp {
            header: Header::new(MessageType::FollowUp, 1, port_id(1), 0, -3),
            precise_origin: PtpTimestamp::default(),
            tlv: FollowUpTlv::default(),
        };
        assert!(!fu.is_event());
    }

    #[test]
    fn display_summaries() {
        let sync = Message::Sync {
            header: Header::new(MessageType::Sync, 2, port_id(1), 7, -3),
            origin: PtpTimestamp::default(),
        };
        assert_eq!(
            sync.to_string(),
            "Sync dom=2 seq=7 from=02:00:00:ff:fe:00:00:01-1"
        );
        let ann = Message::Announce {
            header: Header::new(MessageType::Announce, 0, port_id(1), 1, 0),
            path_trace: vec![],
            body: AnnounceBody {
                current_utc_offset: 37,
                priority1: 246,
                quality: ClockQuality::default(),
                priority2: 248,
                gm_identity: ClockIdentity::for_index(4),
                steps_removed: 2,
                time_source: 0xA0,
            },
        };
        assert!(ann.to_string().starts_with("Announce dom=0 gm="));
    }

    #[test]
    fn malicious_pot_mutation_survives_roundtrip() {
        // The attack: shift preciseOriginTimestamp by −24 µs in the bytes.
        let pot = ClockTime::from_nanos(5_000_000_000);
        let msg = Message::FollowUp {
            header: Header::new(MessageType::FollowUp, 1, port_id(1), 7, -3),
            precise_origin: PtpTimestamp::from_clock_time(pot),
            tlv: FollowUpTlv::default(),
        };
        let shifted = Message::FollowUp {
            header: Header::new(MessageType::FollowUp, 1, port_id(1), 7, -3),
            precise_origin: PtpTimestamp::from_clock_time(pot - Nanos::from_micros(24)),
            tlv: FollowUpTlv::default(),
        };
        let decoded = Message::decode(&shifted.encode()).unwrap();
        match decoded {
            Message::FollowUp { precise_origin, .. } => {
                let d = precise_origin.to_clock_time() - pot;
                assert_eq!(d, Nanos::from_micros(-24));
            }
            _ => panic!("wrong type"),
        }
        assert_ne!(msg.encode(), shifted.encode());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::types::ClockIdentity;
    use proptest::prelude::*;

    fn arb_port_identity() -> impl Strategy<Value = PortIdentity> {
        (any::<[u8; 8]>(), any::<u16>())
            .prop_map(|(id, port)| PortIdentity::new(ClockIdentity(id), port))
    }

    fn arb_timestamp() -> impl Strategy<Value = PtpTimestamp> {
        (0u64..(1 << 48), 0u32..1_000_000_000).prop_map(|(seconds, nanoseconds)| PtpTimestamp {
            seconds,
            nanoseconds,
        })
    }

    fn arb_header(mt: MessageType) -> impl Strategy<Value = Header> {
        (
            any::<u8>(),
            arb_port_identity(),
            any::<u16>(),
            any::<i8>(),
            any::<i64>(),
        )
            .prop_map(move |(domain, source_port, sequence_id, log, corr)| {
                let mut h = Header::new(mt, domain, source_port, sequence_id, log);
                h.correction = Correction::from_scaled(corr);
                h
            })
    }

    fn arb_message() -> impl Strategy<Value = Message> {
        prop_oneof![
            (arb_header(MessageType::Sync), arb_timestamp())
                .prop_map(|(header, origin)| Message::Sync { header, origin }),
            (
                arb_header(MessageType::FollowUp),
                arb_timestamp(),
                any::<i32>(),
                any::<u16>(),
                any::<i64>(),
                any::<i32>()
            )
                .prop_map(|(header, precise_origin, csro, tbi, phase, freq)| {
                    Message::FollowUp {
                        header,
                        precise_origin,
                        tlv: FollowUpTlv {
                            cumulative_scaled_rate_offset: csro,
                            gm_time_base_indicator: tbi,
                            last_gm_phase_change: phase,
                            scaled_last_gm_freq_change: freq,
                        },
                    }
                }),
            arb_header(MessageType::DelayReq).prop_map(|header| Message::DelayReq { header }),
            (
                arb_header(MessageType::DelayResp),
                arb_timestamp(),
                arb_port_identity()
            )
                .prop_map(|(header, receive_timestamp, requesting_port)| {
                    Message::DelayResp {
                        header,
                        receive_timestamp,
                        requesting_port,
                    }
                }),
            arb_header(MessageType::PdelayReq).prop_map(|header| Message::PdelayReq { header }),
            (
                arb_header(MessageType::PdelayResp),
                arb_timestamp(),
                arb_port_identity()
            )
                .prop_map(|(header, request_receipt, requesting_port)| {
                    Message::PdelayResp {
                        header,
                        request_receipt,
                        requesting_port,
                    }
                }),
            (
                arb_header(MessageType::PdelayRespFollowUp),
                arb_timestamp(),
                arb_port_identity()
            )
                .prop_map(|(header, response_origin, requesting_port)| {
                    Message::PdelayRespFollowUp {
                        header,
                        response_origin,
                        requesting_port,
                    }
                }),
            (
                arb_header(MessageType::Signaling),
                arb_port_identity(),
                any::<i8>(),
                any::<i8>(),
                any::<i8>(),
                any::<u8>()
            )
                .prop_map(|(header, target_port, l, t, a, flags)| Message::Signaling {
                    header,
                    target_port,
                    tlv: IntervalRequestTlv {
                        link_delay_interval: l,
                        time_sync_interval: t,
                        announce_interval: a,
                        flags,
                    },
                }),
            (
                arb_header(MessageType::Announce),
                any::<i16>(),
                any::<u8>(),
                any::<u8>(),
                any::<u8>(),
                any::<u16>(),
                any::<u8>(),
                any::<[u8; 8]>(),
                0u16..255,
                any::<u8>()
            )
                .prop_map(
                    |(header, utc, p1, class, accuracy, variance, p2, gm, steps, ts)| {
                        Message::Announce {
                            header,
                            path_trace: vec![ClockIdentity(gm)],
                            body: AnnounceBody {
                                current_utc_offset: utc,
                                priority1: p1,
                                quality: crate::types::ClockQuality {
                                    class,
                                    accuracy,
                                    variance,
                                },
                                priority2: p2,
                                gm_identity: ClockIdentity(gm),
                                steps_removed: steps,
                                time_source: ts,
                            },
                        }
                    }
                ),
        ]
    }

    proptest! {
        /// Every well-formed message survives an encode/decode round trip.
        #[test]
        fn roundtrip(msg in arb_message()) {
            let bytes = msg.encode();
            let back = Message::decode(&bytes).expect("well-formed message decodes");
            prop_assert_eq!(back, msg);
        }

        /// The decoder never panics on arbitrary byte soup.
        #[test]
        fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
            let _ = Message::decode(&bytes);
        }

        /// Truncating an encoded message is always detected, never
        /// mis-decoded into a shorter valid message of the same type
        /// with silently-wrong fields.
        #[test]
        fn truncation_detected(msg in arb_message(), cut in 1usize..34) {
            let bytes = msg.encode();
            prop_assume!(cut < bytes.len());
            let truncated = &bytes[..bytes.len() - cut];
            match Message::decode(truncated) {
                Err(_) => {}
                Ok(decoded) => {
                    // Decoding can only succeed if the remaining bytes
                    // still form a complete message of that type.
                    prop_assert_eq!(decoded.header().message_type,
                                    msg.header().message_type);
                }
            }
        }
    }
}
