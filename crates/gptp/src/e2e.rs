//! End-to-end delay mechanism (IEEE 1588 clause 11.3).
//!
//! Plain PTP measures the slave↔master path delay with
//! `Delay_Req`/`Delay_Resp`: the slave notes the Sync exchange
//! (`t1` = corrected origin, `t2` = local receipt), transmits a
//! `Delay_Req` at `t3`, and the master returns its receive timestamp
//! `t4`; then
//!
//! ```text
//! meanPathDelay = ((t2 − t1) + (t4 − t3)) / 2
//! ```
//!
//! gPTP proper always uses the peer-delay mechanism (`crate::PdelayInitiator`),
//! but IEEE 1588-2019 — which the paper cites for its voting-based GM
//! detection — runs end-to-end in most profiles, so the mechanism is
//! provided for comparison setups and tests. Unlike peer delay it
//! measures the *whole* path, so transparent/boundary clocks must
//! correct `Delay_Req` residence times for asymmetric topologies.

use crate::msg::{Header, Message, MessageType};
use crate::types::{PortIdentity, PtpTimestamp};
use bytes::Bytes;
use tsn_time::{ClockTime, Nanos};

/// EMA weight of the path-delay filter.
const DELAY_FILTER_WEIGHT: f64 = 0.25;

/// A completed end-to-end delay measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathDelaySample {
    /// Filtered mean path delay.
    pub mean_path_delay: Nanos,
    /// Raw (unfiltered) delay of this exchange.
    pub raw_delay: Nanos,
}

#[derive(Debug, Clone, Copy)]
struct SyncPair {
    t1_corrected: ClockTime,
    t2: ClockTime,
}

#[derive(Debug, Clone, Copy)]
struct Inflight {
    seq: u16,
    t3: ClockTime,
}

/// Slave half of the end-to-end exchange.
#[derive(Debug, Clone)]
pub struct E2eDelayInitiator {
    port: PortIdentity,
    domain: u8,
    next_seq: u16,
    last_sync: Option<SyncPair>,
    inflight: Option<Inflight>,
    filtered: Option<f64>,
    /// Exchanges abandoned because a new request replaced them.
    pub lost_responses: u64,
}

impl E2eDelayInitiator {
    /// Creates an initiator for `domain` on the given port.
    pub fn new(domain: u8, port: PortIdentity) -> Self {
        E2eDelayInitiator {
            port,
            domain,
            next_seq: 0,
            last_sync: None,
            inflight: None,
            filtered: None,
            lost_responses: 0,
        }
    }

    /// Current filtered mean path delay.
    pub fn mean_path_delay(&self) -> Option<Nanos> {
        self.filtered.map(|d| Nanos::from_nanos(d.round() as i64))
    }

    /// Records the latest Sync exchange: `t1_corrected` is the precise
    /// origin timestamp plus correction field, `t2` the local hardware
    /// receive timestamp.
    pub fn note_sync(&mut self, t1_corrected: ClockTime, t2: ClockTime) {
        self.last_sync = Some(SyncPair { t1_corrected, t2 });
    }

    /// Builds the next `Delay_Req` (event message — report its egress
    /// timestamp via [`E2eDelayInitiator::request_sent`]).
    pub fn make_request(&mut self) -> (Bytes, u16) {
        if self.inflight.take().is_some() {
            self.lost_responses += 1;
        }
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        let msg = Message::DelayReq {
            header: Header::new(MessageType::DelayReq, self.domain, self.port, seq, 0),
        };
        (msg.encode(), seq)
    }

    /// Records the hardware egress timestamp of request `seq`.
    pub fn request_sent(&mut self, seq: u16, t3: ClockTime) {
        self.inflight = Some(Inflight { seq, t3 });
    }

    /// Handles a `Delay_Resp`, completing the exchange if it matches.
    pub fn handle_resp(&mut self, msg: &Message) -> Option<PathDelaySample> {
        let Message::DelayResp {
            header,
            receive_timestamp,
            requesting_port,
        } = msg
        else {
            return None;
        };
        if *requesting_port != self.port || header.domain != self.domain {
            return None;
        }
        let inflight = self.inflight?;
        if header.sequence_id != inflight.seq {
            return None;
        }
        let sync = self.last_sync?;
        self.inflight = None;
        let t4 = receive_timestamp.to_clock_time();
        let ms_delay = (sync.t2 - sync.t1_corrected).as_nanos() as f64;
        let sm_delay = (t4 - inflight.t3).as_nanos() as f64;
        let raw = ((ms_delay + sm_delay) / 2.0).max(0.0);
        let filtered = match self.filtered {
            Some(f) => f + DELAY_FILTER_WEIGHT * (raw - f),
            None => raw,
        };
        self.filtered = Some(filtered);
        Some(PathDelaySample {
            mean_path_delay: Nanos::from_nanos(filtered.round() as i64),
            raw_delay: Nanos::from_nanos(raw.round() as i64),
        })
    }
}

/// Master half of the end-to-end exchange.
#[derive(Debug, Clone)]
pub struct E2eDelayResponder {
    port: PortIdentity,
    domain: u8,
}

impl E2eDelayResponder {
    /// Creates a responder for `domain` on the given (master) port.
    pub fn new(domain: u8, port: PortIdentity) -> Self {
        E2eDelayResponder { port, domain }
    }

    /// Handles a received `Delay_Req` (hardware rx timestamp `t4`) and
    /// returns the `Delay_Resp` to transmit.
    pub fn handle_request(&self, msg: &Message, t4: ClockTime) -> Option<Bytes> {
        let Message::DelayReq { header } = msg else {
            return None;
        };
        if header.domain != self.domain {
            return None;
        }
        let resp = Message::DelayResp {
            header: Header::new(
                MessageType::DelayResp,
                self.domain,
                self.port,
                header.sequence_id,
                0,
            ),
            receive_timestamp: PtpTimestamp::from_clock_time(t4),
            requesting_port: header.source_port,
        };
        Some(resp.encode())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ClockIdentity;

    fn pid(i: u32) -> PortIdentity {
        PortIdentity::new(ClockIdentity::for_index(i), 1)
    }

    /// Runs one exchange over a path with the given asymmetric delays and
    /// a slave clock `shift` ns ahead of the master.
    fn exchange(ms_ns: i64, sm_ns: i64, shift: i64) -> PathDelaySample {
        let mut init = E2eDelayInitiator::new(0, pid(2));
        let resp = E2eDelayResponder::new(0, pid(1));
        // Sync: t1 = 1_000_000 (master), t2 = t1 + ms + shift (slave).
        let t1 = ClockTime::from_nanos(1_000_000);
        let t2 = ClockTime::from_nanos(1_000_000 + ms_ns + shift);
        init.note_sync(t1, t2);
        // Delay_Req: t3 (slave), t4 = t3 − shift + sm (master).
        let (req, seq) = init.make_request();
        let t3 = ClockTime::from_nanos(2_000_000 + shift);
        init.request_sent(seq, t3);
        let t4 = ClockTime::from_nanos(2_000_000 + sm_ns);
        let req = Message::decode(&req).unwrap();
        let resp_bytes = resp.handle_request(&req, t4).unwrap();
        let resp_msg = Message::decode(&resp_bytes).unwrap();
        init.handle_resp(&resp_msg).expect("completed exchange")
    }

    #[test]
    fn symmetric_path_measured_exactly() {
        let s = exchange(2_500, 2_500, 0);
        assert_eq!(s.raw_delay, Nanos::from_nanos(2_500));
    }

    #[test]
    fn clock_offset_cancels() {
        // The slave's absolute offset does not affect the delay estimate.
        for shift in [-24_000i64, 0, 999] {
            let s = exchange(2_500, 2_500, shift);
            assert_eq!(s.raw_delay, Nanos::from_nanos(2_500), "shift {shift}");
        }
    }

    #[test]
    fn asymmetry_averages_and_biases() {
        // The classic E2E weakness: asymmetric paths are averaged, which
        // biases the offset by half the asymmetry (why the paper's TSN
        // network uses per-link peer delay instead).
        let s = exchange(2_000, 4_000, 0);
        assert_eq!(s.raw_delay, Nanos::from_nanos(3_000));
    }

    #[test]
    fn responder_echoes_requester() {
        let resp = E2eDelayResponder::new(3, pid(1));
        let req = Message::DelayReq {
            header: Header::new(MessageType::DelayReq, 3, pid(9), 7, 0),
        };
        let bytes = resp
            .handle_request(&req, ClockTime::from_nanos(55))
            .unwrap();
        match Message::decode(&bytes).unwrap() {
            Message::DelayResp {
                receive_timestamp,
                requesting_port,
                header,
            } => {
                assert_eq!(receive_timestamp.to_clock_time(), ClockTime::from_nanos(55));
                assert_eq!(requesting_port, pid(9));
                assert_eq!(header.sequence_id, 7);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn wrong_domain_ignored() {
        let resp = E2eDelayResponder::new(1, pid(1));
        let req = Message::DelayReq {
            header: Header::new(MessageType::DelayReq, 2, pid(9), 7, 0),
        };
        assert!(resp.handle_request(&req, ClockTime::ZERO).is_none());
        let mut init = E2eDelayInitiator::new(1, pid(2));
        init.note_sync(ClockTime::ZERO, ClockTime::ZERO);
        let (_, seq) = init.make_request();
        init.request_sent(seq, ClockTime::ZERO);
        let resp_msg = Message::DelayResp {
            header: Header::new(MessageType::DelayResp, 2, pid(1), seq, 0),
            receive_timestamp: PtpTimestamp::default(),
            requesting_port: pid(2),
        };
        assert!(init.handle_resp(&resp_msg).is_none());
    }

    #[test]
    fn stale_and_mismatched_responses_ignored() {
        let mut init = E2eDelayInitiator::new(0, pid(2));
        init.note_sync(ClockTime::ZERO, ClockTime::ZERO);
        let (_, seq) = init.make_request();
        init.request_sent(seq, ClockTime::ZERO);
        let wrong_seq = Message::DelayResp {
            header: Header::new(MessageType::DelayResp, 0, pid(1), seq.wrapping_add(1), 0),
            receive_timestamp: PtpTimestamp::default(),
            requesting_port: pid(2),
        };
        assert!(init.handle_resp(&wrong_seq).is_none());
        // Abandoning an exchange is counted.
        let _ = init.make_request();
        assert_eq!(init.lost_responses, 1);
    }

    #[test]
    fn filter_converges_on_noisy_path() {
        let mut init = E2eDelayInitiator::new(0, pid(2));
        let resp = E2eDelayResponder::new(0, pid(1));
        let mut base = 1_000_000i64;
        for k in 0..60 {
            let jitter = (k % 5) * 40; // 0..160 ns of path noise
            init.note_sync(
                ClockTime::from_nanos(base),
                ClockTime::from_nanos(base + 2_500 + jitter),
            );
            let (req, seq) = init.make_request();
            init.request_sent(seq, ClockTime::from_nanos(base + 500_000));
            let t4 = ClockTime::from_nanos(base + 500_000 + 2_500 + jitter);
            let req = Message::decode(&req).unwrap();
            let resp_bytes = resp.handle_request(&req, t4).unwrap();
            let resp_msg = Message::decode(&resp_bytes).unwrap();
            init.handle_resp(&resp_msg);
            base += 125_000_000;
        }
        let d = init.mean_path_delay().unwrap().as_nanos();
        assert!((d - 2_580).abs() < 120, "filtered delay {d}");
    }
}
