//! Core IEEE 802.1AS / IEEE 1588 data types.

use serde::{Deserialize, Serialize};
use std::fmt;
use tsn_time::{ClockTime, Nanos};

/// An EUI-64 clock identity (IEEE 1588 clause 7.5.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ClockIdentity(pub [u8; 8]);

impl ClockIdentity {
    /// The all-zero identity (invalid / "no grandmaster").
    pub const ZERO: ClockIdentity = ClockIdentity([0; 8]);

    /// A deterministic identity for simulated clock `index`.
    pub fn for_index(index: u32) -> ClockIdentity {
        let b = index.to_be_bytes();
        ClockIdentity([0x02, 0x00, 0x00, 0xFF, 0xFE, b[1], b[2], b[3]])
    }
}

impl fmt::Display for ClockIdentity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, b) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ":")?;
            }
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

/// A PTP port identity: clock identity plus 1-based port number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PortIdentity {
    /// Identity of the owning clock.
    pub clock: ClockIdentity,
    /// Port number within the clock (1-based; 0 is reserved).
    pub port: u16,
}

impl PortIdentity {
    /// Creates a port identity.
    pub const fn new(clock: ClockIdentity, port: u16) -> Self {
        PortIdentity { clock, port }
    }
}

impl fmt::Display for PortIdentity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.clock, self.port)
    }
}

/// A PTP timestamp: 48-bit seconds + 32-bit nanoseconds.
///
/// Wire format of the `Timestamp` struct in IEEE 1588 clause 5.3.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct PtpTimestamp {
    /// Seconds field (only the low 48 bits are representable).
    pub seconds: u64,
    /// Nanoseconds field (< 10⁹).
    pub nanoseconds: u32,
}

impl PtpTimestamp {
    /// Converts a non-negative clock reading to a PTP timestamp.
    ///
    /// # Panics
    ///
    /// Panics if the reading is negative (simulated clocks are seeded with
    /// positive epochs so this does not occur in experiments).
    pub fn from_clock_time(t: ClockTime) -> PtpTimestamp {
        let ns = t.as_nanos();
        assert!(ns >= 0, "cannot encode negative clock time {ns}");
        PtpTimestamp {
            seconds: (ns / 1_000_000_000) as u64,
            nanoseconds: (ns % 1_000_000_000) as u32,
        }
    }

    /// Converts back to a clock reading.
    pub fn to_clock_time(self) -> ClockTime {
        ClockTime::from_nanos(self.seconds as i64 * 1_000_000_000 + i64::from(self.nanoseconds))
    }
}

/// A correction field value: nanoseconds scaled by 2¹⁶
/// (IEEE 1588 clause 13.3.2.7).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct Correction(i64);

impl Correction {
    /// Zero correction.
    pub const ZERO: Correction = Correction(0);

    /// From raw scaled (ns · 2¹⁶) units.
    pub const fn from_scaled(v: i64) -> Correction {
        Correction(v)
    }

    /// Raw scaled value.
    pub const fn scaled(self) -> i64 {
        self.0
    }

    /// From a nanosecond duration (fractional part lost).
    pub fn from_nanos(ns: Nanos) -> Correction {
        Correction(ns.as_nanos() << 16)
    }

    /// From fractional nanoseconds.
    pub fn from_nanos_f64(ns: f64) -> Correction {
        Correction((ns * 65536.0).round() as i64)
    }

    /// To the nearest whole nanosecond duration.
    pub fn to_nanos(self) -> Nanos {
        Nanos::from_nanos((self.0 + (1 << 15)) >> 16)
    }

    /// Adds fractional nanoseconds.
    pub fn add_nanos_f64(self, ns: f64) -> Correction {
        Correction(self.0 + (ns * 65536.0).round() as i64)
    }
}

impl std::ops::Add for Correction {
    type Output = Correction;
    fn add(self, rhs: Correction) -> Correction {
        Correction(self.0 + rhs.0)
    }
}

/// Rate-ratio helpers for the Follow_Up information TLV's
/// `cumulativeScaledRateOffset` (802.1AS clause 11.4.4.3.6: the rate ratio
/// minus 1, multiplied by 2⁴¹).
pub mod rate_ratio {
    /// Converts a rate ratio (≈ 1.0) to a scaled rate offset.
    pub fn to_scaled(ratio: f64) -> i32 {
        ((ratio - 1.0) * (1u64 << 41) as f64).round() as i32
    }

    /// Converts a scaled rate offset back to a rate ratio.
    pub fn from_scaled(scaled: i32) -> f64 {
        1.0 + f64::from(scaled) / (1u64 << 41) as f64
    }
}

/// Clock quality advertised in Announce messages (IEEE 1588 clause 7.6.2.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ClockQuality {
    /// clockClass (248 = default for gPTP end stations).
    pub class: u8,
    /// clockAccuracy enumeration.
    pub accuracy: u8,
    /// offsetScaledLogVariance.
    pub variance: u16,
}

impl Default for ClockQuality {
    fn default() -> Self {
        ClockQuality {
            class: 248,
            accuracy: 0xFE,
            variance: 0x4E5D,
        }
    }
}

/// The set of values BMCA compares, in comparison order
/// (IEEE 802.1AS clause 10.3.2 "systemIdentity").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemIdentity {
    /// priority1 (lower wins).
    pub priority1: u8,
    /// Clock quality.
    pub quality: ClockQuality,
    /// priority2 (lower wins).
    pub priority2: u8,
    /// Tie-break identity.
    pub identity: ClockIdentity,
}

impl SystemIdentity {
    /// Comparison key: lexicographic per the standard's ordering.
    pub fn key(&self) -> (u8, u8, u8, u16, u8, ClockIdentity) {
        (
            self.priority1,
            self.quality.class,
            self.quality.accuracy,
            self.quality.variance,
            self.priority2,
            self.identity,
        )
    }

    /// `true` if `self` is a better (lower-keyed) time source than
    /// `other`.
    pub fn better_than(&self, other: &SystemIdentity) -> bool {
        self.key() < other.key()
    }
}

use tsn_snapshot::{Reader, Snap, SnapError, Writer};

impl Snap for ClockIdentity {
    fn put(&self, w: &mut Writer) {
        w.put_bytes(&self.0);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(ClockIdentity(r.take(8)?.try_into().expect("8-byte take")))
    }
}

impl Snap for PortIdentity {
    fn put(&self, w: &mut Writer) {
        self.clock.put(w);
        self.port.put(w);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(PortIdentity {
            clock: Snap::get(r)?,
            port: Snap::get(r)?,
        })
    }
}

impl Snap for PtpTimestamp {
    fn put(&self, w: &mut Writer) {
        self.seconds.put(w);
        self.nanoseconds.put(w);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(PtpTimestamp {
            seconds: Snap::get(r)?,
            nanoseconds: Snap::get(r)?,
        })
    }
}

impl Snap for Correction {
    fn put(&self, w: &mut Writer) {
        self.scaled().put(w);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(Correction::from_scaled(i64::get(r)?))
    }
}

impl Snap for ClockQuality {
    fn put(&self, w: &mut Writer) {
        self.class.put(w);
        self.accuracy.put(w);
        self.variance.put(w);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(ClockQuality {
            class: Snap::get(r)?,
            accuracy: Snap::get(r)?,
            variance: Snap::get(r)?,
        })
    }
}

impl Snap for SystemIdentity {
    fn put(&self, w: &mut Writer) {
        self.priority1.put(w);
        self.quality.put(w);
        self.priority2.put(w);
        self.identity.put(w);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(SystemIdentity {
            priority1: Snap::get(r)?,
            quality: Snap::get(r)?,
            priority2: Snap::get(r)?,
            identity: Snap::get(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ptp_timestamp_roundtrip() {
        let t = ClockTime::from_nanos(86_400_000_000_123);
        let ts = PtpTimestamp::from_clock_time(t);
        assert_eq!(ts.seconds, 86_400);
        assert_eq!(ts.nanoseconds, 123);
        assert_eq!(ts.to_clock_time(), t);
    }

    #[test]
    #[should_panic(expected = "negative clock time")]
    fn negative_clock_time_rejected() {
        PtpTimestamp::from_clock_time(ClockTime::from_nanos(-1));
    }

    #[test]
    fn correction_roundtrip() {
        let c = Correction::from_nanos(Nanos::from_nanos(1234));
        assert_eq!(c.to_nanos(), Nanos::from_nanos(1234));
        let c2 = c.add_nanos_f64(0.5);
        // Rounds to nearest ns.
        assert_eq!(c2.to_nanos(), Nanos::from_nanos(1235));
    }

    #[test]
    fn correction_fractional_accumulation() {
        let mut c = Correction::ZERO;
        for _ in 0..1000 {
            c = c.add_nanos_f64(0.1);
        }
        let ns = c.to_nanos().as_nanos();
        assert!((ns - 100).abs() <= 1, "accumulated {ns}");
    }

    #[test]
    fn rate_ratio_scaling_roundtrip() {
        for ppm in [-100.0f64, -5.0, 0.0, 3.25, 100.0] {
            let ratio = 1.0 + ppm * 1e-6;
            let back = rate_ratio::from_scaled(rate_ratio::to_scaled(ratio));
            assert!((back - ratio).abs() < 1e-11, "ppm {ppm}");
        }
    }

    #[test]
    fn system_identity_ordering() {
        let base = SystemIdentity {
            priority1: 246,
            quality: ClockQuality::default(),
            priority2: 248,
            identity: ClockIdentity::for_index(5),
        };
        let worse_priority = SystemIdentity {
            priority1: 247,
            ..base
        };
        assert!(base.better_than(&worse_priority));
        let tie_break = SystemIdentity {
            identity: ClockIdentity::for_index(6),
            ..base
        };
        assert!(base.better_than(&tie_break));
        assert!(!base.better_than(&base));
    }

    #[test]
    fn clock_identities_unique_and_displayable() {
        assert_ne!(ClockIdentity::for_index(1), ClockIdentity::for_index(2));
        assert_eq!(
            ClockIdentity::for_index(1).to_string(),
            "02:00:00:ff:fe:00:00:01"
        );
    }
}
