//! # tsn-gptp
//!
//! A from-scratch IEEE 802.1AS (gPTP) implementation for the `clocksync`
//! reproduction of *IEEE 802.1AS Multi-Domain Aggregation for Virtualized
//! Distributed Real-Time Systems* (DSN-S 2023).
//!
//! The crate provides sans-IO protocol engines — pure state machines fed
//! with frames and hardware timestamps by the simulation world:
//!
//! * [`msg`] — byte-level codecs for the gPTP message set (common header,
//!   two-step `Sync`, `Follow_Up` + information TLV, the peer-delay
//!   triple, `Announce`);
//! * [`SyncMaster`] / [`SyncSlave`] — per-domain end-station machinery,
//!   including the transmit-timestamp-timeout and launch-deadline fault
//!   paths the paper reports;
//! * [`PdelayInitiator`] / [`PdelayResponder`] — the per-link peer-delay
//!   service shared across domains (CMLDS-style), with neighbor-rate-ratio
//!   estimation;
//! * [`BridgeRelay`] — per-domain time-aware bridge regeneration with
//!   correction-field and rate-ratio accumulation;
//! * [`Bmca`] — the best master clock algorithm (optional mode; the
//!   paper's experiments use [`DevicePortRoles`] external port
//!   configuration instead).
//!
//! Multi-domain aggregation itself — the paper's contribution — lives in
//! the `tsn-fta` crate and consumes the [`OffsetSample`]s produced here.
//!
//! # Example
//!
//! A complete two-step Sync exchange:
//!
//! ```
//! use tsn_gptp::{msg::Message, ClockIdentity, PortIdentity, SyncMaster, SyncSlave};
//! use tsn_time::{ClockTime, Nanos};
//!
//! let gm_port = PortIdentity::new(ClockIdentity::for_index(1), 1);
//! let mut master = SyncMaster::new(0, gm_port, -3);
//! let mut slave = SyncSlave::new(0);
//!
//! let (sync_bytes, seq) = master.make_sync();
//! let sync = Message::decode(&sync_bytes)?;
//! slave.handle_sync(&sync, ClockTime::from_nanos(1_002_500));
//!
//! let fu_bytes = master.sync_sent(seq, ClockTime::from_nanos(1_000_000)).unwrap();
//! let fu = Message::decode(&fu_bytes)?;
//! let sample = slave
//!     .handle_follow_up(&fu, Nanos::from_nanos(2_500), 1.0)
//!     .unwrap();
//! assert_eq!(sample.offset, Nanos::ZERO); // clocks agree
//! # Ok::<(), tsn_gptp::DecodeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bmca;
mod bridge;
mod cmlds;
mod config;
mod e2e;
pub mod msg;
mod pdelay;
mod port;
mod types;

pub use bmca::{Bmca, BmcaDecision, PortRole, PriorityVector};
pub use bridge::{BridgeRelay, Emission};
pub use cmlds::{LinkDelayService, LinkState};
pub use config::{derive_external_port_configuration, DevicePortRoles};
pub use e2e::{E2eDelayInitiator, E2eDelayResponder, PathDelaySample};
pub use msg::{DecodeError, IntervalRequestTlv, Message};
pub use pdelay::{LinkDelaySample, PdelayInitiator, PdelayResponder, RespContext};
pub use port::{OffsetSample, SyncMaster, SyncSlave};
pub use types::{
    rate_ratio, ClockIdentity, ClockQuality, Correction, PortIdentity, PtpTimestamp, SystemIdentity,
};
