//! Best master clock algorithm (IEEE 802.1AS clause 10.3).
//!
//! The paper's experiments run with *external port configuration* — static
//! port roles, no BMCA — because the four grandmasters are fixed by
//! design ("there is no best master clock algorithm (BMCA) picking GM
//! clocks"). The algorithm is still part of IEEE 802.1AS, so this module
//! implements it as an optional mode: priority-vector comparison,
//! Announce qualification and receipt timeout, and per-port role
//! decision. Integration tests use it to check that a BMCA-managed domain
//! elects the configured-best GM and fails over when it goes silent.

use crate::msg::{AnnounceBody, Message};
use crate::types::{PortIdentity, SystemIdentity};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use tsn_time::{ClockTime, Nanos};

/// The role of a gPTP port within one domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PortRole {
    /// Sends Sync/Announce downstream.
    Master,
    /// Receives time from the elected GM.
    Slave,
    /// Blocked to keep the active topology loop-free.
    Passive,
    /// Not participating.
    Disabled,
}

/// An 802.1AS priority vector (clause 10.3.5), ordered so that *smaller is
/// better*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PriorityVector {
    /// Root system identity.
    pub system: SystemIdentity,
    /// Steps removed from the root.
    pub steps_removed: u16,
    /// Identity of the transmitting port.
    pub source_port: PortIdentity,
    /// Number of the receiving port (tie-break).
    pub receiving_port: u16,
}

/// Comparison key of a [`PriorityVector`] (system key, steps removed,
/// source port, receiving port).
type VectorKey = (
    (u8, u8, u8, u16, u8, crate::types::ClockIdentity),
    u16,
    PortIdentity,
    u16,
);

impl PriorityVector {
    fn key(&self) -> VectorKey {
        (
            self.system.key(),
            self.steps_removed,
            self.source_port,
            self.receiving_port,
        )
    }
}

impl PartialOrd for PriorityVector {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PriorityVector {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// The outcome of a BMCA decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BmcaDecision {
    /// The elected grandmaster's system identity.
    pub grandmaster: SystemIdentity,
    /// `true` if the local system is the grandmaster.
    pub is_grandmaster: bool,
    /// Role per port.
    pub roles: BTreeMap<u16, PortRole>,
    /// The slave port (if not grandmaster).
    pub slave_port: Option<u16>,
}

#[derive(Debug, Clone)]
struct ErBest {
    vector: PriorityVector,
    last_announce: ClockTime,
}

/// Per-domain BMCA state of one time-aware system.
#[derive(Debug, Clone)]
pub struct Bmca {
    own: SystemIdentity,
    ports: Vec<u16>,
    er_best: BTreeMap<u16, ErBest>,
    announce_receipt_timeout: Nanos,
}

impl Bmca {
    /// Creates BMCA state for a system with the given ports.
    ///
    /// `announce_receipt_timeout` is the silence interval after which a
    /// port's best master information expires (802.1AS default: 3 Announce
    /// intervals).
    pub fn new(own: SystemIdentity, ports: Vec<u16>, announce_receipt_timeout: Nanos) -> Self {
        Bmca {
            own,
            ports,
            er_best: BTreeMap::new(),
            announce_receipt_timeout,
        }
    }

    /// The local system identity.
    pub fn own_identity(&self) -> &SystemIdentity {
        &self.own
    }

    /// Overrides the local `priority1`, e.g. when a rogue master forges
    /// a best-possible vector after compromise. Does not touch the
    /// per-port best-master records; the next [`Bmca::decide`] compares
    /// against the forged value.
    pub fn set_priority1(&mut self, priority1: u8) {
        self.own.priority1 = priority1;
    }

    /// Feeds a received Announce. `now` is the local clock used only for
    /// receipt-timeout bookkeeping.
    pub fn consider_announce(&mut self, port: u16, msg: &Message, now: ClockTime) {
        let Message::Announce {
            header,
            body,
            path_trace,
        } = msg
        else {
            return;
        };
        // Qualification (clause 10.3.10): not from ourselves, sane steps,
        // and no loop — an Announce whose path trace already contains our
        // clock identity has circled back (clause 10.3.8.23).
        if body.gm_identity == self.own.identity
            || body.steps_removed >= 255
            || path_trace.contains(&self.own.identity)
        {
            return;
        }
        let vector = Self::vector_from(body, header.source_port, port);
        let replace = match self.er_best.get(&port) {
            // Same source always refreshes; a better vector replaces.
            Some(cur) => vector <= cur.vector || cur.vector.source_port == header.source_port,
            None => true,
        };
        if replace {
            self.er_best.insert(
                port,
                ErBest {
                    vector,
                    last_announce: now,
                },
            );
        }
    }

    fn vector_from(body: &AnnounceBody, source_port: PortIdentity, port: u16) -> PriorityVector {
        PriorityVector {
            system: SystemIdentity {
                priority1: body.priority1,
                quality: body.quality,
                priority2: body.priority2,
                identity: body.gm_identity,
            },
            // One more step for the hop to us.
            steps_removed: body.steps_removed + 1,
            source_port,
            receiving_port: port,
        }
    }

    /// Expires ports whose Announce information is stale at `now`.
    pub fn expire(&mut self, now: ClockTime) {
        let timeout = self.announce_receipt_timeout;
        self.er_best.retain(|_, e| now - e.last_announce <= timeout);
    }

    /// Runs the state decision, returning the elected GM and port roles.
    pub fn decide(&self) -> BmcaDecision {
        let best_port = self
            .er_best
            .iter()
            .min_by(|a, b| a.1.vector.cmp(&b.1.vector))
            .map(|(p, e)| (*p, e.vector));
        let is_grandmaster = match best_port {
            Some((_, v)) => !v.system.better_than(&self.own),
            None => true,
        };
        let mut roles = BTreeMap::new();
        let mut slave_port = None;
        if is_grandmaster {
            for &p in &self.ports {
                roles.insert(p, PortRole::Master);
            }
            BmcaDecision {
                grandmaster: self.own,
                is_grandmaster: true,
                roles,
                slave_port: None,
            }
        } else {
            let (bp, bv) = best_port.expect("not GM implies some better vector");
            for &p in &self.ports {
                let role = if p == bp {
                    slave_port = Some(p);
                    PortRole::Slave
                } else {
                    match self.er_best.get(&p) {
                        // Another port also hears the (same or better)
                        // root: block it to avoid a loop.
                        Some(e) if e.vector.system.better_than(&self.own) => PortRole::Passive,
                        _ => PortRole::Master,
                    }
                };
                roles.insert(p, role);
            }
            BmcaDecision {
                grandmaster: bv.system,
                is_grandmaster: false,
                roles,
                slave_port,
            }
        }
    }
}

use tsn_snapshot::{Reader, Snap, SnapError, SnapState, Writer};

impl Snap for PriorityVector {
    fn put(&self, w: &mut Writer) {
        self.system.put(w);
        self.steps_removed.put(w);
        self.source_port.put(w);
        self.receiving_port.put(w);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(PriorityVector {
            system: Snap::get(r)?,
            steps_removed: Snap::get(r)?,
            source_port: Snap::get(r)?,
            receiving_port: Snap::get(r)?,
        })
    }
}

impl Snap for ErBest {
    fn put(&self, w: &mut Writer) {
        self.vector.put(w);
        self.last_announce.put(w);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(ErBest {
            vector: Snap::get(r)?,
            last_announce: Snap::get(r)?,
        })
    }
}

impl SnapState for Bmca {
    // The port list and receipt timeout are construction-time
    // configuration; `priority1` is mutable (rogue-master forging) and
    // travels with the per-port best-master records.
    fn save_state(&self, w: &mut Writer) {
        self.own.priority1.put(w);
        self.er_best.put(w);
    }
    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        self.own.priority1 = Snap::get(r)?;
        self.er_best = Snap::get(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::{Header, MessageType};
    use crate::types::{ClockIdentity, ClockQuality};

    fn sys(priority1: u8, idx: u32) -> SystemIdentity {
        SystemIdentity {
            priority1,
            quality: ClockQuality::default(),
            priority2: 248,
            identity: ClockIdentity::for_index(idx),
        }
    }

    fn announce(from: &SystemIdentity, steps: u16, src_idx: u32) -> Message {
        Message::Announce {
            header: Header::new(
                MessageType::Announce,
                0,
                PortIdentity::new(ClockIdentity::for_index(src_idx), 1),
                0,
                0,
            ),
            path_trace: vec![from.identity],
            body: AnnounceBody {
                current_utc_offset: 37,
                priority1: from.priority1,
                quality: from.quality,
                priority2: from.priority2,
                gm_identity: from.identity,
                steps_removed: steps,
                time_source: 0xA0,
            },
        }
    }

    const TIMEOUT: Nanos = Nanos::from_secs(3);

    #[test]
    fn alone_we_are_grandmaster() {
        let bmca = Bmca::new(sys(246, 1), vec![1, 2], TIMEOUT);
        let d = bmca.decide();
        assert!(d.is_grandmaster);
        assert_eq!(d.roles[&1], PortRole::Master);
        assert_eq!(d.roles[&2], PortRole::Master);
    }

    #[test]
    fn better_announce_wins_and_sets_slave_port() {
        let mut bmca = Bmca::new(sys(246, 5), vec![1, 2], TIMEOUT);
        let better = sys(100, 2);
        bmca.consider_announce(1, &announce(&better, 0, 2), ClockTime::ZERO);
        let d = bmca.decide();
        assert!(!d.is_grandmaster);
        assert_eq!(d.grandmaster.identity, better.identity);
        assert_eq!(d.slave_port, Some(1));
        assert_eq!(d.roles[&1], PortRole::Slave);
        assert_eq!(d.roles[&2], PortRole::Master);
    }

    #[test]
    fn worse_announce_ignored() {
        let mut bmca = Bmca::new(sys(100, 1), vec![1], TIMEOUT);
        bmca.consider_announce(1, &announce(&sys(200, 2), 0, 2), ClockTime::ZERO);
        assert!(bmca.decide().is_grandmaster);
    }

    #[test]
    fn second_port_hearing_root_goes_passive() {
        let mut bmca = Bmca::new(sys(246, 5), vec![1, 2], TIMEOUT);
        let better = sys(100, 2);
        // Port 1 hears the root directly; port 2 via a longer path.
        bmca.consider_announce(1, &announce(&better, 0, 2), ClockTime::ZERO);
        bmca.consider_announce(2, &announce(&better, 2, 7), ClockTime::ZERO);
        let d = bmca.decide();
        assert_eq!(d.roles[&1], PortRole::Slave);
        assert_eq!(d.roles[&2], PortRole::Passive);
    }

    #[test]
    fn steps_removed_breaks_ties() {
        let mut bmca = Bmca::new(sys(246, 5), vec![1, 2], TIMEOUT);
        let root = sys(100, 2);
        bmca.consider_announce(1, &announce(&root, 3, 8), ClockTime::ZERO);
        bmca.consider_announce(2, &announce(&root, 1, 9), ClockTime::ZERO);
        let d = bmca.decide();
        assert_eq!(d.slave_port, Some(2), "shorter path wins");
    }

    #[test]
    fn announce_timeout_fails_over_to_self() {
        let mut bmca = Bmca::new(sys(246, 5), vec![1], TIMEOUT);
        bmca.consider_announce(1, &announce(&sys(100, 2), 0, 2), ClockTime::ZERO);
        assert!(!bmca.decide().is_grandmaster);
        // GM goes silent: expire 4 s later.
        bmca.expire(ClockTime::from_nanos(4_000_000_000));
        assert!(bmca.decide().is_grandmaster);
    }

    #[test]
    fn own_announce_disqualified() {
        let own = sys(100, 1);
        let mut bmca = Bmca::new(own, vec![1], TIMEOUT);
        // An echo of our own GM identity must not be considered.
        bmca.consider_announce(1, &announce(&own, 1, 3), ClockTime::ZERO);
        let d = bmca.decide();
        assert!(d.is_grandmaster);
    }

    #[test]
    fn looping_announce_discarded_via_path_trace() {
        let own = sys(246, 5);
        let mut bmca = Bmca::new(own, vec![1], TIMEOUT);
        let better = sys(100, 2);
        // The Announce already traversed us: it must be ignored.
        let mut msg = announce(&better, 2, 7);
        if let Message::Announce { path_trace, .. } = &mut msg {
            path_trace.push(own.identity);
        }
        bmca.consider_announce(1, &msg, ClockTime::ZERO);
        assert!(bmca.decide().is_grandmaster, "looping announce accepted");
        // The same Announce without our identity is accepted.
        bmca.consider_announce(1, &announce(&better, 2, 7), ClockTime::ZERO);
        assert!(!bmca.decide().is_grandmaster);
    }

    #[test]
    fn fresh_announce_from_same_source_refreshes_timeout() {
        let mut bmca = Bmca::new(sys(246, 5), vec![1], TIMEOUT);
        let gm = sys(100, 2);
        bmca.consider_announce(1, &announce(&gm, 0, 2), ClockTime::ZERO);
        bmca.consider_announce(
            1,
            &announce(&gm, 0, 2),
            ClockTime::from_nanos(2_500_000_000),
        );
        bmca.expire(ClockTime::from_nanos(4_000_000_000));
        assert!(!bmca.decide().is_grandmaster, "refresh kept the GM alive");
    }

    #[test]
    fn steps_removed_qualification_boundary() {
        // Clause 10.3.10: stepsRemoved >= 255 disqualifies an Announce.
        // 254 is the last qualifying value (the vector stores 255 after
        // the +1 hop to us).
        let mut bmca = Bmca::new(sys(246, 5), vec![1], TIMEOUT);
        bmca.consider_announce(1, &announce(&sys(100, 2), 255, 2), ClockTime::ZERO);
        assert!(bmca.decide().is_grandmaster, "steps_removed=255 accepted");
        bmca.consider_announce(1, &announce(&sys(100, 2), 254, 2), ClockTime::ZERO);
        let d = bmca.decide();
        assert!(!d.is_grandmaster, "steps_removed=254 rejected");
        let er = bmca.er_best.get(&1).expect("recorded");
        assert_eq!(er.vector.steps_removed, 255, "hop increment applied");
    }

    #[test]
    fn same_source_refresh_accepts_worse_vector() {
        // A degraded Announce from the *recorded* source must replace the
        // stale record (the source's state changed); the same degraded
        // vector from a different source must not displace the better one.
        let mut bmca = Bmca::new(sys(246, 5), vec![1], TIMEOUT);
        let good = sys(100, 2);
        bmca.consider_announce(1, &announce(&good, 0, 2), ClockTime::ZERO);
        assert_eq!(bmca.decide().grandmaster.identity, good.identity);

        // Same source (src_idx 2), now advertising a worse GM.
        let degraded = sys(150, 9);
        let mut msg = announce(&degraded, 0, 2);
        if let Message::Announce { header, .. } = &mut msg {
            header.source_port = PortIdentity::new(ClockIdentity::for_index(2), 1);
        }
        bmca.consider_announce(1, &msg, ClockTime::from_nanos(1));
        assert_eq!(
            bmca.decide().grandmaster.identity,
            degraded.identity,
            "same-source refresh must overwrite, not keep the stale best"
        );

        // Reinstate the good record, then offer the worse vector from a
        // *different* source: it must be ignored.
        bmca.consider_announce(1, &announce(&good, 0, 2), ClockTime::from_nanos(2));
        bmca.consider_announce(1, &announce(&degraded, 0, 7), ClockTime::from_nanos(3));
        assert_eq!(
            bmca.decide().grandmaster.identity,
            good.identity,
            "worse vector from a new source displaced the best"
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::types::{ClockIdentity, ClockQuality};
    use proptest::prelude::*;

    fn arb_vector() -> impl Strategy<Value = PriorityVector> {
        (
            any::<u8>(),
            any::<u8>(),
            any::<u8>(),
            any::<u16>(),
            any::<u8>(),
            0u32..8,
            any::<u16>(),
            0u32..8,
            any::<u16>(),
            any::<u16>(),
        )
            .prop_map(
                |(p1, class, acc, var, p2, id, steps, src_id, src_port, rx)| PriorityVector {
                    system: SystemIdentity {
                        priority1: p1,
                        quality: ClockQuality {
                            class,
                            accuracy: acc,
                            variance: var,
                        },
                        priority2: p2,
                        identity: ClockIdentity::for_index(id),
                    },
                    steps_removed: steps,
                    source_port: PortIdentity::new(ClockIdentity::for_index(src_id), src_port),
                    receiving_port: rx,
                },
            )
    }

    proptest! {
        /// The dataset comparison (clause 10.3.5) is a total order:
        /// antisymmetric, transitive, and total, with equality agreeing
        /// with structural equality — `min_by` in `decide` relies on it.
        #[test]
        fn priority_vector_ordering_is_a_total_order(
            a in arb_vector(), b in arb_vector(), c in arb_vector()
        ) {
            use std::cmp::Ordering;
            // Consistency: Ord, PartialOrd, and Eq agree.
            prop_assert_eq!(a.partial_cmp(&b), Some(a.cmp(&b)));
            prop_assert_eq!(a.cmp(&b) == Ordering::Equal, a == b);
            // Antisymmetry.
            prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
            // Transitivity over every ordering of the triple.
            let mut sorted = [a, b, c];
            sorted.sort();
            prop_assert!(sorted[0] <= sorted[1] && sorted[1] <= sorted[2]);
            prop_assert!(sorted[0] <= sorted[2]);
            // Reflexivity / totality.
            prop_assert_eq!(a.cmp(&a), Ordering::Equal);
        }

        /// A strictly better system identity always wins the comparison
        /// regardless of steps/ports (lexicographic dominance).
        #[test]
        fn system_identity_dominates_tiebreaks(
            a in arb_vector(), b in arb_vector()
        ) {
            prop_assume!(a.system.better_than(&b.system));
            prop_assert!(a < b);
        }
    }
}
