//! Common Mean Link Delay Service (IEEE 802.1AS-2020 clause 16.6).
//!
//! When multiple gPTP domains share a port, running one peer-delay
//! exchange per domain would waste bandwidth and measure the same wire
//! repeatedly. CMLDS runs the peer-delay mechanism *once* per link —
//! using `majorSdoId = 2` and the CMLDS link-port identity — and every
//! domain's port reads the shared `meanLinkDelay` and
//! `neighborRateRatio` from it.
//!
//! This is exactly what the paper's multi-domain setup needs: its `M`
//! `ptp4l` instances on one NIC share the link measurement. The
//! experiment world wires one [`LinkDelayService`] per port and hands
//! out read-only views to the per-domain machinery.

use crate::msg::Message;
use crate::pdelay::{LinkDelaySample, PdelayInitiator, PdelayResponder, RespContext};
use crate::types::PortIdentity;
use bytes::Bytes;
use tsn_time::{ClockTime, Nanos};

/// The shared per-link delay measurement service.
///
/// Wraps one peer-delay initiator/responder pair and exposes the
/// measured link state to any number of domain instances.
#[derive(Debug, Clone)]
pub struct LinkDelayService {
    initiator: PdelayInitiator,
    responder: PdelayResponder,
    /// Completed measurement rounds.
    pub rounds: u64,
}

/// A read-only snapshot of the link state CMLDS publishes to the
/// per-domain ports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkState {
    /// Filtered mean link delay (`None` until the first round completes).
    pub mean_link_delay: Option<Nanos>,
    /// Neighbor rate ratio estimate.
    pub neighbor_rate_ratio: f64,
}

impl LinkDelayService {
    /// Creates the service for the given CMLDS link-port identity.
    pub fn new(port: PortIdentity) -> Self {
        LinkDelayService {
            initiator: PdelayInitiator::new(port),
            responder: PdelayResponder::new(port),
            rounds: 0,
        }
    }

    /// Current link state, shared by all domains on this port.
    pub fn link_state(&self) -> LinkState {
        LinkState {
            mean_link_delay: self.initiator.mean_link_delay(),
            neighbor_rate_ratio: self.initiator.neighbor_rate_ratio(),
        }
    }

    /// Starts a measurement round; transmit the bytes as an event
    /// message and report its egress timestamp via
    /// [`LinkDelayService::request_sent`].
    pub fn make_request(&mut self) -> (Bytes, u16) {
        self.initiator.make_request()
    }

    /// Reports the egress timestamp of request `seq`.
    pub fn request_sent(&mut self, seq: u16, t1: ClockTime) {
        self.initiator.request_sent(seq, t1);
    }

    /// Handles any received pdelay message (`Pdelay_Req` from the peer,
    /// or responses to our own requests). Returns a response context to
    /// transmit (for requests) — its egress timestamp goes to
    /// [`LinkDelayService::make_resp_follow_up`].
    pub fn handle(&mut self, msg: &Message, rx_ts: ClockTime) -> Option<RespContext> {
        match msg {
            Message::PdelayReq { .. } => self.responder.handle_request(msg, rx_ts),
            Message::PdelayResp { .. } => {
                self.initiator.handle_resp(msg, rx_ts);
                None
            }
            Message::PdelayRespFollowUp { .. } => {
                if self.complete(msg).is_some() {
                    self.rounds += 1;
                }
                None
            }
            _ => None,
        }
    }

    fn complete(&mut self, msg: &Message) -> Option<LinkDelaySample> {
        self.initiator.handle_resp_follow_up(msg)
    }

    /// Builds the `Pdelay_Resp_Follow_Up` once the responder's egress
    /// timestamp `t3` is known.
    pub fn make_resp_follow_up(
        &self,
        seq: u16,
        requesting_port: PortIdentity,
        t3: ClockTime,
    ) -> Bytes {
        self.responder.make_resp_follow_up(seq, requesting_port, t3)
    }
}

use tsn_snapshot::{Reader, Snap, SnapError, SnapState, Writer};

impl SnapState for LinkDelayService {
    fn save_state(&self, w: &mut Writer) {
        self.initiator.save_state(w);
        self.rounds.put(w);
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        self.initiator.load_state(r)?;
        self.rounds = Snap::get(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ClockIdentity;

    fn pid(i: u32) -> PortIdentity {
        PortIdentity::new(ClockIdentity::for_index(i), 1)
    }

    /// Two services on opposite ends of a 2.5 µs link; both ends run
    /// measurement rounds and multiple "domains" read the same state.
    #[test]
    fn shared_measurement_across_domains() {
        let mut a = LinkDelayService::new(pid(1));
        let mut b = LinkDelayService::new(pid(2));
        let delay = 2_500i64;
        let mut now = 1_000_000_000i64;
        for _ in 0..5 {
            // A measures toward B.
            let (req, seq) = a.make_request();
            a.request_sent(seq, ClockTime::from_nanos(now));
            let req = Message::decode(&req).unwrap();
            let t2 = ClockTime::from_nanos(now + delay);
            let ctx = b.handle(&req, t2).expect("responder replies");
            let t3 = t2 + Nanos::from_micros(80);
            let t4 = ClockTime::from_nanos(now + delay + 80_000 + delay);
            let resp = Message::decode(&ctx.resp).unwrap();
            assert!(a.handle(&resp, t4).is_none());
            let fu = b.make_resp_follow_up(ctx.seq, ctx.requesting_port, t3);
            let fu = Message::decode(&fu).unwrap();
            a.handle(&fu, t4);
            now += 1_000_000_000;
        }
        assert_eq!(a.rounds, 5);
        // Every domain instance sees the same link state.
        let d1 = a.link_state();
        let d2 = a.link_state();
        assert_eq!(d1, d2);
        let mld = d1.mean_link_delay.expect("measured").as_nanos();
        assert!((mld - delay).abs() <= 1, "link delay {mld}");
    }

    #[test]
    fn unmeasured_link_has_no_delay() {
        let s = LinkDelayService::new(pid(9));
        let state = s.link_state();
        assert_eq!(state.mean_link_delay, None);
        assert_eq!(state.neighbor_rate_ratio, 1.0);
    }

    #[test]
    fn non_pdelay_messages_ignored() {
        let mut s = LinkDelayService::new(pid(1));
        let sync = Message::Sync {
            header: crate::msg::Header::new(crate::msg::MessageType::Sync, 0, pid(3), 0, -3),
            origin: crate::types::PtpTimestamp::default(),
        };
        assert!(s.handle(&sync, ClockTime::ZERO).is_none());
        assert_eq!(s.rounds, 0);
    }
}
