//! Per-domain time-aware bridge relay (IEEE 802.1AS clause 11).
//!
//! A time-aware bridge does not forward gPTP frames through its relay
//! function: it *regenerates* them. For each domain the bridge has one
//! slave (upstream) port and a set of master (downstream) ports, fixed by
//! the external port configuration. On receiving `Sync` it immediately
//! sends a fresh `Sync` on every master port; when the matching
//! `Follow_Up` arrives it forwards it with
//!
//! ```text
//! correction' = correction
//!             + meanLinkDelay(slave port)
//!             + rateRatioToGm · residenceTime(egress port)
//! ```
//!
//! where `residenceTime` is measured with the bridge's free-running local
//! clock and `rateRatioToGm` is the cumulative rate ratio from the
//! Follow_Up TLV times the slave port's neighbor rate ratio. The TLV's
//! `cumulativeScaledRateOffset` is updated the same way, so downstream
//! systems can syntonize.

use crate::msg::{Header, Message, MessageType};
use crate::types::{rate_ratio, PortIdentity, PtpTimestamp};
use bytes::Bytes;
use std::collections::HashMap;
use tsn_time::{ClockTime, Nanos};

/// Maximum in-flight Sync sequences tracked per relay before the oldest
/// is evicted (protects against a dead upstream never completing).
const MAX_TRACKED: usize = 8;

/// A `(egress port number, encoded message)` emission.
pub type Emission = (u16, Bytes);

#[derive(Debug, Clone)]
struct SeqState {
    rx_ts: ClockTime,
    /// Per egress port: hardware tx timestamp of the regenerated Sync.
    tx_ts: HashMap<u16, ClockTime>,
    /// Upstream Follow_Up content, once received.
    upstream: Option<UpstreamFu>,
    /// Egress ports already served.
    done: Vec<u16>,
    /// Insertion order for eviction.
    order: u64,
}

#[derive(Debug, Clone, Copy)]
struct UpstreamFu {
    precise_origin: PtpTimestamp,
    correction: crate::types::Correction,
    cumulative_scaled_rate_offset: i32,
    rate_ratio_to_gm: f64,
}

/// Per-domain Sync/Follow_Up relay of one time-aware bridge.
#[derive(Debug, Clone)]
pub struct BridgeRelay {
    domain: u8,
    clock: crate::types::ClockIdentity,
    slave_port: u16,
    master_ports: Vec<u16>,
    log_sync_interval: i8,
    seqs: HashMap<u16, SeqState>,
    next_order: u64,
    /// Count of Follow_Ups that could not be forwarded because the
    /// regenerated Sync's tx timestamp never became available.
    pub dropped_forwards: u64,
}

impl BridgeRelay {
    /// Creates a relay for `domain` with the given static port roles.
    ///
    /// # Panics
    ///
    /// Panics if `slave_port` also appears in `master_ports`.
    pub fn new(
        domain: u8,
        clock: crate::types::ClockIdentity,
        slave_port: u16,
        master_ports: Vec<u16>,
    ) -> Self {
        assert!(
            !master_ports.contains(&slave_port),
            "port {slave_port} cannot be both slave and master"
        );
        BridgeRelay {
            domain,
            clock,
            slave_port,
            master_ports,
            log_sync_interval: -3,
            seqs: HashMap::new(),
            next_order: 0,
            dropped_forwards: 0,
        }
    }

    /// The relay's domain.
    pub fn domain(&self) -> u8 {
        self.domain
    }

    /// The upstream (slave) port number.
    pub fn slave_port(&self) -> u16 {
        self.slave_port
    }

    /// Downstream (master) port numbers.
    pub fn master_ports(&self) -> &[u16] {
        &self.master_ports
    }

    /// Handles a `Sync` arriving on the slave port at bridge-clock
    /// timestamp `rx_ts`; returns the regenerated `Sync` for each master
    /// port. The caller must report each departure via
    /// [`BridgeRelay::sync_forwarded`].
    pub fn handle_sync(
        &mut self,
        msg: &Message,
        ingress_port: u16,
        rx_ts: ClockTime,
    ) -> Vec<Emission> {
        let Message::Sync { header, .. } = msg else {
            return Vec::new();
        };
        if header.domain != self.domain || ingress_port != self.slave_port {
            return Vec::new();
        }
        self.log_sync_interval = header.log_message_interval;
        if self.seqs.len() >= MAX_TRACKED {
            // Evict the oldest incomplete sequence.
            if let Some((&oldest, _)) = self.seqs.iter().min_by_key(|(_, s)| s.order) {
                self.seqs.remove(&oldest);
                self.dropped_forwards += 1;
            }
        }
        let order = self.next_order;
        self.next_order += 1;
        self.seqs.insert(
            header.sequence_id,
            SeqState {
                rx_ts,
                tx_ts: HashMap::new(),
                upstream: None,
                done: Vec::new(),
                order,
            },
        );
        self.master_ports
            .iter()
            .map(|&p| {
                let sync = Message::Sync {
                    header: Header::new(
                        MessageType::Sync,
                        self.domain,
                        PortIdentity::new(self.clock, p),
                        header.sequence_id,
                        header.log_message_interval,
                    ),
                    origin: PtpTimestamp::default(),
                };
                (p, sync.encode())
            })
            .collect()
    }

    /// Reports the hardware egress timestamp of the regenerated `Sync`
    /// with id `seq` on `port`; returns the `Follow_Up` for that port if
    /// the upstream `Follow_Up` already arrived.
    pub fn sync_forwarded(&mut self, seq: u16, port: u16, tx_ts: ClockTime) -> Vec<Emission> {
        let Some(state) = self.seqs.get_mut(&seq) else {
            return Vec::new();
        };
        state.tx_ts.insert(port, tx_ts);
        self.drain_ready(seq)
    }

    /// Handles the upstream `Follow_Up` (received on the slave port);
    /// `slave_link_delay` and `slave_nrr` come from the slave port's
    /// peer-delay service. Returns Follow_Ups for every master port whose
    /// Sync already departed.
    pub fn handle_follow_up(
        &mut self,
        msg: &Message,
        ingress_port: u16,
        slave_link_delay: Nanos,
        slave_nrr: f64,
    ) -> Vec<Emission> {
        let Message::FollowUp {
            header,
            precise_origin,
            tlv,
        } = msg
        else {
            return Vec::new();
        };
        if header.domain != self.domain || ingress_port != self.slave_port {
            return Vec::new();
        }
        let seq = header.sequence_id;
        let Some(state) = self.seqs.get_mut(&seq) else {
            return Vec::new();
        };
        let cumulative = rate_ratio::from_scaled(tlv.cumulative_scaled_rate_offset);
        let rate_ratio_to_gm = cumulative * slave_nrr;
        state.upstream = Some(UpstreamFu {
            precise_origin: *precise_origin,
            // Ingress link delay is added once, on reception.
            correction: header
                .correction
                .add_nanos_f64(slave_link_delay.as_nanos() as f64),
            cumulative_scaled_rate_offset: rate_ratio::to_scaled(rate_ratio_to_gm),
            rate_ratio_to_gm,
        });
        self.drain_ready(seq)
    }

    fn drain_ready(&mut self, seq: u16) -> Vec<Emission> {
        let Some(state) = self.seqs.get_mut(&seq) else {
            return Vec::new();
        };
        let Some(upstream) = state.upstream else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for &port in &self.master_ports {
            if state.done.contains(&port) {
                continue;
            }
            let Some(&tx_ts) = state.tx_ts.get(&port) else {
                continue;
            };
            let residence = (tx_ts - state.rx_ts).as_nanos() as f64;
            let correction = upstream
                .correction
                .add_nanos_f64(residence * upstream.rate_ratio_to_gm);
            let mut header = Header::new(
                MessageType::FollowUp,
                self.domain,
                PortIdentity::new(self.clock, port),
                seq,
                self.log_sync_interval,
            );
            header.correction = correction;
            let fu = Message::FollowUp {
                header,
                precise_origin: upstream.precise_origin,
                tlv: crate::msg::FollowUpTlv {
                    cumulative_scaled_rate_offset: upstream.cumulative_scaled_rate_offset,
                    ..Default::default()
                },
            };
            out.push((port, fu.encode()));
            state.done.push(port);
        }
        if state.done.len() == self.master_ports.len() {
            self.seqs.remove(&seq);
        }
        out
    }
}

use tsn_snapshot::{Reader, Snap, SnapError, SnapState, Writer};

impl Snap for UpstreamFu {
    fn put(&self, w: &mut Writer) {
        self.precise_origin.put(w);
        self.correction.put(w);
        self.cumulative_scaled_rate_offset.put(w);
        self.rate_ratio_to_gm.put(w);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(UpstreamFu {
            precise_origin: Snap::get(r)?,
            correction: Snap::get(r)?,
            cumulative_scaled_rate_offset: Snap::get(r)?,
            rate_ratio_to_gm: Snap::get(r)?,
        })
    }
}

impl Snap for SeqState {
    fn put(&self, w: &mut Writer) {
        self.rx_ts.put(w);
        self.tx_ts.put(w);
        self.upstream.put(w);
        self.done.put(w);
        self.order.put(w);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(SeqState {
            rx_ts: Snap::get(r)?,
            tx_ts: Snap::get(r)?,
            upstream: Snap::get(r)?,
            done: Snap::get(r)?,
            order: Snap::get(r)?,
        })
    }
}

impl SnapState for BridgeRelay {
    fn save_state(&self, w: &mut Writer) {
        self.log_sync_interval.put(w);
        self.seqs.put(w);
        self.next_order.put(w);
        self.dropped_forwards.put(w);
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        self.log_sync_interval = Snap::get(r)?;
        self.seqs = Snap::get(r)?;
        self.next_order = Snap::get(r)?;
        self.dropped_forwards = Snap::get(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::FollowUpTlv;
    use crate::types::{ClockIdentity, Correction};

    fn sync_msg(domain: u8, seq: u16) -> Message {
        Message::Sync {
            origin: PtpTimestamp::default(),
            header: Header::new(
                MessageType::Sync,
                domain,
                PortIdentity::new(ClockIdentity::for_index(1), 1),
                seq,
                -3,
            ),
        }
    }

    fn fu_msg(domain: u8, seq: u16, pot_ns: i64, corr_ns: i64, csro: i32) -> Message {
        let mut header = Header::new(
            MessageType::FollowUp,
            domain,
            PortIdentity::new(ClockIdentity::for_index(1), 1),
            seq,
            -3,
        );
        header.correction = Correction::from_nanos(Nanos::from_nanos(corr_ns));
        Message::FollowUp {
            header,
            precise_origin: PtpTimestamp::from_clock_time(ClockTime::from_nanos(pot_ns)),
            tlv: FollowUpTlv {
                cumulative_scaled_rate_offset: csro,
                ..Default::default()
            },
        }
    }

    fn relay() -> BridgeRelay {
        BridgeRelay::new(1, ClockIdentity::for_index(10), 5, vec![1, 2, 3])
    }

    #[test]
    fn sync_regenerated_on_all_master_ports() {
        let mut r = relay();
        let out = r.handle_sync(&sync_msg(1, 7), 5, ClockTime::from_nanos(100));
        assert_eq!(out.len(), 3);
        for (port, bytes) in &out {
            let m = Message::decode(bytes).unwrap();
            assert_eq!(m.header().sequence_id, 7);
            assert_eq!(m.header().source_port.port, *port);
            assert_eq!(m.header().source_port.clock, ClockIdentity::for_index(10));
        }
    }

    #[test]
    fn sync_on_wrong_port_or_domain_ignored() {
        let mut r = relay();
        assert!(r
            .handle_sync(&sync_msg(1, 7), 2, ClockTime::ZERO)
            .is_empty());
        assert!(r
            .handle_sync(&sync_msg(9, 7), 5, ClockTime::ZERO)
            .is_empty());
    }

    #[test]
    fn follow_up_accumulates_residence_and_link_delay() {
        let mut r = relay();
        let rx = ClockTime::from_nanos(1_000_000);
        r.handle_sync(&sync_msg(1, 7), 5, rx);
        // Syncs depart 2 µs (port 1) and 3 µs (port 2/3) later.
        assert!(r
            .sync_forwarded(7, 1, rx + Nanos::from_micros(2))
            .is_empty());
        assert!(r
            .sync_forwarded(7, 2, rx + Nanos::from_micros(3))
            .is_empty());
        assert!(r
            .sync_forwarded(7, 3, rx + Nanos::from_micros(3))
            .is_empty());
        // Upstream FU: correction 1 µs; slave link delay 2.5 µs; NRR 1.
        let out = r.handle_follow_up(
            &fu_msg(1, 7, 500, 1_000, 0),
            5,
            Nanos::from_nanos(2_500),
            1.0,
        );
        assert_eq!(out.len(), 3);
        let (port, bytes) = &out[0];
        assert_eq!(*port, 1);
        let m = Message::decode(bytes).unwrap();
        // correction = 1000 + 2500 + 2000 = 5500 ns on port 1.
        assert_eq!(m.header().correction.to_nanos(), Nanos::from_nanos(5_500));
        match m {
            Message::FollowUp { precise_origin, .. } => {
                assert_eq!(precise_origin.to_clock_time(), ClockTime::from_nanos(500));
            }
            _ => panic!("wrong type"),
        }
        // Ports 2/3: correction = 1000 + 2500 + 3000 = 6500 ns.
        let m2 = Message::decode(&out[1].1).unwrap();
        assert_eq!(m2.header().correction.to_nanos(), Nanos::from_nanos(6_500));
    }

    #[test]
    fn residence_scaled_by_rate_ratio() {
        let mut r = BridgeRelay::new(1, ClockIdentity::for_index(10), 5, vec![1]);
        let rx = ClockTime::from_nanos(0);
        r.handle_sync(&sync_msg(1, 1), 5, rx);
        // 1 ms residence; upstream ratio corresponds to +100 ppm.
        r.sync_forwarded(1, 1, rx + Nanos::from_millis(1));
        let csro = rate_ratio::to_scaled(1.0 + 100e-6);
        let out = r.handle_follow_up(&fu_msg(1, 1, 0, 0, csro), 5, Nanos::ZERO, 1.0);
        let m = Message::decode(&out[0].1).unwrap();
        // residence·ratio = 1_000_000 · 1.0001 = 1_000_100 ns.
        assert_eq!(
            m.header().correction.to_nanos(),
            Nanos::from_nanos(1_000_100)
        );
        // Cumulative rate offset forwarded.
        match m {
            Message::FollowUp { tlv, .. } => {
                let rr = rate_ratio::from_scaled(tlv.cumulative_scaled_rate_offset);
                assert!((rr - 1.0001).abs() < 1e-9);
            }
            _ => panic!("wrong type"),
        }
    }

    #[test]
    fn follow_up_before_tx_timestamp_waits() {
        let mut r = BridgeRelay::new(1, ClockIdentity::for_index(10), 5, vec![1]);
        let rx = ClockTime::from_nanos(0);
        r.handle_sync(&sync_msg(1, 1), 5, rx);
        // FU arrives before the regenerated Sync departed.
        let out = r.handle_follow_up(&fu_msg(1, 1, 0, 0, 0), 5, Nanos::ZERO, 1.0);
        assert!(out.is_empty());
        // Once the tx timestamp lands, the FU is emitted.
        let out = r.sync_forwarded(1, 1, rx + Nanos::from_micros(5));
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn nrr_composes_into_cumulative_ratio() {
        let mut r = BridgeRelay::new(1, ClockIdentity::for_index(10), 5, vec![1]);
        r.handle_sync(&sync_msg(1, 1), 5, ClockTime::ZERO);
        r.sync_forwarded(1, 1, ClockTime::from_nanos(1000));
        // Upstream cumulative +50 ppm, slave NRR +50 ppm → ≈ +100 ppm.
        let csro = rate_ratio::to_scaled(1.0 + 50e-6);
        let out = r.handle_follow_up(&fu_msg(1, 1, 0, 0, csro), 5, Nanos::ZERO, 1.0 + 50e-6);
        match Message::decode(&out[0].1).unwrap() {
            Message::FollowUp { tlv, .. } => {
                let rr = rate_ratio::from_scaled(tlv.cumulative_scaled_rate_offset);
                assert!(((rr - 1.0) * 1e6 - 100.0).abs() < 0.01, "{rr}");
            }
            _ => panic!("wrong type"),
        }
    }

    #[test]
    fn state_eviction_bounds_memory() {
        let mut r = BridgeRelay::new(1, ClockIdentity::for_index(10), 5, vec![1]);
        for seq in 0..50u16 {
            r.handle_sync(&sync_msg(1, seq), 5, ClockTime::from_nanos(i64::from(seq)));
        }
        assert!(r.seqs.len() <= MAX_TRACKED);
        assert!(r.dropped_forwards > 0);
    }

    #[test]
    #[should_panic(expected = "cannot be both")]
    fn overlapping_roles_rejected() {
        BridgeRelay::new(1, ClockIdentity::for_index(10), 1, vec![1, 2]);
    }
}
