//! Peer-to-peer delay mechanism (IEEE 802.1AS clause 11.2.19).
//!
//! Each full-duplex link runs an independent delay measurement: the
//! initiator sends `Pdelay_Req` (t1), the responder timestamps its
//! reception (t2) and reply transmission (t3), and the initiator
//! timestamps the reply's arrival (t4). The mean link delay is
//!
//! ```text
//! D = (r · (t4 − t1) − (t3 − t2)) / 2
//! ```
//!
//! with `r` the *neighbor rate ratio* estimated from consecutive
//! (t3, t4) pairs. The measurement is shared by all gPTP domains on the
//! link, like 802.1AS-2020's Common Mean Link Delay Service (CMLDS) —
//! which is how multi-domain operation avoids M parallel pdelay streams.

use crate::msg::{Header, Message, MessageType};
use crate::types::{PortIdentity, PtpTimestamp};
use bytes::Bytes;
use tsn_time::{ClockTime, Nanos};

/// Default EMA weight for the mean link delay filter.
const DELAY_FILTER_WEIGHT: f64 = 0.25;
/// Default EMA weight for the neighbor rate ratio filter.
const NRR_FILTER_WEIGHT: f64 = 0.1;
/// Neighbor rate ratio sanity clamp (±200 ppm), per 802.1AS conformance.
const NRR_CLAMP: f64 = 200e-6;

/// A completed link-delay measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkDelaySample {
    /// Filtered mean link delay.
    pub mean_link_delay: Nanos,
    /// Raw (unfiltered) delay of this exchange.
    pub raw_delay: Nanos,
    /// Filtered neighbor rate ratio.
    pub neighbor_rate_ratio: f64,
}

#[derive(Debug, Clone, Copy)]
struct Inflight {
    seq: u16,
    t1: ClockTime,
}

#[derive(Debug, Clone, Copy)]
struct AwaitingFollowUp {
    seq: u16,
    t1: ClockTime,
    t2: ClockTime,
    t4: ClockTime,
}

/// Initiator half of the peer-delay exchange (one per port).
#[derive(Debug, Clone)]
pub struct PdelayInitiator {
    port: PortIdentity,
    next_seq: u16,
    inflight: Option<Inflight>,
    awaiting_fu: Option<AwaitingFollowUp>,
    prev_t3_t4: Option<(ClockTime, ClockTime)>,
    nrr: f64,
    filtered_delay: Option<f64>,
    /// Exchanges that never completed (lost or late responses).
    pub lost_responses: u64,
}

impl PdelayInitiator {
    /// Creates an initiator for the given port identity.
    pub fn new(port: PortIdentity) -> Self {
        PdelayInitiator {
            port,
            next_seq: 0,
            inflight: None,
            awaiting_fu: None,
            prev_t3_t4: None,
            nrr: 1.0,
            filtered_delay: None,
            lost_responses: 0,
        }
    }

    /// Current filtered mean link delay, if at least one exchange
    /// completed.
    pub fn mean_link_delay(&self) -> Option<Nanos> {
        self.filtered_delay
            .map(|d| Nanos::from_nanos(d.round() as i64))
    }

    /// Current neighbor rate ratio estimate.
    pub fn neighbor_rate_ratio(&self) -> f64 {
        self.nrr
    }

    /// Builds the next `Pdelay_Req`; `t1` is the (hardware) transmit
    /// timestamp prediction — the caller replaces it with the real egress
    /// timestamp via [`PdelayInitiator::request_sent`].
    pub fn make_request(&mut self) -> (Bytes, u16) {
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        if self.inflight.take().is_some() || self.awaiting_fu.take().is_some() {
            self.lost_responses += 1;
        }
        let msg = Message::PdelayReq {
            header: Header::new(MessageType::PdelayReq, 0, self.port, seq, 0),
        };
        (msg.encode(), seq)
    }

    /// Records the hardware egress timestamp of request `seq`.
    pub fn request_sent(&mut self, seq: u16, t1: ClockTime) {
        self.inflight = Some(Inflight { seq, t1 });
    }

    /// Handles a `Pdelay_Resp` received at local hardware timestamp `t4`.
    pub fn handle_resp(&mut self, msg: &Message, t4: ClockTime) {
        let Message::PdelayResp {
            header,
            request_receipt,
            requesting_port,
        } = msg
        else {
            return;
        };
        if *requesting_port != self.port {
            return;
        }
        let Some(inflight) = self.inflight else {
            return;
        };
        if header.sequence_id != inflight.seq {
            return;
        }
        self.inflight = None;
        self.awaiting_fu = Some(AwaitingFollowUp {
            seq: inflight.seq,
            t1: inflight.t1,
            t2: request_receipt.to_clock_time(),
            t4,
        });
    }

    /// Handles a `Pdelay_Resp_Follow_Up`, completing the exchange.
    pub fn handle_resp_follow_up(&mut self, msg: &Message) -> Option<LinkDelaySample> {
        let Message::PdelayRespFollowUp {
            header,
            response_origin,
            requesting_port,
        } = msg
        else {
            return None;
        };
        if *requesting_port != self.port {
            return None;
        }
        let pending = self.awaiting_fu?;
        if header.sequence_id != pending.seq {
            return None;
        }
        self.awaiting_fu = None;
        let t3 = response_origin.to_clock_time();

        // Update the neighbor rate ratio from consecutive (t3, t4) pairs.
        if let Some((pt3, pt4)) = self.prev_t3_t4 {
            let d3 = (t3 - pt3).as_nanos() as f64;
            let d4 = (pending.t4 - pt4).as_nanos() as f64;
            if d4 > 0.0 {
                let raw = (d3 / d4).clamp(1.0 - NRR_CLAMP, 1.0 + NRR_CLAMP);
                self.nrr += NRR_FILTER_WEIGHT * (raw - self.nrr);
            }
        }
        self.prev_t3_t4 = Some((t3, pending.t4));

        let turnaround = (pending.t4 - pending.t1).as_nanos() as f64;
        let remote = (t3 - pending.t2).as_nanos() as f64;
        let raw = (self.nrr * turnaround - remote) / 2.0;
        let raw = raw.max(0.0);
        let filtered = match self.filtered_delay {
            Some(f) => f + DELAY_FILTER_WEIGHT * (raw - f),
            None => raw,
        };
        self.filtered_delay = Some(filtered);
        Some(LinkDelaySample {
            mean_link_delay: Nanos::from_nanos(filtered.round() as i64),
            raw_delay: Nanos::from_nanos(raw.round() as i64),
            neighbor_rate_ratio: self.nrr,
        })
    }
}

/// Responder half of the peer-delay exchange (one per port).
#[derive(Debug, Clone)]
pub struct PdelayResponder {
    port: PortIdentity,
}

/// The responder's reply to one `Pdelay_Req`: the `Pdelay_Resp` to send
/// now, plus the context the caller needs to emit the follow-up once the
/// hardware transmit timestamp (t3) is known.
#[derive(Debug, Clone)]
pub struct RespContext {
    /// Encoded `Pdelay_Resp` to transmit (an event message — timestamp
    /// its departure and pass it to
    /// [`PdelayResponder::make_resp_follow_up`]).
    pub resp: Bytes,
    /// Sequence id of the exchange.
    pub seq: u16,
    /// Identity of the requester (destination of the follow-up).
    pub requesting_port: PortIdentity,
}

impl PdelayResponder {
    /// Creates a responder for the given port identity.
    pub fn new(port: PortIdentity) -> Self {
        PdelayResponder { port }
    }

    /// Handles a `Pdelay_Req` received at hardware timestamp `t2`.
    pub fn handle_request(&self, msg: &Message, t2: ClockTime) -> Option<RespContext> {
        let Message::PdelayReq { header } = msg else {
            return None;
        };
        let resp = Message::PdelayResp {
            header: Header::new(MessageType::PdelayResp, 0, self.port, header.sequence_id, 0),
            request_receipt: PtpTimestamp::from_clock_time(t2),
            requesting_port: header.source_port,
        };
        Some(RespContext {
            resp: resp.encode(),
            seq: header.sequence_id,
            requesting_port: header.source_port,
        })
    }

    /// Builds the `Pdelay_Resp_Follow_Up` once the responder knows the
    /// hardware egress timestamp `t3` of its `Pdelay_Resp`.
    pub fn make_resp_follow_up(
        &self,
        seq: u16,
        requesting_port: PortIdentity,
        t3: ClockTime,
    ) -> Bytes {
        Message::PdelayRespFollowUp {
            header: Header::new(MessageType::PdelayRespFollowUp, 0, self.port, seq, 0),
            response_origin: PtpTimestamp::from_clock_time(t3),
            requesting_port,
        }
        .encode()
    }
}

use tsn_snapshot::{Reader, Snap, SnapError, SnapState, Writer};

impl Snap for Inflight {
    fn put(&self, w: &mut Writer) {
        self.seq.put(w);
        self.t1.put(w);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(Inflight {
            seq: Snap::get(r)?,
            t1: Snap::get(r)?,
        })
    }
}

impl Snap for AwaitingFollowUp {
    fn put(&self, w: &mut Writer) {
        self.seq.put(w);
        self.t1.put(w);
        self.t2.put(w);
        self.t4.put(w);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(AwaitingFollowUp {
            seq: Snap::get(r)?,
            t1: Snap::get(r)?,
            t2: Snap::get(r)?,
            t4: Snap::get(r)?,
        })
    }
}

impl SnapState for PdelayInitiator {
    fn save_state(&self, w: &mut Writer) {
        self.next_seq.put(w);
        self.inflight.put(w);
        self.awaiting_fu.put(w);
        self.prev_t3_t4.put(w);
        self.nrr.put(w);
        self.filtered_delay.put(w);
        self.lost_responses.put(w);
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        self.next_seq = Snap::get(r)?;
        self.inflight = Snap::get(r)?;
        self.awaiting_fu = Snap::get(r)?;
        self.prev_t3_t4 = Snap::get(r)?;
        self.nrr = Snap::get(r)?;
        self.filtered_delay = Snap::get(r)?;
        self.lost_responses = Snap::get(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ClockIdentity;

    fn pid(i: u32) -> PortIdentity {
        PortIdentity::new(ClockIdentity::for_index(i), 1)
    }

    /// Simulates `n` exchanges over a link with constant `delay` ns and a
    /// responder clock running at `rate` relative to the initiator.
    fn run_exchanges(
        n: usize,
        delay: i64,
        rate: f64,
    ) -> (PdelayInitiator, Option<LinkDelaySample>) {
        let mut init = PdelayInitiator::new(pid(1));
        let resp = PdelayResponder::new(pid(2));
        let mut last = None;
        let mut now = 1_000_000_000i64; // initiator clock
        for _ in 0..n {
            let (req_bytes, seq) = init.make_request();
            let t1 = ClockTime::from_nanos(now);
            init.request_sent(seq, t1);
            // Responder clock: arbitrary epoch shift + rate.
            let to_resp = |t: i64| ClockTime::from_nanos(((t as f64) * rate) as i64 + 777_000);
            let t2 = to_resp(now + delay);
            let req = Message::decode(&req_bytes).unwrap();
            let ctx = resp.handle_request(&req, t2).unwrap();
            // Responder turnaround: 100 µs in responder time.
            let t3 = t2 + Nanos::from_micros(100);
            let turnaround_initiator = (100_000.0 / rate) as i64;
            let t4 = ClockTime::from_nanos(now + delay + turnaround_initiator + delay);
            let resp_msg = Message::decode(&ctx.resp).unwrap();
            init.handle_resp(&resp_msg, t4);
            let fu_bytes = resp.make_resp_follow_up(ctx.seq, ctx.requesting_port, t3);
            let fu = Message::decode(&fu_bytes).unwrap();
            last = init.handle_resp_follow_up(&fu);
            now += 1_000_000_000; // 1 s pdelay interval
        }
        (init, last)
    }

    #[test]
    fn measures_constant_delay_same_rate() {
        let (init, last) = run_exchanges(5, 2_500, 1.0);
        let d = init.mean_link_delay().unwrap().as_nanos();
        assert!((d - 2_500).abs() <= 1, "delay {d}");
        assert!((last.unwrap().neighbor_rate_ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rate_ratio_converges_with_drifting_neighbor() {
        // Responder runs +50 ppm fast.
        let (init, _) = run_exchanges(100, 2_500, 1.0 + 50e-6);
        let nrr = init.neighbor_rate_ratio();
        assert!(
            ((nrr - 1.0) * 1e6 - 50.0).abs() < 1.0,
            "nrr off: {} ppm",
            (nrr - 1.0) * 1e6
        );
        // With the converged NRR the delay estimate is accurate.
        let d = init.mean_link_delay().unwrap().as_nanos();
        assert!((d - 2_500).abs() <= 5, "delay {d}");
    }

    #[test]
    fn stale_response_ignored() {
        let mut init = PdelayInitiator::new(pid(1));
        let (_, seq) = init.make_request();
        init.request_sent(seq, ClockTime::from_nanos(100));
        // Response with wrong sequence id.
        let resp = Message::PdelayResp {
            header: Header::new(MessageType::PdelayResp, 0, pid(2), seq.wrapping_add(5), 0),
            request_receipt: PtpTimestamp::default(),
            requesting_port: pid(1),
        };
        init.handle_resp(&resp, ClockTime::from_nanos(200));
        assert!(init.mean_link_delay().is_none());
    }

    #[test]
    fn response_for_other_port_ignored() {
        let mut init = PdelayInitiator::new(pid(1));
        let (_, seq) = init.make_request();
        init.request_sent(seq, ClockTime::from_nanos(100));
        let resp = Message::PdelayResp {
            header: Header::new(MessageType::PdelayResp, 0, pid(2), seq, 0),
            request_receipt: PtpTimestamp::default(),
            requesting_port: pid(9), // someone else's exchange
        };
        init.handle_resp(&resp, ClockTime::from_nanos(200));
        assert!(init.mean_link_delay().is_none());
    }

    #[test]
    fn lost_exchanges_counted() {
        let mut init = PdelayInitiator::new(pid(1));
        let (_, seq) = init.make_request();
        init.request_sent(seq, ClockTime::from_nanos(100));
        // Next request without completing the previous exchange.
        let _ = init.make_request();
        assert_eq!(init.lost_responses, 1);
    }

    #[test]
    fn responder_echoes_requester_identity() {
        let resp = PdelayResponder::new(pid(2));
        let req = Message::PdelayReq {
            header: Header::new(MessageType::PdelayReq, 0, pid(1), 7, 0),
        };
        let ctx = resp
            .handle_request(&req, ClockTime::from_nanos(42))
            .unwrap();
        assert_eq!(ctx.requesting_port, pid(1));
        match Message::decode(&ctx.resp).unwrap() {
            Message::PdelayResp {
                request_receipt,
                requesting_port,
                ..
            } => {
                assert_eq!(request_receipt.to_clock_time(), ClockTime::from_nanos(42));
                assert_eq!(requesting_port, pid(1));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
