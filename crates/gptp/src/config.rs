//! External port configuration (IEEE 802.1AS-2020 clause 10.3.1.3).
//!
//! The paper disables BMCA and statically assigns port roles per domain:
//! "we configured four distinct gPTP domains dom1..dom4 with spatially
//! separated GM clocks" and "provided a static port configuration for all
//! gPTP domains that allow for a redundant path between all virtual and
//! physical nodes". This module carries those static role tables and can
//! derive them from a topology spanning tree.

use crate::bmca::PortRole;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, VecDeque};
use tsn_netsim::{DeviceId, DeviceKind, Topology};

/// Static role assignment for one device's ports within one domain.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DevicePortRoles {
    roles: BTreeMap<u16, PortRole>,
}

impl DevicePortRoles {
    /// Creates an empty role table (all ports implicitly Disabled).
    pub fn new() -> Self {
        Self::default()
    }

    /// Assigns `role` to `port`.
    ///
    /// # Panics
    ///
    /// Panics if a second Slave port is configured — a time-aware system
    /// has at most one slave port per domain.
    pub fn set(&mut self, port: u16, role: PortRole) {
        if role == PortRole::Slave {
            assert!(
                !self.roles.values().any(|r| *r == PortRole::Slave),
                "a domain allows at most one slave port per device"
            );
        }
        self.roles.insert(port, role);
    }

    /// The role of `port` (Disabled if unconfigured).
    pub fn role(&self, port: u16) -> PortRole {
        self.roles.get(&port).copied().unwrap_or(PortRole::Disabled)
    }

    /// The slave port, if one is configured.
    pub fn slave_port(&self) -> Option<u16> {
        self.roles
            .iter()
            .find(|(_, r)| **r == PortRole::Slave)
            .map(|(p, _)| *p)
    }

    /// All master ports, in ascending order.
    pub fn master_ports(&self) -> Vec<u16> {
        self.roles
            .iter()
            .filter(|(_, r)| **r == PortRole::Master)
            .map(|(p, _)| *p)
            .collect()
    }

    /// Iterates over all configured `(port, role)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u16, PortRole)> + '_ {
        self.roles.iter().map(|(p, r)| (*p, *r))
    }
}

/// Derives a complete external port configuration for one gPTP domain
/// from a topology: a BFS spanning tree rooted at the grandmaster's
/// station. Tree links get Master (upstream side) / Slave (downstream
/// side) roles; redundant non-tree links are blocked with Passive on
/// both ends — exactly the static role tables the paper configures for
/// its four domains over the redundant mesh.
///
/// # Panics
///
/// Panics if `gm_station` is not a station of `topo`.
pub fn derive_external_port_configuration(
    topo: &Topology,
    gm_station: DeviceId,
) -> HashMap<DeviceId, DevicePortRoles> {
    assert_eq!(
        topo.kind(gm_station),
        DeviceKind::Station,
        "grandmaster must be a station"
    );
    let mut roles: HashMap<DeviceId, DevicePortRoles> = HashMap::new();
    let mut visited: HashMap<DeviceId, ()> = HashMap::new();
    let mut queue = VecDeque::new();
    visited.insert(gm_station, ());
    queue.push_back(gm_station);
    // BFS: mark tree links with Master on the upstream port and Slave on
    // the downstream port.
    while let Some(dev) = queue.pop_front() {
        if dev != gm_station && topo.kind(dev) != DeviceKind::Bridge {
            continue; // stations do not forward
        }
        for port in topo.wired_ports(dev) {
            let peer = topo.peer(port).expect("wired port");
            if visited.contains_key(&peer.device) {
                continue;
            }
            visited.insert(peer.device, ());
            roles
                .entry(dev)
                .or_default()
                .set(u16::from(port.port.0), PortRole::Master);
            roles
                .entry(peer.device)
                .or_default()
                .set(u16::from(peer.port.0), PortRole::Slave);
            queue.push_back(peer.device);
        }
    }
    // Remaining wired ports (redundant links) become Passive.
    for dev in topo.devices() {
        for port in topo.wired_ports(dev) {
            let entry = roles.entry(dev).or_default();
            if entry.role(u16::from(port.port.0)) == PortRole::Disabled {
                entry.set(u16::from(port.port.0), PortRole::Passive);
            }
        }
    }
    roles
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsn_netsim::DelayModel;
    use tsn_time::Nanos;

    #[test]
    fn roles_roundtrip() {
        let mut r = DevicePortRoles::new();
        r.set(1, PortRole::Slave);
        r.set(2, PortRole::Master);
        r.set(3, PortRole::Passive);
        assert_eq!(r.role(1), PortRole::Slave);
        assert_eq!(r.role(9), PortRole::Disabled);
        assert_eq!(r.slave_port(), Some(1));
        assert_eq!(r.master_ports(), vec![2]);
    }

    #[test]
    #[should_panic(expected = "at most one slave port")]
    fn two_slave_ports_rejected() {
        let mut r = DevicePortRoles::new();
        r.set(1, PortRole::Slave);
        r.set(2, PortRole::Slave);
    }

    #[test]
    fn grandmaster_has_no_slave_port() {
        let mut r = DevicePortRoles::new();
        r.set(1, PortRole::Master);
        assert_eq!(r.slave_port(), None);
    }

    /// The paper's per-domain shape over a redundant mesh: a spanning
    /// tree rooted at the GM with the redundant mesh links blocked.
    #[test]
    fn spanning_tree_over_redundant_mesh() {
        let mut topo = Topology::new();
        let d = DelayModel::constant(Nanos::from_micros(2));
        let gm = topo.add_station("gm");
        let client = topo.add_station("client");
        let sws = topo.full_mesh_bridges(3, 2, d); // 3 mesh links, 1 redundant
        topo.connect(topo.port(gm, 0), topo.port(sws[0], 0), d, d);
        topo.connect(topo.port(client, 0), topo.port(sws[2], 0), d, d);

        let roles = derive_external_port_configuration(&topo, gm);
        // GM's single port masters the tree.
        assert_eq!(roles[&gm].role(0), PortRole::Master);
        // The client's port is a slave.
        assert_eq!(roles[&client].role(0), PortRole::Slave);
        // The root switch hears the GM on a slave port.
        assert_eq!(roles[&sws[0]].role(0), PortRole::Slave);
        // Exactly one slave port per device, and at least one Passive
        // port exists somewhere (the redundant mesh link).
        let mut passives = 0;
        for (_, r) in roles.iter() {
            let slaves = r
                .iter()
                .filter(|(_, role)| *role == PortRole::Slave)
                .count();
            assert!(slaves <= 1);
            passives += r
                .iter()
                .filter(|(_, role)| *role == PortRole::Passive)
                .count();
        }
        assert_eq!(passives, 2, "one redundant link = two passive ports");
        // Every wired port got a role.
        for dev in topo.devices() {
            for port in topo.wired_ports(dev) {
                assert_ne!(roles[&dev].role(u16::from(port.port.0)), PortRole::Disabled);
            }
        }
    }

    #[test]
    #[should_panic(expected = "grandmaster must be a station")]
    fn bridge_as_gm_rejected() {
        let mut topo = Topology::new();
        let sw = topo.add_bridge("sw");
        derive_external_port_configuration(&topo, sw);
    }
}
