//! # tsn-fta
//!
//! Fault-tolerant multi-domain aggregation — the primary contribution of
//! *IEEE 802.1AS Multi-Domain Aggregation for Virtualized Distributed
//! Real-Time Systems* (DSN-S 2023), reproduced as a standalone library.
//!
//! * [`fault_tolerant_average`] — the Kopetz–Ochsenreiter FTA, plus
//!   [`AggregationMethod`] variants (mean, median) used as ablation
//!   baselines;
//! * [`FtShmem`] — the paper's `FTSHMEM` user-space shared region between
//!   the `M` per-domain `ptp4l` instances (M offsets, M validity
//!   booleans, `adjust_last`, shared PI servo state);
//! * [`MultiDomainAggregator`] — the turn-checked aggregation flow of
//!   §II-B including the startup convergence protocol.
//!
//! # Example
//!
//! ```
//! use tsn_fta::{AggregationConfig, MultiDomainAggregator, SubmitOutcome};
//! use tsn_time::{ClockTime, Nanos, ServoConfig};
//!
//! let mut agg = MultiDomainAggregator::new(
//!     AggregationConfig::paper_default(),
//!     ServoConfig::default(),
//! );
//! let now = ClockTime::from_nanos(1_000_000);
//! // Domain-1 instance completes a Sync/Follow_Up pair and submits.
//! match agg.submit(1, Nanos::from_nanos(150), now, 1.0, now) {
//!     SubmitOutcome::Aggregated(a) => {
//!         // This instance won the turn check and ran the aggregation.
//!         assert_eq!(a.offset, Nanos::from_nanos(150));
//!     }
//!     SubmitOutcome::Stored | SubmitOutcome::NoQuorum => {}
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aggregator;
mod algorithm;
pub mod resilience;
mod shmem;

pub use aggregator::{
    Aggregation, AggregationConfig, AggregationMode, MultiDomainAggregator, SubmitOutcome,
};
pub use algorithm::{
    fault_tolerant_average, fault_tolerant_midpoint, mean, median, trimmed_indices, validity_flags,
    AggregationMethod,
};
pub use resilience::{containment_bound, ResilienceBound, ResilienceParams};
pub use shmem::{shared, FtShmem, OffsetSlot, SharedFtShmem};
