//! Multi-domain aggregation — the paper's §II-B mechanism.
//!
//! Each of the `M` per-domain instances of a clock-synchronization VM
//! calls [`MultiDomainAggregator::submit`] when it completes a
//! Sync/Follow_Up pair. The call stores the offset in the shared
//! `FTSHMEM` and then applies the paper's turn check: the *first*
//! instance for which
//!
//! ```text
//! adjust_last + sync_interval ≤ now                          (Eq. 2.1)
//! ```
//!
//! sorts the fresh master offsets, applies the aggregation function
//! (normally the FTA), updates `adjust_last`, and passes the aggregated
//! offset to the shared PI controller, whose output the caller applies to
//! the NIC's clock frequency.
//!
//! Startup follows §II-B as well: before fault-tolerant operation a node
//! synchronizes to the *initial domain*'s GM alone until its offset stays
//! below a configurable threshold for a configurable number of
//! consecutive intervals. (Deviation from the paper, documented in
//! DESIGN.md: the paper switches the whole system at once when all M−1
//! GMs have converged; we switch per node, which requires no global
//! coordination and preserves the behavior. If the initial domain is down
//! during a restart, the lowest-indexed live domain substitutes so a
//! rebooted node can always rejoin.)
//!
//! Fault-tolerant operation additionally maintains an explicit
//! degradation state machine ([`SyncState`]): losing the `2f+1` quorum
//! enters *Holdover* (the PI controller's last frequency estimate keeps
//! disciplining the clock because no new sample arrives); exhausting a
//! configurable holdover budget declares *Freerun*; *Synchronized* is
//! re-acquired only after a configurable number of consecutive successful
//! aggregations, with failed re-check attempts subject to exponential
//! backoff. Transitions are queued for the embedding world to collect via
//! [`MultiDomainAggregator::take_transitions`].

use crate::algorithm::{validity_flags, AggregationMethod};
use crate::shmem::{FtShmem, OffsetSlot, SharedFtShmem};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use tsn_time::{ClockTime, Nanos, PiServo, ServoConfig, ServoOutput, SyncState};

/// Sentinel for "never" (`adjust_last`-style negative infinity).
const FAR_PAST: ClockTime = ClockTime::from_nanos(i64::MIN / 2);

/// Configuration of the multi-domain aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AggregationConfig {
    /// Number of gPTP domains `M`.
    pub domains: usize,
    /// Synchronization interval `S` (125 ms in the paper).
    pub sync_interval: Nanos,
    /// Aggregation function (FTA with `f = 1` in the paper).
    pub method: AggregationMethod,
    /// Threshold for the per-domain validity booleans.
    pub validity_threshold: Nanos,
    /// Offsets older than this (in local clock time) are not aggregated;
    /// this is what removes a fail-silent GM from the average.
    pub staleness: Nanos,
    /// Startup: offset-to-initial-domain threshold for convergence.
    pub startup_threshold: Nanos,
    /// Startup: consecutive in-threshold intervals required.
    pub startup_consecutive: u32,
    /// Index of the initial domain used during startup.
    pub initial_domain: usize,
    /// If `true`, aggregation uses only offsets whose validity boolean is
    /// set (diagnostic mode; the paper's FTA masks extremes by itself, so
    /// the default is `false`).
    pub exclude_invalid: bool,
    /// How long (local clock time) the VM may stay in [`SyncState::Holdover`]
    /// before declaring [`SyncState::Freerun`].
    pub holdover_budget: Nanos,
    /// Consecutive successful aggregations required to re-acquire
    /// [`SyncState::Synchronized`] from a degraded state (hysteresis).
    pub reacquire_consecutive: u32,
    /// Cap on the exponential re-check backoff applied to failed
    /// aggregation attempts while degraded (starts at one sync interval
    /// and doubles per failed interval).
    pub recheck_backoff_max: Nanos,
}

impl AggregationConfig {
    /// The paper's configuration: M = 4 domains, FTA with f = 1, S =
    /// 125 ms.
    pub fn paper_default() -> Self {
        AggregationConfig {
            domains: 4,
            sync_interval: Nanos::from_millis(125),
            method: AggregationMethod::FaultTolerantAverage { f: 1 },
            validity_threshold: Nanos::from_micros(15),
            staleness: Nanos::from_millis(500),
            startup_threshold: Nanos::from_micros(10),
            startup_consecutive: 8,
            initial_domain: 0,
            exclude_invalid: false,
            holdover_budget: Nanos::from_secs(2),
            reacquire_consecutive: 4,
            recheck_backoff_max: Nanos::from_secs(2),
        }
    }
}

/// Operating mode of one VM's aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggregationMode {
    /// Synchronizing to the initial domain only (paper's startup phase).
    Startup,
    /// Fault-tolerant multi-domain operation.
    FaultTolerant,
}

/// Result of one [`MultiDomainAggregator::submit`] call.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitOutcome {
    /// Stored; not this instance's turn to aggregate.
    Stored,
    /// This instance aggregated; apply `servo` to the NIC clock.
    Aggregated(Aggregation),
    /// It was this instance's turn but no quorum of fresh offsets
    /// existed; the clock free-runs this interval.
    NoQuorum,
}

/// Details of one aggregation.
#[derive(Debug, Clone, PartialEq)]
pub struct Aggregation {
    /// The aggregated master offset `c_s`.
    pub offset: Nanos,
    /// The servo's clock command.
    pub servo: ServoOutput,
    /// Mode the aggregation ran in.
    pub mode: AggregationMode,
    /// The per-domain offsets used (fresh slots only).
    pub used: Vec<(usize, Nanos)>,
    /// The validity booleans at aggregation time.
    pub valid: Vec<bool>,
}

/// The per-VM multi-domain aggregation coordinator.
#[derive(Debug)]
pub struct MultiDomainAggregator {
    config: AggregationConfig,
    shmem: SharedFtShmem,
    mode: AggregationMode,
    startup_ok_streak: u32,
    /// Domain this VM itself masters (grandmaster VMs); its self-offset
    /// of zero must not drive the startup convergence check unless it is
    /// the initial domain.
    self_domain: Option<usize>,
    /// Explicit degradation state (fault-tolerant mode only; startup
    /// quorum gaps do not degrade).
    sync_state: SyncState,
    /// When Holdover was entered (local clock; `FAR_PAST` if never).
    holdover_since: ClockTime,
    /// Consecutive successful aggregations while degraded.
    reacquire_streak: u32,
    /// Current degraded re-check backoff (`ZERO` until the first failed
    /// degraded interval).
    recheck_backoff: Nanos,
    /// No aggregation attempt before this local time while degraded
    /// (same-instant retries after a failure stay exempt, so a quorum
    /// restored mid-interval is still picked up immediately).
    next_attempt: ClockTime,
    /// Local time of the last quorum failure (for the exemption above and
    /// for once-per-interval backoff escalation).
    last_fail_at: ClockTime,
    /// State transitions not yet collected via [`Self::take_transitions`].
    transitions: Vec<(ClockTime, SyncState, SyncState)>,
}

impl MultiDomainAggregator {
    /// Creates an aggregator with a fresh shared region and a PI servo
    /// configured for the sync interval.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (zero domains, an
    /// initial domain out of range, or a method needing more inputs than
    /// domains exist).
    pub fn new(config: AggregationConfig, servo_config: ServoConfig) -> Self {
        assert!(config.domains > 0, "at least one domain required");
        assert!(
            config.initial_domain < config.domains,
            "initial domain {} out of range",
            config.initial_domain
        );
        assert!(
            config.method.min_inputs() <= config.domains,
            "aggregation method needs {} inputs but only {} domains exist",
            config.method.min_inputs(),
            config.domains
        );
        let servo = PiServo::new(servo_config, config.sync_interval);
        MultiDomainAggregator {
            shmem: crate::shmem::shared(config.domains, servo),
            config,
            mode: AggregationMode::Startup,
            startup_ok_streak: 0,
            self_domain: None,
            sync_state: SyncState::Synchronized,
            holdover_since: FAR_PAST,
            reacquire_streak: 0,
            recheck_backoff: Nanos::ZERO,
            next_attempt: FAR_PAST,
            last_fail_at: FAR_PAST,
            transitions: Vec::new(),
        }
    }

    /// Declares that this VM is the grandmaster of `domain`. During
    /// startup the GM's own zero offset is then only used as the
    /// reference when its domain *is* the initial domain; otherwise the
    /// node genuinely waits for the initial domain's GM (paper §II-B).
    pub fn set_self_domain(&mut self, domain: Option<usize>) {
        if let Some(d) = domain {
            assert!(d < self.config.domains, "self domain {d} out of range");
        }
        self.self_domain = domain;
    }

    /// The shared `FTSHMEM` handle (one per VM, shared by the M
    /// instances).
    pub fn shmem(&self) -> SharedFtShmem {
        Arc::clone(&self.shmem)
    }

    /// Current mode.
    pub fn mode(&self) -> AggregationMode {
        self.mode
    }

    /// Current degradation state.
    pub fn sync_state(&self) -> SyncState {
        self.sync_state
    }

    /// Drains the state transitions recorded since the last call, as
    /// `(local time, from, to)` in occurrence order.
    pub fn take_transitions(&mut self) -> Vec<(ClockTime, SyncState, SyncState)> {
        std::mem::take(&mut self.transitions)
    }

    /// The configuration.
    pub fn config(&self) -> &AggregationConfig {
        &self.config
    }

    /// Stores `offset` for `domain` and aggregates if it is this
    /// instance's turn (Eq. 2.1).
    ///
    /// `now` is the VM's local clock (the NIC PHC) at submission time.
    ///
    /// # Panics
    ///
    /// Panics if `domain` is out of range.
    pub fn submit(
        &mut self,
        domain: usize,
        offset: Nanos,
        sync_rx_local: ClockTime,
        rate_ratio: f64,
        now: ClockTime,
    ) -> SubmitOutcome {
        assert!(domain < self.config.domains, "domain {domain} out of range");
        let shmem = Arc::clone(&self.shmem);
        let mut shm = shmem.lock();
        shm.slots[domain] = Some(OffsetSlot {
            offset,
            sync_rx_local,
            rate_ratio,
            stored_at: now,
        });
        // Paper Eq. 2.1: first instance past the boundary aggregates.
        if shm.adjust_last + self.config.sync_interval > now {
            return SubmitOutcome::Stored;
        }
        // Degraded re-check backoff: after a failed interval, the next
        // attempt waits exponentially longer (capped). Retries at the
        // exact failure instant stay exempt so additional submissions
        // within the same tick can complete a quorum immediately.
        if self.sync_state.is_degraded() && now != self.last_fail_at && now < self.next_attempt {
            return SubmitOutcome::Stored;
        }
        self.aggregate(&mut shm, now)
    }

    /// Forces an aggregation attempt (used by a grandmaster's own-domain
    /// instance, which has no Sync reception to piggyback on: it submits
    /// its self-offset of zero each interval).
    pub fn submit_self(&mut self, domain: usize, now: ClockTime) -> SubmitOutcome {
        self.submit(domain, Nanos::ZERO, now, 1.0, now)
    }

    /// Resets to startup mode with cleared slots (VM restart / takeover
    /// rejoin). The degradation state is reset *silently* — a rebooted VM
    /// starts over as Synchronized without emitting a transition, so
    /// observers never see an edge the machine does not define.
    pub fn restart(&mut self) {
        let mut shm = self.shmem.lock();
        shm.clear();
        shm.servo.reset();
        shm.adjust_last = FAR_PAST;
        drop(shm);
        self.mode = AggregationMode::Startup;
        self.startup_ok_streak = 0;
        self.sync_state = SyncState::Synchronized;
        self.holdover_since = FAR_PAST;
        self.reacquire_streak = 0;
        self.recheck_backoff = Nanos::ZERO;
        self.next_attempt = FAR_PAST;
        self.last_fail_at = FAR_PAST;
        self.transitions.clear();
    }

    /// Records a legal state-machine edge.
    fn transition(&mut self, now: ClockTime, to: SyncState) {
        let from = self.sync_state;
        debug_assert!(from.can_transition_to(to), "illegal edge {from} -> {to}");
        self.sync_state = to;
        self.transitions.push((now, from, to));
    }

    /// A fault-tolerant aggregation attempt found no quorum: degrade and
    /// arm the re-check backoff (escalated once per failed instant).
    fn on_quorum_lost(&mut self, now: ClockTime) {
        self.reacquire_streak = 0;
        match self.sync_state {
            SyncState::Synchronized => {
                self.transition(now, SyncState::Holdover);
                self.holdover_since = now;
            }
            SyncState::Holdover if now - self.holdover_since > self.config.holdover_budget => {
                self.transition(now, SyncState::Freerun);
            }
            _ => {}
        }
        if now != self.last_fail_at {
            self.last_fail_at = now;
            self.next_attempt = now + self.recheck_backoff;
            self.recheck_backoff = if self.recheck_backoff == Nanos::ZERO {
                self.config.sync_interval
            } else {
                (self.recheck_backoff + self.recheck_backoff).min(self.config.recheck_backoff_max)
            };
        }
    }

    /// A fault-tolerant aggregation succeeded: count toward re-acquisition
    /// (K consecutive successes required before Synchronized is declared).
    fn on_quorum_regained(&mut self, now: ClockTime) {
        if !self.sync_state.is_degraded() {
            return;
        }
        self.reacquire_streak += 1;
        if self.reacquire_streak >= self.config.reacquire_consecutive {
            self.transition(now, SyncState::Synchronized);
            self.holdover_since = FAR_PAST;
            self.reacquire_streak = 0;
            self.recheck_backoff = Nanos::ZERO;
            self.next_attempt = FAR_PAST;
            self.last_fail_at = FAR_PAST;
        }
    }

    fn aggregate(&mut self, shm: &mut FtShmem, now: ClockTime) -> SubmitOutcome {
        // Fresh offsets only: stale slots are fail-silent domains.
        let fresh: Vec<Option<Nanos>> = shm
            .slots
            .iter()
            .map(|slot| {
                slot.and_then(|s| {
                    if now - s.stored_at <= self.config.staleness {
                        Some(s.offset)
                    } else {
                        None
                    }
                })
            })
            .collect();
        shm.valid = validity_flags(&fresh, self.config.validity_threshold);

        let aggregated = match self.mode {
            AggregationMode::Startup => self.startup_offset(&fresh),
            AggregationMode::FaultTolerant => {
                let used: Vec<Nanos> = fresh
                    .iter()
                    .enumerate()
                    .filter(|(i, o)| o.is_some() && (!self.config.exclude_invalid || shm.valid[*i]))
                    .filter_map(|(_, o)| *o)
                    .collect();
                self.config.method.aggregate(&used)
            }
        };

        let Some(offset) = aggregated else {
            shm.no_quorum += 1;
            if self.mode == AggregationMode::FaultTolerant {
                self.on_quorum_lost(now);
            }
            return SubmitOutcome::NoQuorum;
        };

        // Startup convergence tracking.
        if self.mode == AggregationMode::Startup {
            if offset.abs() <= self.config.startup_threshold {
                self.startup_ok_streak += 1;
                if self.startup_ok_streak >= self.config.startup_consecutive {
                    self.mode = AggregationMode::FaultTolerant;
                }
            } else {
                self.startup_ok_streak = 0;
            }
        }

        if self.mode == AggregationMode::FaultTolerant {
            self.on_quorum_regained(now);
        }

        let servo = shm.servo.sample(offset, now);
        shm.adjust_last = now;
        shm.aggregations += 1;
        shm.offset_sum_ns += i128::from(offset.as_nanos());
        let used: Vec<(usize, Nanos)> = fresh
            .iter()
            .enumerate()
            .filter_map(|(i, o)| o.map(|v| (i, v)))
            .collect();
        SubmitOutcome::Aggregated(Aggregation {
            offset,
            servo,
            mode: self.mode,
            used,
            valid: shm.valid.clone(),
        })
    }

    /// Startup reference offset: the initial domain's fresh offset, or —
    /// if that domain is silent — the lowest-indexed fresh domain other
    /// than the VM's own (a grandmaster must not bootstrap itself from
    /// its own zero offset unless it masters the initial domain).
    fn startup_offset(&self, fresh: &[Option<Nanos>]) -> Option<Nanos> {
        let initial = fresh.get(self.config.initial_domain).copied().flatten();
        if initial.is_some() && Some(self.config.initial_domain) != self.self_domain {
            return initial;
        }
        if Some(self.config.initial_domain) == self.self_domain {
            // We master the initial domain: our own clock is the startup
            // reference.
            return initial;
        }
        fresh
            .iter()
            .enumerate()
            .filter(|(i, _)| Some(*i) != self.self_domain)
            .find_map(|(_, o)| *o)
    }
}

use tsn_snapshot::{Reader, Snap, SnapError, SnapState, Writer};

impl SnapState for MultiDomainAggregator {
    // The shared region is saved through this aggregator (its owning
    // VM), preserving the `Arc` identity on restore: `load_state`
    // writes through the lock rather than replacing the region.
    fn save_state(&self, w: &mut Writer) {
        (matches!(self.mode, AggregationMode::FaultTolerant) as u8).put(w);
        self.startup_ok_streak.put(w);
        self.shmem.lock().save_state(w);
        self.sync_state.put(w);
        self.holdover_since.put(w);
        self.reacquire_streak.put(w);
        self.recheck_backoff.put(w);
        self.next_attempt.put(w);
        self.last_fail_at.put(w);
        (self.transitions.len() as u64).put(w);
        for (at, from, to) in &self.transitions {
            at.put(w);
            from.put(w);
            to.put(w);
        }
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        self.mode = match u8::get(r)? {
            0 => AggregationMode::Startup,
            1 => AggregationMode::FaultTolerant,
            _ => return Err(SnapError::Malformed("aggregation mode discriminant")),
        };
        self.startup_ok_streak = Snap::get(r)?;
        self.shmem.lock().load_state(r)?;
        self.sync_state = Snap::get(r)?;
        self.holdover_since = Snap::get(r)?;
        self.reacquire_streak = Snap::get(r)?;
        self.recheck_backoff = Snap::get(r)?;
        self.next_attempt = Snap::get(r)?;
        self.last_fail_at = Snap::get(r)?;
        let n = u64::get(r)?;
        self.transitions.clear();
        for _ in 0..n {
            let at = Snap::get(r)?;
            let from = Snap::get(r)?;
            let to = Snap::get(r)?;
            self.transitions.push((at, from, to));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> AggregationConfig {
        AggregationConfig {
            startup_consecutive: 2,
            ..AggregationConfig::paper_default()
        }
    }

    fn aggregator() -> MultiDomainAggregator {
        MultiDomainAggregator::new(config(), ServoConfig::default())
    }

    const S: Nanos = Nanos::from_millis(125);

    /// Drives one full interval: stores offsets for domains 1..=3 and a
    /// self-offset for domain 0, returning the final outcome.
    fn drive_interval(
        agg: &mut MultiDomainAggregator,
        now: ClockTime,
        offsets: [Option<i64>; 4],
    ) -> Vec<SubmitOutcome> {
        let mut outs = Vec::new();
        for (d, o) in offsets.iter().enumerate() {
            if let Some(o) = o {
                outs.push(agg.submit(d, Nanos::from_nanos(*o), now, 1.0, now));
            }
        }
        outs
    }

    #[test]
    fn first_submission_past_boundary_aggregates() {
        let mut agg = aggregator();
        let t = ClockTime::from_nanos(1_000_000);
        let outs = drive_interval(&mut agg, t, [Some(0), Some(10), Some(20), Some(30)]);
        // First submit aggregates (sentinel adjust_last), rest store.
        assert!(matches!(outs[0], SubmitOutcome::Aggregated(_)));
        assert!(outs[1..].iter().all(|o| matches!(o, SubmitOutcome::Stored)));
    }

    #[test]
    fn aggregation_rate_limited_to_sync_interval() {
        let mut agg = aggregator();
        let t0 = ClockTime::from_nanos(1_000_000);
        drive_interval(&mut agg, t0, [Some(0), Some(10), Some(20), Some(30)]);
        // Within the same interval: only stores.
        let outs = drive_interval(
            &mut agg,
            t0 + Nanos::from_millis(10),
            [Some(1), None, None, None],
        );
        assert!(matches!(outs[0], SubmitOutcome::Stored));
        // Next interval: aggregates again.
        let outs = drive_interval(&mut agg, t0 + S, [Some(1), None, None, None]);
        assert!(matches!(outs[0], SubmitOutcome::Aggregated(_)));
    }

    #[test]
    fn startup_tracks_initial_domain_only() {
        let mut agg = aggregator();
        let t = ClockTime::from_nanos(1_000_000);
        // Initial domain offset 50 µs; a Byzantine domain at −24 µs must
        // not matter during startup.
        let outs = drive_interval(&mut agg, t, [Some(50_000), Some(-24_000), Some(1), Some(2)]);
        match &outs[0] {
            SubmitOutcome::Aggregated(a) => {
                assert_eq!(a.mode, AggregationMode::Startup);
                assert_eq!(a.offset, Nanos::from_nanos(50_000));
            }
            o => panic!("expected aggregation, got {o:?}"),
        }
    }

    #[test]
    fn startup_converges_then_switches_to_fta() {
        let mut agg = aggregator();
        let mut t = ClockTime::from_nanos(1_000_000);
        // Two consecutive in-threshold intervals (config) are needed.
        for _ in 0..2 {
            drive_interval(&mut agg, t, [Some(100), Some(5), Some(5), Some(5)]);
            t = t + S;
        }
        assert_eq!(agg.mode(), AggregationMode::FaultTolerant);
        // Byzantine domain 1 (−24 µs) and fresh values stored this
        // interval; the next interval's first submission aggregates over
        // all of them and the FTA masks the outlier.
        drive_interval(&mut agg, t, [None, Some(-24_000), Some(10), Some(20)]);
        t = t + S;
        let outs = drive_interval(&mut agg, t, [Some(0), None, None, None]);
        match &outs[0] {
            SubmitOutcome::Aggregated(a) => {
                assert_eq!(a.mode, AggregationMode::FaultTolerant);
                assert_eq!(a.offset, Nanos::from_nanos(5)); // (0+10)/2
                assert_eq!(a.valid, vec![true, false, true, true]);
            }
            o => panic!("expected aggregation, got {o:?}"),
        }
    }

    #[test]
    fn large_startup_offsets_reset_streak() {
        let mut agg = aggregator();
        let mut t = ClockTime::from_nanos(1_000_000);
        drive_interval(&mut agg, t, [Some(5), None, None, None]);
        t = t + S;
        drive_interval(&mut agg, t, [Some(50_000), None, None, None]); // diverged
        t = t + S;
        drive_interval(&mut agg, t, [Some(5), None, None, None]);
        assert_eq!(agg.mode(), AggregationMode::Startup, "streak must restart");
    }

    fn to_fta_mode(agg: &mut MultiDomainAggregator, t0: ClockTime) -> ClockTime {
        let mut t = t0;
        for _ in 0..2 {
            drive_interval(agg, t, [Some(0), Some(0), Some(0), Some(0)]);
            t = t + S;
        }
        assert_eq!(agg.mode(), AggregationMode::FaultTolerant);
        t
    }

    #[test]
    fn stale_domain_excluded_from_fta() {
        let mut agg = aggregator();
        let mut t = to_fta_mode(&mut agg, ClockTime::from_nanos(1_000_000));
        // Domain 3 goes silent after storing a poisonous value; > the
        // staleness window later it must not participate.
        drive_interval(&mut agg, t, [None, None, None, Some(100_000)]);
        t = t + Nanos::from_millis(625);
        let outs = drive_interval(&mut agg, t, [Some(0), Some(10), Some(20), None]);
        // The first two submissions find < 2f+1 fresh offsets (the old
        // slots all expired); the third completes the quorum.
        assert_eq!(outs[0], SubmitOutcome::NoQuorum);
        assert_eq!(outs[1], SubmitOutcome::NoQuorum);
        match &outs[2] {
            SubmitOutcome::Aggregated(a) => {
                assert_eq!(a.used.len(), 3, "stale domain still present: {:?}", a.used);
                assert_eq!(a.offset, Nanos::from_nanos(10)); // median of 3
            }
            o => panic!("expected aggregation, got {o:?}"),
        }
    }

    #[test]
    fn no_quorum_when_too_few_fresh_domains() {
        let mut agg = aggregator();
        let mut t = to_fta_mode(&mut agg, ClockTime::from_nanos(1_000_000));
        t = t + Nanos::from_secs(10); // everything stale
        let outs = drive_interval(&mut agg, t, [Some(0), None, None, None]);
        // FTA f=1 needs 3 fresh offsets; only 1 exists. `adjust_last` is
        // not advanced, so the next submission may retry immediately.
        assert_eq!(outs[0], SubmitOutcome::NoQuorum);
        let outs = drive_interval(&mut agg, t, [None, Some(5), None, None]);
        assert_eq!(outs[0], SubmitOutcome::NoQuorum, "still below quorum");
        let outs = drive_interval(&mut agg, t, [None, None, Some(9), None]);
        assert!(
            matches!(outs[0], SubmitOutcome::Aggregated(_)),
            "third fresh offset restores the quorum: {outs:?}"
        );
    }

    #[test]
    fn restart_returns_to_startup() {
        let mut agg = aggregator();
        to_fta_mode(&mut agg, ClockTime::from_nanos(1_000_000));
        agg.restart();
        assert_eq!(agg.mode(), AggregationMode::Startup);
        assert!(agg.shmem().lock().offsets().iter().all(Option::is_none));
    }

    #[test]
    fn startup_falls_back_when_initial_domain_down() {
        let mut agg = aggregator();
        let t = ClockTime::from_nanos(1_000_000);
        let outs = drive_interval(&mut agg, t, [None, Some(42), None, None]);
        match &outs[0] {
            SubmitOutcome::Aggregated(a) => assert_eq!(a.offset, Nanos::from_nanos(42)),
            o => panic!("expected aggregation, got {o:?}"),
        }
    }

    #[test]
    fn exclude_invalid_mode_filters_outliers_before_fta() {
        let mut cfg = config();
        cfg.exclude_invalid = true;
        let mut agg = MultiDomainAggregator::new(cfg, ServoConfig::default());
        let mut t = ClockTime::from_nanos(1_000_000);
        for _ in 0..2 {
            drive_interval(&mut agg, t, [Some(0), Some(0), Some(0), Some(0)]);
            t = t + S;
        }
        drive_interval(&mut agg, t, [None, Some(-24_000), Some(9), Some(30)]);
        t = t + S;
        let outs = drive_interval(&mut agg, t, [Some(0), None, None, None]);
        match &outs[0] {
            SubmitOutcome::Aggregated(a) => {
                // −24 µs flagged invalid and excluded; FTA over {0, 9, 30} = 9.
                assert_eq!(a.offset, Nanos::from_nanos(9));
            }
            o => panic!("expected aggregation, got {o:?}"),
        }
    }

    /// Drives the aggregator into FT mode, then starves it: everything
    /// stale, a single fresh offset cannot form a quorum. Returns the
    /// starvation instant.
    fn to_holdover(agg: &mut MultiDomainAggregator) -> ClockTime {
        let t = to_fta_mode(agg, ClockTime::from_nanos(1_000_000));
        let t = t + Nanos::from_secs(10); // everything stale
        let outs = drive_interval(agg, t, [Some(0), None, None, None]);
        assert_eq!(outs[0], SubmitOutcome::NoQuorum);
        assert_eq!(agg.sync_state(), SyncState::Holdover);
        t
    }

    #[test]
    fn quorum_loss_enters_holdover() {
        let mut agg = aggregator();
        let t = to_holdover(&mut agg);
        assert_eq!(
            agg.take_transitions(),
            vec![(t, SyncState::Synchronized, SyncState::Holdover)]
        );
        assert!(agg.take_transitions().is_empty(), "drain is destructive");
    }

    #[test]
    fn startup_quorum_gaps_do_not_degrade() {
        let mut agg = aggregator();
        // Startup mode, initial domain silent, only the self domain
        // fresh: NoQuorum without a state transition.
        agg.set_self_domain(Some(1));
        let t = ClockTime::from_nanos(1_000_000);
        let outs = drive_interval(&mut agg, t, [None, Some(0), None, None]);
        assert_eq!(outs[0], SubmitOutcome::NoQuorum);
        assert_eq!(agg.sync_state(), SyncState::Synchronized);
        assert!(agg.take_transitions().is_empty());
    }

    #[test]
    fn holdover_budget_exhaustion_declares_freerun() {
        let mut agg = aggregator();
        let t = to_holdover(&mut agg);
        // Past the 2 s holdover budget (and past any backoff), still no
        // quorum: Freerun.
        let t2 = t + Nanos::from_secs(4);
        let outs = drive_interval(&mut agg, t2, [Some(0), None, None, None]);
        assert_eq!(outs[0], SubmitOutcome::NoQuorum);
        assert_eq!(agg.sync_state(), SyncState::Freerun);
        assert_eq!(
            agg.take_transitions(),
            vec![
                (t, SyncState::Synchronized, SyncState::Holdover),
                (t2, SyncState::Holdover, SyncState::Freerun),
            ]
        );
    }

    #[test]
    fn reacquisition_requires_consecutive_successes() {
        let mut agg = aggregator();
        let mut t = to_holdover(&mut agg);
        let k = agg.config().reacquire_consecutive;
        // Full quorum restored at the normal cadence: K consecutive
        // successful intervals are needed before Synchronized returns.
        for i in 0..k {
            t = t + S;
            let outs = drive_interval(&mut agg, t, [Some(0), Some(5), Some(9), None]);
            assert!(
                outs.iter()
                    .any(|o| matches!(o, SubmitOutcome::Aggregated(_))),
                "interval {i}: {outs:?}"
            );
            let expect_sync = i + 1 >= k;
            assert_eq!(
                agg.sync_state() == SyncState::Synchronized,
                expect_sync,
                "after {} successful intervals",
                i + 1
            );
        }
        let trans = agg.take_transitions();
        assert_eq!(trans.len(), 2);
        assert_eq!(trans[1].1, SyncState::Holdover);
        assert_eq!(trans[1].2, SyncState::Synchronized);
    }

    #[test]
    fn failed_recheck_resets_reacquire_streak() {
        let mut agg = aggregator();
        let mut t = to_holdover(&mut agg);
        // One successful interval…
        t = t + S;
        let outs = drive_interval(&mut agg, t, [Some(0), Some(5), Some(9), None]);
        assert!(outs
            .iter()
            .any(|o| matches!(o, SubmitOutcome::Aggregated(_))));
        // …then a failure (everything stale again) resets the streak.
        t = t + Nanos::from_secs(10);
        let outs = drive_interval(&mut agg, t, [Some(0), None, None, None]);
        assert_eq!(outs[0], SubmitOutcome::NoQuorum);
        // With quorum back, re-acquisition needs K fresh successes plus
        // whatever intervals the armed backoff gates away — strictly more
        // than K intervals in total.
        let k = agg.config().reacquire_consecutive;
        let mut intervals = 0u32;
        while agg.sync_state() != SyncState::Synchronized {
            t = t + S;
            drive_interval(&mut agg, t, [Some(0), Some(5), Some(9), None]);
            intervals += 1;
            assert!(intervals < 20, "re-acquisition never completed");
        }
        assert!(
            intervals > k,
            "streak reset + backoff must cost extra intervals (took {intervals}, K = {k})"
        );
    }

    #[test]
    fn degraded_rechecks_back_off_exponentially() {
        let mut agg = aggregator();
        let t = to_holdover(&mut agg);
        // Second failed interval arms next_attempt = t2 + S.
        let t2 = t + S;
        let outs = drive_interval(&mut agg, t2, [Some(0), None, None, None]);
        assert_eq!(outs[0], SubmitOutcome::NoQuorum);
        // Before the backoff expires a full quorum is only *stored*…
        let t3 = t2 + Nanos::from_millis(10);
        let outs = drive_interval(&mut agg, t3, [Some(0), Some(5), Some(9), Some(12)]);
        assert!(
            outs.iter().all(|o| matches!(o, SubmitOutcome::Stored)),
            "gated attempts must store, got {outs:?}"
        );
        // …and once it expires the attempt runs and succeeds.
        let t4 = t2 + S;
        let outs = drive_interval(&mut agg, t4, [Some(0), None, None, None]);
        assert!(
            matches!(outs[0], SubmitOutcome::Aggregated(_)),
            "attempt past backoff must run: {outs:?}"
        );
    }

    #[test]
    fn same_instant_retries_are_not_gated() {
        let mut agg = aggregator();
        let t = to_holdover(&mut agg);
        // More submissions at the exact failure instant complete the
        // quorum immediately (existing Eq. 2.1 retry semantics).
        let outs = drive_interval(&mut agg, t, [None, Some(5), Some(9), None]);
        assert!(
            matches!(outs.last().unwrap(), SubmitOutcome::Aggregated(_)),
            "same-tick quorum completion must aggregate: {outs:?}"
        );
    }

    #[test]
    fn restart_silently_resets_sync_state() {
        let mut agg = aggregator();
        to_holdover(&mut agg);
        agg.restart();
        assert_eq!(agg.sync_state(), SyncState::Synchronized);
        assert!(
            agg.take_transitions().is_empty(),
            "restart must not emit transitions"
        );
    }

    #[test]
    fn snapshot_roundtrips_degradation_state() {
        use tsn_snapshot::{Reader, SnapState, Writer};
        let mut agg = aggregator();
        let t = to_holdover(&mut agg);
        let mut w = Writer::new();
        agg.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut copy = aggregator();
        let mut r = Reader::new(&bytes);
        copy.load_state(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(copy.sync_state(), SyncState::Holdover);
        assert_eq!(
            copy.take_transitions(),
            vec![(t, SyncState::Synchronized, SyncState::Holdover)]
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_domain_panics() {
        let mut agg = aggregator();
        agg.submit(9, Nanos::ZERO, ClockTime::ZERO, 1.0, ClockTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "needs")]
    fn method_requiring_more_domains_than_exist_rejected() {
        let cfg = AggregationConfig {
            domains: 2,
            method: AggregationMethod::FaultTolerantAverage { f: 1 },
            ..AggregationConfig::paper_default()
        };
        MultiDomainAggregator::new(cfg, ServoConfig::default());
    }
}
