//! Analytical containment bounds for trim-`f` aggregation under
//! colluding Byzantine grandmasters.
//!
//! Jiang et al. (*Resilience Bounds of Network Clock Synchronization
//! with Fault Correction*, arXiv:2006.15832) derive how far a
//! fault-corrected synchronization algorithm can be steered as a
//! function of the number of faulty inputs and the correction's trim
//! degree. This module specializes that analysis to the repo's
//! operating point — the Kopetz–Ochsenreiter FTA (and the Welch–Lynch
//! midpoint, which shares the trim step) over `M` domain offsets with
//! `f` extremes discarded per side — and produces the *analytical
//! frontier* that `campaign frontier` compares against the empirically
//! bisected one.
//!
//! # Model
//!
//! Let `live = M − partitioned` be the domains that still reach the
//! aggregating node, `kept = live − 2f` the values that survive the
//! trim, and `c` the compromised domains, all commanding a shift of
//! magnitude `T` (the worst case per arXiv:2006.15832 §IV is
//! *colluding* faults: distinct values waste trim capacity on each
//! other). Sorting puts the `c` faulty values at one extreme, the trim
//! removes `f` of them, and
//!
//! ```text
//! s = min(c − f, kept)        faulty values surviving into the average
//! shift(T) = s · T / kept     worst-case aggregate displacement
//! ```
//!
//! A monitored offset sample is the aggregate displacement plus the
//! benign synchronization error, which the repo's bound algebra (paper
//! §III) confines to `[−Π, +Π]` with reading error `γ`; the empirical
//! break predicate is a sample exceeding `Π + γ`. Inverting `shift`
//! against the three interesting sample values gives the frontier in
//! magnitude space:
//!
//! * **contained below** `T_lo = γ·kept/s` — even a worst-phase benign
//!   error (`+Π`) plus the shift stays within `Π + γ`; containment
//!   cannot break for magnitudes strictly below this;
//! * **break point** `T_pt = (Π+γ)·kept/s` — the zero-benign-error
//!   crossing, the analytical point estimate of the frontier;
//! * **broken above** `T_hi = (2Π+γ)·kept/s` — the shift alone exceeds
//!   `Π + γ` by more than any opposing benign error can cancel; a
//!   sustained attack at or above this magnitude must break containment.
//!
//! With `c ≤ f` the trim absorbs every faulty value (`s = 0`): the cell
//! is *unbreakable* and all three thresholds are `None` — the FTA
//! guarantee the paper's experiment (ii) demonstrates at its fixed
//! point, here parameterized over the whole grid.

use tsn_time::Nanos;

/// One configuration cell of the resilience frontier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResilienceParams {
    /// Number of gPTP domains `M` feeding the aggregation.
    pub domains: usize,
    /// Trim degree `f` of the aggregation method.
    pub f: usize,
    /// Compromised (colluding) domains `c`.
    pub compromised: usize,
    /// Domains starved away from the aggregating node (partition window
    /// or fail-silent GMs) — they never reach the sort.
    pub partitioned: usize,
    /// Synchronization precision bound `Π` of the benign system.
    pub pi: Nanos,
    /// Clock reading error `γ`.
    pub gamma: Nanos,
}

/// The analytical containment frontier for one [`ResilienceParams`]
/// cell, in attack-magnitude space (see module docs for the model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResilienceBound {
    /// `live ≥ 2f + 1` and at least one value survives the trim: the
    /// aggregation can form a quorum at all. Without it the cell
    /// degrades through Holdover/Freerun regardless of the adversary.
    pub quorum: bool,
    /// Values surviving the trim (`live − 2f`, 0 when starved).
    pub kept: usize,
    /// Faulty values surviving into the average (`min(c − f, kept)`).
    pub steered: usize,
    /// Magnitudes strictly below this cannot break containment.
    /// `None` when the cell is unbreakable (`steered == 0`).
    pub contained_below: Option<Nanos>,
    /// Analytical point estimate of the frontier.
    pub break_point: Option<Nanos>,
    /// Magnitudes at or above this are guaranteed to break containment
    /// under a sustained attack.
    pub broken_above: Option<Nanos>,
}

impl ResilienceBound {
    /// `true` when no attack magnitude can break containment in this
    /// cell — `c ≤ f` (the FTA guarantee) or no quorum to steer.
    pub fn unbreakable(&self) -> bool {
        self.steered == 0
    }
}

/// Computes the analytical containment frontier for one cell.
///
/// All arithmetic is exact integer nanoseconds (`i128` internally), so
/// the bound is deterministic across platforms — a requirement for the
/// byte-identical `frontier.json` artifact.
pub fn containment_bound(p: &ResilienceParams) -> ResilienceBound {
    let live = p.domains.saturating_sub(p.partitioned);
    let kept = live.saturating_sub(2 * p.f);
    let quorum = live > 2 * p.f && kept >= 1;
    let steered = p.compromised.saturating_sub(p.f).min(kept);
    if !quorum || steered == 0 {
        return ResilienceBound {
            quorum,
            kept,
            steered: if quorum { steered } else { 0 },
            contained_below: None,
            break_point: None,
            broken_above: None,
        };
    }
    let scale = |shift: i128| -> Nanos {
        let t = shift * kept as i128 / steered as i128;
        Nanos::from_nanos(t.clamp(i128::from(i64::MIN), i128::from(i64::MAX)) as i64)
    };
    let pi = i128::from(p.pi.as_nanos());
    let gamma = i128::from(p.gamma.as_nanos());
    ResilienceBound {
        quorum,
        kept,
        steered,
        contained_below: Some(scale(gamma)),
        break_point: Some(scale(pi + gamma)),
        broken_above: Some(scale(2 * pi + gamma)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(compromised: usize) -> ResilienceParams {
        ResilienceParams {
            domains: 4,
            f: 1,
            compromised,
            partitioned: 0,
            pi: Nanos::from_micros(12),
            gamma: Nanos::from_nanos(1_500),
        }
    }

    #[test]
    fn within_trim_capacity_is_unbreakable() {
        for c in 0..=1 {
            let b = containment_bound(&params(c));
            assert!(b.quorum);
            assert!(b.unbreakable(), "c = {c} must be masked");
            assert_eq!(b.contained_below, None);
            assert_eq!(b.broken_above, None);
        }
    }

    #[test]
    fn one_colluder_past_f_scales_by_kept() {
        // M = 4, f = 1: kept = 2, one faulty survivor → shift = T/2.
        let b = containment_bound(&params(2));
        assert_eq!((b.kept, b.steered), (2, 1));
        assert_eq!(b.contained_below, Some(Nanos::from_nanos(3_000)));
        assert_eq!(b.break_point, Some(Nanos::from_nanos(27_000)));
        assert_eq!(b.broken_above, Some(Nanos::from_nanos(51_000)));
    }

    #[test]
    fn saturated_collusion_steers_at_unit_gain() {
        // c = 3 of 4 with f = 1: both kept values are faulty — the
        // aggregate tracks the target directly.
        let b = containment_bound(&params(3));
        assert_eq!(b.steered, 2);
        assert_eq!(b.break_point, Some(Nanos::from_nanos(13_500)));
        // c = 4 cannot steer harder than "all kept values faulty".
        assert_eq!(containment_bound(&params(4)).steered, 2);
    }

    #[test]
    fn thresholds_are_ordered() {
        for c in 2..=4 {
            let b = containment_bound(&params(c));
            assert!(b.contained_below < b.break_point);
            assert!(b.break_point < b.broken_above);
        }
    }

    #[test]
    fn partition_starves_the_quorum() {
        let p = ResilienceParams {
            partitioned: 2,
            ..params(2)
        };
        let b = containment_bound(&p);
        assert!(!b.quorum, "2 live domains cannot form a 2f+1 quorum");
        assert!(b.unbreakable());
    }

    #[test]
    fn more_colluders_lower_the_frontier() {
        let b2 = containment_bound(&params(2)).break_point.unwrap();
        let b3 = containment_bound(&params(3)).break_point.unwrap();
        assert!(b3 < b2, "extra colluders must weaken the cell");
    }
}
