//! The `FTSHMEM` shared-memory region (paper §II-B).
//!
//! "We introduce a user-space shared memory region FTSHMEM between the M
//! ptp4l instances. [It] holds the latest M GM offsets, an array of M
//! booleans indicating whether the corresponding GM clock's offset from
//! the remaining GM clocks is within a configurable threshold, a
//! timestamp `adjust_last` providing when we have last adjusted the NIC's
//! clock frequency, and the state variables of a proportional integral
//! (PI) controller."
//!
//! In the simulation the region is a struct behind a `parking_lot::Mutex`
//! (modeling the process-shared futex between the `ptp4l` processes); the
//! field layout follows the paper exactly.

use parking_lot::Mutex;
use std::sync::Arc;
use tsn_time::{ClockTime, Nanos, PiServo};

/// One domain's latest master-offset entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OffsetSlot {
    /// Offset of the local clock from this domain's GM.
    pub offset: Nanos,
    /// Local hardware timestamp of the Sync that produced the offset.
    pub sync_rx_local: ClockTime,
    /// Cumulative GM-to-local rate ratio reported for this domain.
    pub rate_ratio: f64,
    /// Local time at which the slot was written (freshness reference).
    pub stored_at: ClockTime,
}

/// The shared region between the `M` per-domain instances of one
/// clock-synchronization VM.
#[derive(Debug)]
pub struct FtShmem {
    /// `master offset[0..M-1]` — the latest per-domain offsets.
    pub slots: Vec<Option<OffsetSlot>>,
    /// The M validity booleans.
    pub valid: Vec<bool>,
    /// When the NIC clock frequency was last adjusted (local clock).
    pub adjust_last: ClockTime,
    /// The shared PI controller.
    pub servo: PiServo,
    /// Number of aggregations performed (diagnostic).
    pub aggregations: u64,
    /// Sum of aggregated offsets in ns (diagnostic: a nonzero mean
    /// reveals systematic measurement bias, which a mutually-tracking GM
    /// ensemble integrates into common-mode frequency drift).
    pub offset_sum_ns: i128,
    /// Number of intervals skipped for lack of a quorum (diagnostic).
    pub no_quorum: u64,
}

impl FtShmem {
    /// Creates a region for `domains` gPTP domains with the given servo.
    pub fn new(domains: usize, servo: PiServo) -> Self {
        FtShmem {
            slots: vec![None; domains],
            valid: vec![false; domains],
            // Negative sentinel: the first submission always aggregates.
            adjust_last: ClockTime::from_nanos(i64::MIN / 2),
            servo,
            aggregations: 0,
            offset_sum_ns: 0,
            no_quorum: 0,
        }
    }

    /// The latest offsets as an `Option` per domain (no freshness check).
    pub fn offsets(&self) -> Vec<Option<Nanos>> {
        self.slots.iter().map(|s| s.map(|s| s.offset)).collect()
    }

    /// Clears all slots (used on VM restart).
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s = None;
        }
        for v in &mut self.valid {
            *v = false;
        }
    }
}

/// Handle to a shared [`FtShmem`], cloneable across the M per-domain
/// instances.
pub type SharedFtShmem = Arc<Mutex<FtShmem>>;

/// Creates a new shared region.
pub fn shared(domains: usize, servo: PiServo) -> SharedFtShmem {
    Arc::new(Mutex::new(FtShmem::new(domains, servo)))
}

use tsn_snapshot::{Reader, Snap, SnapError, SnapState, Writer};

impl Snap for OffsetSlot {
    fn put(&self, w: &mut Writer) {
        self.offset.put(w);
        self.sync_rx_local.put(w);
        self.rate_ratio.put(w);
        self.stored_at.put(w);
    }
    fn get(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(OffsetSlot {
            offset: Snap::get(r)?,
            sync_rx_local: Snap::get(r)?,
            rate_ratio: Snap::get(r)?,
            stored_at: Snap::get(r)?,
        })
    }
}

impl SnapState for FtShmem {
    fn save_state(&self, w: &mut Writer) {
        self.slots.put(w);
        self.valid.put(w);
        self.adjust_last.put(w);
        self.servo.save_state(w);
        self.aggregations.put(w);
        self.offset_sum_ns.put(w);
        self.no_quorum.put(w);
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        self.slots = Snap::get(r)?;
        self.valid = Snap::get(r)?;
        self.adjust_last = Snap::get(r)?;
        self.servo.load_state(r)?;
        self.aggregations = Snap::get(r)?;
        self.offset_sum_ns = Snap::get(r)?;
        self.no_quorum = Snap::get(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsn_time::ServoConfig;

    fn servo() -> PiServo {
        PiServo::new(ServoConfig::default(), Nanos::from_millis(125))
    }

    #[test]
    fn fresh_region_is_empty() {
        let shm = FtShmem::new(4, servo());
        assert_eq!(shm.slots.len(), 4);
        assert!(shm.offsets().iter().all(Option::is_none));
        assert_eq!(shm.valid, vec![false; 4]);
    }

    #[test]
    fn sentinel_adjust_last_triggers_first_aggregation() {
        let shm = FtShmem::new(4, servo());
        let s = Nanos::from_millis(125);
        assert!(shm.adjust_last + s <= ClockTime::ZERO);
    }

    #[test]
    fn clear_resets_slots() {
        let mut shm = FtShmem::new(2, servo());
        shm.slots[0] = Some(OffsetSlot {
            offset: Nanos::from_nanos(5),
            sync_rx_local: ClockTime::ZERO,
            rate_ratio: 1.0,
            stored_at: ClockTime::ZERO,
        });
        shm.valid[0] = true;
        shm.clear();
        assert!(shm.slots[0].is_none());
        assert!(!shm.valid[0]);
    }

    #[test]
    fn shared_handle_is_cloneable() {
        let shm = shared(4, servo());
        let other = Arc::clone(&shm);
        shm.lock().slots[1] = Some(OffsetSlot {
            offset: Nanos::from_nanos(7),
            sync_rx_local: ClockTime::ZERO,
            rate_ratio: 1.0,
            stored_at: ClockTime::ZERO,
        });
        assert_eq!(other.lock().offsets()[1], Some(Nanos::from_nanos(7)));
    }
}
