//! Fault-tolerant average and alternative aggregation functions.
//!
//! The fault-tolerant average (FTA) of Kopetz and Ochsenreiter (*Clock
//! Synchronization in Distributed Real-Time Systems*, IEEE ToC 1987 — the
//! paper's reference [3]): sort the `N` clock readings, discard the `f`
//! largest and `f` smallest, and average the remaining `N − 2f`. With
//! `N ≥ 3f + 1` readings the result is guaranteed to lie within the range
//! of correct clocks even when up to `f` readings are Byzantine.
//!
//! `Mean` and `Median` are provided as ablation baselines: the mean is
//! what a non-fault-tolerant multi-domain aggregation would compute, and
//! the median is FTA's limiting case.

use serde::{Deserialize, Serialize};
use tsn_time::Nanos;

/// The aggregation function applied to the per-domain GM offsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggregationMethod {
    /// Kopetz–Ochsenreiter FTA discarding `f` extremes on each side.
    FaultTolerantAverage {
        /// Number of Byzantine values to tolerate.
        f: usize,
    },
    /// Welch–Lynch fault-tolerant midpoint: discard `f` extremes per
    /// side, then take the midpoint of the remaining range.
    FaultTolerantMidpoint {
        /// Number of Byzantine values to tolerate.
        f: usize,
    },
    /// Plain arithmetic mean (no fault tolerance).
    Mean,
    /// Median of the values.
    Median,
}

impl AggregationMethod {
    /// Minimum number of inputs this method needs to produce a value.
    pub fn min_inputs(&self) -> usize {
        match self {
            AggregationMethod::FaultTolerantAverage { f }
            | AggregationMethod::FaultTolerantMidpoint { f } => 2 * f + 1,
            AggregationMethod::Mean | AggregationMethod::Median => 1,
        }
    }

    /// Number of extreme values discarded per side before aggregating
    /// (`f` for the fault-tolerant methods, 0 for mean/median).
    pub fn trim_degree(&self) -> usize {
        match self {
            AggregationMethod::FaultTolerantAverage { f }
            | AggregationMethod::FaultTolerantMidpoint { f } => *f,
            AggregationMethod::Mean | AggregationMethod::Median => 0,
        }
    }

    /// Aggregates `offsets`, returning `None` if there are too few inputs.
    pub fn aggregate(&self, offsets: &[Nanos]) -> Option<Nanos> {
        match self {
            AggregationMethod::FaultTolerantAverage { f } => fault_tolerant_average(offsets, *f),
            AggregationMethod::FaultTolerantMidpoint { f } => fault_tolerant_midpoint(offsets, *f),
            AggregationMethod::Mean => mean(offsets),
            AggregationMethod::Median => median(offsets),
        }
    }
}

/// The fault-tolerant average: sorts, discards the `f` lowest and `f`
/// highest values, and averages the rest.
///
/// Returns `None` when fewer than `2f + 1` values are supplied (nothing
/// would remain, or the result could be dominated by faulty values).
///
/// # Examples
///
/// ```
/// use tsn_fta::fault_tolerant_average;
/// use tsn_time::Nanos;
///
/// let offsets: Vec<Nanos> = [10, -24_000, 20, 30] // one Byzantine value
///     .iter().map(|&n| Nanos::from_nanos(n)).collect();
/// let fta = fault_tolerant_average(&offsets, 1).unwrap();
/// assert_eq!(fta, Nanos::from_nanos(15)); // (10 + 20) / 2
/// ```
pub fn fault_tolerant_average(offsets: &[Nanos], f: usize) -> Option<Nanos> {
    if offsets.len() < 2 * f + 1 {
        return None;
    }
    let mut sorted: Vec<i64> = offsets.iter().map(|o| o.as_nanos()).collect();
    sorted.sort_unstable();
    let kept = &sorted[f..sorted.len() - f];
    let sum: i128 = kept.iter().map(|&v| i128::from(v)).sum();
    // Round-half-away-from-zero division keeps the average unbiased.
    let n = kept.len() as i128;
    let avg = (sum + if sum >= 0 { n / 2 } else { -(n / 2) }) / n;
    Some(Nanos::from_nanos(avg as i64))
}

/// The Welch–Lynch fault-tolerant midpoint: discard the `f` lowest and
/// `f` highest values, then return the midpoint of the smallest and
/// largest survivors. Converges like the FTA but weighs only the extreme
/// survivors, which gives it a slightly worse noise floor and the same
/// Byzantine tolerance.
///
/// Returns `None` when fewer than `2f + 1` values are supplied.
pub fn fault_tolerant_midpoint(offsets: &[Nanos], f: usize) -> Option<Nanos> {
    if offsets.len() < 2 * f + 1 {
        return None;
    }
    let mut sorted: Vec<i64> = offsets.iter().map(|o| o.as_nanos()).collect();
    sorted.sort_unstable();
    let kept = &sorted[f..sorted.len() - f];
    let mid = (i128::from(kept[0]) + i128::from(kept[kept.len() - 1])) / 2;
    Some(Nanos::from_nanos(mid as i64))
}

/// Indices of the values a trim-`f` aggregation discards: the `f`
/// smallest and `f` largest (ties broken by index, matching a stable
/// sort). Empty when `f == 0` or there are too few values to aggregate.
///
/// This mirrors the discard step of [`fault_tolerant_average`] /
/// [`fault_tolerant_midpoint`] so observers (tracing) can report *which*
/// domains were trimmed, not just the surviving average.
pub fn trimmed_indices(offsets: &[Nanos], f: usize) -> Vec<usize> {
    if f == 0 || offsets.len() < 2 * f + 1 {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..offsets.len()).collect();
    order.sort_by_key(|&i| (offsets[i].as_nanos(), i));
    let mut trimmed: Vec<usize> = order[..f]
        .iter()
        .chain(&order[order.len() - f..])
        .copied()
        .collect();
    trimmed.sort_unstable();
    trimmed
}

/// Arithmetic mean of the offsets. `None` on empty input.
pub fn mean(offsets: &[Nanos]) -> Option<Nanos> {
    if offsets.is_empty() {
        return None;
    }
    let sum: i128 = offsets.iter().map(|o| i128::from(o.as_nanos())).sum();
    let n = offsets.len() as i128;
    let avg = (sum + if sum >= 0 { n / 2 } else { -(n / 2) }) / n;
    Some(Nanos::from_nanos(avg as i64))
}

/// Median of the offsets (lower-middle for even counts). `None` on empty
/// input.
pub fn median(offsets: &[Nanos]) -> Option<Nanos> {
    if offsets.is_empty() {
        return None;
    }
    let mut sorted: Vec<i64> = offsets.iter().map(|o| o.as_nanos()).collect();
    sorted.sort_unstable();
    let mid = sorted.len() / 2;
    let m = if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2
    };
    Some(Nanos::from_nanos(m))
}

/// Validity flags per the paper's `FTSHMEM` layout: "an array of M
/// booleans indicating whether the corresponding GM clock's offset from
/// the remaining GM clocks is within a configurable threshold".
///
/// A GM's offset is flagged valid when its distance from the median of
/// all offsets is at most `threshold`. Missing (stale/down) domains are
/// flagged invalid.
pub fn validity_flags(offsets: &[Option<Nanos>], threshold: Nanos) -> Vec<bool> {
    let present: Vec<Nanos> = offsets.iter().flatten().copied().collect();
    let Some(med) = median(&present) else {
        return vec![false; offsets.len()];
    };
    offsets
        .iter()
        .map(|o| match o {
            Some(v) => (*v - med).abs() <= threshold,
            None => false,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(values: &[i64]) -> Vec<Nanos> {
        values.iter().map(|&v| Nanos::from_nanos(v)).collect()
    }

    #[test]
    fn fta_drops_extremes() {
        // Paper's scenario: one GM shifted by −24 µs among 4.
        let offsets = ns(&[100, 200, 300, -24_000]);
        assert_eq!(
            fault_tolerant_average(&offsets, 1),
            Some(Nanos::from_nanos(150))
        );
    }

    #[test]
    fn fta_requires_2f_plus_1() {
        assert_eq!(fault_tolerant_average(&ns(&[1, 2]), 1), None);
        assert!(fault_tolerant_average(&ns(&[1, 2, 3]), 1).is_some());
        assert_eq!(fault_tolerant_average(&ns(&[]), 0), None);
    }

    #[test]
    fn fta_of_three_is_median() {
        let offsets = ns(&[5, -1000, 42]);
        assert_eq!(
            fault_tolerant_average(&offsets, 1),
            Some(Nanos::from_nanos(5))
        );
    }

    #[test]
    fn fta_with_f_zero_is_mean() {
        let offsets = ns(&[10, 20, 30]);
        assert_eq!(fault_tolerant_average(&offsets, 0), mean(&offsets));
    }

    #[test]
    fn two_byzantine_values_break_f1() {
        // The paper's second exploit: two GMs shifted by −24 µs. FTA with
        // f = 1 keeps one of them — the aggregate is dragged far outside
        // the correct clocks' range.
        let offsets = ns(&[100, 200, -24_000, -24_000]);
        let fta = fault_tolerant_average(&offsets, 1).unwrap();
        assert!(
            fta < Nanos::from_nanos(-10_000),
            "aggregate {fta} not dragged"
        );
    }

    #[test]
    fn mean_is_not_fault_tolerant() {
        let offsets = ns(&[100, 200, 300, -24_000]);
        let m = mean(&offsets).unwrap();
        assert!(m < Nanos::from_nanos(-5_000));
    }

    #[test]
    fn median_of_even_and_odd() {
        assert_eq!(median(&ns(&[3, 1, 2])), Some(Nanos::from_nanos(2)));
        assert_eq!(median(&ns(&[4, 1, 2, 3])), Some(Nanos::from_nanos(2)));
        assert_eq!(median(&ns(&[])), None);
    }

    #[test]
    fn rounding_is_symmetric() {
        assert_eq!(mean(&ns(&[1, 2])), Some(Nanos::from_nanos(2))); // 1.5 → 2
        assert_eq!(mean(&ns(&[-1, -2])), Some(Nanos::from_nanos(-2))); // −1.5 → −2
    }

    #[test]
    fn validity_flags_mark_outliers_and_missing() {
        let offsets = vec![
            Some(Nanos::from_nanos(100)),
            Some(Nanos::from_nanos(-24_000)),
            None,
            Some(Nanos::from_nanos(150)),
        ];
        let flags = validity_flags(&offsets, Nanos::from_micros(1));
        assert_eq!(flags, vec![true, false, false, true]);
    }

    #[test]
    fn validity_flags_all_false_when_empty() {
        let flags = validity_flags(&[None, None], Nanos::from_micros(1));
        assert_eq!(flags, vec![false, false]);
    }

    #[test]
    fn midpoint_masks_extremes() {
        let offsets = ns(&[100, 200, 300, -24_000]);
        // Survivors after trimming 1/side: {100, 200} → midpoint 150.
        assert_eq!(
            fault_tolerant_midpoint(&offsets, 1),
            Some(Nanos::from_nanos(150))
        );
        assert_eq!(fault_tolerant_midpoint(&ns(&[1, 2]), 1), None);
    }

    #[test]
    fn midpoint_vs_average_on_skewed_survivors() {
        // Survivors {0, 10, 1000}: average 337, midpoint 500.
        let offsets = ns(&[-9_999, 0, 10, 1_000, 99_999]);
        assert_eq!(
            fault_tolerant_average(&offsets, 1),
            Some(Nanos::from_nanos(337))
        );
        assert_eq!(
            fault_tolerant_midpoint(&offsets, 1),
            Some(Nanos::from_nanos(500))
        );
    }

    #[test]
    fn method_dispatch() {
        let offsets = ns(&[100, 200, 300, -24_000]);
        let fta = AggregationMethod::FaultTolerantAverage { f: 1 };
        assert_eq!(fta.aggregate(&offsets), Some(Nanos::from_nanos(150)));
        assert_eq!(fta.min_inputs(), 3);
        assert_eq!(
            AggregationMethod::Median.aggregate(&offsets),
            Some(Nanos::from_nanos(150))
        );
        assert_eq!(AggregationMethod::Mean.min_inputs(), 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn nanos_vec(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Nanos>> {
        proptest::collection::vec(
            (-1_000_000_000i64..1_000_000_000).prop_map(Nanos::from_nanos),
            len,
        )
    }

    proptest! {
        /// FTA always lies within [min, max] of the kept (non-extreme)
        /// values — hence within the range of correct clocks when at most
        /// f are faulty.
        #[test]
        fn fta_bounded_by_inner_values(values in nanos_vec(3..20), f in 0usize..3) {
            prop_assume!(values.len() > 2 * f);
            let result = fault_tolerant_average(&values, f).unwrap();
            let mut sorted: Vec<i64> = values.iter().map(|v| v.as_nanos()).collect();
            sorted.sort_unstable();
            let inner = &sorted[f..sorted.len() - f];
            prop_assert!(result.as_nanos() >= inner[0] - 1);
            prop_assert!(result.as_nanos() <= inner[inner.len() - 1] + 1);
        }

        /// Byzantine masking: replacing up to f honest values with
        /// arbitrary outliers moves the FTA by at most the spread of the
        /// honest values.
        #[test]
        fn fta_masks_f_outliers(
            honest in nanos_vec(3..10),
            outlier in -1_000_000_000_000i64..1_000_000_000_000,
        ) {
            let f = 1usize;
            prop_assume!(honest.len() > 2 * f);
            let hmin = honest.iter().map(|v| v.as_nanos()).min().unwrap();
            let hmax = honest.iter().map(|v| v.as_nanos()).max().unwrap();
            let mut attacked = honest.clone();
            attacked.push(Nanos::from_nanos(outlier));
            let result = fault_tolerant_average(&attacked, f).unwrap();
            prop_assert!(result.as_nanos() >= hmin - 1, "dragged below honest range");
            prop_assert!(result.as_nanos() <= hmax + 1, "dragged above honest range");
        }

        /// FTA is permutation-invariant.
        #[test]
        fn fta_permutation_invariant(values in nanos_vec(3..12)) {
            let f = 1usize;
            prop_assume!(values.len() > 2 * f);
            let a = fault_tolerant_average(&values, f);
            let mut rev = values.clone();
            rev.reverse();
            prop_assert_eq!(a, fault_tolerant_average(&rev, f));
        }

        /// FTA is monotone: increasing any single input never decreases
        /// the output.
        #[test]
        fn fta_monotone(values in nanos_vec(3..10), idx in 0usize..10, bump in 0i64..1_000_000) {
            let f = 1usize;
            prop_assume!(values.len() > 2 * f);
            let idx = idx % values.len();
            let before = fault_tolerant_average(&values, f).unwrap();
            let mut bumped = values.clone();
            bumped[idx] = Nanos::from_nanos(bumped[idx].as_nanos() + bump);
            let after = fault_tolerant_average(&bumped, f).unwrap();
            prop_assert!(after >= before);
        }

        /// Translation equivariance: shifting all inputs by c shifts the
        /// output by c (within rounding).
        #[test]
        fn fta_translation_equivariant(values in nanos_vec(3..10), shift in -1_000_000i64..1_000_000) {
            let f = 1usize;
            prop_assume!(values.len() > 2 * f);
            let base = fault_tolerant_average(&values, f).unwrap();
            let shifted: Vec<Nanos> =
                values.iter().map(|v| Nanos::from_nanos(v.as_nanos() + shift)).collect();
            let res = fault_tolerant_average(&shifted, f).unwrap();
            let diff = (res.as_nanos() - base.as_nanos() - shift).abs();
            prop_assert!(diff <= 1);
        }

        /// Median and mean agree with FTA's limits.
        #[test]
        fn fta_full_trim_is_median(values in nanos_vec(3..4)) {
            // For 3 values and f = 1 the FTA is exactly the median.
            prop_assert_eq!(
                fault_tolerant_average(&values, 1),
                median(&values)
            );
        }

        /// The Welch–Lynch midpoint shares the FTA's containment
        /// guarantee: it lies within [min, max] of the kept values.
        #[test]
        fn midpoint_bounded_by_inner_values(values in nanos_vec(3..20), f in 0usize..3) {
            prop_assume!(values.len() > 2 * f);
            let result = fault_tolerant_midpoint(&values, f).unwrap();
            let mut sorted: Vec<i64> = values.iter().map(|v| v.as_nanos()).collect();
            sorted.sort_unstable();
            let inner = &sorted[f..sorted.len() - f];
            prop_assert!(result.as_nanos() >= inner[0] - 1);
            prop_assert!(result.as_nanos() <= inner[inner.len() - 1] + 1);
        }

        /// Byzantine masking holds for the midpoint too: one arbitrary
        /// outlier cannot drag it outside the honest range.
        #[test]
        fn midpoint_masks_f_outliers(
            honest in nanos_vec(3..10),
            outlier in -1_000_000_000_000i64..1_000_000_000_000,
        ) {
            let f = 1usize;
            prop_assume!(honest.len() > 2 * f);
            let hmin = honest.iter().map(|v| v.as_nanos()).min().unwrap();
            let hmax = honest.iter().map(|v| v.as_nanos()).max().unwrap();
            let mut attacked = honest.clone();
            attacked.push(Nanos::from_nanos(outlier));
            let result = fault_tolerant_midpoint(&attacked, f).unwrap();
            prop_assert!(result.as_nanos() >= hmin - 1, "dragged below honest range");
            prop_assert!(result.as_nanos() <= hmax + 1, "dragged above honest range");
        }

        /// The median always lies within [min, max] of its inputs.
        #[test]
        fn median_bounded_by_inputs(values in nanos_vec(1..20)) {
            let result = median(&values).unwrap();
            let min = values.iter().min().unwrap().as_nanos();
            let max = values.iter().max().unwrap().as_nanos();
            prop_assert!(result.as_nanos() >= min);
            prop_assert!(result.as_nanos() <= max);
        }

        /// `aggregate` succeeds exactly when `min_inputs` is met, for
        /// every method — the two must never drift apart (the aggregator
        /// uses `min_inputs` to gate startup, the oracle to gate its
        /// containment check).
        #[test]
        fn aggregate_some_iff_min_inputs(values in nanos_vec(0..12), f in 0usize..4) {
            let methods = [
                AggregationMethod::FaultTolerantAverage { f },
                AggregationMethod::FaultTolerantMidpoint { f },
                AggregationMethod::Mean,
                AggregationMethod::Median,
            ];
            for method in methods {
                prop_assert_eq!(
                    method.aggregate(&values).is_some(),
                    values.len() >= method.min_inputs(),
                    "method {:?} with {} inputs",
                    method,
                    values.len()
                );
            }
        }
    }

    /// The empty slice is deterministic for every method: always `None`,
    /// never a panic (proptest rarely generates the boundary itself).
    #[test]
    fn empty_slice_aggregates_to_none() {
        for method in [
            AggregationMethod::FaultTolerantAverage { f: 0 },
            AggregationMethod::FaultTolerantAverage { f: 1 },
            AggregationMethod::FaultTolerantMidpoint { f: 0 },
            AggregationMethod::FaultTolerantMidpoint { f: 2 },
            AggregationMethod::Mean,
            AggregationMethod::Median,
        ] {
            assert_eq!(method.aggregate(&[]), None, "{method:?} on empty input");
        }
    }
}
