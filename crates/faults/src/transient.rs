//! Transient software-stack fault models.
//!
//! Paper §III-C: "unintended protocol or software faults resulting from
//! the software stack could occur independently at any time. For example,
//! we occasionally observed missed transmission deadlines of Sync packets
//! or timeouts when ptp4l attempted to retrieve transmission timestamps
//! from the Linux kernel." Over 24 h the paper counted 2992 transmit
//! timestamp timeouts (an igb-driver issue with the Intel i210) and 347
//! transmission deadline misses.
//!
//! We model both as independent per-transmission Bernoulli faults whose
//! default probabilities are calibrated to the paper's observed rates
//! given the experiment's ≈2.76 M Sync transmissions
//! (4 GMs · 8 Sync/s · 86 400 s).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the transient fault models.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransientFaultConfig {
    /// Probability a Sync's hardware transmit timestamp retrieval times
    /// out (no Follow_Up is sent).
    pub tx_timestamp_timeout_prob: f64,
    /// Probability a Sync misses its ETF launch deadline (dropped by the
    /// qdisc).
    pub deadline_miss_prob: f64,
}

impl Default for TransientFaultConfig {
    fn default() -> Self {
        // 2992 / 2.76 M ≈ 1.08e-3; 347 / 2.76 M ≈ 1.26e-4.
        TransientFaultConfig {
            tx_timestamp_timeout_prob: 1.08e-3,
            deadline_miss_prob: 1.26e-4,
        }
    }
}

impl TransientFaultConfig {
    /// No transient faults (for clean-room tests).
    pub fn none() -> Self {
        TransientFaultConfig {
            tx_timestamp_timeout_prob: 0.0,
            deadline_miss_prob: 0.0,
        }
    }
}

/// Stateful transient fault sampler with occurrence counters.
#[derive(Debug, Clone)]
pub struct TransientFaults<R> {
    config: TransientFaultConfig,
    rng: R,
    /// Realized transmit-timestamp timeouts.
    pub tx_timestamp_timeouts: u64,
    /// Realized deadline misses.
    pub deadline_misses: u64,
}

impl<R: Rng> TransientFaults<R> {
    /// Creates a sampler over its own RNG stream.
    pub fn new(config: TransientFaultConfig, rng: R) -> Self {
        TransientFaults {
            config,
            rng,
            tx_timestamp_timeouts: 0,
            deadline_misses: 0,
        }
    }

    /// Draws whether this transmission's timestamp retrieval times out.
    pub fn tx_timestamp_times_out(&mut self) -> bool {
        let hit = self.config.tx_timestamp_timeout_prob > 0.0
            && self.rng.gen::<f64>() < self.config.tx_timestamp_timeout_prob;
        if hit {
            self.tx_timestamp_timeouts += 1;
        }
        hit
    }

    /// Draws whether this transmission misses its launch deadline.
    pub fn deadline_missed(&mut self) -> bool {
        let hit = self.config.deadline_miss_prob > 0.0
            && self.rng.gen::<f64>() < self.config.deadline_miss_prob;
        if hit {
            self.deadline_misses += 1;
        }
        hit
    }
}

use tsn_snapshot::{Reader, Snap, SnapError, SnapState, Writer};

impl<R: Snap> SnapState for TransientFaults<R> {
    // `config` is static; the RNG stream and realized-fault counters are
    // the mutable state.
    fn save_state(&self, w: &mut Writer) {
        self.rng.put(w);
        self.tx_timestamp_timeouts.put(w);
        self.deadline_misses.put(w);
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        self.rng = Snap::get(r)?;
        self.tx_timestamp_timeouts = Snap::get(r)?;
        self.deadline_misses = Snap::get(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn none_config_never_faults() {
        let mut t = TransientFaults::new(TransientFaultConfig::none(), StdRng::seed_from_u64(1));
        for _ in 0..10_000 {
            assert!(!t.tx_timestamp_times_out());
            assert!(!t.deadline_missed());
        }
        assert_eq!(t.tx_timestamp_timeouts, 0);
        assert_eq!(t.deadline_misses, 0);
    }

    #[test]
    fn default_rates_land_near_paper_counts() {
        let mut t = TransientFaults::new(TransientFaultConfig::default(), StdRng::seed_from_u64(2));
        // Simulate the paper's ≈2.76 M Sync transmissions.
        let n = 2_764_800u64;
        for _ in 0..n {
            t.tx_timestamp_times_out();
            t.deadline_missed();
        }
        assert!(
            (2400..=3600).contains(&t.tx_timestamp_timeouts),
            "timeouts {}",
            t.tx_timestamp_timeouts
        );
        assert!(
            (250..=450).contains(&t.deadline_misses),
            "misses {}",
            t.deadline_misses
        );
    }

    #[test]
    fn counters_track_occurrences() {
        let cfg = TransientFaultConfig {
            tx_timestamp_timeout_prob: 1.0,
            deadline_miss_prob: 1.0,
        };
        let mut t = TransientFaults::new(cfg, StdRng::seed_from_u64(3));
        for _ in 0..5 {
            assert!(t.tx_timestamp_times_out());
            assert!(t.deadline_missed());
        }
        assert_eq!(t.tx_timestamp_timeouts, 5);
        assert_eq!(t.deadline_misses, 5);
    }
}
